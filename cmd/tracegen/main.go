// Command tracegen materializes synthetic workload traces to disk in the
// binary trace format, for inspection or external tooling. Records stream
// from the generator straight into the incremental encoder
// (internal/stream.Materialize), so arbitrarily long traces are written in
// bounded memory; a failed write removes the partial output file.
//
// Usage:
//
//	tracegen -workload 482.sphinx3-100B -n 1000000 -o sphinx3.pytr
//	tracegen -suite Ligra -n 200000 -dir traces/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"pythia/internal/stream"
	"pythia/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "", "single trace name to generate")
		suite    = flag.String("suite", "", "generate every trace of a suite")
		n        = flag.Int("n", 500_000, "records per trace")
		out      = flag.String("o", "", "output file (single workload)")
		dir      = flag.String("dir", "traces", "output directory (suite mode)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel in-flight generation; Materialize removes the
	// partial output file on the way out.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	write := func(w trace.Workload, path string) error {
		recs, instrs, err := stream.Materialize(ctx, path, w, *n)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d records, %d instructions\n", path, recs, instrs)
		return nil
	}

	switch {
	case *workload != "":
		w, ok := trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		path := *out
		if path == "" {
			path = sanitize(w.Name) + ".pytr"
		}
		if err := write(w, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *suite != "":
		ws := trace.BySuite(*suite)
		if len(ws) == 0 {
			fmt.Fprintf(os.Stderr, "unknown or empty suite %q\n", *suite)
			os.Exit(2)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, w := range ws {
			if err := write(w, filepath.Join(*dir, sanitize(w.Name)+".pytr")); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "specify -workload or -suite")
		os.Exit(2)
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, name)
}
