// Command pythia-sim runs a single simulation: one workload (or an n-core
// homogeneous mix), one prefetcher, one system configuration, and prints
// IPC, speedup over the no-prefetching baseline, and prefetcher statistics.
//
// Usage:
//
//	pythia-sim -workload 459.GemsFDTD-100B -pf pythia
//	pythia-sim -workload CC-100B -pf pythia-strict -mtps 600 -cores 4
//	pythia-sim -workload CC-100B -pf pythia -save-policy cc.policy.json
//	pythia-sim -workload 410.bwaves-100B -pf pythia -load-policy cc.policy.json
//	pythia-sim -workloads
//
// -save-policy writes core 0's learned Q-table as a policy envelope after
// the run; -load-policy warm-starts every Pythia agent from one before
// the run (the envelope's config fingerprint and generator version must
// match, or the run fails with a typed error). Envelopes interoperate
// with pythia-train -export and the policy store behind pythia-serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "459.GemsFDTD-100B", "trace name (see -workloads)")
		traceFile = flag.String("tracefile", "", "run a trace file written by tracegen instead of a registry workload")
		pfName    = flag.String("pf", "pythia", "prefetcher name")
		cores     = flag.Int("cores", 1, "number of cores (homogeneous mix)")
		mtps      = flag.Int("mtps", 0, "override DRAM MTPS (0 = Table 5 default)")
		llcKB     = flag.Int("llc", 0, "override LLC KB per core (0 = 2048)")
		scaleName = flag.String("scale", "default", "simulation scale: quick|default|full|long")
		savePol   = flag.String("save-policy", "", "write core 0's learned policy envelope to this file after the run")
		loadPol   = flag.String("load-policy", "", "warm-start every Pythia agent from this policy envelope")
		listWL    = flag.Bool("workloads", false, "list available workloads and exit")
	)
	flag.Parse()

	if *listWL {
		for _, w := range trace.All() {
			fmt.Printf("%-12s %s\n", w.Suite, w.Name)
		}
		return
	}

	var w trace.Workload
	if *traceFile != "" {
		r, err := trace.OpenFile(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w = trace.Fixed(r.Trace())
	} else {
		var ok bool
		w, ok = trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -workloads)\n", *workload)
			os.Exit(2)
		}
	}
	pf, err := harness.PFByName(*pfName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := cache.DefaultConfig(*cores)
	if *mtps > 0 {
		cfg.DRAM = cfg.DRAM.WithMTPS(*mtps)
	}
	if *llcKB > 0 {
		cfg.LLCSizeKBPerCore = *llcKB
	}

	// SIGINT/SIGTERM abort in-flight simulations promptly via the context.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var warm *policy.Envelope
	if *loadPol != "" {
		env, err := policy.ReadFile(*loadPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		warm = &env
	}

	mix := trace.HomogeneousMix(w, *cores)
	base, err := harness.RunCached(ctx, harness.RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: harness.Baseline()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The prefetched run uses Run, not RunCached: this CLI inspects live
	// prefetcher state below, and cached results are PF-stripped.
	run, err := harness.Run(ctx, harness.RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf, WarmStart: warm})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload: %s (%s), %d core(s), %d MTPS\n", w.Name, w.Suite, *cores, cfg.DRAM.MTPS)
	fmt.Printf("prefetcher: %s\n", pf.Name)
	if warm != nil {
		fmt.Printf("warm-started from %s (%s trained on %s)\n", warm.ID, warm.Config, warm.TrainedOn.Workload)
	}
	fmt.Println()
	for i := range run.IPC {
		fmt.Printf("core %d: IPC %.3f (baseline %.3f)\n", i, run.IPC[i], base.IPC[i])
	}
	fmt.Printf("\nspeedup over no-prefetching: %.3f\n", harness.Speedup(run, base))
	var issued, useful, late int64
	for _, s := range run.Stats {
		issued += s.PfIssued
		useful += s.PfUseful
		late += s.PfLate
	}
	if issued > 0 {
		fmt.Printf("prefetches: %d issued, %d useful (%.1f%%), %d late\n",
			issued, useful, 100*float64(useful)/float64(issued), late)
	}
	fmt.Printf("coverage: %.1f%%  overprediction: %.1f%%\n",
		100*float64(base.SumLLCLoadMisses()-run.SumLLCLoadMisses())/float64(base.SumLLCLoadMisses()),
		100*float64(run.SumDRAMReads()-base.SumDRAMReads())/float64(base.SumDRAMReads()))
	fmt.Printf("bandwidth buckets (<25/25-50/50-75/>=75): %.0f%% %.0f%% %.0f%% %.0f%%\n",
		100*run.Buckets[0], 100*run.Buckets[1], 100*run.Buckets[2], 100*run.Buckets[3])

	if *savePol != "" {
		saved := false
		for _, pref := range run.PFs {
			p, ok := pref.(*core.Pythia)
			if !ok {
				continue
			}
			// Cores and ParentID are part of the content address: a policy
			// trained under multi-core contention, or continued from a
			// loaded policy, must not address as the single-core
			// from-scratch one.
			prov := policy.Provenance{
				Workload: w.Name,
				Trace:    w.Key(sc.TraceLen),
				Scale:    sc.Key(),
				Seed:     p.Config().Seed,
				Cores:    *cores,
				Sims:     1,
			}
			if warm != nil {
				prov.ParentID = warm.ID
			}
			env, err := policy.New(p, prov)
			if err == nil {
				err = policy.WriteFile(*savePol, env)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("\nsaved policy %s (%d bytes) to %s\n", env.ID, env.SnapshotBytes, *savePol)
			saved = true
			break
		}
		if !saved {
			fmt.Fprintf(os.Stderr, "-save-policy: prefetcher %s has no Pythia agent to snapshot\n", pf.Name)
			os.Exit(1)
		}
	}

	// If the prefetcher is a Pythia agent, show the learned policy summary.
	if len(run.PFs) > 0 {
		if p, ok := run.PFs[0].(*core.Pythia); ok {
			st := p.Stats()
			fmt.Printf("\nPythia core 0: %d demands, %d prefetch actions, %d no-prefetch, %d out-of-page\n",
				st.Demands, st.PrefetchTaken, st.NoPrefetch, st.OutOfPage)
			fmt.Printf("rewards: AT=%d AL=%d CL=%d IN(hi/lo)=%d/%d NP(hi/lo)=%d/%d\n",
				st.RewardAT, st.RewardAL, st.RewardCL,
				st.RewardINHigh, st.RewardINLow, st.RewardNPHigh, st.RewardNPLow)
			fmt.Printf("top actions:")
			for i, c := range st.ActionCounts {
				if c > st.Demands/20 {
					fmt.Printf(" %+d:%d", p.Config().Actions[i], c)
				}
			}
			fmt.Println()
		}
	}
}
