// Command pythia-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pythia-bench -exp all -scale default
//	pythia-bench -exp fig9a,fig8b -scale quick -csv out/
//	pythia-bench -exp fig1 -parallel 8 -json BENCH_2.json
//	pythia-bench -list
//
// Simulations fan out over -parallel workers (default: all CPUs); worker
// count changes wall time only, never a table's contents. -json records
// per-experiment wall times in the BENCH_*.json format described in
// PERF.md, tracking the perf trajectory PR over PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pythia/internal/harness"
)

// benchReport is the -json payload; PERF.md documents the format.
type benchReport struct {
	Scale       string            `json:"scale"`
	Workers     int               `json:"workers"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	Experiments []benchExperiment `json:"experiments"`
	TotalSecs   float64           `json:"total_seconds"`
}

type benchExperiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.String("scale", "default", "simulation scale: quick|default|full")
		csvDir    = flag.String("csv", "", "also write each result as CSV into this directory")
		mdPath    = flag.String("md", "", "also append all results as a markdown report to this file")
		jsonPath  = flag.String("json", "", "write per-experiment wall times as a BENCH_*.json report")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = all CPUs, 1 = sequential)")
		list      = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	harness.SetWorkers(*parallel)

	sc, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	report := benchReport{
		Scale:   *scaleFlag,
		Workers: harness.Workers(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
	}
	var md strings.Builder
	wall := time.Now()
	for _, e := range exps {
		start := time.Now()
		table := e.Run(sc)
		secs := time.Since(start).Seconds()
		fmt.Println(table.Render())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		report.Experiments = append(report.Experiments, benchExperiment{ID: e.ID, Title: e.Title, Seconds: secs})
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", e.Title, table.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	report.TotalSecs = time.Since(wall).Seconds()
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: %d experiments, %.1fs total, %d workers]\n",
			*jsonPath, len(report.Experiments), report.TotalSecs, report.Workers)
	}
}
