// Command pythia-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pythia-bench -exp all -scale default
//	pythia-bench -exp fig9a,fig8b -scale quick -csv out/
//	pythia-bench -exp all,ext -scale quick
//	pythia-bench -exp ext-generalization,ext-warmstart -policies /var/lib/pythia/policies
//	pythia-bench -exp fig1 -parallel 8 -json BENCH_2.json
//	pythia-bench -exp all -results /var/lib/pythia/results
//	pythia-bench -list
//
// -exp takes a comma-separated list of experiment IDs and/or the group
// tokens "all" (every paper figure/table) and "ext" (every extended
// study); duplicates are dropped, order is preserved.
//
// Simulations fan out over -parallel workers (default: all CPUs); worker
// count changes wall time only, never a table's contents. -json records
// per-experiment wall times plus simulation throughput (sims run,
// instructions retired, simulated instructions per second) in the
// BENCH_*.json format described in PERF.md, tracking the perf
// trajectory PR over PR. -results points the
// harness at a persistent result store shared with pythia-serve and
// earlier invocations, so repeated simulations are read from disk instead
// of re-run (-results-readonly consumes without writing). -loadbench
// additionally boots an in-process pythia-serve and drives a short mixed
// load storm through internal/load, recording per-class latency
// quantiles in the report's `loadtest` section (see pythia-load for the
// standalone harness). -fleetbench boots real worker-process fleets at
// 1, 2 and 4 workers over a shared journal (this binary re-exec'd as
// the workers), pushes an identical job batch through each, and records
// jobs/sec mean±sd plus scaling efficiency in the report's `fleet`
// section — the multi-process scaling trajectory pythia-benchdiff
// tracks.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pythia/internal/api"
	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/cpu"
	"pythia/internal/fleet"
	"pythia/internal/harness"
	"pythia/internal/load"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

// benchReport is the -json payload; PERF.md documents the format.
type benchReport struct {
	Scale       string            `json:"scale"`
	Workers     int               `json:"workers"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	Stream      *streamBench      `json:"stream,omitempty"`
	Kernel      *kernelBench      `json:"kernel,omitempty"`
	Warmstart   *warmstartBench   `json:"warmstart,omitempty"`
	Loadtest    *load.Report      `json:"loadtest,omitempty"`
	Fleet       *fleetBench       `json:"fleet,omitempty"`
	Experiments []benchExperiment `json:"experiments"`
	TotalSecs   float64           `json:"total_seconds"`
}

type benchExperiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	// Throughput accounting: simulations actually run (store hits don't
	// count), instructions those simulations retired, and the resulting
	// simulated-instructions-per-second rate. Zero sims (fully cached
	// experiment) leaves InstrPerSec at 0 rather than reporting a rate
	// for work that never happened.
	Sims         int64   `json:"sims"`
	Instructions int64   `json:"instructions"`
	InstrPerSec  float64 `json:"instr_per_sec"`
}

// streamBench compares trace-delivery throughput (million records per
// second) across the three delivery paths, mirroring the
// BenchmarkTraceDelivery* benches in bench_test.go.
type streamBench struct {
	Records           int     `json:"records"`
	MaterializedMrecS float64 `json:"materialized_mrecs_s"`
	GenStreamMrecS    float64 `json:"genstream_mrecs_s"`
	FileStreamMrecS   float64 `json:"filestream_mrecs_s"`
}

// runStreamBench measures delivery throughput over a few passes each.
func runStreamBench(records int) (*streamBench, error) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		return nil, fmt.Errorf("stream bench workload missing")
	}
	drain := func(r trace.Reader) int {
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				return n
			}
			n++
		}
	}
	const passes = 3
	rate := func(open func() (trace.Reader, error)) (float64, error) {
		start := time.Now()
		total := 0
		for i := 0; i < passes; i++ {
			r, err := open()
			if err != nil {
				return 0, err
			}
			total += drain(r)
			if c, ok := r.(interface{ Close() error }); ok {
				c.Close()
			}
		}
		return float64(total) / time.Since(start).Seconds() / 1e6, nil
	}

	sb := &streamBench{Records: records}
	tr := w.Generate(records)
	var err error
	if sb.MaterializedMrecS, err = rate(func() (trace.Reader, error) {
		return trace.NewSliceReader(tr.Records), nil
	}); err != nil {
		return nil, err
	}
	gen := &stream.GenSource{W: w, N: records}
	if sb.GenStreamMrecS, err = rate(func() (trace.Reader, error) { return gen.Open() }); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pythia-streambench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	file, err := stream.NewCache(dir).Source(context.Background(), w, records, 0)
	if err != nil {
		return nil, err
	}
	if sb.FileStreamMrecS, err = rate(func() (trace.Reader, error) { return file.Open() }); err != nil {
		return nil, err
	}
	return sb, nil
}

// kernelBench measures the raw simulation kernel on a single core with no
// prefetcher attached — pure record-path throughput, the denominator of
// every experiment's wall time. Both arms run the same trace and produce
// bit-identical simulation results (internal/cpu batch_test.go); the only
// difference is the fused SoA chunk loop vs the record-at-a-time shim.
// Speedup (batched over shim instructions/sec) is the headline column
// pythia-benchdiff tracks; PERF.md "Batched SoA kernel" records the
// trajectory.
type kernelBench struct {
	Workloads []kernelWorkload `json:"workloads"`
}

// kernelWorkload is one workload's arm timings, best-of-kernelReps each.
type kernelWorkload struct {
	Workload           string  `json:"workload"`
	Records            int64   `json:"records"` // records consumed per arm
	BatchedRecsPerSec  float64 `json:"batched_recs_per_sec"`
	BatchedInstrPerSec float64 `json:"batched_instr_per_sec"`
	ShimRecsPerSec     float64 `json:"shim_recs_per_sec"`
	ShimInstrPerSec    float64 `json:"shim_instr_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// kernelReps is the repetitions per arm; arms are interleaved
// (shim, batched, shim, batched, ...) and each takes its best rep, so a
// load spike on the host machine penalizes both arms rather than one.
const kernelReps = 3

// computeTrace synthesizes a record-path-bound workload: an L1-resident
// 16KB footprint with 32-48 non-memory instructions per record, so nearly
// all wall time is the issue/retire machinery rather than the memory
// hierarchy. It isolates the fused-loop half of the kernel the way the
// GemsFDTD smoke workload exercises the miss path.
func computeTrace(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     uint64(0x400 + rng.Intn(8)*4),
			Addr:   uint64(rng.Intn(256))*64 + 1<<20,
			NonMem: uint16(32 + rng.Intn(17)),
			Store:  rng.Intn(8) == 0,
		}
	}
	return recs
}

// runKernelBench times both kernel paths over the canonical GemsFDTD-like
// smoke workload (memory-bound) and a synthetic compute-dense workload
// (record-path-bound). Each trace is materialized once and shared; every
// rep gets its own hierarchy, so neither arm borrows cache warmth.
func runKernelBench() (*kernelBench, error) {
	gems, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		return nil, fmt.Errorf("kernel bench workload missing")
	}
	const traceLen = 2_000_000
	workloads := []struct {
		name string
		recs []trace.Record
	}{
		{gems.Name, gems.Generate(traceLen).Records},
		{"synthetic-compute-l1", computeTrace(1_000_000, 42)},
	}
	kb := &kernelBench{}
	for _, wl := range workloads {
		arm := func(shim bool) (recs, instr int64, secs float64, err error) {
			hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
			if err != nil {
				return 0, 0, 0, err
			}
			cfg := cpu.SystemConfig{
				Core:               cpu.DefaultCoreConfig(),
				WarmupInstructions: 2_000_000,
				SimInstructions:    30_000_000,
				RecordShim:         shim,
			}
			sys, err := cpu.NewSystem(cfg, hier, []trace.Reader{trace.NewSliceReader(wl.recs)})
			if err != nil {
				return 0, 0, 0, err
			}
			start := time.Now()
			if err := sys.Run(context.Background()); err != nil {
				return 0, 0, 0, err
			}
			secs = time.Since(start).Seconds()
			c := sys.Cores[0]
			return c.Records(), c.Retired(), secs, nil
		}
		var recs, instr int64
		var shimBest, batchBest float64
		for rep := 0; rep < kernelReps; rep++ {
			sr, si, ss, err := arm(true)
			if err != nil {
				return nil, err
			}
			br, bi, bs, err := arm(false)
			if err != nil {
				return nil, err
			}
			if br != sr || bi != si {
				return nil, fmt.Errorf("kernel arms diverged on %s: batched %d recs/%d instr, shim %d recs/%d instr",
					wl.name, br, bi, sr, si)
			}
			recs, instr = br, bi
			if rep == 0 || ss < shimBest {
				shimBest = ss
			}
			if rep == 0 || bs < batchBest {
				batchBest = bs
			}
		}
		kw := kernelWorkload{
			Workload:           wl.name,
			Records:            recs,
			BatchedRecsPerSec:  float64(recs) / batchBest,
			BatchedInstrPerSec: float64(instr) / batchBest,
			ShimRecsPerSec:     float64(recs) / shimBest,
			ShimInstrPerSec:    float64(instr) / shimBest,
		}
		kw.Speedup = kw.BatchedInstrPerSec / kw.ShimInstrPerSec
		kb.Workloads = append(kb.Workloads, kw)
	}
	return kb, nil
}

// warmstartBench records what warm-starting buys on one workload: the
// instructions each arm needed to reach converged IPC (99% of its own
// full-horizon figure over a checkpoint ladder) and the wall time of the
// full-horizon evaluations. ConvergeSpeedup — cold over warm converge
// instructions — is the headline column pythia-benchdiff tracks.
type warmstartBench struct {
	Workload          string  `json:"workload"`
	TrainSeconds      float64 `json:"train_seconds"`
	ColdConvergeInstr int64   `json:"cold_converge_instr"`
	WarmConvergeInstr int64   `json:"warm_converge_instr"`
	ConvergeSpeedup   float64 `json:"converge_speedup"`
	ColdEvalSeconds   float64 `json:"cold_eval_seconds"`
	WarmEvalSeconds   float64 `json:"warm_eval_seconds"`
}

// runWarmBench trains a policy fresh (no store) and times warm vs cold
// evaluations over a horizon-checkpoint ladder. It uses harness.Run, not
// RunCached, so every timing is a real simulation.
func runWarmBench(ctx context.Context, sc harness.Scale) (*warmstartBench, error) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		return nil, fmt.Errorf("warm bench workload missing")
	}
	cfg := cache.DefaultConfig(1)
	ts := harness.TrainSpec{Workload: w, CacheCfg: cfg, Scale: sc, Config: core.BasicConfig()}

	wb := &warmstartBench{Workload: w.Name}
	start := time.Now()
	env, _, err := harness.TrainPolicyIn(ctx, nil, ts)
	if err != nil {
		return nil, err
	}
	wb.TrainSeconds = time.Since(start).Seconds()

	// The ladder, arm construction and convergence rule are the
	// harness's (WarmLadderSpec / WarmConvergeInstr), so this section
	// records exactly the metric ext-warmstart defines. Run, not
	// RunCached: every timing is a real simulation.
	ipcAt := func(warm *policy.Envelope) ([]float64, float64, error) {
		ipc := make([]float64, len(harness.WarmCheckpoints))
		var fullSecs float64
		for ci, f := range harness.WarmCheckpoints {
			start := time.Now()
			r, err := harness.Run(ctx, harness.WarmLadderSpec(w, cfg, sc, ci, warm))
			if err != nil {
				return nil, 0, err
			}
			if f == 1.0 {
				fullSecs = time.Since(start).Seconds()
			}
			ipc[ci] = r.IPC[0]
		}
		return ipc, fullSecs, nil
	}
	coldIPC, coldSecs, err := ipcAt(nil)
	if err != nil {
		return nil, err
	}
	warmIPC, warmSecs, err := ipcAt(&env)
	if err != nil {
		return nil, err
	}
	wb.ColdEvalSeconds, wb.WarmEvalSeconds = coldSecs, warmSecs
	wb.ColdConvergeInstr = harness.WarmConvergeInstr(coldIPC, sc.Sim)
	wb.WarmConvergeInstr = harness.WarmConvergeInstr(warmIPC, sc.Sim)
	wb.ConvergeSpeedup = float64(wb.ColdConvergeInstr) / float64(wb.WarmConvergeInstr)
	return wb, nil
}

// runLoadBench measures serving behavior under load: it boots an
// in-process pythia-serve on a loopback port with a throwaway result
// store, seeds two hot keys at the bench scale, and drives a short
// constant-RPS mixed storm (reads, metadata, re-launches) through the
// same open-loop harness as cmd/pythia-load. The resulting per-class
// latency quantiles land in the -json report's `loadtest` section, so
// serving p95s ride the same regression trajectory as wall times.
func runLoadBench(ctx context.Context, scaleName string) (*load.Report, error) {
	dir, err := os.MkdirTemp("", "pythia-loadbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := serve.New(serve.Config{Store: results.Open(dir), QueueDepth: 64})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	base := "http://" + ln.Addr().String()
	targets := load.Targets{Experiments: []string{"fig14", "table2"}, Scale: scaleName}
	prepSims, err := load.Prepare(ctx, api.NewClient(base), targets)
	if err != nil {
		return nil, err
	}
	client := api.NewClient(base, api.WithRetries(0))
	mix, err := load.BuildMix(client, "read=0.7,meta=0.15,simulate=0.15", targets, 1.2)
	if err != nil {
		return nil, err
	}
	rep, err := load.Run(ctx, load.Config{
		Client:   client,
		Schedule: load.Constant{RPS: 40},
		Duration: 5 * time.Second,
		Mix:      mix,
		Seed:     1,
	})
	if err != nil {
		return nil, err
	}
	rep.PrepareSims = prepSims
	return rep, nil
}

// fleetBench records multi-process scaling: identical job batches pushed
// through real worker-process fleets of 1, 2 and 4, each repeated for a
// mean±sd jobs/sec figure. Efficiency (speedup over the 1-worker arm,
// divided by the worker count) is the headline column pythia-benchdiff
// tracks — on a single-CPU host it degenerates toward 1/W by
// construction, so the report records CPUs alongside.
type fleetBench struct {
	JobsPerArm     int        `json:"jobs_per_arm"`
	Repeats        int        `json:"repeats"`
	WorkerParallel int        `json:"worker_parallel"` // -parallel inside each worker process
	Arms           []fleetArm `json:"arms"`
}

// fleetArm is one worker-count's measurements.
type fleetArm struct {
	Workers        int     `json:"workers"`
	JobsPerSecMean float64 `json:"jobs_per_sec_mean"`
	JobsPerSecSD   float64 `json:"jobs_per_sec_sd"`
	Speedup        float64 `json:"speedup"`    // mean over the 1-worker mean
	Efficiency     float64 `json:"efficiency"` // speedup / workers
}

// fleetArmWorkers are the fleet sizes each pass measures.
var fleetArmWorkers = []int{1, 2, 4}

const (
	fleetBenchJobs    = 8
	fleetBenchRepeats = 3
)

// fleetBenchScales builds the job batch: parametric scales (resolvable
// in any process without a shared table) made unique per job so every
// job is a real simulation with its own store fingerprint. Jobs are
// sized to hundreds of milliseconds of single-threaded simulation so
// throughput measures compute scaling, not the claim/poll machinery.
func fleetBenchScales() []string {
	scales := make([]string, fleetBenchJobs)
	for i := range scales {
		scales[i] = fmt.Sprintf("custom:warmup=100000,sim=%d,tracelen=100000,wps=1,mixes=1", 20_000_000+i)
	}
	return scales
}

// runFleetBenchWorker is the hidden -fleet-worker mode: one fleet worker
// process over the bench pass directory, single-threaded so per-job cost
// is constant and scaling comes only from process parallelism.
func runFleetBenchWorker(dir, traceDir string) {
	if traceDir != "" {
		harness.SetTraceCacheDir(traceDir)
	}
	harness.SetWorkers(1)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	_, err := serve.RunWorker(ctx, serve.WorkerConfig{
		Store:            results.Open(filepath.Join(dir, "results")),
		JournalDir:       filepath.Join(dir, "journal"),
		PollInterval:     10 * time.Millisecond,
		ProgressInterval: 50 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fleetBenchPass boots a fixed fleet of `workers` processes over a fresh
// journal+store, pushes the batch through it, and returns jobs/sec. The
// store is fresh per pass so every arm simulates the same work; only the
// trace cache is shared (trace synthesis is identical everywhere and
// would otherwise dominate the small arms).
func fleetBenchPass(ctx context.Context, self, root, traceDir string, scales []string, workers, rep int) (float64, error) {
	dir := filepath.Join(root, fmt.Sprintf("w%d-r%d", workers, rep))
	for _, d := range []string{"journal", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			return 0, err
		}
	}
	cluster, err := fleet.StartLocal(fleet.LocalOptions{
		Store:      results.Open(filepath.Join(dir, "results")),
		JournalDir: filepath.Join(dir, "journal"),
		QueueDepth: len(scales) + 4,
		WorkerCommand: func() *exec.Cmd {
			cmd := exec.Command(self, "-fleet-worker", dir, "-fleet-trace", traceDir)
			cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
			return cmd
		},
		// A fixed pool: the bench measures worker scaling, not the
		// autoscaler (which has its own tests).
		Min: workers, Max: workers,
		ScaleDownDelay: time.Hour,
	})
	if err != nil {
		return 0, err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		cluster.Shutdown(sctx)
	}()

	// Wait for the full pool before starting the clock — cold starts are
	// measured separately (coordinator metrics), not smeared into
	// throughput.
	readyBy := time.Now().Add(60 * time.Second)
	for cluster.Coord.Status().Ready < workers {
		if time.Now().After(readyBy) {
			return 0, fmt.Errorf("fleet bench: %d-worker pool never became ready", workers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: cluster.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	client := api.NewClient("http://" + ln.Addr().String())

	start := time.Now()
	ids := make([]string, 0, len(scales))
	for _, sc := range scales {
		job, err := client.Launch(ctx, api.LaunchRequest{Experiment: "fig14", Scale: sc})
		if err != nil {
			return 0, err
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		job, err := client.Wait(ctx, id, 25*time.Millisecond)
		if err != nil {
			return 0, err
		}
		if job.Status != api.StatusDone {
			return 0, fmt.Errorf("fleet bench job %s ended %q: %s", id, job.Status, job.Error)
		}
	}
	return float64(len(ids)) / time.Since(start).Seconds(), nil
}

// runFleetBench measures jobs/sec at 1, 2 and 4 worker processes.
func runFleetBench(ctx context.Context) (*fleetBench, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "pythia-fleetbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	traceDir := filepath.Join(root, "trace")
	scales := fleetBenchScales()

	fb := &fleetBench{JobsPerArm: fleetBenchJobs, Repeats: fleetBenchRepeats, WorkerParallel: 1}
	var base float64
	for _, w := range fleetArmWorkers {
		rates := make([]float64, 0, fleetBenchRepeats)
		for rep := 0; rep < fleetBenchRepeats; rep++ {
			rate, err := fleetBenchPass(ctx, self, root, traceDir, scales, w, rep)
			if err != nil {
				return nil, err
			}
			rates = append(rates, rate)
		}
		mean, sd := meanSD(rates)
		arm := fleetArm{Workers: w, JobsPerSecMean: mean, JobsPerSecSD: sd}
		if w == 1 {
			base = mean
		}
		if base > 0 {
			arm.Speedup = mean / base
			arm.Efficiency = arm.Speedup / float64(w)
		}
		fb.Arms = append(fb.Arms, arm)
		fmt.Printf("[fleet %d worker(s): %.2f ± %.2f jobs/s, speedup %.2fx, efficiency %.0f%%]\n",
			w, mean, sd, arm.Speedup, arm.Efficiency*100)
	}
	fmt.Println()
	return fb, nil
}

// meanSD is the sample mean and (population) standard deviation.
func meanSD(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)))
}

// humanCount renders an instruction count compactly (12.3M, 4.5G) for
// the per-experiment progress line; the JSON report keeps exact values.
func humanCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// resolveExperiments expands a comma-separated -exp value: experiment IDs
// and/or the group tokens "all" (paper) and "ext" (extended studies).
// Duplicates are dropped; order is preserved.
func resolveExperiments(spec string) ([]harness.Experiment, error) {
	var exps []harness.Experiment
	seen := map[string]bool{}
	add := func(e harness.Experiment) {
		if !seen[e.ID] {
			seen[e.ID] = true
			exps = append(exps, e)
		}
	}
	for _, tok := range strings.Split(spec, ",") {
		switch tok = strings.TrimSpace(tok); tok {
		case "":
		case "all":
			for _, e := range harness.Experiments() {
				add(e)
			}
		case "ext":
			for _, e := range harness.ExtendedExperiments() {
				add(e)
			}
		default:
			e, ok := harness.ExperimentByID(tok)
			if !ok {
				return nil, fmt.Errorf("unknown experiment %q (use -list; groups: all, ext)", tok)
			}
			add(e)
		}
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("-exp %q selects no experiments", spec)
	}
	return exps, nil
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs and/or group tokens: 'all' (paper figures/tables), 'ext' (extended studies)")
		scaleFlag = flag.String("scale", "default", "simulation scale: quick|default|full|long")
		csvDir    = flag.String("csv", "", "also write each result as CSV into this directory")
		mdPath    = flag.String("md", "", "also append all results as a markdown report to this file")
		jsonPath  = flag.String("json", "", "write per-experiment wall times as a BENCH_*.json report")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = all CPUs, 1 = sequential)")
		strBench  = flag.Bool("streambench", false, "also measure trace-delivery throughput (materialized vs streamed) into the -json report")
		kernBench = flag.Bool("kernelbench", false, "also measure single-core kernel throughput (fused SoA batches vs record-at-a-time shim) into the -json report")
		resDir    = flag.String("results", "", "persistent result store directory: simulations are read from and written to it, surviving restarts")
		resRO     = flag.Bool("results-readonly", false, "with -results, read stored simulations but never write new ones")
		polDir    = flag.String("policies", "", "policy store directory: warm-start experiments reuse trained policies across invocations")
		warmBench = flag.Bool("warmbench", false, "also measure warm-vs-cold convergence (instructions and wall time) into the -json report")
		loadBench = flag.Bool("loadbench", false, "also drive a short mixed load storm at an in-process pythia-serve into the -json report's loadtest section")
		fltBench  = flag.Bool("fleetbench", false, "also measure multi-process fleet throughput (jobs/sec at 1/2/4 worker processes) into the -json report's fleet section")
		fltWorker = flag.String("fleet-worker", "", "internal: run as a fleetbench worker over this pass directory (used by -fleetbench's re-exec)")
		fltTrace  = flag.String("fleet-trace", "", "internal: shared trace-cache directory for fleetbench workers")
		list      = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *fltWorker != "" {
		runFleetBenchWorker(*fltWorker, *fltTrace)
		return
	}

	if *list {
		fmt.Println("paper experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nextended studies (-exp ext runs all of them):")
		for _, e := range harness.ExtendedExperiments() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		return
	}

	harness.SetWorkers(*parallel)
	if *resDir != "" {
		store := harness.SetResultStore(*resDir)
		store.SetReadOnly(*resRO)
	} else if *resRO {
		fmt.Fprintln(os.Stderr, "-results-readonly requires -results")
		os.Exit(2)
	}
	if *polDir != "" {
		harness.SetPolicyStore(*polDir)
	}

	sc, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	exps, err := resolveExperiments(*expFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	report := benchReport{
		Scale:   *scaleFlag,
		Workers: harness.Workers(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
	}
	if *strBench {
		sb, err := runStreamBench(sc.TraceLen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Stream = sb
		fmt.Printf("[trace delivery, %d records: materialized %.1f Mrec/s, gen-stream %.1f Mrec/s, file-stream %.1f Mrec/s]\n\n",
			sb.Records, sb.MaterializedMrecS, sb.GenStreamMrecS, sb.FileStreamMrecS)
	}
	if *kernBench {
		kb, err := runKernelBench()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Kernel = kb
		for _, kw := range kb.Workloads {
			fmt.Printf("[kernel %s, %s records: batched %s instr/s (%s rec/s) vs shim %s instr/s (%s rec/s), %.2fx]\n",
				kw.Workload, humanCount(kw.Records), humanCount(int64(kw.BatchedInstrPerSec)), humanCount(int64(kw.BatchedRecsPerSec)),
				humanCount(int64(kw.ShimInstrPerSec)), humanCount(int64(kw.ShimRecsPerSec)), kw.Speedup)
		}
		fmt.Println()
	}
	// SIGINT/SIGTERM cancel the experiment context: in-flight simulations
	// abort at the next chunk boundary and the process exits cleanly
	// instead of being killed mid-table.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *warmBench {
		wb, err := runWarmBench(ctx, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Warmstart = wb
		fmt.Printf("[warm start, %s: converge %d instr warm vs %d cold (%.1fx), train %.1fs, full eval %.1fs warm / %.1fs cold]\n\n",
			wb.Workload, wb.WarmConvergeInstr, wb.ColdConvergeInstr, wb.ConvergeSpeedup,
			wb.TrainSeconds, wb.WarmEvalSeconds, wb.ColdEvalSeconds)
	}

	var md strings.Builder
	wall := time.Now()
	for _, e := range exps {
		simsBefore, instrBefore := harness.SimCount(), harness.InstructionsRetired()
		start := time.Now()
		table, err := e.Run(ctx, sc)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "interrupted during %s (%v)\n", e.ID, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		be := benchExperiment{
			ID: e.ID, Title: e.Title, Seconds: secs,
			Sims:         harness.SimCount() - simsBefore,
			Instructions: harness.InstructionsRetired() - instrBefore,
		}
		if secs > 0 && be.Instructions > 0 {
			be.InstrPerSec = float64(be.Instructions) / secs
		}
		fmt.Println(table.Render())
		fmt.Printf("[%s completed in %v: %d sims, %s instr, %s instr/s]\n\n",
			e.ID, time.Since(start).Round(time.Millisecond),
			be.Sims, humanCount(be.Instructions), humanCount(int64(be.InstrPerSec)))
		report.Experiments = append(report.Experiments, be)
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", e.Title, table.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	report.TotalSecs = time.Since(wall).Seconds()

	// Load-bench runs after the experiment loop on purpose: its hot-key
	// seeding warms the in-process harness caches, and running it first
	// would collapse the per-experiment wall times the diff tracks.
	// (TotalSecs is already pinned, so the storm doesn't inflate it.)
	if *loadBench {
		lr, err := runLoadBench(ctx, *scaleFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Loadtest = lr
		fmt.Printf("[load test]\n%s\n", lr.Render())
	}
	if *fltBench {
		fbr, err := runFleetBench(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Fleet = fbr
	}

	if st := harness.ResultStore(); st != nil {
		fmt.Printf("[result store %s: %d hits, %d misses, %d writes]\n",
			st.Dir(), st.Hits(), st.Misses(), st.Writes())
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: %d experiments, %.1fs total, %d workers]\n",
			*jsonPath, len(report.Experiments), report.TotalSecs, report.Workers)
	}
}
