// Command pythia-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pythia-bench -exp all -scale default
//	pythia-bench -exp fig9a,fig8b -scale quick -csv out/
//	pythia-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pythia/internal/harness"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.String("scale", "default", "simulation scale: quick|default|full")
		csvDir    = flag.String("csv", "", "also write each result as CSV into this directory")
		mdPath    = flag.String("md", "", "also append all results as a markdown report to this file")
		list      = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var md strings.Builder
	for _, e := range exps {
		start := time.Now()
		table := e.Run(sc)
		fmt.Println(table.Render())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", e.Title, table.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
