// Command pythia-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pythia-bench -exp all -scale default
//	pythia-bench -exp fig9a,fig8b -scale quick -csv out/
//	pythia-bench -exp fig1 -parallel 8 -json BENCH_2.json
//	pythia-bench -exp all -results /var/lib/pythia/results
//	pythia-bench -list
//
// Simulations fan out over -parallel workers (default: all CPUs); worker
// count changes wall time only, never a table's contents. -json records
// per-experiment wall times in the BENCH_*.json format described in
// PERF.md, tracking the perf trajectory PR over PR. -results points the
// harness at a persistent result store shared with pythia-serve and
// earlier invocations, so repeated simulations are read from disk instead
// of re-run (-results-readonly consumes without writing).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pythia/internal/harness"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

// benchReport is the -json payload; PERF.md documents the format.
type benchReport struct {
	Scale       string            `json:"scale"`
	Workers     int               `json:"workers"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	Stream      *streamBench      `json:"stream,omitempty"`
	Experiments []benchExperiment `json:"experiments"`
	TotalSecs   float64           `json:"total_seconds"`
}

type benchExperiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

// streamBench compares trace-delivery throughput (million records per
// second) across the three delivery paths, mirroring the
// BenchmarkTraceDelivery* benches in bench_test.go.
type streamBench struct {
	Records           int     `json:"records"`
	MaterializedMrecS float64 `json:"materialized_mrecs_s"`
	GenStreamMrecS    float64 `json:"genstream_mrecs_s"`
	FileStreamMrecS   float64 `json:"filestream_mrecs_s"`
}

// runStreamBench measures delivery throughput over a few passes each.
func runStreamBench(records int) (*streamBench, error) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		return nil, fmt.Errorf("stream bench workload missing")
	}
	drain := func(r trace.Reader) int {
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				return n
			}
			n++
		}
	}
	const passes = 3
	rate := func(open func() (trace.Reader, error)) (float64, error) {
		start := time.Now()
		total := 0
		for i := 0; i < passes; i++ {
			r, err := open()
			if err != nil {
				return 0, err
			}
			total += drain(r)
			if c, ok := r.(interface{ Close() error }); ok {
				c.Close()
			}
		}
		return float64(total) / time.Since(start).Seconds() / 1e6, nil
	}

	sb := &streamBench{Records: records}
	tr := w.Generate(records)
	var err error
	if sb.MaterializedMrecS, err = rate(func() (trace.Reader, error) {
		return trace.NewSliceReader(tr.Records), nil
	}); err != nil {
		return nil, err
	}
	gen := &stream.GenSource{W: w, N: records}
	if sb.GenStreamMrecS, err = rate(func() (trace.Reader, error) { return gen.Open() }); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pythia-streambench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	file, err := stream.NewCache(dir).Source(context.Background(), w, records, 0)
	if err != nil {
		return nil, err
	}
	if sb.FileStreamMrecS, err = rate(func() (trace.Reader, error) { return file.Open() }); err != nil {
		return nil, err
	}
	return sb, nil
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.String("scale", "default", "simulation scale: quick|default|full|long")
		csvDir    = flag.String("csv", "", "also write each result as CSV into this directory")
		mdPath    = flag.String("md", "", "also append all results as a markdown report to this file")
		jsonPath  = flag.String("json", "", "write per-experiment wall times as a BENCH_*.json report")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = all CPUs, 1 = sequential)")
		strBench  = flag.Bool("streambench", false, "also measure trace-delivery throughput (materialized vs streamed) into the -json report")
		resDir    = flag.String("results", "", "persistent result store directory: simulations are read from and written to it, surviving restarts")
		resRO     = flag.Bool("results-readonly", false, "with -results, read stored simulations but never write new ones")
		list      = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	harness.SetWorkers(*parallel)
	if *resDir != "" {
		store := harness.SetResultStore(*resDir)
		store.SetReadOnly(*resRO)
	} else if *resRO {
		fmt.Fprintln(os.Stderr, "-results-readonly requires -results")
		os.Exit(2)
	}

	sc, err := harness.ScaleByName(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if *expFlag == "all" {
		exps = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	report := benchReport{
		Scale:   *scaleFlag,
		Workers: harness.Workers(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
	}
	if *strBench {
		sb, err := runStreamBench(sc.TraceLen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.Stream = sb
		fmt.Printf("[trace delivery, %d records: materialized %.1f Mrec/s, gen-stream %.1f Mrec/s, file-stream %.1f Mrec/s]\n\n",
			sb.Records, sb.MaterializedMrecS, sb.GenStreamMrecS, sb.FileStreamMrecS)
	}
	// SIGINT/SIGTERM cancel the experiment context: in-flight simulations
	// abort at the next chunk boundary and the process exits cleanly
	// instead of being killed mid-table.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var md strings.Builder
	wall := time.Now()
	for _, e := range exps {
		start := time.Now()
		table, err := e.Run(ctx, sc)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "interrupted during %s (%v)\n", e.ID, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		fmt.Println(table.Render())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		report.Experiments = append(report.Experiments, benchExperiment{ID: e.ID, Title: e.Title, Seconds: secs})
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", e.Title, table.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	report.TotalSecs = time.Since(wall).Seconds()
	if st := harness.ResultStore(); st != nil {
		fmt.Printf("[result store %s: %d hits, %d misses, %d writes]\n",
			st.Dir(), st.Hits(), st.Misses(), st.Writes())
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: %d experiments, %.1fs total, %d workers]\n",
			*jsonPath, len(report.Experiments), report.TotalSecs, report.Workers)
	}
}
