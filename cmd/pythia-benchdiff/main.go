// Command pythia-benchdiff compares a fresh pythia-bench -json report
// against a committed baseline (BENCH_*.json) and flags per-experiment
// wall-time regressions past a threshold. When the reports carry
// simulation-throughput figures (instr_per_sec, recorded by newer
// pythia-bench builds), an informational instructions-per-second column
// is shown alongside the timings. Reports carrying a `loadtest` section
// (pythia-bench -loadbench) additionally get a per-class serving-p95
// comparison, so latency regressions in pythia-serve surface on the
// same trajectory as wall-time regressions. A `kernel` section
// (pythia-bench -kernelbench) gets a per-workload batched-throughput
// comparison where drops past 5% are flagged — the kernel numbers are
// best-of-N interleaved arms in one process, so they do not get the
// wide noise allowance wall times do. A `fleet` section (pythia-bench
// -fleetbench) gets a per-arm scaling-efficiency comparison: efficiency
// drops past the threshold are flagged (machine speed cancels out of
// the ratio), while absolute jobs/sec stays informational.
//
// Usage:
//
//	pythia-bench -exp fig1,fig7 -scale quick -json /tmp/fresh.json
//	pythia-benchdiff -new /tmp/fresh.json              # vs latest BENCH_*.json
//	pythia-benchdiff -old BENCH_2.json -new /tmp/fresh.json -threshold 30
//
// Timing on shared CI runners is noisy and single-run numbers understate
// their own dispersion, so the default mode only warns (exit 0); pass
// -strict to turn threshold breaches into a non-zero exit for
// environments with stable hardware. Reports recorded at different scales
// are never numerically compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// report mirrors the fields of pythia-bench's -json payload that the diff
// consumes.
type report struct {
	Scale     string `json:"scale"`
	Workers   int    `json:"workers"`
	CPUs      int    `json:"cpus"`
	Warmstart *struct {
		Workload          string  `json:"workload"`
		ColdConvergeInstr int64   `json:"cold_converge_instr"`
		WarmConvergeInstr int64   `json:"warm_converge_instr"`
		ConvergeSpeedup   float64 `json:"converge_speedup"`
	} `json:"warmstart,omitempty"`
	Kernel *struct {
		Workloads []kernelWorkload `json:"workloads"`
	} `json:"kernel,omitempty"`
	Loadtest *struct {
		Schedule string `json:"schedule"`
		Classes  []struct {
			Class  string  `json:"class"`
			OK     int64   `json:"ok"`
			Shed   int64   `json:"shed"`
			Errors int64   `json:"errors"`
			P95Ms  float64 `json:"p95_ms"`
		} `json:"classes"`
		Violations []string `json:"violations,omitempty"`
	} `json:"loadtest,omitempty"`
	Fleet *struct {
		JobsPerArm int        `json:"jobs_per_arm"`
		Repeats    int        `json:"repeats"`
		Arms       []fleetArm `json:"arms"`
	} `json:"fleet,omitempty"`
	Experiments []struct {
		ID          string  `json:"id"`
		Seconds     float64 `json:"seconds"`
		InstrPerSec float64 `json:"instr_per_sec"`
	} `json:"experiments"`
	TotalSecs float64 `json:"total_seconds"`
}

// fleetArm mirrors one entry of the report's fleet section
// (pythia-bench -fleetbench).
type fleetArm struct {
	Workers        int     `json:"workers"`
	JobsPerSecMean float64 `json:"jobs_per_sec_mean"`
	JobsPerSecSD   float64 `json:"jobs_per_sec_sd"`
	Speedup        float64 `json:"speedup"`
	Efficiency     float64 `json:"efficiency"`
}

// kernelWorkload mirrors one entry of the report's kernel section
// (pythia-bench -kernelbench).
type kernelWorkload struct {
	Workload           string  `json:"workload"`
	BatchedInstrPerSec float64 `json:"batched_instr_per_sec"`
	ShimInstrPerSec    float64 `json:"shim_instr_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// kernelDropPct is the tolerated drop in batched kernel throughput. The
// kernel is the denominator of every experiment's wall time and both arms
// run on the same machine in the same process, so the usual
// noisy-runner slack does not apply; anything past 5% is flagged.
const kernelDropPct = 5.0

// minSeconds filters out experiments whose baseline time is pure noise
// (config-table renders finish in microseconds; a ratio there is
// meaningless).
const minSeconds = 0.05

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline report (default: highest-numbered BENCH_*.json in the repo root)")
		newPath   = flag.String("new", "", "fresh report to compare (required)")
		threshold = flag.Float64("threshold", 25, "warn when an experiment slowed by more than this percentage")
		strict    = flag.Bool("strict", false, "exit non-zero on threshold breaches instead of warning")
	)
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "pythia-benchdiff: -new is required")
		os.Exit(2)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *oldPath == "" {
		// Auto-selection is scale-aware: baselines recorded at other
		// scales are skipped, so committing a default-scale BENCH_*.json
		// later cannot silently turn a quick-scale CI probe into a no-op.
		p, err := latestCommitted(newRep.Scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-benchdiff: %v\n", err)
			os.Exit(2)
		}
		*oldPath = p
	}

	oldRep, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-benchdiff: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("baseline %s (scale %s, %d workers, %d cpus)\n", *oldPath, oldRep.Scale, oldRep.Workers, oldRep.CPUs)
	fmt.Printf("fresh    %s (scale %s, %d workers, %d cpus)\n\n", *newPath, newRep.Scale, newRep.Workers, newRep.CPUs)

	if oldRep.Scale != newRep.Scale {
		fmt.Printf("scales differ (%s vs %s): timings are not comparable, skipping diff\n", oldRep.Scale, newRep.Scale)
		return
	}
	if oldRep.Workers != newRep.Workers || oldRep.CPUs != newRep.CPUs {
		fmt.Println("note: worker/CPU counts differ between reports; expect extra noise")
	}

	oldSecs := map[string]float64{}
	oldRate := map[string]float64{}
	for _, e := range oldRep.Experiments {
		oldSecs[e.ID] = e.Seconds
		oldRate[e.ID] = e.InstrPerSec
	}

	var regressions []string
	fmt.Printf("%-16s %10s %10s %8s %12s\n", "experiment", "old (s)", "new (s)", "delta", "instr/s")
	for _, e := range newRep.Experiments {
		old, ok := oldSecs[e.ID]
		if !ok {
			fmt.Printf("%-16s %10s %10.3f %8s %12s\n", e.ID, "-", e.Seconds, "new", rateCol(oldRate[e.ID], e.InstrPerSec))
			continue
		}
		if old < minSeconds {
			continue
		}
		delta := (e.Seconds - old) / old * 100
		mark := ""
		if delta > *threshold {
			mark = "  <-- regression"
			regressions = append(regressions, fmt.Sprintf("%s slowed %.0f%% (%.3fs -> %.3fs)", e.ID, delta, old, e.Seconds))
		}
		fmt.Printf("%-16s %10.3f %10.3f %+7.1f%% %12s%s\n", e.ID, old, e.Seconds, delta, rateCol(oldRate[e.ID], e.InstrPerSec), mark)
	}

	// Warm-start convergence speedup is instruction-count based, so unlike
	// wall times it is stable across machines; surface it whenever the
	// fresh report carries one, and flag a drop against the baseline (a
	// shrinking ratio means warm-started agents converge later — a policy
	// lifecycle regression, not noise).
	if nw := newRep.Warmstart; nw != nil {
		fmt.Printf("\n%-16s %10s %10s %8s\n", "warm start", "old", "new", "delta")
		if ow := oldRep.Warmstart; ow != nil && ow.Workload == nw.Workload {
			delta := (nw.ConvergeSpeedup - ow.ConvergeSpeedup) / ow.ConvergeSpeedup * 100
			mark := ""
			if delta < -*threshold {
				mark = "  <-- regression"
				regressions = append(regressions, fmt.Sprintf("warm-start converge speedup on %s fell %.0f%% (%.1fx -> %.1fx)",
					nw.Workload, -delta, ow.ConvergeSpeedup, nw.ConvergeSpeedup))
			}
			fmt.Printf("%-16s %9.1fx %9.1fx %+7.1f%%%s\n", nw.Workload, ow.ConvergeSpeedup, nw.ConvergeSpeedup, delta, mark)
		} else {
			fmt.Printf("%-16s %10s %9.1fx %8s\n", nw.Workload, "-", nw.ConvergeSpeedup, "new")
		}
		fmt.Printf("%-16s %10s %9s\n", "  converge instr",
			fmt.Sprintf("warm %d", nw.WarmConvergeInstr), fmt.Sprintf("cold %d", nw.ColdConvergeInstr))
	}

	// Kernel-throughput trajectory: batched-over-shim speedup and the
	// batched arm's absolute instructions/sec per workload. A drop in
	// batched throughput past kernelDropPct is flagged (and fails under
	// -strict like any other regression): pythia-bench interleaves
	// best-of-N arms in one process, so the wide noise allowance wall
	// times get does not apply here.
	if nk := newRep.Kernel; nk != nil {
		fmt.Printf("\n%-24s %12s %12s %8s %9s\n", "kernel batched instr/s", "old", "new", "delta", "speedup")
		oldKW := map[string]kernelWorkload{}
		if okr := oldRep.Kernel; okr != nil {
			for _, kw := range okr.Workloads {
				oldKW[kw.Workload] = kw
			}
		}
		for _, kw := range nk.Workloads {
			prev, seen := oldKW[kw.Workload]
			if !seen || prev.BatchedInstrPerSec <= 0 {
				fmt.Printf("%-24s %12s %12s %8s %8.2fx\n", kw.Workload, "-", humanRate(kw.BatchedInstrPerSec), "new", kw.Speedup)
				continue
			}
			delta := (kw.BatchedInstrPerSec - prev.BatchedInstrPerSec) / prev.BatchedInstrPerSec * 100
			mark := ""
			if delta < -kernelDropPct {
				mark = "  <-- regression"
				regressions = append(regressions, fmt.Sprintf("kernel batched throughput on %s fell %.0f%% (%s -> %s instr/s)",
					kw.Workload, -delta, humanRate(prev.BatchedInstrPerSec), humanRate(kw.BatchedInstrPerSec)))
			}
			fmt.Printf("%-24s %12s %12s %+7.1f%% %8.2fx%s\n", kw.Workload,
				humanRate(prev.BatchedInstrPerSec), humanRate(kw.BatchedInstrPerSec), delta, kw.Speedup, mark)
		}
	}

	// Multi-process scaling trajectory: when the fresh report carries a
	// fleet section (pythia-bench -fleetbench), compare per-arm scaling
	// efficiency. Efficiency is a ratio of two rates measured in the same
	// pass, so machine speed cancels out of it; a relative drop past the
	// threshold means worker processes newly contend on something (a
	// store lock, journal scans, claim races) and is flagged. Absolute
	// jobs/sec is shown but never flagged — it moves with the hardware.
	// Comparisons are skipped when the hosts' CPU counts differ: scaling
	// headroom IS the CPU count, so the ratios are not comparable.
	if nf := newRep.Fleet; nf != nil {
		fmt.Printf("\n%-16s %16s %16s %10s %8s\n", "fleet scaling", "old (jobs/s)", "new (jobs/s)", "eff", "delta")
		oldArms := map[int]fleetArm{}
		sameHost := oldRep.CPUs == newRep.CPUs
		if of := oldRep.Fleet; of != nil && sameHost {
			for _, a := range of.Arms {
				oldArms[a.Workers] = a
			}
		}
		for _, a := range nf.Arms {
			label := fmt.Sprintf("%d worker(s)", a.Workers)
			newCol := fmt.Sprintf("%.2f ± %.2f", a.JobsPerSecMean, a.JobsPerSecSD)
			prev, seen := oldArms[a.Workers]
			if !seen || prev.Efficiency <= 0 {
				fmt.Printf("%-16s %16s %16s %9.0f%% %8s\n", label, "-", newCol, a.Efficiency*100, "new")
				continue
			}
			delta := (a.Efficiency - prev.Efficiency) / prev.Efficiency * 100
			mark := ""
			// The 1-worker arm is the ratio's own denominator (efficiency
			// is 1 by construction); only multi-worker arms can regress.
			if a.Workers > 1 && delta < -*threshold {
				mark = "  <-- regression"
				regressions = append(regressions, fmt.Sprintf("fleet scaling efficiency at %d workers fell %.0f%% (%.0f%% -> %.0f%%)",
					a.Workers, -delta, prev.Efficiency*100, a.Efficiency*100))
			}
			oldCol := fmt.Sprintf("%.2f ± %.2f", prev.JobsPerSecMean, prev.JobsPerSecSD)
			fmt.Printf("%-16s %16s %16s %9.0f%% %+7.1f%%%s\n", label, oldCol, newCol, a.Efficiency*100, delta, mark)
		}
		if of := oldRep.Fleet; of != nil && !sameHost {
			fmt.Println("  (baseline recorded on a host with a different CPU count; efficiency not compared)")
		}
	}

	// Serving-latency trajectory: when both reports carry a loadtest
	// section recorded under the same schedule, compare per-class p95.
	// Sub-millisecond baselines are skipped the way minSeconds skips
	// instant experiments — a ratio over scheduler jitter is noise. Any
	// SLO violation baked into the fresh report is always a regression.
	if nl := newRep.Loadtest; nl != nil {
		fmt.Printf("\n%-16s %10s %10s %8s\n", "loadtest p95", "old (ms)", "new (ms)", "delta")
		oldP95 := map[string]float64{}
		sameShape := false
		if ol := oldRep.Loadtest; ol != nil && ol.Schedule == nl.Schedule {
			sameShape = true
			for _, c := range ol.Classes {
				oldP95[c.Class] = c.P95Ms
			}
		}
		const minP95Ms = 1.0
		for _, c := range nl.Classes {
			old, ok := oldP95[c.Class]
			if !ok || !sameShape {
				fmt.Printf("%-16s %10s %10.2f %8s\n", c.Class, "-", c.P95Ms, "new")
				continue
			}
			if old < minP95Ms {
				fmt.Printf("%-16s %10.2f %10.2f %8s\n", c.Class, old, c.P95Ms, "(noise)")
				continue
			}
			delta := (c.P95Ms - old) / old * 100
			mark := ""
			if delta > *threshold {
				mark = "  <-- regression"
				regressions = append(regressions, fmt.Sprintf("loadtest %s p95 rose %.0f%% (%.2fms -> %.2fms)",
					c.Class, delta, old, c.P95Ms))
			}
			fmt.Printf("%-16s %10.2f %10.2f %+7.1f%%%s\n", c.Class, old, c.P95Ms, delta, mark)
		}
		for _, v := range nl.Violations {
			regressions = append(regressions, "loadtest SLO violation: "+v)
			fmt.Printf("  SLO VIOLATION: %s\n", v)
		}
	}

	if len(regressions) == 0 {
		fmt.Printf("\nno regressions past %.0f%%\n", *threshold)
		return
	}
	fmt.Printf("\nWARNING: %d experiment(s) regressed past %.0f%%:\n", len(regressions), *threshold)
	for _, r := range regressions {
		fmt.Println("  " + r)
	}
	if *strict {
		os.Exit(1)
	}
	fmt.Println("(non-blocking: timings on shared runners are noisy; pass -strict to enforce)")
}

// rateCol renders the simulated-instructions-per-second column: the
// fresh rate plus its change against the baseline when both reports
// carry one (older baselines predate throughput accounting). Purely
// informational — the cached-vs-simulated mix differs run to run, so
// rate swings are not flagged as regressions.
func rateCol(old, new float64) string {
	if new <= 0 {
		return "-"
	}
	s := humanRate(new)
	if old > 0 {
		s += fmt.Sprintf(" (%+.0f%%)", (new-old)/old*100)
	}
	return s
}

// humanRate renders instructions/second compactly (e.g. 12.3M).
func humanRate(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.1fG", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

func load(path string) (report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestCommitted finds the highest-numbered BENCH_*.json in the current
// directory (the repo root in CI) whose recorded scale matches the fresh
// report's, so only numerically comparable baselines are auto-selected.
func latestCommitted(scale string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no committed BENCH_*.json found (pass -old)")
	}
	sort.Slice(matches, func(i, j int) bool { return benchNum(matches[i]) < benchNum(matches[j]) })
	for i := len(matches) - 1; i >= 0; i-- {
		if rep, err := load(matches[i]); err == nil && rep.Scale == scale {
			return matches[i], nil
		}
	}
	return "", fmt.Errorf("no committed BENCH_*.json recorded at scale %q (found %v; pass -old to force)", scale, matches)
}

func benchNum(name string) int {
	m := benchName.FindStringSubmatch(filepath.Base(name))
	if m == nil {
		return -1
	}
	n, _ := strconv.Atoi(m[1])
	return n
}
