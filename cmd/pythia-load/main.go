// pythia-load drives synthetic traffic at a live pythia-serve and
// grades the result against declared SLOs — the measurement half of the
// serving story: PRs 6–7 made the server survive load, this proves how
// it behaves under it.
//
// Arrivals are open-loop (Poisson around the schedule's instantaneous
// rate): a slow server doesn't slow the generator, it sheds. Schedules:
//
//	pythia-load -schedule constant -rps 50 -duration 30s
//	pythia-load -schedule ramp -rps 5 -rps-to 200 -ramp-over 30s -duration 45s
//	pythia-load -schedule burst -rps 10 -burst-peak 300 -burst-at 10s -burst-for 5s -duration 30s
//	pythia-load -schedule diurnal -rps 50 -amplitude 40 -period 60s -duration 2m
//	pythia-load -schedule replay -replay-file sched.json -duration 1m
//
// Traffic is a weighted mix of request classes (-mix
// "read=0.6,simulate=0.2,train=0.05,policy=0.05,meta=0.1"): hot-key
// store reads (Zipf-skewed via -zipf), store-miss/hit experiment
// launches, policy training, and metadata reads. -prepare seeds the hot
// keys first so a hit storm measures the store, not a 404 storm.
//
// -slo declares per-class bounds ("read:p95ms=50,err=0;simulate:shed=0.2");
// any violation renders in the report and exits nonzero, so a load run
// is CI-gateable. -json writes the load.Report for pythia-bench's
// `loadtest` section and pythia-benchdiff.
//
// Exit codes: 0 pass, 1 SLO violation (or -min-store-hits unmet),
// 2 usage/setup error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pythia/internal/api"
	"pythia/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the pythia-serve instance")
		schedule = flag.String("schedule", "constant", "arrival schedule: constant, ramp, burst, diurnal, replay")
		rps      = flag.Float64("rps", 25, "base arrival rate (constant rate; ramp start; burst/diurnal base)")
		rpsTo    = flag.Float64("rps-to", 0, "ramp end rate")
		rampOver = flag.Duration("ramp-over", 10*time.Second, "ramp length")

		burstPeak = flag.Float64("burst-peak", 0, "burst spike rate")
		burstAt   = flag.Duration("burst-at", 5*time.Second, "burst start offset")
		burstFor  = flag.Duration("burst-for", 5*time.Second, "burst length")

		amplitude = flag.Float64("amplitude", 0, "diurnal sine amplitude")
		period    = flag.Duration("period", time.Minute, "diurnal sine period")

		replayFile = flag.String("replay-file", "", "replay schedule JSON ([{\"at_sec\":0,\"rps\":10},...])")

		duration = flag.Duration("duration", 30*time.Second, "total run length")
		mix      = flag.String("mix", "read=0.6,simulate=0.2,train=0.05,policy=0.05,meta=0.1",
			"request-class weights (read, simulate, train, policy, meta)")
		experiments = flag.String("experiments", "fig14,table2", "comma-separated target experiments (hot keys)")
		workloads   = flag.String("workloads", "mix1", "comma-separated training workloads for the train class")
		scale       = flag.String("scale", "quick", "scale every request targets")
		zipfS       = flag.Float64("zipf", 1.2, "hot-key Zipf skew exponent (>1; higher = hotter head)")
		seed        = flag.Int64("seed", 1, "RNG seed (arrivals + per-request choices)")
		maxInflight = flag.Int("max-inflight", 512, "bound on concurrent outstanding requests")

		prepare   = flag.Bool("prepare", true, "seed target experiments (launch + wait) before measuring")
		waitReady = flag.Duration("wait-ready", 0, "poll /healthz up to this long for the server to come up")

		sloSpec       = flag.String("slo", "", "per-class SLOs, e.g. \"read:p95ms=50,err=0;simulate:shed=0.2\"")
		minStoreHits  = flag.Int64("min-store-hits", 0, "fail unless the run produced at least this many store hits")
		jsonOut       = flag.String("json", "", "write the load.Report as JSON to this file")
		requestExpiry = flag.Duration("request-timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sched, err := buildSchedule(*schedule, *rps, *rpsTo, *rampOver,
		*burstPeak, *burstAt, *burstFor, *amplitude, *period, *replayFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-load:", err)
		return 2
	}

	targets := load.Targets{
		Experiments: splitList(*experiments),
		Workloads:   splitList(*workloads),
		Scale:       *scale,
	}
	if len(targets.Experiments) == 0 {
		fmt.Fprintln(os.Stderr, "pythia-load: -experiments is empty")
		return 2
	}

	var slos map[string]load.SLO
	if *sloSpec != "" {
		if slos, err = load.ParseSLOs(*sloSpec); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-load:", err)
			return 2
		}
	}

	// Seeding retries politely; measurement never retries — the report
	// must show sheds, not hide them behind client backoff.
	prepClient := api.NewClient(*addr)
	loadClient := api.NewClient(*addr, api.WithRetries(0))

	if *waitReady > 0 {
		if err := waitHealthy(ctx, loadClient, *waitReady); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-load:", err)
			return 2
		}
	}

	var prepSims int64
	if *prepare {
		fmt.Fprintf(os.Stderr, "seeding %d hot keys at scale %s...\n", len(targets.Experiments), targets.Scale)
		if prepSims, err = load.Prepare(ctx, prepClient, targets); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-load:", err)
			return 2
		}
	}

	mixClasses, err := load.BuildMix(loadClient, *mix, targets, *zipfS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-load:", err)
		return 2
	}

	fmt.Fprintf(os.Stderr, "driving %s for %s against %s...\n", sched.Name(), *duration, *addr)
	rep, err := load.Run(ctx, load.Config{
		Client:         loadClient,
		Schedule:       sched,
		Duration:       *duration,
		Mix:            mixClasses,
		Seed:           *seed,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *requestExpiry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-load:", err)
		return 2
	}
	rep.PrepareSims = prepSims

	violated := false
	if slos != nil && len(rep.CheckSLOs(slos)) > 0 {
		violated = true
	}
	if *minStoreHits > 0 {
		if rep.Server == nil || rep.Server.StoreHits < *minStoreHits {
			got := int64(0)
			if rep.Server != nil {
				got = rep.Server.StoreHits
			}
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"store hits %d below required minimum %d", got, *minStoreHits))
			violated = true
		}
	}

	fmt.Print(rep.Render())

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-load: write -json:", err)
			return 2
		}
	}

	if violated {
		return 1
	}
	return 0
}

func buildSchedule(kind string, rps, rpsTo float64, rampOver time.Duration,
	burstPeak float64, burstAt, burstFor time.Duration,
	amplitude float64, period time.Duration, replayFile string) (load.Schedule, error) {
	switch kind {
	case "constant":
		return load.Constant{RPS: rps}, nil
	case "ramp":
		if rpsTo <= 0 {
			return nil, fmt.Errorf("ramp schedule needs -rps-to")
		}
		return load.Ramp{From: rps, To: rpsTo, Over: rampOver}, nil
	case "burst":
		if burstPeak <= 0 {
			return nil, fmt.Errorf("burst schedule needs -burst-peak")
		}
		return load.Burst{Base: rps, Peak: burstPeak, At: burstAt, For: burstFor}, nil
	case "diurnal":
		if amplitude <= 0 {
			return nil, fmt.Errorf("diurnal schedule needs -amplitude")
		}
		return load.Diurnal{Base: rps, Amplitude: amplitude, Period: period}, nil
	case "replay":
		if replayFile == "" {
			return nil, fmt.Errorf("replay schedule needs -replay-file")
		}
		return load.ReadReplay(replayFile)
	default:
		return nil, fmt.Errorf("unknown schedule %q (want constant, ramp, burst, diurnal, replay)", kind)
	}
}

func waitHealthy(ctx context.Context, c *api.Client, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := c.Health(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s: %w", c.Base(), limit, err)
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
