// Command pythia-fleet boots a local simulation cluster from one
// binary: a stateless pythia-serve frontend plus an autoscaled tier of
// worker processes (this same binary re-exec'd with -worker), all
// coordinated through a shared job journal. It is the one-command way
// to run the fleet described in DESIGN.md "Fleet architecture":
//
//	pythia-fleet -addr :8080 -journal /tmp/fleet -workers 4
//
// admits jobs over the usual /api/v1 API, scales worker processes with
// demand (to zero when idle, unless -min keeps some warm), requeues the
// jobs of crashed or killed workers, and reports it all at
// GET /api/v1/fleet.
//
//	pythia-fleet -status http://localhost:8080
//
// prints a one-shot human-readable fleet snapshot from a running
// frontend (scaling state, per-worker occupancy) and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"pythia/internal/api"
	"pythia/internal/fleet"
	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "frontend listen address")
		storeDir  = flag.String("results", results.DefaultDir(), "persistent result store directory (shared by all workers)")
		polDir    = flag.String("policies", policy.DefaultDir(), "trained-policy store directory (shared; empty disables)")
		journal   = flag.String("journal", "", "shared job-journal directory (required): the fleet's queue, lease table and worker registry")
		queue     = flag.Int("queue", 16, "max open (non-terminal) jobs across the fleet before admission sheds")
		workers   = flag.Int("workers", 2, "max worker processes")
		minW      = flag.Int("min", 0, "min worker processes to keep warm (0 scales to zero when idle)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations per worker (0 = all CPUs)")
		scaleDown = flag.Duration("scale-down-delay", 15*time.Second, "how long demand must stay low before workers are stopped")
		grace     = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		status    = flag.String("status", "", "print a fleet snapshot from a running frontend at this base URL, then exit")
		worker    = flag.Bool("worker", false, "internal: run as a fleet worker process")
	)
	flag.Parse()

	if *status != "" {
		if err := printStatus(*status); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *journal == "" {
		fmt.Fprintln(os.Stderr, "pythia-fleet: -journal is required (the shared coordination substrate)")
		os.Exit(2)
	}

	logger := obs.NewLogger(*logJSON, obs.ParseLevel(*logLevel))
	harness.SetWorkers(*parallel)
	store := harness.SetResultStore(*storeDir)
	pols := harness.SetPolicyStore(*polDir)

	if *worker {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		jobs, err := serve.RunWorker(ctx, serve.WorkerConfig{
			Store: store, Policies: pols, JournalDir: *journal, Logger: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("worker exiting after %d job(s)\n", jobs)
		return
	}

	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	cluster, err := fleet.StartLocal(fleet.LocalOptions{
		Store:      store,
		Policies:   pols,
		JournalDir: *journal,
		QueueDepth: *queue,
		WorkerCommand: func() *exec.Cmd {
			args := []string{
				"-worker",
				"-journal", *journal,
				"-results", *storeDir,
				"-policies", *polDir,
				"-parallel", strconv.Itoa(*parallel),
				"-log-level", *logLevel,
			}
			if *logJSON {
				args = append(args, "-log-json")
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			return cmd
		},
		Min:            *minW,
		Max:            *workers,
		ScaleDownDelay: *scaleDown,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: cluster.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("pythia-fleet frontend on %s (journal %s, workers %d..%d, queue %d)\n",
		*addr, *journal, *minW, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		cluster.Coord.Close()
		cluster.Server.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("received %v, shutting down (drain budget %v; signal again to abort)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		go func() {
			<-sig
			cancel()
		}()
		httpDone := make(chan struct{})
		go func() {
			defer close(httpDone)
			httpSrv.Shutdown(ctx)
		}()
		cluster.Shutdown(ctx)
		<-httpDone
		cancel()
	}
}

// printStatus renders GET /api/v1/fleet for humans.
func printStatus(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fs, err := api.NewClient(base).Fleet(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: desired %d, ready %d, starting %d | queued %d, in-flight %d\n",
		fs.Desired, fs.Ready, fs.Starting, fs.Queued, fs.InFlight)
	fmt.Printf("cold starts %d (last %.2fs), requeues %d\n",
		fs.ColdStarts, fs.LastColdStartSeconds, fs.Requeues)
	ws := append([]api.FleetWorker(nil), fs.Workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].PID < ws[j].PID })
	for _, w := range ws {
		job := w.Job
		if job == "" {
			job = "-"
		}
		fmt.Printf("  pid %-7d %-9s job %-10s done %-4d sims %-10d up %.0fs  %s\n",
			w.PID, w.State, job, w.Jobs, w.Sims, w.UptimeSeconds, w.Owner)
	}
	return nil
}
