// Command pythia-train manages the trained-policy lifecycle from the
// command line: train a Pythia policy on a workload, persist it in the
// policy store, inspect what is stored, and export envelopes for
// pythia-sim -load-policy.
//
// Usage:
//
//	pythia-train -workload 459.GemsFDTD-100B -config pythia -scale default
//	pythia-train -workload CC-100B -config pythia-strict -store /var/lib/pythia/policies
//	pythia-train -list
//	pythia-train -workload CC-100B -export cc.policy.json
//	pythia-train -server http://localhost:8080 -workload CC-100B -scale quick
//	pythia-train -server http://localhost:8080 -list
//
// Training is idempotent: the policy's content address is derived from
// the configuration, workload, scale and seed, so re-running a command
// against a populated store is a hit that performs zero simulations (the
// printed sims counter proves it). The same store feeds pythia-serve's
// policy endpoints and the harness's warm-start experiments.
//
// With -server, the same commands run against a live pythia-serve
// through the typed v1 API client instead of the in-process harness:
// training submits a job and follows it to completion, -list reads the
// server's policy store, and -export downloads the snapshot bytes and
// reassembles the envelope locally.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pythia/internal/api"
	"pythia/internal/cache"
	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "459.GemsFDTD-100B", "training trace name (see pythia-sim -workloads)")
		cfgName   = flag.String("config", "pythia", "Pythia configuration: pythia|pythia-paper|pythia-strict|pythia-bwobl")
		scaleName = flag.String("scale", "default", "training scale: quick|default|full|long")
		storeDir  = flag.String("store", policy.DefaultDir(), "policy store directory")
		export    = flag.String("export", "", "also write the trained envelope to this file (pythia-sim -load-policy)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = all CPUs)")
		list      = flag.Bool("list", false, "list stored policies and exit")
		server    = flag.String("server", "", "pythia-serve base URL: run the command against a live server via the v1 API instead of in-process")
	)
	flag.Parse()

	if *server != "" {
		os.Exit(runRemote(*server, *workload, *cfgName, *scaleName, *export, *list))
	}

	st := policy.Open(*storeDir)
	if *list {
		metas := st.List()
		if len(metas) == 0 {
			fmt.Printf("no policies in %s\n", st.Dir())
			return
		}
		fmt.Printf("%-22s %-14s %-22s %6s %8s  %s\n", "id", "config", "workload", "seed", "bytes", "created")
		for _, m := range metas {
			fmt.Printf("%-22s %-14s %-22s %6d %8d  %s\n",
				m.ID, m.Config, m.TrainedOn.Workload, m.TrainedOn.Seed, m.SnapshotBytes,
				m.CreatedAt.Format(time.RFC3339))
		}
		return
	}

	harness.SetWorkers(*parallel)
	w, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use pythia-sim -workloads)\n", *workload)
		os.Exit(2)
	}
	cfg, err := harness.PythiaConfigByName(*cfgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc, err := harness.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM abort the training simulation promptly via the context.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ts := harness.TrainSpec{Workload: w, CacheCfg: cache.DefaultConfig(1), Scale: sc, Config: cfg}
	before := harness.SimCount()
	start := time.Now()
	env, hit, err := harness.TrainPolicyIn(ctx, st, ts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sims := harness.SimCount() - before

	source := "trained"
	if hit {
		source = "store hit"
	}
	fmt.Printf("policy %s (%s in %v, %d simulations)\n", env.ID, source, time.Since(start).Round(time.Millisecond), sims)
	fmt.Printf("  config    %s (fingerprint %s)\n", env.Config, env.ConfigFingerprint)
	fmt.Printf("  trained   %s @ scale %s, seed %d\n", env.TrainedOn.Workload, env.TrainedOn.Scale, env.TrainedOn.Seed)
	fmt.Printf("  snapshot  %d bytes (gen v%d, schema v%d)\n", env.SnapshotBytes, env.GenVersion, env.SchemaVersion)
	fmt.Printf("  store     %s (%d policies)\n", st.Dir(), st.Len())

	if *export != "" {
		if err := policy.WriteFile(*export, env); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  exported  %s\n", *export)
	}
}

// runRemote executes the command against a live pythia-serve through the
// typed API client. Training submits a job and follows its event stream
// to a terminal state; the server's sims counter carries the same
// idempotency proof the local path prints (a repeat train is a policy
// store hit with zero simulations).
func runRemote(base, workload, cfgName, scaleName, export string, list bool) int {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	client := api.NewClient(base)

	if list {
		metas, err := client.Policies(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(metas) == 0 {
			fmt.Printf("no policies on %s\n", client.Base())
			return 0
		}
		fmt.Printf("%-22s %-14s %-22s %6s %8s  %s\n", "id", "config", "workload", "seed", "bytes", "created")
		for _, m := range metas {
			fmt.Printf("%-22s %-14s %-22s %6d %8d  %s\n",
				m.ID, m.Config, m.TrainedOn.Workload, m.TrainedOn.Seed, m.SnapshotBytes,
				m.CreatedAt.Format(time.RFC3339))
		}
		return 0
	}

	start := time.Now()
	j, err := client.Launch(ctx, api.LaunchRequest{
		Scale: scaleName,
		Train: &api.TrainRequest{Workload: workload, Config: cfgName},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("submitted %s to %s\n", j.ID, client.Base())
	done, err := client.Events(ctx, j.ID, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if done.Status != api.StatusDone {
		fmt.Fprintf(os.Stderr, "job %s %s: %s\n", done.ID, done.Status, done.Error)
		return 1
	}
	if done.Policy == nil {
		fmt.Fprintf(os.Stderr, "job %s finished without policy metadata\n", done.ID)
		return 1
	}
	m := *done.Policy

	source := "trained"
	if done.Cached {
		source = "store hit"
	}
	fmt.Printf("policy %s (%s in %v, %d simulations)\n", m.ID, source, time.Since(start).Round(time.Millisecond), done.Sims)
	fmt.Printf("  config    %s (fingerprint %s)\n", m.Config, m.ConfigFingerprint)
	fmt.Printf("  trained   %s @ scale %s, seed %d\n", m.TrainedOn.Workload, m.TrainedOn.Scale, m.TrainedOn.Seed)
	fmt.Printf("  snapshot  %d bytes (gen v%d, schema v%d)\n", m.SnapshotBytes, m.GenVersion, m.SchemaVersion)

	if export != "" {
		snap, err := client.PolicySnapshot(ctx, m.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := policy.WriteFile(export, policy.Envelope{Meta: m, Snapshot: snap}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("  exported  %s\n", export)
	}
	return 0
}
