// Command pythia-serve runs the experiment harness as a long-lived HTTP
// service backed by the persistent result store: launch experiments,
// stream their progress, and fetch cached tables without re-simulating.
//
// Usage:
//
//	pythia-serve -addr :8080
//	pythia-serve -addr :8080 -results /var/lib/pythia/results -queue 32 -parallel 8
//
// API:
//
//	GET  /api/experiments            list experiments (paper + extended)
//	POST /api/runs                   {"experiment":"fig9a","scale":"quick"}
//	GET  /api/runs                   list jobs
//	GET  /api/runs/{id}              job status + result
//	GET  /api/runs/{id}/events       SSE progress stream (full replay)
//	GET  /api/results/{exp}?scale=s  fetch a stored result directly
//	GET  /healthz                    service + store health
//
// Repeat requests for an (experiment, scale) pair already in the store
// are answered with zero additional simulation work; the store also feeds
// harness.RunCached, so even a fresh experiment reuses any individual
// simulations earlier runs persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("results", results.DefaultDir(), "persistent result store directory")
		queue    = flag.Int("queue", 16, "max queued (admitted but unstarted) jobs")
		parallel = flag.Int("parallel", 0, "max concurrent simulations per job (0 = all CPUs)")
	)
	flag.Parse()

	harness.SetWorkers(*parallel)
	// One store serves both layers of reuse: whole experiment tables for
	// the service, and individual simulations for harness.RunCached.
	store := harness.SetResultStore(*storeDir)

	srv, err := serve.New(serve.Config{Store: store, QueueDepth: *queue})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("pythia-serve listening on %s (store %s, queue %d, %d workers)\n",
		*addr, store.Dir(), *queue, harness.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}
}
