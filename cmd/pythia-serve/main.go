// Command pythia-serve runs the experiment harness as a long-lived HTTP
// service backed by the persistent result store: launch experiments,
// stream their progress, cancel runs, and fetch cached tables without
// re-simulating.
//
// Usage:
//
//	pythia-serve -addr :8080
//	pythia-serve -addr :8080 -results /var/lib/pythia/results -queue 32 -parallel 8
//	pythia-serve -addr :8080 -journal /var/lib/pythia/journal
//	pythia-serve -addr :8080 -journal /var/lib/pythia/journal -fleet 4
//	pythia-serve -worker -journal /var/lib/pythia/journal
//
// API (v1; see DESIGN.md "API v1" and the typed client in internal/api):
//
//	GET    /api/v1/experiments            list experiments (paper + extended)
//	POST   /api/v1/runs                   {"experiment":"fig9a","scale":"quick"}
//	                                      or a policy-training job:
//	                                      {"train":{"workload":"CC-100B",
//	                                      "config":"pythia"},"scale":"default"}
//	GET    /api/v1/runs                   list jobs
//	GET    /api/v1/runs/{id}              job status + result
//	DELETE /api/v1/runs/{id}              cancel a queued or running job; its
//	                                      SSE stream ends with a terminal
//	                                      "canceled" event and in-flight
//	                                      simulations abort at the next
//	                                      chunk boundary
//	GET    /api/v1/runs/{id}/events       SSE progress stream (full replay)
//	GET    /api/v1/results/{exp}?scale=s  fetch a stored result directly
//	GET    /api/v1/policies               list trained policies (metadata)
//	GET    /api/v1/policies/{id}          one policy's envelope metadata
//	GET    /api/v1/policies/{id}/snapshot download the raw PYQV01 Q-table
//	GET    /api/v1/fleet                  fleet status (workers, scaling) —
//	                                      503 on a standalone server
//	GET    /healthz                       service + store health (unversioned)
//	GET    /metrics                       Prometheus text exposition (queue
//	                                      depth, job latency histograms,
//	                                      store hit/miss, retry/breaker
//	                                      counters, instructions/sec)
//
// Routes answer only under /api/v1 (the unversioned legacy aliases
// completed their deprecation window and now 404). Every non-2xx
// response is the api.Error JSON envelope ({"error":{"code","message",
// "retryable","retry_after_seconds"}}); 503s additionally set
// Retry-After.
//
// With -pprof, the net/http/pprof profiling endpoints are mounted under
// /debug/pprof/ (see the EXPERIMENTS.md profiling recipe). Structured
// logs (job admission, dispatch, retries, terminal states) go to stderr;
// -log-json switches them to JSON, -log-level debug|info|warn|error
// filters them.
//
// Training jobs flow through the same queue and SSE machinery as
// experiments; a repeat training request for a policy already in the
// store completes with zero simulations (the job's sims counter proves
// it), and warm-started evaluations reuse stored policies the same way.
//
// Repeat requests for an (experiment, scale) pair already in the store
// are answered with zero additional simulation work; the store also feeds
// harness.RunCached, so even a fresh experiment reuses any individual
// simulations earlier runs persisted.
//
// Failures stay scoped to one job: the simulation stack reports errors as
// values (a corrupted trace-cache file fails that run with a terminal
// "error" event while the process keeps serving). SIGINT/SIGTERM trigger
// a graceful shutdown — admission closes, queued jobs drain, and after
// the grace period whatever is still running is canceled.
//
// With -journal set, every accepted job is also persisted to a
// crash-recovery journal: a killed or crashed process requeues its
// queued and orphaned-running jobs on the next start (at-least-once
// execution — the content-addressed stores make re-execution
// idempotent). Transient store failures are retried with jittered
// backoff; a persistently failing store opens a circuit breaker that
// sheds new simulation jobs with 503 + Retry-After while store hits
// keep being served (degraded read-only mode, visible in /healthz).
//
// Fleet mode (-fleet N, requires -journal) turns this process into a
// stateless frontend plus a coordinator that autoscales up to N worker
// processes (this same binary re-exec'd with -worker). The frontend
// journals admissions and serves the API; workers claim and execute
// jobs through the shared journal's lease protocol; the coordinator
// reaps dead workers' claims so their jobs requeue. -fleet-min 0 (the
// default) scales to zero when idle. See DESIGN.md "Fleet architecture".
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"pythia/internal/fleet"
	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("results", results.DefaultDir(), "persistent result store directory")
		polDir   = flag.String("policies", policy.DefaultDir(), "trained-policy store directory (empty disables the policy endpoints)")
		queue    = flag.Int("queue", 16, "max queued (admitted but unstarted) jobs")
		parallel = flag.Int("parallel", 0, "max concurrent simulations per job (0 = all CPUs)")
		grace    = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget for draining queued jobs before canceling them")
		journal  = flag.String("journal", "", "job-journal directory; accepted jobs survive crashes and are requeued on restart (empty disables)")
		withProf = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling is opt-in; see EXPERIMENTS.md)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")

		workerMode = flag.Bool("worker", false, "run as a fleet worker: no HTTP, drain leased jobs from -journal until SIGTERM")
		fleetMax   = flag.Int("fleet", 0, "local cluster mode: dispatch-only frontend plus up to N autoscaled worker processes (requires -journal)")
		fleetMin   = flag.Int("fleet-min", 0, "minimum fleet workers to keep warm (0 scales to zero when idle)")
		scaleDown  = flag.Duration("scale-down-delay", 15*time.Second, "how long fleet demand must stay low before workers are stopped")
	)
	flag.Parse()

	logger := obs.NewLogger(*logJSON, obs.ParseLevel(*logLevel))
	harness.SetWorkers(*parallel)
	// One store serves both layers of reuse: whole experiment tables for
	// the service, and individual simulations for harness.RunCached. The
	// policy store is wired into the harness too, so warm-start
	// experiments (ext-generalization, ext-warmstart) reuse trained
	// policies across jobs and restarts.
	store := harness.SetResultStore(*storeDir)
	pols := harness.SetPolicyStore(*polDir)

	if *workerMode {
		runWorker(store, pols, *journal, logger)
		return
	}

	var srv *serve.Server
	var cluster *fleet.Local
	if *fleetMax > 0 {
		if *journal == "" {
			fmt.Fprintln(os.Stderr, "pythia-serve: -fleet requires -journal (the shared coordination substrate)")
			os.Exit(2)
		}
		var err error
		cluster, err = fleet.StartLocal(fleet.LocalOptions{
			Store:          store,
			Policies:       pols,
			JournalDir:     *journal,
			QueueDepth:     *queue,
			WorkerCommand:  workerCommand(*journal, *storeDir, *polDir, *parallel, *logJSON, *logLevel),
			Min:            *fleetMin,
			Max:            *fleetMax,
			ScaleDownDelay: *scaleDown,
			Logger:         logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		srv = cluster.Server
	} else {
		var err error
		srv, err = serve.New(serve.Config{Store: store, Policies: pols, QueueDepth: *queue, JournalDir: *journal, Logger: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Printf("recovered %d journaled job(s) from %s\n", n, *journal)
	}

	handler := srv.Handler()
	if *withProf {
		// Compose the API with the profiling endpoints: pprof stays opt-in
		// because it exposes goroutine dumps and heap contents.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	polDesc := "disabled"
	if pols != nil {
		polDesc = pols.Dir()
	}
	if cluster != nil {
		fmt.Printf("pythia-serve fleet frontend on %s (journal %s, workers %d..%d, queue %d)\n",
			*addr, *journal, *fleetMin, *fleetMax, *queue)
	} else {
		fmt.Printf("pythia-serve listening on %s (store %s, policies %s, queue %d, %d workers)\n",
			*addr, store.Dir(), polDesc, *queue, harness.Workers())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if cluster != nil {
			cluster.Coord.Close()
		}
		srv.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("received %v, shutting down (drain budget %v; signal again to abort)\n", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		go func() {
			// A second signal skips the drain: cancel everything now.
			<-sig
			cancel()
		}()
		// Drain the job queue and wind down HTTP concurrently, both under
		// the same grace context: SSE streams of running jobs only end when
		// their jobs turn terminal, which is exactly what the drain (or its
		// abort) produces — sequencing them would deadlock the grace budget.
		httpDone := make(chan struct{})
		go func() {
			defer close(httpDone)
			httpSrv.Shutdown(ctx)
		}()
		if cluster != nil {
			cluster.Shutdown(ctx)
		} else {
			srv.Shutdown(ctx)
		}
		<-httpDone
		cancel()
	}
}

// runWorker is the -worker mode body: drain the shared journal through
// the serve execution engine until SIGTERM/SIGINT, then exit cleanly
// (releasing any in-flight claim so the job requeues).
func runWorker(store *results.Store, pols *policy.Store, journalDir string, logger *slog.Logger) {
	if journalDir == "" {
		fmt.Fprintln(os.Stderr, "pythia-serve: -worker requires -journal")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	jobs, err := serve.RunWorker(ctx, serve.WorkerConfig{
		Store:      store,
		Policies:   pols,
		JournalDir: journalDir,
		Logger:     logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("worker exiting after %d job(s)\n", jobs)
}

// workerCommand builds the re-exec command for one fleet worker: this
// same binary in -worker mode, inheriting the shared stores, journal and
// logging setup. Worker output is interleaved onto the frontend's
// stderr (one machine, one terminal — a local cluster, not a daemon).
func workerCommand(journalDir, storeDir, polDir string, parallel int, logJSON bool, logLevel string) func() *exec.Cmd {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	return func() *exec.Cmd {
		args := []string{
			"-worker",
			"-journal", journalDir,
			"-results", storeDir,
			"-policies", polDir,
			"-parallel", strconv.Itoa(parallel),
			"-log-level", logLevel,
		}
		if logJSON {
			args = append(args, "-log-json")
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	}
}
