// Package pythia_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper (printing the
// regenerated rows on first run), micro-benchmarks of the hot paths (see
// PERF.md for what each one measures and the recorded trajectory), and
// ablation benches for the design choices called out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benches execute at ScaleQuick so the full suite finishes in
// minutes; use cmd/pythia-bench -scale default (optionally -parallel N
// and -json BENCH_<pr>.json) for the EXPERIMENTS.md numbers.
package pythia_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/cpu"
	"pythia/internal/dram"
	"pythia/internal/harness"
	"pythia/internal/prefetch"
	"pythia/internal/stats"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

var printOnce sync.Map // experiment id -> *sync.Once

// benchExperiment runs one paper experiment per iteration (cached runs make
// repeat iterations cheap) and prints the regenerated table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var table *stats.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = exp.Run(context.Background(), harness.ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
	}
	onceAny, _ := printOnce.LoadOrStore(id, &sync.Once{})
	onceAny.(*sync.Once).Do(func() {
		fmt.Println()
		fmt.Println(table.Render())
	})
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)  { benchExperiment(b, "fig8d") }
func BenchmarkFig9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }

// --- Micro-benchmarks of the hot paths ---

// streamAccesses pre-builds a training stream.
func streamAccesses(n int) []prefetch.Access {
	out := make([]prefetch.Access, n)
	line := uint64(1 << 22)
	for i := range out {
		out[i] = prefetch.Access{PC: 0x400 + uint64(i%8)*4, Line: line, Cycle: int64(i)}
		line++
	}
	return out
}

func BenchmarkPythiaTrain(b *testing.B) {
	p := core.MustNew(core.BasicConfig(), prefetch.NilSystem())
	acc := streamAccesses(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range p.Train(acc[i%len(acc)]) {
			p.Fill(c)
		}
	}
}

func BenchmarkQVStoreSearch(b *testing.B) {
	cfg := core.BasicConfig()
	qv := core.NewQVStore(cfg.Features, cfg.FeatureDim, len(cfg.Actions), cfg.PlanesPerVault, cfg.InitQ(), 1)
	st := core.State{PC: 0x400, Delta: 3}
	sig := qv.Signature(&st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qv.ArgmaxQ(sig)
	}
}

// BenchmarkQVStoreSearchResolved measures the search alone, with the
// signature's row offsets resolved once up front — the exact shape of the
// agent's hot path, where one resolve serves the lookup, the search and
// the eventual SARSA update.
func BenchmarkQVStoreSearchResolved(b *testing.B) {
	cfg := core.BasicConfig()
	qv := core.NewQVStore(cfg.Features, cfg.FeatureDim, len(cfg.Actions), cfg.PlanesPerVault, cfg.InitQ(), 1)
	st := core.State{PC: 0x400, Delta: 3}
	rs := qv.NewResolvedSig()
	qv.ResolveState(&st, &rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qv.ArgmaxQResolved(&rs)
	}
}

func BenchmarkQVStoreUpdate(b *testing.B) {
	cfg := core.BasicConfig()
	qv := core.NewQVStore(cfg.Features, cfg.FeatureDim, len(cfg.Actions), cfg.PlanesPerVault, cfg.InitQ(), 1)
	st := core.State{PC: 0x400, Delta: 3}
	sig := qv.Signature(&st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qv.Update(sig, i%16, 12, sig, (i+1)%16, cfg.Alpha, cfg.Gamma)
	}
}

// TestPythiaTrainAllocationFree asserts the training hot path stays
// allocation-free in steady state (the EQ and the agent's reused buffers
// absorb everything); the ISSUE budget is <= 2 allocs/op.
func TestPythiaTrainAllocationFree(t *testing.T) {
	p := core.MustNew(core.BasicConfig(), prefetch.NilSystem())
	acc := streamAccesses(4096)
	// Warm up: fill the EQ and grow every reusable buffer to steady state.
	for i := 0; i < 8192; i++ {
		for _, c := range p.Train(acc[i%len(acc)]) {
			p.Fill(c)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		for _, c := range p.Train(acc[i%len(acc)]) {
			p.Fill(c)
		}
		i++
	})
	if avg > 2 {
		t.Errorf("Pythia.Train allocates %.2f times/op, want <= 2", avg)
	}
}

// TestQVStoreSearchAllocationFree pins the resolve+search path at zero
// allocations.
func TestQVStoreSearchAllocationFree(t *testing.T) {
	cfg := core.BasicConfig()
	qv := core.NewQVStore(cfg.Features, cfg.FeatureDim, len(cfg.Actions), cfg.PlanesPerVault, cfg.InitQ(), 1)
	st := core.State{PC: 0x400, Delta: 3}
	rs := qv.NewResolvedSig()
	avg := testing.AllocsPerRun(1000, func() {
		qv.ResolveState(&st, &rs)
		qv.ArgmaxQResolved(&rs)
	})
	if avg != 0 {
		t.Errorf("resolve+search allocates %.2f times/op, want 0", avg)
	}
}

func BenchmarkSPPTrain(b *testing.B) {
	p := prefetch.NewSPP(prefetch.DefaultSPPConfig())
	acc := streamAccesses(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Train(acc[i%len(acc)])
	}
}

func BenchmarkBingoTrain(b *testing.B) {
	p := prefetch.NewBingo(prefetch.DefaultBingoConfig())
	acc := streamAccesses(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Train(acc[i%len(acc)])
	}
}

func BenchmarkMLOPTrain(b *testing.B) {
	p := prefetch.NewMLOP(prefetch.DefaultMLOPConfig())
	acc := streamAccesses(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Train(acc[i%len(acc)])
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := cache.NewHierarchy(cache.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycle int64
	for i := 0; i < b.N; i++ {
		cycle = h.Access(0, 0x400, uint64(i%100000)*64+1<<30, false, cycle)
	}
}

func BenchmarkDRAMRead(b *testing.B) {
	c := dram.NewController(dram.DDR4_2400(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint64(i%100000), int64(i)*4)
	}
}

func BenchmarkTraceGen(b *testing.B) {
	w, ok := trace.ByName("482.sphinx3-100B")
	if !ok {
		b.Fatal("missing workload")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := w.Generate(10_000)
		if len(t.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// --- Trace-delivery benches (streaming vs materialized, PERF.md) ---

// benchDrainReader measures record-delivery throughput of an opened
// reader, reporting records per wall second.
func benchDrainReader(b *testing.B, open func() trace.Reader, n int) {
	b.Helper()
	b.ResetTimer()
	var recs int64
	for i := 0; i < b.N; i++ {
		r := open()
		count := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			count++
		}
		if c, ok := r.(interface{ Close() error }); ok {
			c.Close()
		}
		if count != n {
			b.Fatalf("drained %d records, want %d", count, n)
		}
		recs += int64(count)
	}
	b.ReportMetric(float64(recs)/b.Elapsed().Seconds(), "recs/s")
}

const benchTraceLen = 400_000

// BenchmarkTraceDeliveryMaterialized is the seed architecture: generate
// the whole []Record up front (outside the timed loop, matching the
// harness trace cache), then replay it from memory.
func BenchmarkTraceDeliveryMaterialized(b *testing.B) {
	w, _ := trace.ByName("459.GemsFDTD-100B")
	tr := w.Generate(benchTraceLen)
	benchDrainReader(b, func() trace.Reader { return trace.NewSliceReader(tr.Records) }, benchTraceLen)
}

// BenchmarkTraceDeliveryGenStream streams the generator through the chunk
// pipeline: generation cost is on the producer goroutine, overlapping the
// consumer.
func BenchmarkTraceDeliveryGenStream(b *testing.B) {
	w, _ := trace.ByName("459.GemsFDTD-100B")
	src := &stream.GenSource{W: w, N: benchTraceLen}
	benchDrainReader(b, func() trace.Reader {
		r, err := src.Open()
		if err != nil {
			b.Fatal(err)
		}
		return r
	}, benchTraceLen)
}

// BenchmarkTraceDeliveryFileStream streams a cached on-disk trace through
// the chunk pipeline — the harness's ScaleLong path.
func BenchmarkTraceDeliveryFileStream(b *testing.B) {
	w, _ := trace.ByName("459.GemsFDTD-100B")
	cache := stream.NewCache(b.TempDir())
	src, err := cache.Source(context.Background(), w, benchTraceLen, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchDrainReader(b, func() trace.Reader {
		r, err := src.Open()
		if err != nil {
			b.Fatal(err)
		}
		return r
	}, benchTraceLen)
}

// BenchmarkSimulatorEndToEndStreaming is BenchmarkSimulatorEndToEnd with
// streamed trace delivery, so the pipeline's overhead (or overlap win)
// shows up against the materialized number below.
func BenchmarkSimulatorEndToEndStreaming(b *testing.B) {
	w, _ := trace.ByName("459.GemsFDTD-100B")
	src := &stream.GenSource{W: w, N: 100_000}
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		h, err := cache.NewHierarchy(cache.DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		h.AttachPrefetcher(0, core.MustNew(core.BasicConfig(), h))
		r, err := src.Open()
		if err != nil {
			b.Fatal(err)
		}
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Core:               cpu.DefaultCoreConfig(),
			WarmupInstructions: 100_000,
			SimInstructions:    500_000,
		}, h, []trace.Reader{r})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		sys.Close()
		instr += sys.Cores[0].MeasuredInstructions()
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSimulatorEndToEnd reports whole-simulator throughput in
// simulated instructions per wall second.
func BenchmarkSimulatorEndToEnd(b *testing.B) {
	w, _ := trace.ByName("459.GemsFDTD-100B")
	tr := w.Generate(100_000)
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		h, err := cache.NewHierarchy(cache.DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		h.AttachPrefetcher(0, core.MustNew(core.BasicConfig(), h))
		sys, err := cpu.NewSystem(cpu.SystemConfig{
			Core:               cpu.DefaultCoreConfig(),
			WarmupInstructions: 100_000,
			SimInstructions:    500_000,
		}, h, []trace.Reader{trace.NewSliceReader(tr.Records)})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		instr += sys.Cores[0].MeasuredInstructions()
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// --- Ablation benches (DESIGN.md design-choice studies) ---

// ablationSpeedup measures Pythia's geomean speedup over three
// representative workloads under a config mutation.
func ablationSpeedup(b *testing.B, mutate func(*core.Config), label string) {
	b.Helper()
	cfg := cache.DefaultConfig(1)
	sc := harness.ScaleQuick
	var sp []float64
	for i := 0; i < b.N; i++ {
		sp = sp[:0]
		for _, name := range []string{"459.GemsFDTD-100B", "410.bwaves-100B", "CC-100B"} {
			w, ok := trace.ByName(name)
			if !ok {
				b.Fatal("missing workload")
			}
			c := core.BasicConfig()
			mutate(&c)
			c.Name = "pythia-" + label
			mix := trace.Mix{Name: w.Name, Workloads: []trace.Workload{w}}
			v, err := harness.SpeedupOn(context.Background(), mix, cfg, sc, harness.PythiaPF(c))
			if err != nil {
				b.Fatal(err)
			}
			sp = append(sp, v)
		}
	}
	g := stats.Geomean(sp)
	b.ReportMetric(g, "speedup")
	onceAny, _ := printOnce.LoadOrStore("abl-"+label, &sync.Once{})
	onceAny.(*sync.Once).Do(func() {
		fmt.Printf("[ablation %-22s] geomean speedup %.3f\n", label, g)
	})
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) {}, "basic")
}

func BenchmarkAblationPlanes1(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) { c.PlanesPerVault = 1 }, "planes1")
}

func BenchmarkAblationPlanes2(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) { c.PlanesPerVault = 2 }, "planes2")
}

func BenchmarkAblationEQ64(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) { c.EQSize = 64 }, "eq64")
}

func BenchmarkAblationEQ1024(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) { c.EQSize = 1024 }, "eq1024")
}

func BenchmarkAblationNoDynDegree(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) { c.DynDegree = false }, "nodyndegree")
}

func BenchmarkAblationFullActionList(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) {
		// Unpruned action space [-63, 63] (§4.3.2 motivates pruning).
		var acts []int
		for d := -63; d <= 63; d++ {
			acts = append(acts, d)
		}
		c.Actions = acts
	}, "fullactions")
}

func BenchmarkAblationSingleFeature(b *testing.B) {
	ablationSpeedup(b, func(c *core.Config) {
		c.Features = []core.Feature{core.FeaturePCDelta}
	}, "pcdeltaonly")
}

// --- Extended-study benches (design-space methods and ablations) ---

func BenchmarkExtPruning(b *testing.B)    { benchExperiment(b, "ext-pruning") }
func BenchmarkExtAutoTune(b *testing.B)   { benchExperiment(b, "ext-autotune") }
func BenchmarkExtFDP(b *testing.B)        { benchExperiment(b, "ext-fdp") }
func BenchmarkExtXlat(b *testing.B)       { benchExperiment(b, "ext-xlat") }
func BenchmarkExtFixedPoint(b *testing.B) { benchExperiment(b, "ext-fixedpoint") }

func BenchmarkScorecard(b *testing.B) { benchExperiment(b, "scorecard") }
