#!/bin/sh
# ci.sh — the repo's verification gate: vet, build, full tests, and a
# short QVStore benchmark smoke so hot-path perf regressions fail loudly
# (the benchmark run also executes the allocation-budget tests).
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (worker pool + stream pipeline + trace io) =="
# The repo's concurrency lives in the harness worker pool/singleflights
# and the stream chunk pipeline / trace-cache population; run those
# packages under the race detector.
go test -race ./internal/harness/... ./internal/stream/... ./internal/trace/...

echo "== bench smoke (QVStore hot path) =="
go test -run='AllocationFree' -bench='QVStore' -benchtime=100x -benchmem .

echo "CI OK"
