#!/bin/sh
# ci.sh — the repo's tiered verification gate.
#
#   ci.sh quick   fmt + vet + build + full tests (the tier-1 gate)
#   ci.sh chaos   the fault-injection and crash-recovery suite under the
#                 race detector: every failpoint armed, a worker process
#                 SIGKILLed mid-job, journal recovery replayed
#   ci.sh fleet   the multi-process worker tier: fleet package tests
#                 (autoscaler tables, coordinator SIGKILL chaos) under
#                 -race, then a live 3-worker cluster driven by
#                 pythia-load while one worker is SIGKILLed mid-storm —
#                 the storm must meet its SLOs and no admitted job may
#                 be lost
#   ci.sh full    quick + chaos, plus the race detector over every
#                 concurrent subsystem, a QVStore benchmark smoke so
#                 hot-path perf regressions fail loudly (the benchmark
#                 run also executes the allocation-budget tests), and a
#                 load smoke: pythia-load drives a live pythia-serve
#                 under SLOs and proves the store absorbs repeat traffic
#
# With no argument, full runs (unchanged historical behavior).
set -eu

cd "$(dirname "$0")"

tier="${1:-full}"
case "$tier" in
quick | chaos | fleet | full) ;;
*)
    echo "usage: ci.sh [quick|chaos|fleet|full]" >&2
    exit 2
    ;;
esac

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [ "$tier" != chaos ] && [ "$tier" != fleet ]; then
    echo "== go test =="
    go test ./...
fi

echo "== no-new-panics gate (error-propagation model) =="
# The simulation stack reports failures as values (DESIGN.md "Error model
# and cancellation"); a panic() reappearing outside tests in these
# packages is a regression of that model. Allow-list: the fault
# registry's deliberate injected panic (tagged "fault: injected panic"),
# which exists so chaos tests can simulate crashes.
panics=$(grep -rn 'panic(' internal/stream internal/harness internal/serve internal/cpu internal/policy internal/fault \
    --include='*.go' | grep -v '_test\.go' | grep -v 'fault: injected panic' || true)
if [ -n "$panics" ]; then
    echo "panic() on an error-propagation hot path:" >&2
    echo "$panics" >&2
    exit 1
fi

echo "== single-fault-framework gate =="
# All fault injection goes through internal/fault's registry (DESIGN.md
# "Fault model and recovery"). A package growing a private failpoint
# mechanism again — the pre-registry state — fails here.
private_fps=$(grep -rnE '(func|var)( \([^)]*\))? [Ff]ailpoint' internal cmd examples \
    --include='*.go' | grep -v '^internal/fault/' || true)
if [ -n "$private_fps" ]; then
    echo "private failpoint mechanism outside internal/fault:" >&2
    echo "$private_fps" >&2
    exit 1
fi

echo "== fused-kernel gate (no per-record reader calls) =="
# The hot loop consumes trace columns via Reader.NextChunk; the only
# per-record reader.Next() caller in internal/cpu is the compatibility
# shim (shim.go), kept for bit-identity cross-checks. A Next() call
# reappearing elsewhere means the fused SoA path regressed to
# record-at-a-time consumption (PERF.md "Batched SoA kernel").
per_record=$(grep -rn '\.Next(' internal/cpu --include='*.go' |
    grep -v '_test\.go' | grep -v '^internal/cpu/shim\.go:' || true)
if [ -n "$per_record" ]; then
    echo "per-record reader.Next() outside the shim in internal/cpu:" >&2
    echo "$per_record" >&2
    exit 1
fi

echo "== error-envelope gate (unified API errors) =="
# Every non-2xx serve response is the api.Error JSON envelope, written
# through writeError (DESIGN.md "API v1"). A raw http.Error reappearing
# in the serving layer would hand clients an untyped text/plain error
# with no code, no Retryable, no Retry-After contract.
raw_errors=$(grep -rn 'http\.Error(' internal/serve --include='*.go' |
    grep -v '_test\.go' || true)
if [ -n "$raw_errors" ]; then
    echo "http.Error() in internal/serve (use writeError + api.Errorf):" >&2
    echo "$raw_errors" >&2
    exit 1
fi

echo "== route-metrics gate (telemetry coverage) =="
# Every serve route must flow through the Server.route() helper so it
# gets a per-route pythia_http_requests_total counter (DESIGN.md
# "Observability"). A bare mux.HandleFunc registration outside the
# helper — recognizable by the missing "route-metrics-allow" marker on
# the wrapping closure — would silently drop that route from /metrics.
unrouted=$(grep -rn 'mux\.HandleFunc(' internal/serve --include='*.go' |
    grep -v '_test\.go' | grep -v 'route-metrics-allow' || true)
if [ -n "$unrouted" ]; then
    echo "serve route registered without the route() metrics helper:" >&2
    echo "$unrouted" >&2
    echo "(register through Server.route(), or tag the closure with // route-metrics-allow)" >&2
    exit 1
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck (not installed, skipped; CI runs it) =="
fi

if [ "$tier" = chaos ] || [ "$tier" = full ]; then
    echo "== chaos tier: fault injection + crash recovery under -race =="
    # The durable-execution invariants (ISSUE: crash-recoverable queue,
    # lease-based retry, breakers): failpoints at every store write and
    # the trace decoder, a SIGKILLed worker subprocess, journal recovery
    # replayed from snapshots — all under the race detector.
    go test -race ./internal/fault/...
    go test -race -run 'Chaos|Journal|Fault|Breaker|Failpoint|Sweep' \
        ./internal/serve/... ./internal/fsutil/... \
        ./internal/stream/... ./internal/results/... ./internal/policy/...
fi

if [ "$tier" = fleet ]; then
    echo "== fleet tier: worker processes, autoscaler, claim protocol under -race =="
    # The fleet invariants (ISSUE: sharded simulation fleet): the
    # table-driven autoscaler policy, the coordinator SIGKILLing a real
    # worker subprocess mid-job with requeue-to-survivor and
    # no-duplicate-simulation proofs, and the multi-worker journal
    # contention sweep — all under the race detector.
    go test -race ./internal/fleet/...
    go test -race -run 'MultiWorker|Claim|Renew|Reap|OwnerID|WorkerHeartbeat|FleetJournal' ./internal/serve/...

    echo "== fleet smoke (3-worker cluster survives a SIGKILL mid-storm) =="
    # Boot a real fleet — dispatch frontend plus three worker processes
    # over a shared journal — drive a mixed storm through pythia-load,
    # and SIGKILL one worker while the storm runs. The storm must meet
    # its SLOs (exit 0), every admitted job must reach a terminal state
    # with none erroring (zero lost jobs), and the coordinator must
    # respawn back to three ready workers.
    smoke=$(mktemp -d)
    go build -o "$smoke/pythia-serve" ./cmd/pythia-serve
    go build -o "$smoke/pythia-load" ./cmd/pythia-load
    "$smoke/pythia-serve" -addr 127.0.0.1:18742 \
        -results "$smoke/results" -policies "$smoke/policies" \
        -journal "$smoke/journal" -fleet 3 -fleet-min 3 -queue 64 \
        >"$smoke/serve.log" 2>&1 &
    serve_pid=$!
    load_status=0
    "$smoke/pythia-load" -addr http://127.0.0.1:18742 -wait-ready 30s \
        -schedule constant -rps 25 -duration 8s -scale quick \
        -experiments fig14,table2 -mix "read=0.7,meta=0.2,simulate=0.1" \
        -slo "read:p95ms=1000,err=0;simulate:err=0" \
        -json "$smoke/fleetload.json" >"$smoke/load.log" 2>&1 &
    load_pid=$!
    # Let the storm ramp, then kill one worker process out from under it.
    sleep 4
    victim=$(curl -fsS http://127.0.0.1:18742/api/v1/fleet |
        python3 -c 'import json,sys; ws=json.load(sys.stdin)["fleet"]["workers"]; busy=[w["pid"] for w in ws if w.get("state")=="busy"]; anyw=[w["pid"] for w in ws if w.get("pid")]; print((busy or anyw or [0])[0])')
    if [ "$victim" -gt 0 ]; then
        echo "SIGKILLing worker pid $victim mid-storm"
        kill -9 "$victim" || true
    else
        echo "no worker pid visible to kill" >&2
        kill "$serve_pid" "$load_pid" 2>/dev/null || true
        rm -rf "$smoke"
        exit 1
    fi
    wait "$load_pid" || load_status=$?
    if [ "$load_status" -ne 0 ]; then
        echo "fleet load storm failed (exit $load_status):" >&2
        tail -30 "$smoke/load.log" >&2
        tail -20 "$smoke/serve.log" >&2
        kill "$serve_pid" 2>/dev/null || true
        rm -rf "$smoke"
        exit 1
    fi
    # Zero lost jobs: every admitted job must reach a terminal state and
    # none may end in error; the fleet must be back at 3 ready workers.
    fleet_ok=0
    for i in $(seq 1 120); do
        if curl -fsS http://127.0.0.1:18742/api/v1/runs |
            python3 -c '
import json, sys
jobs = json.load(sys.stdin)["jobs"]
open_jobs = [j["id"] for j in jobs if j["status"] not in ("done", "error", "canceled")]
errored = [j["id"] for j in jobs if j["status"] == "error"]
if errored:
    print("jobs lost to error:", errored, file=sys.stderr)
    sys.exit(2)
sys.exit(1 if open_jobs else 0)'; then
            fleet_ok=1
            break
        fi
        sleep 1
    done
    ready=$(curl -fsS http://127.0.0.1:18742/api/v1/fleet |
        python3 -c 'import json,sys; print(json.load(sys.stdin)["fleet"]["ready"])')
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    if [ "$fleet_ok" -ne 1 ]; then
        echo "fleet smoke: jobs stuck open or errored after the kill; server log:" >&2
        tail -30 "$smoke/serve.log" >&2
        rm -rf "$smoke"
        exit 1
    fi
    if [ "$ready" -lt 3 ]; then
        echo "fleet smoke: coordinator never respawned to 3 ready workers (ready=$ready)" >&2
        tail -30 "$smoke/serve.log" >&2
        rm -rf "$smoke"
        exit 1
    fi
    echo "fleet smoke OK: storm met SLOs, zero lost jobs, fleet respawned to $ready workers"
    rm -rf "$smoke"
fi

if [ "$tier" = full ]; then
    echo "== go test -race (worker pool + stream pipeline + trace io + result/policy stores + serve/cancellation) =="
    # The repo's concurrency lives in the harness worker pool/singleflights,
    # the stream chunk pipeline / trace-cache population, the persistent
    # result and policy stores, the serving layer's queue/SSE fan-out (now
    # including POST-able training jobs), and the cancellation paths
    # threading contexts through cpu/harness/serve; run those packages
    # under the race detector.
    go test -race ./internal/harness/... ./internal/stream/... ./internal/trace/... \
        ./internal/results/... ./internal/policy/... ./internal/serve/... \
        ./internal/flight/... ./internal/cpu/...

    echo "== batch bit-identity under -race (fused kernel vs shim, worker counts) =="
    # The fused SoA kernel must stay bit-identical to the record-at-a-time
    # shim at every chunk edge and chunk size, and experiment results must
    # not depend on worker count. These run inside the package sweeps above
    # too; the explicit invocation keeps the invariant visible and failing
    # on its own line.
    go test -race -run 'BatchedMatchesShim|BatchedChunkSizeInvariance|DeterministicAcrossWorkerCounts' \
        ./internal/cpu/... ./internal/harness/...

    echo "== bench smoke (QVStore hot path) =="
    go test -run='AllocationFree' -bench='QVStore' -benchtime=100x -benchmem .

    echo "== load smoke (pythia-load vs live pythia-serve) =="
    # Boot a real pythia-serve subprocess, seed its result store, and
    # drive a short constant-RPS mixed storm through cmd/pythia-load:
    # zero SLO violations required, and the store must absorb repeat
    # traffic (-min-store-hits proves hits climbed during the run).
    smoke=$(mktemp -d)
    go build -o "$smoke/pythia-serve" ./cmd/pythia-serve
    go build -o "$smoke/pythia-load" ./cmd/pythia-load
    "$smoke/pythia-serve" -addr 127.0.0.1:18741 \
        -results "$smoke/results" -policies "$smoke/policies" \
        >"$smoke/serve.log" 2>&1 &
    serve_pid=$!
    load_status=0
    "$smoke/pythia-load" -addr http://127.0.0.1:18741 -wait-ready 15s \
        -schedule constant -rps 25 -duration 5s -scale quick \
        -experiments fig14,table2 -mix "read=0.7,meta=0.2,simulate=0.1" \
        -slo "read:p95ms=1000,err=0;simulate:err=0" -min-store-hits 1 \
        -json "$smoke/loadtest.json" || load_status=$?
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    if [ "$load_status" -ne 0 ]; then
        echo "load smoke failed (exit $load_status); server log:" >&2
        tail -20 "$smoke/serve.log" >&2
        rm -rf "$smoke"
        exit 1
    fi
    rm -rf "$smoke"
fi

echo "CI OK ($tier)"
