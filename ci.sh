#!/bin/sh
# ci.sh — the repo's tiered verification gate.
#
#   ci.sh quick   fmt + vet + build + full tests (the tier-1 gate)
#   ci.sh full    quick, plus the race detector over every concurrent
#                 subsystem and a QVStore benchmark smoke so hot-path perf
#                 regressions fail loudly (the benchmark run also executes
#                 the allocation-budget tests)
#
# With no argument, full runs (unchanged historical behavior).
set -eu

cd "$(dirname "$0")"

tier="${1:-full}"
case "$tier" in
quick | full) ;;
*)
    echo "usage: ci.sh [quick|full]" >&2
    exit 2
    ;;
esac

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== no-new-panics gate (error-propagation model) =="
# The simulation stack reports failures as values (DESIGN.md "Error model
# and cancellation"); a panic() reappearing outside tests in these
# packages is a regression of that model. Allow-list: currently empty.
panics=$(grep -rn 'panic(' internal/stream internal/harness internal/serve internal/cpu internal/policy \
    --include='*.go' | grep -v '_test\.go' || true)
if [ -n "$panics" ]; then
    echo "panic() on an error-propagation hot path:" >&2
    echo "$panics" >&2
    exit 1
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck (not installed, skipped; CI runs it) =="
fi

if [ "$tier" = full ]; then
    echo "== go test -race (worker pool + stream pipeline + trace io + result/policy stores + serve/cancellation) =="
    # The repo's concurrency lives in the harness worker pool/singleflights,
    # the stream chunk pipeline / trace-cache population, the persistent
    # result and policy stores, the serving layer's queue/SSE fan-out (now
    # including POST-able training jobs), and the cancellation paths
    # threading contexts through cpu/harness/serve; run those packages
    # under the race detector.
    go test -race ./internal/harness/... ./internal/stream/... ./internal/trace/... \
        ./internal/results/... ./internal/policy/... ./internal/serve/... \
        ./internal/flight/... ./internal/cpu/...

    echo "== bench smoke (QVStore hot path) =="
    go test -run='AllocationFree' -bench='QVStore' -benchtime=100x -benchmem .
fi

echo "CI OK ($tier)"
