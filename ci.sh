#!/bin/sh
# ci.sh — the repo's tiered verification gate.
#
#   ci.sh quick   fmt + vet + build + full tests (the tier-1 gate)
#   ci.sh chaos   the fault-injection and crash-recovery suite under the
#                 race detector: every failpoint armed, a worker process
#                 SIGKILLed mid-job, journal recovery replayed
#   ci.sh full    quick + chaos, plus the race detector over every
#                 concurrent subsystem, a QVStore benchmark smoke so
#                 hot-path perf regressions fail loudly (the benchmark
#                 run also executes the allocation-budget tests), and a
#                 load smoke: pythia-load drives a live pythia-serve
#                 under SLOs and proves the store absorbs repeat traffic
#
# With no argument, full runs (unchanged historical behavior).
set -eu

cd "$(dirname "$0")"

tier="${1:-full}"
case "$tier" in
quick | chaos | full) ;;
*)
    echo "usage: ci.sh [quick|chaos|full]" >&2
    exit 2
    ;;
esac

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [ "$tier" != chaos ]; then
    echo "== go test =="
    go test ./...
fi

echo "== no-new-panics gate (error-propagation model) =="
# The simulation stack reports failures as values (DESIGN.md "Error model
# and cancellation"); a panic() reappearing outside tests in these
# packages is a regression of that model. Allow-list: the fault
# registry's deliberate injected panic (tagged "fault: injected panic"),
# which exists so chaos tests can simulate crashes.
panics=$(grep -rn 'panic(' internal/stream internal/harness internal/serve internal/cpu internal/policy internal/fault \
    --include='*.go' | grep -v '_test\.go' | grep -v 'fault: injected panic' || true)
if [ -n "$panics" ]; then
    echo "panic() on an error-propagation hot path:" >&2
    echo "$panics" >&2
    exit 1
fi

echo "== single-fault-framework gate =="
# All fault injection goes through internal/fault's registry (DESIGN.md
# "Fault model and recovery"). A package growing a private failpoint
# mechanism again — the pre-registry state — fails here.
private_fps=$(grep -rnE '(func|var)( \([^)]*\))? [Ff]ailpoint' internal cmd examples \
    --include='*.go' | grep -v '^internal/fault/' || true)
if [ -n "$private_fps" ]; then
    echo "private failpoint mechanism outside internal/fault:" >&2
    echo "$private_fps" >&2
    exit 1
fi

echo "== fused-kernel gate (no per-record reader calls) =="
# The hot loop consumes trace columns via Reader.NextChunk; the only
# per-record reader.Next() caller in internal/cpu is the compatibility
# shim (shim.go), kept for bit-identity cross-checks. A Next() call
# reappearing elsewhere means the fused SoA path regressed to
# record-at-a-time consumption (PERF.md "Batched SoA kernel").
per_record=$(grep -rn '\.Next(' internal/cpu --include='*.go' |
    grep -v '_test\.go' | grep -v '^internal/cpu/shim\.go:' || true)
if [ -n "$per_record" ]; then
    echo "per-record reader.Next() outside the shim in internal/cpu:" >&2
    echo "$per_record" >&2
    exit 1
fi

echo "== error-envelope gate (unified API errors) =="
# Every non-2xx serve response is the api.Error JSON envelope, written
# through writeError (DESIGN.md "API v1"). A raw http.Error reappearing
# in the serving layer would hand clients an untyped text/plain error
# with no code, no Retryable, no Retry-After contract.
raw_errors=$(grep -rn 'http\.Error(' internal/serve --include='*.go' |
    grep -v '_test\.go' || true)
if [ -n "$raw_errors" ]; then
    echo "http.Error() in internal/serve (use writeError + api.Errorf):" >&2
    echo "$raw_errors" >&2
    exit 1
fi

echo "== route-metrics gate (telemetry coverage) =="
# Every serve route must flow through the Server.route() helper so it
# gets a per-route pythia_http_requests_total counter (DESIGN.md
# "Observability"). A bare mux.HandleFunc registration outside the
# helper — recognizable by the missing "route-metrics-allow" marker on
# the wrapping closure — would silently drop that route from /metrics.
unrouted=$(grep -rn 'mux\.HandleFunc(' internal/serve --include='*.go' |
    grep -v '_test\.go' | grep -v 'route-metrics-allow' || true)
if [ -n "$unrouted" ]; then
    echo "serve route registered without the route() metrics helper:" >&2
    echo "$unrouted" >&2
    echo "(register through Server.route(), or tag the closure with // route-metrics-allow)" >&2
    exit 1
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck (not installed, skipped; CI runs it) =="
fi

if [ "$tier" = chaos ] || [ "$tier" = full ]; then
    echo "== chaos tier: fault injection + crash recovery under -race =="
    # The durable-execution invariants (ISSUE: crash-recoverable queue,
    # lease-based retry, breakers): failpoints at every store write and
    # the trace decoder, a SIGKILLed worker subprocess, journal recovery
    # replayed from snapshots — all under the race detector.
    go test -race ./internal/fault/...
    go test -race -run 'Chaos|Journal|Fault|Breaker|Failpoint|Sweep' \
        ./internal/serve/... ./internal/fsutil/... \
        ./internal/stream/... ./internal/results/... ./internal/policy/...
fi

if [ "$tier" = full ]; then
    echo "== go test -race (worker pool + stream pipeline + trace io + result/policy stores + serve/cancellation) =="
    # The repo's concurrency lives in the harness worker pool/singleflights,
    # the stream chunk pipeline / trace-cache population, the persistent
    # result and policy stores, the serving layer's queue/SSE fan-out (now
    # including POST-able training jobs), and the cancellation paths
    # threading contexts through cpu/harness/serve; run those packages
    # under the race detector.
    go test -race ./internal/harness/... ./internal/stream/... ./internal/trace/... \
        ./internal/results/... ./internal/policy/... ./internal/serve/... \
        ./internal/flight/... ./internal/cpu/...

    echo "== batch bit-identity under -race (fused kernel vs shim, worker counts) =="
    # The fused SoA kernel must stay bit-identical to the record-at-a-time
    # shim at every chunk edge and chunk size, and experiment results must
    # not depend on worker count. These run inside the package sweeps above
    # too; the explicit invocation keeps the invariant visible and failing
    # on its own line.
    go test -race -run 'BatchedMatchesShim|BatchedChunkSizeInvariance|DeterministicAcrossWorkerCounts' \
        ./internal/cpu/... ./internal/harness/...

    echo "== bench smoke (QVStore hot path) =="
    go test -run='AllocationFree' -bench='QVStore' -benchtime=100x -benchmem .

    echo "== load smoke (pythia-load vs live pythia-serve) =="
    # Boot a real pythia-serve subprocess, seed its result store, and
    # drive a short constant-RPS mixed storm through cmd/pythia-load:
    # zero SLO violations required, and the store must absorb repeat
    # traffic (-min-store-hits proves hits climbed during the run).
    smoke=$(mktemp -d)
    go build -o "$smoke/pythia-serve" ./cmd/pythia-serve
    go build -o "$smoke/pythia-load" ./cmd/pythia-load
    "$smoke/pythia-serve" -addr 127.0.0.1:18741 \
        -results "$smoke/results" -policies "$smoke/policies" \
        >"$smoke/serve.log" 2>&1 &
    serve_pid=$!
    load_status=0
    "$smoke/pythia-load" -addr http://127.0.0.1:18741 -wait-ready 15s \
        -schedule constant -rps 25 -duration 5s -scale quick \
        -experiments fig14,table2 -mix "read=0.7,meta=0.2,simulate=0.1" \
        -slo "read:p95ms=1000,err=0;simulate:err=0" -min-store-hits 1 \
        -json "$smoke/loadtest.json" || load_status=$?
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    if [ "$load_status" -ne 0 ]; then
        echo "load smoke failed (exit $load_status); server log:" >&2
        tail -20 "$smoke/serve.log" >&2
        rm -rf "$smoke"
        exit 1
    fi
    rm -rf "$smoke"
fi

echo "CI OK ($tier)"
