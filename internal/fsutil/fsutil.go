// Package fsutil holds the crash-safety helpers shared by the repo's
// content-addressed disk caches (the stream trace cache and the result
// store): atomic temp-file writes that never leave partial files behind,
// reclamation of temp files orphaned by crashed processes, and
// filesystem-safe name mangling.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// WriteAtomic lands a file at path by streaming through write into a
// unique temp file in dir (created if missing), syncing, and atomically
// renaming into place — so readers never observe partial content and
// concurrent processes are safe (both write, either rename wins). Every
// error path removes the temp file; fault-injection tests (SetFailpoint)
// hold that no failure leaves anything behind.
func WriteAtomic(dir, path string, write func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dir %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("temp for %s: %w", path, err)
	}
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s %s: %w", step, path, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if err := failpoint(); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rename %s: %w", path, err)
	}
	return nil
}

// StaleTempAge is how old an orphaned temp file must be before
// SweepStaleTemps reclaims it; generous enough that a live writer on the
// slowest machine is never raced.
const StaleTempAge = time.Hour

// SweepStaleTemps removes temp files abandoned by crashed processes from
// dir. In-flight writers are protected by the age threshold: a temp file
// still being written is always younger than StaleTempAge.
func SweepStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) > StaleTempAge {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Sanitize makes a name filesystem-safe for use as a cache file name.
func Sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ', '|', '*', '?', '"', '<', '>':
			return '_'
		}
		return r
	}, name)
}

// failpointErr, when non-nil, is injected into WriteAtomic between the
// write callback and sync; fault-injection tests use it to prove no
// partial files survive failures.
var (
	failpointMu  sync.Mutex
	failpointErr error
)

// SetFailpoint injects err into every subsequent WriteAtomic between
// write and sync (nil clears it). Test-only.
func SetFailpoint(err error) {
	failpointMu.Lock()
	failpointErr = err
	failpointMu.Unlock()
}

func failpoint() error {
	failpointMu.Lock()
	defer failpointMu.Unlock()
	return failpointErr
}
