// Package fsutil holds the crash-safety helpers shared by the repo's
// content-addressed disk caches (the stream trace cache and the result
// store): atomic temp-file writes that never leave partial files behind,
// reclamation of temp files orphaned by crashed processes, and
// filesystem-safe name mangling.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pythia/internal/fault"
)

// FPWriteAtomic is the failpoint between the write callback and sync —
// the worst possible moment for a write to die; fault-injection tests
// arm it to prove no failure leaves a partial file behind.
const FPWriteAtomic = "fsutil.write-atomic"

// WriteAtomic lands a file at path by streaming through write into a
// unique temp file in dir (created if missing), syncing, and atomically
// renaming into place — so readers never observe partial content and
// concurrent processes are safe (both write, either rename wins). Every
// error path removes the temp file; fault-injection tests (the
// FPWriteAtomic failpoint) hold that no failure leaves anything behind.
//
// Infrastructure failures (mkdir, temp creation, sync, rename) are
// marked fault.Transient — they are I/O pressure, not bad input, and
// retrying the whole write is sound because it lands atomically. The
// write callback's own error passes through unclassified: its meaning
// (a canceled context, a corrupt source) belongs to the caller.
func WriteAtomic(dir, path string, write func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fault.Transient(fmt.Errorf("dir %s: %w", dir, err))
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fault.Transient(fmt.Errorf("temp for %s: %w", path, err))
	}
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("%s %s: %w", step, path, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if err := fault.Hit(FPWriteAtomic); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fault.Transient(fail("sync", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fault.Transient(fmt.Errorf("close %s: %w", path, err))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fault.Transient(fmt.Errorf("rename %s: %w", path, err))
	}
	return nil
}

// StaleTempAge is how old an orphaned temp file must be before
// SweepStaleTemps reclaims it; generous enough that a live writer on the
// slowest machine is never raced.
const StaleTempAge = time.Hour

// SweepStaleTemps removes temp files abandoned by crashed processes from
// dir. In-flight writers are protected by the age threshold: a temp file
// still being written is always younger than StaleTempAge.
func SweepStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) > StaleTempAge {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Sanitize makes a name filesystem-safe for use as a cache file name.
func Sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ', '|', '*', '?', '"', '<', '>':
			return '_'
		}
		return r
	}, name)
}
