// Package policy is the trained-policy lifecycle store: a
// content-addressed, on-disk collection of learned Pythia Q-table
// snapshots. The paper's headline framing is that Pythia's policy is
// *programmable state* — configuration registers and Q-tables that can be
// customized and reused in silicon without refabrication; this package is
// the software analogue: train once, persist the learned QVStore, and
// warm-start any number of later evaluations from it.
//
// Each entry is an envelope around the raw PYQV01 snapshot bytes
// (core.QVStore.Snapshot): a fingerprint of the full Pythia configuration,
// the trace generator version, the training provenance (workload, scale,
// agent seed) and a payload schema version. Restore re-checks every one of
// those before touching an agent, so a policy can never be loaded into a
// mismatched configuration or across a generator bump — both fail with a
// typed error (ErrMismatch).
//
// The store shares the crash-safety idiom of internal/results and the
// stream trace cache: files land via fully-written temp files plus atomic
// rename (internal/fsutil), population is deduplicated through a
// singleflight (internal/flight), and temp files orphaned by crashed
// processes are swept on first write.
package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"pythia/internal/core"
	"pythia/internal/trace"
)

// SchemaVersion is baked into every envelope and fingerprint; bump it when
// the envelope's JSON shape or the snapshot payload semantics change
// incompatibly, so stale entries miss instead of half-decoding.
const SchemaVersion = 1

// ErrMismatch is the typed failure of every envelope/agent compatibility
// check: restoring into a different configuration, across a trace
// generator bump, or from a future schema version all wrap it.
var ErrMismatch = errors.New("policy: envelope does not match agent")

// Provenance records what produced a trained policy: enough to reproduce
// the training run, and the identity the store's content addressing hashes.
type Provenance struct {
	// Workload is the training workload (mix) display name.
	Workload string `json:"workload"`
	// Trace is the canonical trace identity (trace.Workload.Key: name,
	// trace seed, length, generator version); two same-named workloads
	// with different trace seeds must not share a policy.
	Trace string `json:"trace,omitempty"`
	// Scale is the canonical scale identity (harness Scale.Key()).
	Scale string `json:"scale"`
	// Seed is the agent's RNG/tile seed (core.Config.Seed).
	Seed int64 `json:"seed"`
	// Cores is the core count of the training simulation: a policy
	// learned under multi-core DRAM contention is not the single-core
	// policy, so the distinction is part of the identity.
	Cores int `json:"cores,omitempty"`
	// ParentID is the policy the training agent was itself warm-started
	// from, if any; a continued policy must never content-address as the
	// from-scratch one.
	ParentID string `json:"parent_id,omitempty"`
	// Sims is how many simulations the producing process executed to
	// train this policy (0 when it was itself served from a store).
	Sims int64 `json:"sims"`
}

// Meta is the metadata half of an envelope — everything but the snapshot
// payload. Listing endpoints return Metas so a catalogue of policies does
// not ship every Q-table over the wire.
type Meta struct {
	// ID is the content address: a deterministic digest of the config
	// fingerprint, training identity, generator version and schema
	// version. Two processes training the same policy derive the same ID.
	ID string `json:"id"`
	// Config is the Pythia configuration name ("pythia", "pythia-strict").
	Config string `json:"config"`
	// ConfigFingerprint digests the full core.Config; Restore refuses an
	// agent whose configuration fingerprints differently.
	ConfigFingerprint string `json:"config_fingerprint"`
	// GenVersion pins the trace generator the policy was trained against.
	GenVersion int `json:"gen_version"`
	// SchemaVersion is the envelope/payload schema.
	SchemaVersion int `json:"schema_version"`
	// TrainedOn is the training provenance.
	TrainedOn Provenance `json:"trained_on"`
	// SnapshotBytes is the payload size (PYQV01 stream length).
	SnapshotBytes int `json:"snapshot_bytes"`
	// CreatedAt is when the policy was trained.
	CreatedAt time.Time `json:"created_at"`
}

// Envelope is a complete stored policy: metadata plus the raw PYQV01
// snapshot bytes (base64 in JSON).
type Envelope struct {
	Meta
	Snapshot []byte `json:"snapshot"`
}

// ConfigFingerprint condenses a full Pythia configuration into a
// fixed-width digest. The whole struct is rendered (%+v over plain value
// fields, deterministic order) rather than a hand-picked subset, for the
// same reason harness.cacheKey does: any omitted field would let two
// configurations that learn different policies share an entry.
func ConfigFingerprint(cfg core.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v", cfg)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ID derives the content address for a policy trained with cfg under the
// given provenance. trace.GenVersion and SchemaVersion are mixed in, so a
// generator or schema bump invalidates every prior entry without any
// deletion pass. Provenance.Sims is deliberately excluded: it describes
// the producing process, not the policy.
func ID(cfg core.Config, prov Provenance) string {
	h := sha256.New()
	fmt.Fprintf(h, "g%d|v%d|%s", trace.GenVersion, SchemaVersion, ConfigFingerprint(cfg))
	for _, p := range []string{prov.Workload, prov.Trace, prov.Scale,
		fmt.Sprint(prov.Seed), fmt.Sprint(prov.Cores), prov.ParentID} {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return "pol-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// New builds a fully-populated envelope for a freshly trained agent. The
// caller supplies the provenance; the config, fingerprint, versions and ID
// are derived.
func New(p *core.Pythia, prov Provenance) (Envelope, error) {
	var buf bytes.Buffer
	if err := p.SnapshotPolicy(&buf); err != nil {
		return Envelope{}, fmt.Errorf("policy: snapshot: %w", err)
	}
	cfg := p.Config()
	return Envelope{
		Meta: Meta{
			ID:                ID(cfg, prov),
			Config:            cfg.Name,
			ConfigFingerprint: ConfigFingerprint(cfg),
			GenVersion:        trace.GenVersion,
			SchemaVersion:     SchemaVersion,
			TrainedOn:         prov,
			SnapshotBytes:     buf.Len(),
			CreatedAt:         time.Now().UTC(),
		},
		Snapshot: buf.Bytes(),
	}, nil
}

// CheckAgainst verifies that the envelope can legally restore into an
// agent running cfg. Every failure wraps ErrMismatch with the specific
// incompatibility spelled out.
func (e *Envelope) CheckAgainst(cfg core.Config) error {
	if e.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: envelope schema v%d, this build understands v%d", ErrMismatch, e.SchemaVersion, SchemaVersion)
	}
	if e.GenVersion != trace.GenVersion {
		return fmt.Errorf("%w: policy trained against trace generator v%d, this build generates v%d", ErrMismatch, e.GenVersion, trace.GenVersion)
	}
	if fp := ConfigFingerprint(cfg); fp != e.ConfigFingerprint {
		return fmt.Errorf("%w: policy trained with config %q (fingerprint %s), agent runs %q (fingerprint %s)",
			ErrMismatch, e.Config, e.ConfigFingerprint, cfg.Name, fp)
	}
	return nil
}

// Restore warm-starts an agent from the envelope after checking
// compatibility. The underlying core restore is atomic and strict
// (geometry re-verified, trailing bytes rejected), so a corrupted payload
// cannot half-apply.
func (e *Envelope) Restore(p *core.Pythia) error {
	if err := e.CheckAgainst(p.Config()); err != nil {
		return err
	}
	if err := p.RestorePolicy(bytes.NewReader(e.Snapshot)); err != nil {
		return fmt.Errorf("policy: restore %s: %w", e.ID, err)
	}
	return nil
}
