package policy_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pythia/internal/core"
	"pythia/internal/fault"
	"pythia/internal/fsutil"
	"pythia/internal/policy"
	"pythia/internal/prefetch"
	"pythia/internal/trace"
)

// trainAgent feeds a deterministic +1 line stream so the agent has a
// non-trivial learned policy to snapshot.
func trainAgent(cfg core.Config, n int) *core.Pythia {
	p := core.MustNew(cfg, nil)
	line := uint64(1 << 22)
	for i := 0; i < n; i++ {
		for _, c := range p.Train(prefetch.Access{PC: 0x400, Line: line}) {
			p.Fill(c)
		}
		line++
	}
	return p
}

func testEnvelope(t *testing.T) policy.Envelope {
	t.Helper()
	p := trainAgent(core.BasicConfig(), 5000)
	env, err := policy.New(p, policy.Provenance{Workload: "test-wl", Scale: "quick", Seed: 1, Sims: 1})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := testEnvelope(t)
	if env.ID == "" || env.SnapshotBytes != len(env.Snapshot) || env.GenVersion != trace.GenVersion {
		t.Fatalf("envelope metadata incomplete: %+v", env.Meta)
	}
	warm := core.MustNew(core.BasicConfig(), nil)
	if err := env.Restore(warm); err != nil {
		t.Fatal(err)
	}
	// The restored agent carries the trained Q-values.
	st := core.State{PC: 0x400, Delta: 1}
	trained := trainAgent(core.BasicConfig(), 5000)
	wSig := warm.QVStore().Signature(&st)
	tSig := trained.QVStore().Signature(&st)
	for a := range core.BasicConfig().Actions {
		if warm.QVStore().Q(wSig, a) != trained.QVStore().Q(tSig, a) {
			t.Fatalf("restored Q differs at action %d", a)
		}
	}
}

func TestRestoreRejectsConfigMismatch(t *testing.T) {
	env := testEnvelope(t)
	for name, cfg := range map[string]core.Config{
		"strict rewards": core.StrictConfig(),
		"other seed": func() core.Config {
			c := core.BasicConfig()
			c.Seed = 99
			return c
		}(),
		"other alpha": func() core.Config {
			c := core.BasicConfig()
			c.Alpha = 0.2
			return c
		}(),
	} {
		agent := core.MustNew(cfg, nil)
		if err := env.Restore(agent); !errors.Is(err, policy.ErrMismatch) {
			t.Errorf("%s: want ErrMismatch, got %v", name, err)
		}
	}
}

func TestRestoreRejectsVersionSkew(t *testing.T) {
	agent := core.MustNew(core.BasicConfig(), nil)

	gen := testEnvelope(t)
	gen.GenVersion++
	if err := gen.Restore(agent); !errors.Is(err, policy.ErrMismatch) {
		t.Errorf("generator bump: want ErrMismatch, got %v", err)
	}

	schema := testEnvelope(t)
	schema.SchemaVersion++
	if err := schema.Restore(agent); !errors.Is(err, policy.ErrMismatch) {
		t.Errorf("schema bump: want ErrMismatch, got %v", err)
	}
}

func TestIDIsDeterministicAndDiscriminating(t *testing.T) {
	cfg := core.BasicConfig()
	prov := policy.Provenance{Workload: "w", Scale: "s", Seed: 1}
	if policy.ID(cfg, prov) != policy.ID(cfg, prov) {
		t.Error("same inputs derive different IDs")
	}
	// Sims is process provenance, not policy identity.
	withSims := prov
	withSims.Sims = 42
	if policy.ID(cfg, prov) != policy.ID(cfg, withSims) {
		t.Error("Sims changed the content address")
	}
	other := prov
	other.Workload = "w2"
	if policy.ID(cfg, prov) == policy.ID(cfg, other) {
		t.Error("different training workloads share an ID")
	}
	if policy.ID(core.StrictConfig(), prov) == policy.ID(cfg, prov) {
		t.Error("different configs share an ID")
	}
}

func TestStorePutGetList(t *testing.T) {
	s := policy.Open(t.TempDir())
	env := testEnvelope(t)
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(env.ID)
	if !ok {
		t.Fatal("stored policy missed")
	}
	if got.ID != env.ID || len(got.Snapshot) != len(env.Snapshot) {
		t.Fatalf("round trip mangled envelope: %+v", got.Meta)
	}
	if _, ok := s.Get("pol-nope"); ok {
		t.Error("absent ID served a hit")
	}
	metas := s.List()
	if len(metas) != 1 || metas[0].ID != env.ID || metas[0].TrainedOn.Workload != "test-wl" {
		t.Fatalf("listing wrong: %+v", metas)
	}
	if s.Hits() != 1 || s.Misses() != 1 || s.Writes() != 1 {
		t.Errorf("counters hits=%d misses=%d writes=%d, want 1/1/1", s.Hits(), s.Misses(), s.Writes())
	}
}

func TestStoreRejectsRenamedEntry(t *testing.T) {
	dir := t.TempDir()
	s := policy.Open(dir)
	env := testEnvelope(t)
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("expected 1 file, found %d", len(ents))
	}
	// A hand-renamed file must not serve under the new ID: the embedded
	// identity is re-checked, not trusted from the filename.
	if err := os.Rename(filepath.Join(dir, ents[0].Name()), filepath.Join(dir, "pol-aaaabbbbccccdddd.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("pol-aaaabbbbccccdddd"); ok {
		t.Error("renamed entry served under the wrong ID")
	}
	if metas := s.List(); len(metas) != 0 {
		t.Errorf("renamed entry still listed: %+v", metas)
	}
}

func TestGetOrTrainDeduplicatesAndHits(t *testing.T) {
	dir := t.TempDir()
	s := policy.Open(dir)
	env := testEnvelope(t)

	var calls atomic.Int32
	release := make(chan struct{})
	const callers = 8
	var wg, arrived sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			got, _, err := s.GetOrTrain(env.ID, func() (policy.Envelope, error) {
				calls.Add(1)
				<-release
				return env, nil
			})
			if err != nil {
				t.Error(err)
			}
			if got.ID != env.ID {
				t.Errorf("caller got %+v", got.Meta)
			}
		}()
	}
	arrived.Wait()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("train ran %d times for one ID, want 1", got)
	}

	// A fresh store over the same directory (a process restart) serves the
	// entry as a hit without training.
	hit, trained := false, false
	got, hit, err := policy.Open(dir).GetOrTrain(env.ID, func() (policy.Envelope, error) {
		trained = true
		return policy.Envelope{}, nil
	})
	if err != nil || !hit || trained || got.ID != env.ID {
		t.Errorf("restart lookup hit=%v trained=%v err=%v", hit, trained, err)
	}
}

// TestWriteFailureLeavesNoPartialFiles mirrors the result store's
// fault-injection audit: a write that dies between payload and sync must
// deliver the trained policy, surface the error, and leave the store
// directory free of temp or partial entry files.
func TestWriteFailureLeavesNoPartialFiles(t *testing.T) {
	dir := t.TempDir()
	s := policy.Open(dir)
	env := testEnvelope(t)
	boom := errors.New("injected disk failure")
	disable := fault.Enable(fsutil.FPWriteAtomic, fault.Spec{Err: boom})
	defer disable()

	if err := s.Put(env); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected failure", err)
	}
	got, hit, err := s.GetOrTrain(env.ID, func() (policy.Envelope, error) { return env, nil })
	if hit {
		t.Error("failed write somehow produced a hit")
	}
	if !errors.Is(err, boom) {
		t.Errorf("GetOrTrain error = %v, want injected failure surfaced", err)
	}
	if got.ID != env.ID {
		t.Errorf("trained policy lost on write failure: %+v", got.Meta)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Errorf("file left behind after injected failures: %s", e.Name())
	}

	// After the fault clears, the same ID persists normally.
	disable()
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("store has %d entries after recovery, want 1", s.Len())
	}
}

func TestSweepReclaimsOnlyStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "pol-abc.json.tmp123")
	fresh := filepath.Join(dir, "pol-def.json.tmp456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// The sweep runs on the store's first write.
	s := policy.Open(dir)
	if err := s.Put(testEnvelope(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a live writer) was reclaimed")
	}
}

func TestReadOnlySuppressesWrites(t *testing.T) {
	s := policy.Open(t.TempDir())
	s.SetReadOnly(true)
	env := testEnvelope(t)
	if err := s.Put(env); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("read-only Put landed a file")
	}
	got, hit, err := s.GetOrTrain(env.ID, func() (policy.Envelope, error) { return env, nil })
	if err != nil || hit || got.ID != env.ID {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if s.Len() != 0 {
		t.Error("read-only GetOrTrain landed a file")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trained.policy.json")
	env := testEnvelope(t)
	if err := policy.WriteFile(path, env); err != nil {
		t.Fatal(err)
	}
	got, err := policy.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != env.ID || len(got.Snapshot) != len(env.Snapshot) {
		t.Fatalf("file round trip mangled envelope: %+v", got.Meta)
	}
	warm := core.MustNew(core.BasicConfig(), nil)
	if err := got.Restore(warm); err != nil {
		t.Fatal(err)
	}
	if _, err := policy.ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("absent file read succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"id":""}`), 0o644)
	if _, err := policy.ReadFile(bad); err == nil || !strings.Contains(err.Error(), "not a policy envelope") {
		t.Errorf("bad file read: %v", err)
	}
}
