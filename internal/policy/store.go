package policy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pythia/internal/fault"
	"pythia/internal/flight"
	"pythia/internal/fsutil"
	"pythia/internal/obs"
)

// Process-wide registry counters, shared by every Store instance (the
// per-instance atomics remain the per-store source of truth for tests and
// /healthz detail; these feed /metrics, labeled by store).
var (
	obsHits   = obs.GetCounter("pythia_store_hits_total", "Store lookups served from disk.", obs.L("store", "policies"))
	obsMisses = obs.GetCounter("pythia_store_misses_total", "Store lookups that found no valid entry.", obs.L("store", "policies"))
	obsWrites = obs.GetCounter("pythia_store_writes_total", "Store entries successfully persisted.", obs.L("store", "policies"))
)

// FPWrite is the failpoint at the head of every policy-store write;
// chaos tests arm it to fail policy persistence in isolation.
const FPWrite = "policy.write"

// Store is an on-disk policy store rooted at one directory (created on
// first write). The zero value is not usable; call Open.
type Store struct {
	dir      string
	readOnly atomic.Bool

	flight flight.Group[flightOut]

	sweepOnce sync.Once

	hits, misses, writes atomic.Int64
}

// flightOut is what a GetOrTrain flight delivers to every caller.
type flightOut struct {
	env Envelope
	hit bool
}

// Open returns a store rooted at dir. The directory is created lazily on
// first write, so opening a store never touches the filesystem.
func Open(dir string) *Store {
	return &Store{dir: dir}
}

// DefaultDir returns the store directory used when none is configured: the
// PYTHIA_POLICY_STORE environment variable, or pythia-policy-store under
// the OS temp directory.
func DefaultDir() string {
	if dir := os.Getenv("PYTHIA_POLICY_STORE"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "pythia-policy-store")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetReadOnly toggles write suppression: a read-only store serves hits but
// silently drops Put calls (shared populated stores in CI).
func (s *Store) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether writes are suppressed.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// Hits returns the number of lookups served from disk.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses returns the number of lookups that found no valid entry.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Writes returns the number of envelopes successfully persisted.
func (s *Store) Writes() int64 { return s.writes.Load() }

// hit/miss/wrote bump the per-instance atomic and the shared registry
// counter together so /metrics and the instance views cannot drift.
func (s *Store) hit()   { s.hits.Add(1); obsHits.Inc() }
func (s *Store) miss()  { s.misses.Add(1); obsMisses.Inc() }
func (s *Store) wrote() { s.writes.Add(1); obsWrites.Inc() }

// path maps a policy ID to its file. The config and workload names are
// embedded (sanitized) for debuggability; the ID digest provides the
// content addressing and is all Get needs.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, fsutil.Sanitize(id)+".json")
}

// Get loads the envelope for a policy ID. It returns false on any miss:
// absent file, unreadable JSON, or an envelope whose embedded ID does not
// match (a hand-copied or renamed file can never serve the wrong policy).
func (s *Store) Get(id string) (Envelope, bool) {
	env, ok := s.load(id)
	if !ok {
		s.miss()
		return Envelope{}, false
	}
	s.hit()
	return env, true
}

// load reads and validates the envelope for an ID without counting.
func (s *Store) load(id string) (Envelope, bool) {
	buf, err := os.ReadFile(s.path(id))
	if err != nil {
		return Envelope{}, false
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, false
	}
	if env.ID != id || len(env.Snapshot) == 0 {
		return Envelope{}, false
	}
	return env, true
}

// Put persists an envelope under its ID, overwriting any previous entry.
// Writes go through a unique temp file and atomic rename; no error path
// leaves a partial file behind. On a read-only store Put is a no-op.
func (s *Store) Put(env Envelope) error {
	if s.ReadOnly() {
		return nil
	}
	if env.ID == "" {
		return fmt.Errorf("policy: envelope has no ID")
	}
	buf, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("policy: marshal %s: %w", env.ID, err)
	}
	buf = append(buf, '\n')

	s.Sweep()
	if err := fault.Hit(FPWrite); err != nil {
		return fmt.Errorf("policy: write %s: %w", env.ID, err)
	}
	path := s.path(env.ID)
	if err := fsutil.WriteAtomic(s.dir, path, func(tmp *os.File) error {
		_, werr := tmp.Write(buf)
		return fault.Transient(werr)
	}); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	s.wrote()
	return nil
}

// Sweep reclaims temp files orphaned by crashed processes now, instead
// of waiting for the first write (long-lived services sweep at startup).
// It runs at most once per Store.
func (s *Store) Sweep() {
	s.sweepOnce.Do(func() { fsutil.SweepStaleTemps(s.dir) })
}

// GetOrTrain returns the stored envelope for id, training and persisting
// it on a miss. Concurrent callers for one ID are deduplicated through a
// singleflight: exactly one runs train, everyone shares the result. hit
// reports whether disk served it without running train — the
// zero-additional-simulations guarantee repeat training requests rely on.
// A failed persist does not fail the call: the trained policy is still
// delivered (and the error surfaced), so a full disk degrades to "no
// reuse", never to "no policy".
func (s *Store) GetOrTrain(id string, train func() (Envelope, error)) (env Envelope, hit bool, err error) {
	if env, ok := s.Get(id); ok {
		return env, true, nil
	}
	res, leader, ferr := s.flight.Do(id, func() (flightOut, error) {
		// Re-check under the flight: an earlier flight (or another
		// process) may have landed the entry between our miss and taking
		// leadership.
		if env, ok := s.load(id); ok {
			s.hit()
			return flightOut{env: env, hit: true}, nil
		}
		env, err := train()
		if err != nil {
			return flightOut{}, err
		}
		if env.ID != id {
			return flightOut{}, fmt.Errorf("policy: trained envelope has ID %s, expected %s", env.ID, id)
		}
		// Delivery beats persistence; report a write failure without
		// discarding the trained policy.
		return flightOut{env: env}, s.Put(env)
	})
	if res.env.ID == "" {
		return Envelope{}, false, ferr
	}
	// Waiters share the leader's envelope but report hit=false: they did
	// not observe the entry on disk themselves.
	return res.env, res.hit && leader, ferr
}

// metaProbe decodes an envelope's metadata while skipping the expensive
// part: with the snapshot captured as raw JSON, the base64 payload is
// scanned but never decoded, so listing a store does not materialize
// every Q-table.
type metaProbe struct {
	Meta
	Snapshot json.RawMessage `json:"snapshot"`
}

// List returns the metadata of every valid envelope on disk, newest
// first. Unreadable or mismatched files are skipped, not errors: the
// listing describes what Get would serve. Snapshot payloads are not
// decoded.
func (s *Store) List() []Meta {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []Meta
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var probe metaProbe
		if err := json.Unmarshal(buf, &probe); err != nil {
			continue
		}
		// Same identity check as load: the embedded ID must match the
		// filename, and a snapshot must be present (">2" = more than the
		// empty JSON string's quotes).
		if probe.ID != strings.TrimSuffix(name, ".json") || len(probe.Snapshot) <= 2 {
			continue
		}
		out = append(out, probe.Meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.After(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports how many envelope files are on disk (for status endpoints;
// it counts directory entries without reading them, so a routinely
// polled health check never re-reads the store).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") && !strings.Contains(e.Name(), ".tmp") {
			n++
		}
	}
	return n
}

// WriteFile saves a single envelope as a standalone file outside any
// store (pythia-sim -save-policy), using the same atomic temp-and-rename
// discipline.
func WriteFile(path string, env Envelope) error {
	buf, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("policy: marshal %s: %w", env.ID, err)
	}
	buf = append(buf, '\n')
	dir := filepath.Dir(path)
	if err := fsutil.WriteAtomic(dir, path, func(tmp *os.File) error {
		_, werr := tmp.Write(buf)
		return werr
	}); err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	return nil
}

// ReadFile loads a standalone envelope written by WriteFile (or copied
// out of a store).
func ReadFile(path string) (Envelope, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, fmt.Errorf("policy: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("policy: %s: %w", path, err)
	}
	if env.ID == "" || len(env.Snapshot) == 0 {
		return Envelope{}, fmt.Errorf("policy: %s: not a policy envelope", path)
	}
	return env, nil
}
