package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"pythia/internal/policy"
)

// Client is the typed HTTP client for pythia-serve's v1 API. All
// methods take a context, decode the JSON error envelope into *Error,
// and — unless retries are disabled — honor 503 + Retry-After with
// jittered backoff, so every consumer gets the polite-backoff contract
// for free instead of reimplementing it.
//
// A zero-retry client (WithRetries(0)) returns shed responses
// immediately as *Error; pythia-load uses that to measure shedding
// instead of hiding it.
type Client struct {
	base    string
	hc      *http.Client
	retries int

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports). The default has no overall timeout — per-call contexts
// bound requests — because SSE streams are long-lived by design.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries bounds how many times a retryable failure (503 shed,
// transport error) is retried after the initial attempt. 0 disables
// retrying entirely. The default is 3.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// NewClient builds a client for the server at base
// (e.g. "http://127.0.0.1:8080"). The canonical /api/v1 routes are
// always used.
func NewClient(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		retries: 3,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server base URL the client talks to.
func (c *Client) Base() string { return c.base }

// do issues one API call: marshal in (if non-nil) as the JSON body,
// decode a 2xx response into out (if non-nil), decode anything else as
// the error envelope. Retryable failures are retried with full-jittered
// backoff seeded by the server's Retry-After hint.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("api: marshal request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= c.retries || !retryable(err) || ctx.Err() != nil {
			return lastErr
		}
		if err := c.backoff(ctx, err, attempt); err != nil {
			return lastErr
		}
	}
}

// retryable: typed retryable envelopes (503 sheds) and transport errors
// (connection refused during server startup, resets) warrant another
// attempt; typed non-retryable responses never do.
func retryable(err error) bool {
	if ae, ok := err.(*Error); ok {
		return ae.Retryable
	}
	return true // transport-level failure
}

// backoff sleeps a uniform draw from (0, hint] seconds — honoring the
// server's Retry-After exactly would re-synchronize every shed client
// onto the same instant — doubling the hint per attempt, ctx-aware.
func (c *Client) backoff(ctx context.Context, err error, attempt int) error {
	hint := RetryAfter(err)
	if hint < 1 {
		hint = 1
	}
	span := time.Duration(hint) * time.Second << attempt
	if span > 30*time.Second {
		span = 30 * time.Second
	}
	c.mu.Lock()
	wait := time.Duration(c.rng.Int63n(int64(span))) + time.Millisecond
	c.mu.Unlock()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("api: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// decodeError turns a non-2xx response into *Error: the envelope when
// the body carries one, a synthesized envelope otherwise (a proxy or
// pre-envelope server answered). The Retry-After header fills
// RetryAfterSec when the body didn't.
func decodeError(resp *http.Response) error {
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env ErrorResponse
	ae := Error{}
	if json.Unmarshal(buf, &env) == nil && env.Error.Code != "" {
		ae = env.Error
	} else {
		ae = Error{
			Code:      codeForStatus(resp.StatusCode),
			Message:   strings.TrimSpace(string(buf)),
			Retryable: resp.StatusCode == http.StatusServiceUnavailable,
		}
		if ae.Message == "" {
			ae.Message = resp.Status
		}
	}
	ae.HTTPStatus = resp.StatusCode
	if ae.RetryAfterSec == 0 {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			ae.RetryAfterSec = s
		}
	}
	return &ae
}

func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// --- Endpoint methods ---

// Experiments lists the experiments the server can run.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out ExperimentsResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out.Experiments, nil
}

// Launch submits a job (experiment render or policy training) and
// returns its accepted view.
func (c *Client) Launch(ctx context.Context, req LaunchRequest) (Job, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodPost, Prefix+"/runs", req, &out); err != nil {
		return Job{}, err
	}
	return out.Job, nil
}

// Jobs lists every registered job (queued, running, retained history).
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out JobsResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/runs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Job fetches one job's current view.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/runs/"+url.PathEscape(id), nil, &out); err != nil {
		return Job{}, err
	}
	return out.Job, nil
}

// Cancel cancels a queued or running job and returns its view. An
// already-terminal job yields a CodeConflict error.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodDelete, Prefix+"/runs/"+url.PathEscape(id), nil, &out); err != nil {
		return Job{}, err
	}
	return out.Job, nil
}

// Result fetches a stored experiment result directly (no job). scale ""
// means the server's default scale.
func (c *Client) Result(ctx context.Context, expID, scale string) (ResultResponse, error) {
	p := Prefix + "/results/" + url.PathEscape(expID)
	if scale != "" {
		p += "?scale=" + url.QueryEscape(scale)
	}
	var out ResultResponse
	if err := c.do(ctx, http.MethodGet, p, nil, &out); err != nil {
		return ResultResponse{}, err
	}
	return out, nil
}

// Policies lists stored trained policies (metadata only).
func (c *Client) Policies(ctx context.Context) ([]policy.Meta, error) {
	var out PoliciesResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/policies", nil, &out); err != nil {
		return nil, err
	}
	return out.Policies, nil
}

// Policy fetches one stored policy's metadata.
func (c *Client) Policy(ctx context.Context, id string) (policy.Meta, error) {
	var out PolicyResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/policies/"+url.PathEscape(id), nil, &out); err != nil {
		return policy.Meta{}, err
	}
	return out.Policy, nil
}

// PolicySnapshot downloads a policy's raw PYQV01 snapshot bytes.
func (c *Client) PolicySnapshot(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+Prefix+"/policies/"+url.PathEscape(id)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Health fetches /healthz (unversioned: an operational endpoint, not an
// API resource).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return Health{}, err
	}
	return out, nil
}

// Fleet fetches the coordinator's fleet view (GET /api/v1/fleet). A
// standalone server without a fleet answers CodeUnavailable.
func (c *Client) Fleet(ctx context.Context) (FleetStatus, error) {
	var out FleetResponse
	if err := c.do(ctx, http.MethodGet, Prefix+"/fleet", nil, &out); err != nil {
		return FleetStatus{}, err
	}
	return out.Fleet, nil
}

// Events subscribes to a job's SSE progress stream and invokes fn (if
// non-nil) for every event, returning the job's terminal view when the
// stream ends. The server replays the full history first, so a late
// subscriber still sees every lifecycle event. If the stream ends
// without a terminal event (server shutdown mid-stream), the job's
// current view is fetched as a fallback.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+Prefix+"/runs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return Job{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return Job{}, decodeError(resp)
	}
	var final *Job
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Type == "" {
				continue
			}
			if fn != nil {
				fn(cur)
			}
			if TerminalStatus(cur.Type) {
				var j Job
				if json.Unmarshal(cur.Data, &j) == nil {
					final = &j
				}
			}
			cur = Event{}
		}
	}
	if err := sc.Err(); err != nil && final == nil {
		return Job{}, err
	}
	if final != nil {
		return *final, nil
	}
	return c.Job(ctx, id)
}

// Wait polls a job until it reaches a terminal state. poll <= 0 means a
// 25ms interval.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return j, ctx.Err()
		}
	}
}
