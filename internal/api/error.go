package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Error codes. Every non-2xx serve response carries exactly one of
// these in its error envelope; the code, not the human-readable
// message, is the contract clients may switch on.
const (
	// CodeBadRequest: the request body or parameters were malformed
	// (unknown scale, bad JSON).
	CodeBadRequest = "bad_request"
	// CodeNotFound: the referenced experiment, job, workload, policy or
	// stored result does not exist.
	CodeNotFound = "not_found"
	// CodeConflict: the requested transition is impossible (canceling an
	// already-terminal job).
	CodeConflict = "conflict"
	// CodeQueueFull: the bounded job queue is full; retry after backoff.
	CodeQueueFull = "queue_full"
	// CodeDegraded: a store's circuit breaker is open; only work the
	// store can already answer is admitted. Retry after the cooldown.
	CodeDegraded = "degraded"
	// CodeShuttingDown: the server is draining; launches are closed.
	CodeShuttingDown = "shutting_down"
	// CodeUnavailable: a required subsystem is not configured on this
	// server (e.g. no policy store).
	CodeUnavailable = "unavailable"
	// CodeInternal: the server failed in a way the client cannot fix.
	CodeInternal = "internal"
)

// Error is the unified JSON error envelope: every non-2xx serve
// response body is {"error": {...}} wrapping one of these. It
// implements error, so the typed client returns it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Retryable marks transient conditions (load shedding, degradation,
	// shutdown) a client may retry after backing off.
	Retryable bool `json:"retryable,omitempty"`
	// RetryAfterSec is the server's backoff hint, mirroring the
	// Retry-After header on 503 responses.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`

	// HTTPStatus is the response status the envelope arrived with.
	// Client-side only; never serialized.
	HTTPStatus int `json:"-"`
}

// ErrorResponse is the wire shape of a non-2xx body.
type ErrorResponse struct {
	Error Error `json:"error"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) Error {
	return Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// StatusFor maps an error code to its HTTP status.
func StatusFor(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeQueueFull, CodeDegraded, CodeShuttingDown, CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// IsShed reports whether err is a 503 load-shedding response (queue
// full, degraded store, or shutdown) — the server protecting itself, as
// opposed to the request being wrong or the job failing. Load tools
// account sheds separately from errors.
func IsShed(err error) bool {
	var ae *Error
	if !errors.As(err, &ae) {
		return false
	}
	switch ae.Code {
	case CodeQueueFull, CodeDegraded, CodeShuttingDown:
		return true
	}
	return false
}

// IsNotFound reports whether err is a typed not-found response.
func IsNotFound(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == CodeNotFound
}

// RetryAfter extracts the server's backoff hint in seconds (minimum 1)
// from a retryable error, or 0 when err carries none.
func RetryAfter(err error) int {
	var ae *Error
	if !errors.As(err, &ae) || !ae.Retryable {
		return 0
	}
	if ae.RetryAfterSec < 1 {
		return 1
	}
	return ae.RetryAfterSec
}
