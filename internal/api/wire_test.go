package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/stats"
)

// The v1 wire format is a compatibility contract: these golden tests
// pin the exact JSON each DTO serializes to. If a field rename or type
// change alters the wire shape, the fixture diff fails loudly here —
// regenerate deliberately with `go test ./internal/api -update` and
// bump the API version if the change is breaking.
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

func ts(s string) time.Time {
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

func tsp(s string) *time.Time { t := ts(s); return &t }

// goldenCases: one fully-populated value per DTO. Optional fields are
// set on purpose — omitempty regressions (a field silently vanishing)
// only show up when the field has a value.
func goldenCases() map[string]any {
	table := &stats.Table{
		Title:  "Figure 14",
		Header: []string{"Workload", "Baseline", "Pythia"},
		Rows:   [][]string{{"mix1", "1.00", "1.12"}, {"mix2", "1.00", "1.31"}},
	}

	job := Job{
		ID:         "run-000042",
		Kind:       KindExperiment,
		Experiment: "fig14",
		Title:      "Fig 14: speedup",
		Scale:      "quick",
		Status:     StatusDone,
		Cached:     true,
		Sims:       0,
		Attempts:   2,
		Recovered:  true,
		Worker:     "pid3121-00c0ffee00c0ffee",
		CreatedAt:  ts("2026-08-08T10:00:00Z"),
		StartedAt:  tsp("2026-08-08T10:00:01Z"),
		FinishedAt: tsp("2026-08-08T10:00:05Z"),
		Result: &harness.ExperimentPayload{
			ID:      "fig14",
			Title:   "Fig 14: speedup",
			Scale:   "quick",
			Table:   table,
			Sims:    12,
			Seconds: 3.5,
		},
		Rendered: "Workload  Baseline  Pythia\n",
		Timeline: []obs.StageView{
			{Stage: "queued", At: ts("2026-08-08T10:00:00Z"), DurationSeconds: 1},
			{Stage: "running", At: ts("2026-08-08T10:00:01Z"), DurationSeconds: 4},
		},
	}

	trainJob := Job{
		ID:        "run-000043",
		Kind:      KindTrain,
		Workload:  "mix1",
		Config:    "pythia",
		Title:     "train pythia on mix1",
		Scale:     "quick",
		Status:    StatusRunning,
		CreatedAt: ts("2026-08-08T11:00:00Z"),
		StartedAt: tsp("2026-08-08T11:00:02Z"),
	}

	meta := policy.Meta{
		ID:                "a1b2c3d4e5f60718",
		Config:            "pythia",
		ConfigFingerprint: "deadbeefcafef00d",
		GenVersion:        3,
		SchemaVersion:     1,
		TrainedOn: policy.Provenance{
			Workload: "mix1",
			Trace:    "mix1/s7/n2000/g3",
			Scale:    "quick",
			Seed:     7,
			Cores:    1,
			Sims:     4,
		},
		SnapshotBytes: 4096,
		CreatedAt:     ts("2026-08-08T09:30:00Z"),
	}

	return map[string]any{
		"launch_request": LaunchRequest{Experiment: "fig14", Scale: "quick"},
		"launch_request_train": LaunchRequest{
			Scale: "quick",
			Train: &TrainRequest{Workload: "mix1", Config: "pythia"},
		},
		"job":                  job,
		"job_response":         JobResponse{Job: trainJob},
		"jobs_response":        JobsResponse{Jobs: []Job{trainJob}},
		"experiments_response": ExperimentsResponse{Experiments: []ExperimentInfo{{ID: "fig1", Title: "Fig 1"}, {ID: "ext-warmstart", Title: "Warm start", Extended: true}}},
		"result_response":      ResultResponse{Result: *job.Result, Rendered: job.Rendered},
		"policies_response":    PoliciesResponse{Policies: []policy.Meta{meta}},
		"policy_response":      PolicyResponse{Policy: meta},
		"health": Health{
			OK:       false,
			Degraded: true,
			Breakers: map[string]BreakerState{
				"results":  {State: "open", ConsecutiveFailures: 5, Trips: 2, LastError: "disk full"},
				"policies": {State: "closed"},
			},
			UptimeSeconds: 12.5,
			Jobs:          3,
			QueueDepth:    16,
			Queued:        1,
			Closing:       false,
			Sims:          42,
			Workers:       4,
			Stores: map[string]StoreHealth{
				"results": {Hits: 10, Misses: 2, Writes: 2, Entries: 2, Dir: "/tmp/results"},
			},
			Journal: &JournalHealth{Dir: "/tmp/journal", Recovered: 1, WriteErrors: 0},
		},
		"error_response": ErrorResponse{Error: Error{
			Code:          CodeQueueFull,
			Message:       "job queue is full",
			Retryable:     true,
			RetryAfterSec: 1,
		}},
		"fleet_response": FleetResponse{Fleet: FleetStatus{
			Desired:              2,
			Ready:                2,
			Starting:             1,
			Queued:               3,
			InFlight:             2,
			ColdStarts:           4,
			LastColdStartSeconds: 0.8,
			Requeues:             1,
			Workers: []FleetWorker{
				{
					Owner: "pid3121-00c0ffee00c0ffee", PID: 3121, State: "busy",
					Job: "job-7", Jobs: 5, Sims: 120000, UptimeSeconds: 33.5,
				},
				{Owner: "pid3122-00c0ffee00c0ffff", PID: 3122, State: "idle"},
			},
		}},
		"progress": Progress{ID: "run-000042", Sims: 7},
		"retry":    Retry{ID: "run-000042", Attempt: 2, Error: "injected fault", BackoffMs: 250},
	}
}

func TestGoldenWireFormat(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run `go test ./internal/api -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from pinned v1 fixture %s:\n--- want\n%s\n--- got\n%s", path, want, got)
			}
		})
	}
}

// TestRoundTrip: marshal → unmarshal → marshal must be byte-stable for
// every DTO (no lossy fields, no field that serializes differently the
// second time).
func TestRoundTrip(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			first, err := json.Marshal(v)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			// Decode into a fresh value of the same dynamic type.
			back := newOf(v)
			if err := json.Unmarshal(first, back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			second, err := json.Marshal(back)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("round trip not stable:\n first: %s\nsecond: %s", first, second)
			}
		})
	}
}

// newOf returns a pointer to a fresh zero value of v's type, for
// round-trip decoding without generics gymnastics.
func newOf(v any) any {
	switch v.(type) {
	case LaunchRequest:
		return new(LaunchRequest)
	case Job:
		return new(Job)
	case JobResponse:
		return new(JobResponse)
	case JobsResponse:
		return new(JobsResponse)
	case ExperimentsResponse:
		return new(ExperimentsResponse)
	case ResultResponse:
		return new(ResultResponse)
	case PoliciesResponse:
		return new(PoliciesResponse)
	case PolicyResponse:
		return new(PolicyResponse)
	case Health:
		return new(Health)
	case ErrorResponse:
		return new(ErrorResponse)
	case FleetResponse:
		return new(FleetResponse)
	case Progress:
		return new(Progress)
	case Retry:
		return new(Retry)
	default:
		panic("unhandled golden type")
	}
}

func TestStatusForCoversEveryCode(t *testing.T) {
	want := map[string]int{
		CodeBadRequest:   400,
		CodeNotFound:     404,
		CodeConflict:     409,
		CodeQueueFull:    503,
		CodeDegraded:     503,
		CodeShuttingDown: 503,
		CodeUnavailable:  503,
		CodeInternal:     500,
	}
	for code, status := range want {
		if got := StatusFor(code); got != status {
			t.Errorf("StatusFor(%s) = %d, want %d", code, got, status)
		}
	}
}

func TestShedAndRetryHelpers(t *testing.T) {
	shed := &Error{Code: CodeQueueFull, Retryable: true, RetryAfterSec: 3}
	if !IsShed(shed) {
		t.Error("queue_full should be a shed")
	}
	if RetryAfter(shed) != 3 {
		t.Errorf("RetryAfter = %d, want 3", RetryAfter(shed))
	}
	if IsShed(&Error{Code: CodeBadRequest}) {
		t.Error("bad_request is not a shed")
	}
	if RetryAfter(&Error{Code: CodeDegraded, Retryable: true}) != 1 {
		t.Error("retryable without hint should floor at 1s")
	}
	if !IsNotFound(&Error{Code: CodeNotFound}) {
		t.Error("IsNotFound should match")
	}
}
