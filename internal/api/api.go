// Package api is the single source of truth for pythia-serve's wire
// format: every request and response DTO the HTTP service speaks, the
// JSON error envelope, and a typed Client that all Go consumers
// (pythia-load, pythia-train, examples, e2e tests) share instead of
// hand-rolling http.Get + json.Unmarshal.
//
// The API is versioned: every route lives under Prefix ("/api/v1").
// The unversioned "/api/..." aliases from earlier releases completed
// their deprecation window and now 404 (DESIGN.md "API v1"). The wire
// format of the v1 DTOs is pinned by golden fixture tests in this
// package — renaming a JSON field fails loudly there before it can
// break a client.
package api

import (
	"encoding/json"
	"time"

	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
)

// Version is the served API version; Prefix is the canonical route
// prefix every endpoint lives under.
const (
	Version = "v1"
	Prefix  = "/api/" + Version
)

// Job kinds: an experiment render, or a policy-training run.
const (
	KindExperiment = "experiment"
	KindTrain      = "train"
)

// Job statuses, in lifecycle order. Done, error and canceled are the
// terminal states; each is also the SSE event type of the job's final
// event.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusError    = "error"
	StatusCanceled = "canceled"
)

// TerminalStatus reports whether s is a terminal job status.
func TerminalStatus(s string) bool {
	return s == StatusDone || s == StatusError || s == StatusCanceled
}

// LaunchRequest is the POST /api/v1/runs body: either an experiment
// render or, with Train set, a policy-training job.
type LaunchRequest struct {
	Experiment string `json:"experiment,omitempty"`
	Scale      string `json:"scale,omitempty"`
	// Train requests a policy-training job instead of an experiment.
	Train *TrainRequest `json:"train,omitempty"`
}

// TrainRequest describes a POST-able training job.
type TrainRequest struct {
	// Workload is the training trace name (see pythia-sim -workloads).
	Workload string `json:"workload"`
	// Config is the Pythia configuration name; empty means "pythia".
	Config string `json:"config,omitempty"`
}

// Job is the JSON representation of a serve job (the service calls it a
// "run"): its identity, lifecycle state, caching provenance, and — once
// terminal — its artifact (a rendered experiment table or a trained
// policy's metadata).
type Job struct {
	ID string `json:"id"`
	// Kind is "experiment" or "train".
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	// Workload and Config describe a training job's target.
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	Title    string `json:"title"`
	Scale    string `json:"scale"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	// Cached reports that the result came from the persistent store.
	Cached bool `json:"cached"`
	// Sims is the number of simulations this job executed (0 on a store
	// hit: the zero-additional-work guarantee, measurable by clients).
	Sims int64 `json:"sims"`
	// Attempts is how many times the job entered execution (> 1 after
	// transient-failure retries or crash recovery).
	Attempts int `json:"attempts,omitempty"`
	// Recovered marks a job requeued from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Worker identifies the process executing (or that executed) the job
	// — a fleet worker's lease-owner ID. Empty for jobs run in-process by
	// a standalone server.
	Worker     string                     `json:"worker,omitempty"`
	CreatedAt  time.Time                  `json:"created_at"`
	StartedAt  *time.Time                 `json:"started_at,omitempty"`
	FinishedAt *time.Time                 `json:"finished_at,omitempty"`
	Result     *harness.ExperimentPayload `json:"result,omitempty"`
	// Policy is a finished training job's artifact (metadata only; the
	// snapshot downloads from /api/v1/policies/{id}/snapshot).
	Policy *policy.Meta `json:"policy,omitempty"`
	// Rendered is the table formatted as aligned text (terminal clients).
	Rendered string `json:"rendered,omitempty"`
	// Timeline is the job's stage history with per-stage durations; the
	// last stage's duration runs to now for live jobs, to FinishedAt once
	// terminal. Retried jobs show each attempt's leased→… sequence.
	Timeline []obs.StageView `json:"timeline,omitempty"`
}

// Terminal reports whether the job has reached done, error or canceled.
func (j Job) Terminal() bool { return TerminalStatus(j.Status) }

// JobResponse wraps a single job ({"job": ...}), the body of launch,
// status and cancel responses.
type JobResponse struct {
	Job Job `json:"job"`
}

// JobsResponse is the GET /api/v1/runs listing.
type JobsResponse struct {
	Jobs []Job `json:"jobs"`
}

// ExperimentInfo is one row of the experiment listing.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Extended marks studies beyond the paper's figures.
	Extended bool `json:"extended,omitempty"`
}

// ExperimentsResponse is the GET /api/v1/experiments body.
type ExperimentsResponse struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// ResultResponse is a stored experiment result fetched directly
// (GET /api/v1/results/{exp}?scale=...), no job required.
type ResultResponse struct {
	Result   harness.ExperimentPayload `json:"result"`
	Rendered string                    `json:"rendered"`
}

// PoliciesResponse lists stored policies' metadata (newest first);
// snapshots are not shipped — fetch one via its /snapshot path.
type PoliciesResponse struct {
	Policies []policy.Meta `json:"policies"`
}

// PolicyResponse is one policy's envelope metadata.
type PolicyResponse struct {
	Policy policy.Meta `json:"policy"`
}

// BreakerState is a circuit breaker's health snapshot.
type BreakerState struct {
	// State is "closed", "open", or "half-open" (open with an elapsed
	// cooldown: probes are admitted).
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               int64  `json:"trips"`
	LastError           string `json:"last_error,omitempty"`
}

// StoreHealth is one content-addressed store's traffic and size as seen
// in /healthz (derived from the metrics registry, so any store that
// registers pythia_store_* series appears).
type StoreHealth struct {
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Writes  int64  `json:"writes"`
	Entries int64  `json:"entries"`
	Dir     string `json:"dir,omitempty"`
}

// JournalHealth reports the crash-recovery journal's state.
type JournalHealth struct {
	Dir         string `json:"dir"`
	Recovered   int    `json:"recovered"`
	WriteErrors int64  `json:"write_errors"`
}

// Health is the GET /healthz body. OK flips false while any store
// breaker is open (degraded read-only mode) — the endpoint still answers
// 200, because the process is alive and serving store hits.
type Health struct {
	OK            bool                    `json:"ok"`
	Degraded      bool                    `json:"degraded"`
	Breakers      map[string]BreakerState `json:"breakers"`
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Jobs          int                     `json:"jobs"`
	QueueDepth    int                     `json:"queue_depth"`
	Queued        int                     `json:"queued"`
	Closing       bool                    `json:"closing"`
	Sims          int64                   `json:"sims"`
	Workers       int                     `json:"workers"`
	Stores        map[string]StoreHealth  `json:"stores"`
	Journal       *JournalHealth          `json:"journal,omitempty"`
}

// FleetWorker is one worker process in the GET /api/v1/fleet view.
type FleetWorker struct {
	// Owner is the worker's lease-owner identity (PID + start nonce).
	Owner string `json:"owner"`
	PID   int    `json:"pid"`
	// State is "starting" (spawned, no heartbeat yet), "idle", "busy", or
	// "stale" (heartbeat stopped; the coordinator is about to sweep it).
	State string `json:"state"`
	// Job is the claimed job while busy.
	Job string `json:"job,omitempty"`
	// Jobs and Sims are cumulative completed-job and executed-simulation
	// counters for this worker.
	Jobs int64 `json:"jobs"`
	Sims int64 `json:"sims"`
	// UptimeSeconds measures from the worker's first heartbeat.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// FleetStatus is the fleet coordinator's snapshot: the autoscaler's
// inputs and outputs plus the per-worker roster.
type FleetStatus struct {
	// Desired and Ready are the autoscaler's target worker count and the
	// count of live (heartbeating) workers.
	Desired int `json:"desired"`
	Ready   int `json:"ready"`
	// Starting counts spawned workers that have not heartbeat yet (cold
	// starts in progress).
	Starting int `json:"starting"`
	// Queued and InFlight are the scaling signals: claimable journal
	// records and claimed-but-unfinished jobs.
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// ColdStarts counts worker spawns over the coordinator's lifetime;
	// LastColdStartSeconds is the most recent spawn-to-ready latency.
	ColdStarts           int64   `json:"cold_starts"`
	LastColdStartSeconds float64 `json:"last_cold_start_seconds,omitempty"`
	// Requeues counts jobs whose expired claims the coordinator reaped.
	Requeues int64         `json:"requeues"`
	Workers  []FleetWorker `json:"workers"`
}

// FleetResponse wraps the GET /api/v1/fleet body.
type FleetResponse struct {
	Fleet FleetStatus `json:"fleet"`
}

// / Event is one server-sent event from a job's progress stream: a type
// tag (status/progress/retry, or a terminal job status) plus its JSON
// payload.
type Event struct {
	Type string
	Data json.RawMessage
}

// AsProgress decodes the payload of a "progress" event.
func (e Event) AsProgress() (Progress, error) {
	var p Progress
	err := json.Unmarshal(e.Data, &p)
	return p, err
}

// AsRetry decodes the payload of a "retry" event.
func (e Event) AsRetry() (Retry, error) {
	var r Retry
	err := json.Unmarshal(e.Data, &r)
	return r, err
}

// AsJob decodes a status or terminal event's payload, a full job view.
func (e Event) AsJob() (Job, error) {
	var j Job
	err := json.Unmarshal(e.Data, &j)
	return j, err
}

// Progress is the payload of a "progress" event.
type Progress struct {
	ID   string `json:"id"`
	Sims int64  `json:"sims"`
}

// Retry is the payload of a "retry" event (a transient failure with the
// backoff before the next attempt).
type Retry struct {
	ID        string `json:"id"`
	Attempt   int    `json:"attempt"`
	Error     string `json:"error"`
	BackoffMs int64  `json:"backoff_ms"`
}
