package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientDecodesErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorResponse{Error: Errorf(CodeNotFound, "no such run %q", "x")})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(0))
	_, err := c.Job(context.Background(), "x")
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if ae.Code != CodeNotFound || ae.HTTPStatus != 404 {
		t.Errorf("got code=%s status=%d", ae.Code, ae.HTTPStatus)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound should match")
	}
}

func TestClientSynthesizesEnvelopeFromPlainText(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "old-style plain text", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(0))
	_, err := c.Jobs(context.Background())
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if ae.Code != CodeUnavailable || !ae.Retryable || ae.Message != "old-style plain text" {
		t.Errorf("synthesized envelope wrong: %+v", ae)
	}
}

func TestClientRetriesHonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: Error{
				Code: CodeQueueFull, Message: "queue full", Retryable: true, RetryAfterSec: 1,
			}})
			return
		}
		json.NewEncoder(w).Encode(JobResponse{Job: Job{ID: "run-1", Status: StatusQueued}})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(5))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := c.Launch(ctx, LaunchRequest{Experiment: "fig1"})
	if err != nil {
		t.Fatalf("launch after sheds: %v", err)
	}
	if j.ID != "run-1" {
		t.Errorf("job id = %q", j.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestClientZeroRetriesSurfacesShedImmediately(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Error: Error{
			Code: CodeDegraded, Message: "breaker open", Retryable: true, RetryAfterSec: 1,
		}})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(0))
	_, err := c.Launch(context.Background(), LaunchRequest{Experiment: "fig1"})
	if !IsShed(err) {
		t.Fatalf("want shed error, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1", got)
	}
}

func TestClientDoesNotRetryNonRetryable(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: Errorf(CodeBadRequest, "unknown scale")})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(5))
	_, err := c.Launch(context.Background(), LaunchRequest{Experiment: "fig1", Scale: "nope"})
	ae, ok := err.(*Error)
	if !ok || ae.Code != CodeBadRequest {
		t.Fatalf("want bad_request, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("bad_request retried: %d calls", got)
	}
}

func TestClientEventsFollowsSSEToTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		emit := func(typ string, payload any) {
			b, _ := json.Marshal(payload)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, b)
			fl.Flush()
		}
		emit("status", Job{ID: "run-9", Status: StatusQueued})
		emit("progress", Progress{ID: "run-9", Sims: 3})
		emit(StatusDone, Job{ID: "run-9", Status: StatusDone, Sims: 3})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(0))
	var types []string
	j, err := c.Events(context.Background(), "run-9", func(ev Event) {
		types = append(types, ev.Type)
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if j.Status != StatusDone || j.Sims != 3 {
		t.Errorf("terminal job = %+v", j)
	}
	want := []string{"status", "progress", "done"}
	if len(types) != len(want) {
		t.Fatalf("saw events %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, types[i], want[i])
		}
	}
}

func TestClientWaitPollsToTerminal(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := StatusRunning
		if calls.Add(1) >= 3 {
			st = StatusDone
		}
		json.NewEncoder(w).Encode(JobResponse{Job: Job{ID: "run-2", Status: st}})
	}))
	defer srv.Close()

	c := NewClient(srv.URL, WithRetries(0))
	j, err := c.Wait(context.Background(), "run-2", time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Errorf("status = %s", j.Status)
	}
}
