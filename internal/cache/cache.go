// Package cache implements the on-chip memory hierarchy: set-associative
// caches with LRU and SHiP replacement, MSHR-style outstanding-miss tracking
// with miss merging, and the three-level L1D/L2/LLC hierarchy that drives
// prefetchers and the DRAM model. It mirrors the simulated system of the
// paper's Table 5.
package cache

import "fmt"

// tagValid marks a resident way in the packed tag array. Line addresses are
// byte addresses shifted right by 6, so they always fit below bit 63 and the
// valid bit can ride in the tag word itself: an 8-way set's hit scan compares
// eight contiguous uint64s — a single 64-byte cache line — with no branches
// on a separate valid flag.
const tagValid = 1 << 63

// lineMeta holds the per-line state that the hit scan does not need. Keeping
// it in a parallel array keeps the scan's footprint to the tag words alone;
// metadata is touched only on hits, fills, and evictions.
type lineMeta struct {
	dirty    bool
	prefetch bool // filled by a prefetch and not yet demanded
}

// line is a reconstructed per-way view used by tests and debugging; the
// cache itself stores columns (tags, meta), not an array of these.
type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool
}

// Replacement chooses victims and reacts to hits/fills. Implementations:
// LRU and SHiP.
type Replacement interface {
	// Hit notes a demand hit on (set, way).
	Hit(set, way int, pc uint64)
	// Fill notes a fill into (set, way).
	Fill(set, way int, pc uint64, prefetch bool)
	// Victim picks the way to evict in set (invalid ways are handled by the
	// cache before calling Victim).
	Victim(set int) int
	// Evict notes that (set, way) was evicted; reused reports whether the
	// line saw a demand hit during residency (used by SHiP training).
	Evict(set, way int, reused bool)
}

// Cache is a single set-associative cache level. Storage is structure-of-
// arrays: tags (with the valid bit packed in) separate from metadata, so the
// dominant operation — the tag scan — reads one contiguous run of words.
type Cache struct {
	// Hot fields first so the scan's working state (tag slice header, set
	// mask, counters, fast replacement pointer) shares a cache line.
	tags []uint64
	sets int
	ways int
	// wayShift is log2(ways) when ways is a power of two (always, for the
	// Table 5 geometries), letting rowBase compute set*ways as a shift off
	// the probe's critical path; -1 selects the multiply fallback.
	wayShift int
	// lruFast devirtualizes the replacement policy when it is the built-in
	// LRU (L1 and L2 always are): Access/Fill bump the stamp directly
	// instead of paying an interface dispatch per hit. Behaviour is
	// identical to calling repl.Hit/repl.Fill.
	lruFast *lru

	// Hits and Misses count demand lookups.
	Hits, Misses int64

	meta []lineMeta
	repl Replacement
	name string
}

// NewCache builds a cache of sizeKB with the given associativity and
// replacement policy. Sets must come out a power of two.
func NewCache(name string, sizeKB, ways int, repl func(sets, ways int) Replacement) *Cache {
	sets := sizeKB * 1024 / 64 / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %dKB/%d-way yields non-power-of-two sets %d", name, sizeKB, ways, sets))
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		wayShift: -1,
		tags:     make([]uint64, sets*ways),
		meta:     make([]lineMeta, sets*ways),
		repl:     repl(sets, ways),
	}
	if ways&(ways-1) == 0 {
		for s := 0; 1<<s <= ways; s++ {
			if 1<<s == ways {
				c.wayShift = s
			}
		}
	}
	if p, ok := c.repl.(*lru); ok {
		c.lruFast = p
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

// rowBase returns the index of a set's first way in the tags/meta columns.
func (c *Cache) rowBase(set int) int {
	if c.wayShift >= 0 {
		return set << uint(c.wayShift)
	}
	return set * c.ways
}

// at reconstructs one way's state (test hook).
func (c *Cache) at(set, way int) line {
	idx := set*c.ways + way
	t, m := c.tags[idx], c.meta[idx]
	return line{tag: t &^ tagValid, valid: t&tagValid != 0, dirty: m.dirty, prefetch: m.prefetch}
}

// Lookup probes for lineAddr without updating replacement state.
// It returns the way and whether it hit.
func (c *Cache) Lookup(lineAddr uint64) (way int, hit bool) {
	base := c.rowBase(c.setOf(lineAddr))
	tags := c.tags[base : base+c.ways]
	want := lineAddr | tagValid
	for w := range tags {
		if tags[w] == want {
			return w, true
		}
	}
	return -1, false
}

// Access performs a demand lookup, updating hit statistics and replacement
// state. wasPrefetch reports whether the hit line had been brought in by a
// prefetch and not demanded before (the "useful prefetch" signal); the flag
// is cleared so each prefetched line counts once.
func (c *Cache) Access(lineAddr, pc uint64, store bool) (hit, wasPrefetch bool) {
	set := c.setOf(lineAddr)
	base := c.rowBase(set)
	tags := c.tags[base : base+c.ways]
	want := lineAddr | tagValid
	way := -1
	for w := range tags {
		if tags[w] == want {
			way = w
			break
		}
	}
	if way < 0 {
		c.Misses++
		return false, false
	}
	c.Hits++
	idx := base + way
	if p := c.lruFast; p != nil {
		p.clock++
		p.stamp[idx] = p.clock
	} else {
		c.repl.Hit(set, way, pc)
	}
	m := &c.meta[idx]
	wasPrefetch = m.prefetch
	m.prefetch = false
	if store {
		m.dirty = true
	}
	return true, wasPrefetch
}

// Evicted describes a line pushed out by a fill.
type Evicted struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Fill inserts lineAddr, evicting if needed. The returned Evicted is valid
// only if a resident line was displaced.
func (c *Cache) Fill(lineAddr, pc uint64, isPrefetch, dirty bool) Evicted {
	set := c.setOf(lineAddr)
	base := c.rowBase(set)
	tags := c.tags[base : base+c.ways]
	want := lineAddr | tagValid
	// One pass finds both a resident copy (e.g. a racing fill: refresh and
	// return) and the first invalid way.
	way := -1
	for w := range tags {
		t := tags[w]
		if t == want {
			if dirty {
				c.meta[base+w].dirty = true
			}
			return Evicted{}
		}
		if t&tagValid == 0 && way < 0 {
			way = w
		}
	}
	var out Evicted
	if way < 0 {
		way = c.repl.Victim(set)
		idx := base + way
		m := c.meta[idx]
		out = Evicted{Line: c.tags[idx] &^ tagValid, Dirty: m.dirty, Valid: true}
		c.repl.Evict(set, way, !m.prefetch) // untouched prefetch counts as dead on arrival
	}
	idx := base + way
	c.tags[idx] = want
	c.meta[idx] = lineMeta{dirty: dirty, prefetch: isPrefetch}
	if p := c.lruFast; p != nil {
		p.clock++
		p.stamp[idx] = p.clock
	} else {
		c.repl.Fill(set, way, pc, isPrefetch)
	}
	return out
}

// Invalidate removes lineAddr if present and returns whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	base := c.rowBase(c.setOf(lineAddr))
	tags := c.tags[base : base+c.ways]
	want := lineAddr | tagValid
	for w := range tags {
		if tags[w] == want {
			c.tags[base+w] = 0
			return true, c.meta[base+w].dirty
		}
	}
	return false, false
}

// ResetStats clears hit/miss counters (contents are preserved).
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }

// lru is least-recently-used replacement via a monotonic use stamp.
type lru struct {
	ways  int
	stamp []int64
	clock int64
}

// NewLRU returns an LRU replacement policy.
func NewLRU(sets, ways int) Replacement {
	return &lru{ways: ways, stamp: make([]int64, sets*ways)}
}

func (p *lru) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// Hit implements Replacement.
func (p *lru) Hit(set, way int, pc uint64) { p.touch(set, way) }

// Fill implements Replacement.
func (p *lru) Fill(set, way int, pc uint64, prefetch bool) { p.touch(set, way) }

// Victim implements Replacement.
func (p *lru) Victim(set int) int {
	base := set * p.ways
	st := p.stamp[base : base+p.ways]
	best, bestStamp := 0, st[0]
	for w := 1; w < len(st); w++ {
		if st[w] < bestStamp {
			best, bestStamp = w, st[w]
		}
	}
	return best
}

// Evict implements Replacement.
func (p *lru) Evict(set, way int, reused bool) {}
