// Package cache implements the on-chip memory hierarchy: set-associative
// caches with LRU and SHiP replacement, MSHR-style outstanding-miss tracking
// with miss merging, and the three-level L1D/L2/LLC hierarchy that drives
// prefetchers and the DRAM model. It mirrors the simulated system of the
// paper's Table 5.
package cache

import "fmt"

// line is one cache line's metadata.
type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool // filled by a prefetch and not yet demanded
	pc       uint64
}

// Replacement chooses victims and reacts to hits/fills. Implementations:
// LRU and SHiP.
type Replacement interface {
	// Hit notes a demand hit on (set, way).
	Hit(set, way int, pc uint64)
	// Fill notes a fill into (set, way).
	Fill(set, way int, pc uint64, prefetch bool)
	// Victim picks the way to evict in set (invalid ways are handled by the
	// cache before calling Victim).
	Victim(set int) int
	// Evict notes that (set, way) was evicted; reused reports whether the
	// line saw a demand hit during residency (used by SHiP training).
	Evict(set, way int, reused bool)
}

// Cache is a single set-associative cache level.
type Cache struct {
	name  string
	sets  int
	ways  int
	lines []line
	repl  Replacement

	// Hits and Misses count demand lookups.
	Hits, Misses int64
}

// NewCache builds a cache of sizeKB with the given associativity and
// replacement policy. Sets must come out a power of two.
func NewCache(name string, sizeKB, ways int, repl func(sets, ways int) Replacement) *Cache {
	sets := sizeKB * 1024 / 64 / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %dKB/%d-way yields non-power-of-two sets %d", name, sizeKB, ways, sets))
	}
	return &Cache{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]line, sets*ways),
		repl:  repl(sets, ways),
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *Cache) at(set, way int) *line { return &c.lines[set*c.ways+way] }

// Lookup probes for lineAddr without updating replacement state.
// It returns the way and whether it hit.
func (c *Cache) Lookup(lineAddr uint64) (way int, hit bool) {
	set := c.setOf(lineAddr)
	tag := lineAddr >> 1 // full tag minus nothing meaningful; keep whole address
	_ = tag
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == lineAddr {
			return w, true
		}
	}
	return -1, false
}

// Access performs a demand lookup, updating hit statistics and replacement
// state. wasPrefetch reports whether the hit line had been brought in by a
// prefetch and not demanded before (the "useful prefetch" signal); the flag
// is cleared so each prefetched line counts once.
func (c *Cache) Access(lineAddr, pc uint64, store bool) (hit, wasPrefetch bool) {
	set := c.setOf(lineAddr)
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == lineAddr {
			c.Hits++
			c.repl.Hit(set, w, pc)
			wasPrefetch = l.prefetch
			l.prefetch = false
			if store {
				l.dirty = true
			}
			return true, wasPrefetch
		}
	}
	c.Misses++
	return false, false
}

// Evicted describes a line pushed out by a fill.
type Evicted struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Fill inserts lineAddr, evicting if needed. The returned Evicted is valid
// only if a resident line was displaced.
func (c *Cache) Fill(lineAddr, pc uint64, isPrefetch, dirty bool) Evicted {
	set := c.setOf(lineAddr)
	// Already present (e.g. a racing fill): refresh and return.
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == lineAddr {
			if dirty {
				l.dirty = true
			}
			return Evicted{}
		}
	}
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.at(set, w).valid {
			way = w
			break
		}
	}
	var out Evicted
	if way < 0 {
		way = c.repl.Victim(set)
		v := c.at(set, way)
		out = Evicted{Line: v.tag, Dirty: v.dirty, Valid: true}
		c.repl.Evict(set, way, !v.prefetch) // untouched prefetch counts as dead on arrival
	}
	*c.at(set, way) = line{tag: lineAddr, valid: true, dirty: dirty, prefetch: isPrefetch, pc: pc}
	c.repl.Fill(set, way, pc, isPrefetch)
	return out
}

// Invalidate removes lineAddr if present and returns whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set := c.setOf(lineAddr)
	for w := 0; w < c.ways; w++ {
		l := c.at(set, w)
		if l.valid && l.tag == lineAddr {
			l.valid = false
			return true, l.dirty
		}
	}
	return false, false
}

// ResetStats clears hit/miss counters (contents are preserved).
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }

// lru is least-recently-used replacement via a monotonic use stamp.
type lru struct {
	ways  int
	stamp []int64
	clock int64
}

// NewLRU returns an LRU replacement policy.
func NewLRU(sets, ways int) Replacement {
	return &lru{ways: ways, stamp: make([]int64, sets*ways)}
}

func (p *lru) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// Hit implements Replacement.
func (p *lru) Hit(set, way int, pc uint64) { p.touch(set, way) }

// Fill implements Replacement.
func (p *lru) Fill(set, way int, pc uint64, prefetch bool) { p.touch(set, way) }

// Victim implements Replacement.
func (p *lru) Victim(set int) int {
	best, bestStamp := 0, int64(1<<62)
	for w := 0; w < p.ways; w++ {
		if s := p.stamp[set*p.ways+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}

// Evict implements Replacement.
func (p *lru) Evict(set, way int, reused bool) {}
