package cache

// missTable maps outstanding miss line addresses to their entries. It
// replaces a map[uint64]*missEntry on the miss path: occupancy is bounded
// by MSHRs+PrefetchBudget, so a fixed-size open-addressing table with
// linear probing stays under 25% load and resolves get/put/del in a probe
// or two without hashing overhead or map bucket bookkeeping. Deletion uses
// backward-shift compaction, so there are no tombstones to accumulate.
// The table is pure lookup structure: nothing observable depends on its
// iteration order (it has none), so swapping it for the map cannot change
// simulation results.
type missTable struct {
	mask       uint64
	probeShift uint
	lines      []uint64
	entries    []*missEntry
	n          int
}

// newMissTable sizes the table to keep load factor at or below 25% for
// capacity live entries.
func newMissTable(capacity int) *missTable {
	size := 16
	for size < 4*capacity {
		size <<= 1
	}
	b := uint(0)
	for 1<<b < size {
		b++
	}
	return &missTable{
		mask:       uint64(size - 1),
		probeShift: 64 - b,
		lines:      make([]uint64, size),
		entries:    make([]*missEntry, size),
	}
}

// home returns the preferred slot for a line: the top bits of a Fibonacci
// multiply, which spread both dense strided lines and per-core high-bit
// offsets.
func (t *missTable) home(line uint64) uint64 {
	return (line * 0x9E3779B97F4A7C15) >> t.probeShift
}

// get returns the entry for line, or nil.
func (t *missTable) get(line uint64) *missEntry {
	i := t.home(line)
	for {
		e := t.entries[i]
		if e == nil {
			return nil
		}
		if t.lines[i] == line {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// put inserts an entry for a line that is not present (outstanding misses
// are unique per line; merges update the existing entry instead).
func (t *missTable) put(line uint64, e *missEntry) {
	i := t.home(line)
	for t.entries[i] != nil {
		i = (i + 1) & t.mask
	}
	t.lines[i], t.entries[i] = line, e
	t.n++
}

// del removes a present line, compacting the probe chain behind it
// (backward-shift deletion) so lookups never need tombstones.
func (t *missTable) del(line uint64) {
	i := t.home(line)
	for t.lines[i] != line || t.entries[i] == nil {
		i = (i + 1) & t.mask
	}
	for {
		t.entries[i] = nil
		j := i
		for {
			j = (j + 1) & t.mask
			if t.entries[j] == nil {
				t.n--
				return
			}
			// An entry at j can fill the hole at i only if i lies on j's
			// probe path, i.e. cyclically between j's home slot and j.
			if k := t.home(t.lines[j]); (j-k)&t.mask >= (j-i)&t.mask {
				t.lines[i], t.entries[i] = t.lines[j], t.entries[j]
				i = j
				break
			}
		}
	}
}

// size returns the number of live entries (test hook).
func (t *missTable) size() int { return t.n }
