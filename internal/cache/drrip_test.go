package cache

import "testing"

func TestDRRIPBasicVictim(t *testing.T) {
	d := NewDRRIP(64, 4).(*drrip)
	for w := 0; w < 4; w++ {
		d.Fill(5, w, uint64(w), false)
	}
	v := d.Victim(5)
	if v < 0 || v >= 4 {
		t.Fatalf("victim %d out of range", v)
	}
}

func TestDRRIPHitPromotes(t *testing.T) {
	d := NewDRRIP(64, 2).(*drrip)
	d.Fill(5, 0, 1, false)
	d.Fill(5, 1, 2, false)
	d.Hit(5, 0, 1)
	if v := d.Victim(5); v != 1 {
		t.Errorf("victim %d, want the non-promoted way 1", v)
	}
}

func TestDRRIPPrefetchDistant(t *testing.T) {
	d := NewDRRIP(64, 2).(*drrip)
	d.Fill(5, 0, 1, false)
	d.Fill(5, 1, 2, true) // prefetch: immediately evictable
	if v := d.Victim(5); v != 1 {
		t.Errorf("victim %d, want the prefetched way", v)
	}
}

func TestDRRIPDueling(t *testing.T) {
	d := NewDRRIP(64, 4).(*drrip)
	// Misses in SRRIP leaders decrement PSEL; in BRRIP leaders increment.
	start := d.psel
	for i := 0; i < 10; i++ {
		d.Fill(0, i%4, 1, false) // set 0: SRRIP leader
	}
	if d.psel >= start {
		t.Errorf("SRRIP-leader misses did not decrement PSEL: %d -> %d", start, d.psel)
	}
	mid := d.psel
	for i := 0; i < 10; i++ {
		d.Fill(1, i%4, 1, false) // set 1: BRRIP leader
	}
	if d.psel <= mid {
		t.Errorf("BRRIP-leader misses did not increment PSEL: %d -> %d", mid, d.psel)
	}
}

func TestDRRIPWorksInCache(t *testing.T) {
	c := NewCache("drrip", 256, 16, NewDRRIP)
	// Fill-and-hit sanity through the generic cache path.
	for i := uint64(0); i < 1000; i++ {
		c.Fill(i, i, false, false)
	}
	hits := 0
	for i := uint64(990); i < 1000; i++ {
		if _, hit := c.Lookup(i); hit {
			hits++
		}
	}
	if hits == 0 {
		t.Error("recently filled lines all evicted")
	}
}
