package cache

// DRRIP (Dynamic Re-Reference Interval Prediction, Jaleel et al., ISCA
// 2010) replacement: set-dueling between SRRIP (insert at distant RRPV)
// and BRRIP (insert at max RRPV with occasional promotion), with a policy
// selector counter picking the winner for follower sets. Provided as an
// alternative LLC policy to SHiP for replacement-sensitivity studies.

const (
	drripMaxRRPV   = 3
	drripPSELMax   = 1023
	drripBRRIPProb = 32 // 1-in-N BRRIP insertions at distant (not max) RRPV
)

type drrip struct {
	sets, ways int
	rrpv       []uint8
	psel       int
	counter    int
	// Leader sets: low bits pick SRRIP leaders and BRRIP leaders.
	leaderMask int
}

// NewDRRIP returns a DRRIP replacement policy.
func NewDRRIP(sets, ways int) Replacement {
	return &drrip{
		sets:       sets,
		ways:       ways,
		rrpv:       make([]uint8, sets*ways),
		psel:       drripPSELMax / 2,
		leaderMask: 31,
	}
}

// setKind classifies a set: 0 = SRRIP leader, 1 = BRRIP leader, 2 = follower.
func (d *drrip) setKind(set int) int {
	switch set & d.leaderMask {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 2
	}
}

// Hit implements Replacement.
func (d *drrip) Hit(set, way int, pc uint64) {
	d.rrpv[set*d.ways+way] = 0
}

// Fill implements Replacement.
func (d *drrip) Fill(set, way int, pc uint64, prefetch bool) {
	useBRRIP := false
	switch d.setKind(set) {
	case 0: // SRRIP leader: a miss here charges SRRIP
		if d.psel > 0 {
			d.psel--
		}
	case 1: // BRRIP leader
		useBRRIP = true
		if d.psel < drripPSELMax {
			d.psel++
		}
	default:
		useBRRIP = d.psel < drripPSELMax/2
	}
	r := uint8(drripMaxRRPV - 1) // SRRIP insertion
	if useBRRIP {
		r = drripMaxRRPV
		d.counter++
		if d.counter%drripBRRIPProb == 0 {
			r = drripMaxRRPV - 1
		}
	}
	if prefetch {
		r = drripMaxRRPV
	}
	d.rrpv[set*d.ways+way] = r
}

// Victim implements Replacement.
func (d *drrip) Victim(set int) int {
	// Closed form of the rescan-and-age reference loop; see ship.Victim.
	rr := d.rrpv[set*d.ways : set*d.ways+d.ways]
	victim, maxR := 0, rr[0]
	for w := 1; w < len(rr); w++ {
		if r := rr[w]; r > maxR {
			victim, maxR = w, r
		}
	}
	if age := drripMaxRRPV - maxR; age > 0 {
		for w := range rr {
			rr[w] += age
		}
	}
	return victim
}

// Evict implements Replacement.
func (d *drrip) Evict(set, way int, reused bool) {}
