package cache

import (
	"testing"
	"testing/quick"
)

func newLRUCache(sizeKB, ways int) *Cache {
	return NewCache("test", sizeKB, ways, NewLRU)
}

func TestCacheGeometry(t *testing.T) {
	c := newLRUCache(32, 8)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Errorf("32KB/8w: %d sets × %d ways", c.Sets(), c.Ways())
	}
	if c.Name() != "test" {
		t.Errorf("Name() = %q", c.Name())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets should panic")
		}
	}()
	NewCache("bad", 33, 8, NewLRU)
}

func TestFillThenHit(t *testing.T) {
	c := newLRUCache(32, 8)
	if _, hit := c.Lookup(100); hit {
		t.Fatal("empty cache should miss")
	}
	c.Fill(100, 1, false, false)
	if _, hit := c.Lookup(100); !hit {
		t.Fatal("filled line should hit")
	}
	hit, wasPf := c.Access(100, 1, false)
	if !hit || wasPf {
		t.Errorf("Access = (%v,%v), want (true,false)", hit, wasPf)
	}
	if c.Hits != 1 || c.Misses != 0 {
		t.Errorf("stats %d/%d", c.Hits, c.Misses)
	}
}

func TestPrefetchBitOnce(t *testing.T) {
	c := newLRUCache(32, 8)
	c.Fill(200, 1, true, false)
	_, wasPf := c.Access(200, 1, false)
	if !wasPf {
		t.Error("first demand to prefetched line should report wasPrefetch")
	}
	_, wasPf = c.Access(200, 1, false)
	if wasPf {
		t.Error("wasPrefetch must clear after the first demand")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache("tiny", 1, 2, NewLRU)            // 8 sets × 2 ways
	set0 := func(i uint64) uint64 { return i * 8 } // keep everything in set 0
	c.Fill(set0(1), 0, false, false)
	c.Fill(set0(2), 0, false, false)
	c.Access(set0(1), 0, false) // make line 1 recently used
	ev := c.Fill(set0(3), 0, false, false)
	if !ev.Valid || ev.Line != set0(2) {
		t.Errorf("LRU should evict line %d, evicted %+v", set0(2), ev)
	}
	if _, hit := c.Lookup(set0(1)); !hit {
		t.Error("recently used line was evicted")
	}
}

func TestDirtyEvictionSignalled(t *testing.T) {
	c := NewCache("tiny", 1, 1, NewLRU) // direct mapped, 16 sets
	c.Fill(0, 0, false, true)           // dirty
	ev := c.Fill(16, 0, false, false)   // same set (16 sets → line%16)
	if !ev.Valid || !ev.Dirty || ev.Line != 0 {
		t.Errorf("dirty eviction not signalled: %+v", ev)
	}
}

func TestStoreMarksDirty(t *testing.T) {
	c := NewCache("tiny", 1, 1, NewLRU)
	c.Fill(0, 0, false, false)
	c.Access(0, 0, true) // store
	ev := c.Fill(16, 0, false, false)
	if !ev.Dirty {
		t.Error("store did not mark the line dirty")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := newLRUCache(32, 8)
	c.Fill(7, 0, false, false)
	ev := c.Fill(7, 0, false, true)
	if ev.Valid {
		t.Error("refilling a resident line must not evict")
	}
	// The refill's dirty bit sticks.
	evict := c.Fill(7+uint64(c.Sets()), 0, false, false)
	_ = evict
	c2 := NewCache("tiny", 1, 1, NewLRU)
	c2.Fill(3, 0, false, false)
	c2.Fill(3, 0, false, true)
	ev = c2.Fill(3+16, 0, false, false)
	if !ev.Dirty {
		t.Error("refill dirty bit lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := newLRUCache(32, 8)
	c.Fill(42, 0, false, true)
	present, dirty := c.Invalidate(42)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v)", present, dirty)
	}
	if _, hit := c.Lookup(42); hit {
		t.Error("line still present after invalidation")
	}
	if present, _ := c.Invalidate(42); present {
		t.Error("double invalidation should report absent")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := newLRUCache(32, 8)
	c.Fill(9, 0, false, false)
	c.Access(9, 0, false)
	c.Access(10, 0, false)
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("stats not reset")
	}
	if _, hit := c.Lookup(9); !hit {
		t.Error("reset should preserve contents")
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	c := NewCache("tiny", 1, 2, NewLRU)
	f := func(lines []uint64) bool {
		for _, l := range lines {
			c.Fill(l%1024, 0, false, false)
		}
		// Count valid lines per set.
		for set := 0; set < c.Sets(); set++ {
			n := 0
			for w := 0; w < c.Ways(); w++ {
				if c.at(set, w).valid {
					n++
				}
			}
			if n > c.Ways() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLookupAfterFillProperty(t *testing.T) {
	c := newLRUCache(256, 16)
	f := func(line uint64) bool {
		line %= 1 << 30
		c.Fill(line, 0, false, false)
		_, hit := c.Lookup(line)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
