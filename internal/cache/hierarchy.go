package cache

import (
	"fmt"

	"pythia/internal/dram"
	"pythia/internal/mem"
	"pythia/internal/prefetch"
	"pythia/internal/xlat"
)

// Config describes the hierarchy, defaulting to the paper's Table 5 system.
type Config struct {
	Cores int

	L1SizeKB, L1Ways int
	L2SizeKB, L2Ways int
	// LLCSizeKBPerCore scales the shared LLC with core count (2MB/core).
	LLCSizeKBPerCore int
	LLCWays          int

	L1Latency, L2Latency, LLCLatency int64

	// MSHRs bounds outstanding demand misses per core at the L2/LLC
	// boundary.
	MSHRs int
	// PrefetchBudget bounds outstanding prefetch misses per core (the
	// prefetch queue + LLC MSHR share); prefetches beyond it are dropped,
	// as in hardware.
	PrefetchBudget int

	// Translate enables virtual-to-physical translation per core: traces
	// carry virtual addresses and the hierarchy operates on scattered
	// physical frames (ablation; see internal/xlat).
	Translate bool

	// LLCPolicy selects the shared-LLC replacement policy: "ship"
	// (default, Table 5), "drrip", or "lru".
	LLCPolicy string

	DRAM dram.Config
}

// DefaultConfig returns the Table 5 configuration for n cores with the
// paper's per-core-count channel scaling (1C–2C: 1 channel, 4C–6C: 2,
// 8C–12C: 4).
func DefaultConfig(cores int) Config {
	channels := 1
	switch {
	case cores >= 8:
		channels = 4
	case cores >= 4:
		channels = 2
	}
	return Config{
		Cores:            cores,
		L1SizeKB:         32,
		L1Ways:           8,
		L2SizeKB:         256,
		L2Ways:           8,
		LLCSizeKBPerCore: 2048,
		LLCWays:          16,
		L1Latency:        4,
		L2Latency:        14,
		LLCLatency:       34,
		MSHRs:            32,
		PrefetchBudget:   64,
		DRAM:             dram.DDR4_2400(channels),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cache: cores must be positive, got %d", c.Cores)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache: MSHRs must be positive, got %d", c.MSHRs)
	}
	if c.PrefetchBudget <= 0 {
		return fmt.Errorf("cache: prefetch budget must be positive, got %d", c.PrefetchBudget)
	}
	switch c.LLCPolicy {
	case "", "ship", "drrip", "lru":
	default:
		return fmt.Errorf("cache: unknown LLC policy %q", c.LLCPolicy)
	}
	return c.DRAM.Validate()
}

// CoreStats accumulates per-core memory-system statistics used by the
// harness to compute the paper's coverage/overprediction metrics
// (Appendix A.6).
type CoreStats struct {
	// Demand traffic.
	Accesses, Loads   int64
	L1Misses          int64
	L2Misses          int64
	LLCLoadMisses     int64 // demand loads that missed the LLC (incl. merges into in-flight prefetches)
	LLCDemandAccesses int64

	// DRAMReads counts LLC-to-memory reads issued on behalf of this core
	// (demand + prefetch): the paper's "LLC read miss".
	DRAMReads int64

	// Prefetcher activity.
	PfIssued   int64 // candidates accepted for issue
	PfDropped  int64 // dropped: already cached/outstanding or MSHRs full
	PfToDRAM   int64 // prefetches that read main memory
	PfFills    int64 // prefetch fills into L2/LLC
	PfUseful   int64 // prefetched lines later demanded (incl. late)
	PfLate     int64 // demand merged with an in-flight prefetch
	Writebacks int64
	PfLLCHits  int64
}

// Accuracy returns useful/issued in [0,1].
func (s CoreStats) Accuracy() float64 {
	if s.PfIssued == 0 {
		return 0
	}
	return float64(s.PfUseful) / float64(s.PfIssued)
}

type missEntry struct {
	line     uint64
	complete int64
	prefetch bool
	pc       uint64
	store    bool
	demanded bool // a demand merged while in flight
}

// heapNode pairs an entry with a copy of its completion cycle. complete is
// immutable once an entry is in flight (merges only flip demanded/store),
// so caching it in the node keeps the sift comparisons on contiguous memory
// instead of chasing a pointer per compare.
type heapNode struct {
	complete int64
	e        *missEntry
}

// missHeap is a binary min-heap on complete. The sift loops replicate
// container/heap's algorithm exactly — same comparisons, same swap choices
// — so the pop order of equal-complete entries (which feeds replacement
// state through fill order) is unchanged from when this was driven through
// heap.Push/heap.Pop; the concrete methods just drop the interface
// dispatch and per-op allocation of the boxed API.
type missHeap []heapNode

func (h *missHeap) pushEntry(e *missEntry) {
	s := append(*h, heapNode{e.complete, e})
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s[j].complete >= s[i].complete {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

func (h *missHeap) popEntry() *missEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].complete < s[j].complete {
			j = j2
		}
		if s[j].complete >= s[i].complete {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n].e
	s[n] = heapNode{}
	*h = s[:n]
	return e
}

type corePipes struct {
	// Ordered so the per-access working set (L1 pointer, pending peek,
	// mmu/l1pf nil checks, leading stats counters) packs into the first
	// cache lines of the struct.
	l1, l2      *Cache
	pending     missHeap
	mmu         *xlat.MMU
	l1pf        prefetch.Prefetcher
	stats       CoreStats
	l2pf        prefetch.Prefetcher
	outstanding *missTable
	free        []*missEntry // retired entries recycled by newEntry
	demandOut   int          // outstanding demand misses
	pfOut       int          // outstanding prefetch misses
}

// newEntry takes an entry from the free pool, or allocates one. Occupancy
// is bounded by MSHRs+PrefetchBudget, so the pool stays small and steady
// state allocates nothing.
func (cp *corePipes) newEntry() *missEntry {
	if n := len(cp.free); n > 0 {
		e := cp.free[n-1]
		cp.free = cp.free[:n-1]
		return e
	}
	return &missEntry{}
}

func (cp *corePipes) recycle(e *missEntry) { cp.free = append(cp.free, e) }

// Hierarchy is the full memory system below the cores: per-core L1D and L2,
// a shared LLC, prefetchers at the L2 (and optionally L1), and DRAM.
type Hierarchy struct {
	cfg   Config
	cores []corePipes
	llc   *Cache
	dram  *dram.Controller
}

// NewHierarchy builds the memory system. Prefetchers are attached with
// AttachPrefetcher afterwards; all cores start with no prefetching.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	llcRepl := NewSHiP
	switch cfg.LLCPolicy {
	case "drrip":
		llcRepl = NewDRRIP
	case "lru":
		llcRepl = NewLRU
	}
	h := &Hierarchy{
		cfg:   cfg,
		cores: make([]corePipes, cfg.Cores),
		llc:   NewCache("LLC", cfg.LLCSizeKBPerCore*cfg.Cores, cfg.LLCWays, llcRepl),
		dram:  dram.NewController(cfg.DRAM),
	}
	for i := range h.cores {
		h.cores[i] = corePipes{
			l1:          NewCache(fmt.Sprintf("L1D%d", i), cfg.L1SizeKB, cfg.L1Ways, NewLRU),
			l2:          NewCache(fmt.Sprintf("L2_%d", i), cfg.L2SizeKB, cfg.L2Ways, NewLRU),
			l2pf:        prefetch.None{},
			outstanding: newMissTable(cfg.MSHRs + cfg.PrefetchBudget),
		}
		if cfg.Translate {
			h.cores[i].mmu = xlat.NewMMU(uint64(i) + 1)
		}
	}
	return h, nil
}

// AttachPrefetcher sets the L2 prefetcher of a core.
func (h *Hierarchy) AttachPrefetcher(core int, p prefetch.Prefetcher) {
	h.cores[core].l2pf = p
}

// AttachL1Prefetcher sets an optional L1 prefetcher (multi-level schemes of
// Fig. 8d). Its candidates fill the L1 as well as lower levels.
func (h *Hierarchy) AttachL1Prefetcher(core int, p prefetch.Prefetcher) {
	h.cores[core].l1pf = p
}

// BandwidthUtil implements prefetch.System using the DRAM bus monitor.
func (h *Hierarchy) BandwidthUtil() float64 { return h.dram.Util() }

// DRAM returns the memory controller (for bandwidth buckets and stats).
func (h *Hierarchy) DRAM() *dram.Controller { return h.dram }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// CoreStats returns a copy of a core's statistics.
func (h *Hierarchy) CoreStats(core int) CoreStats { return h.cores[core].stats }

// ResetStats clears all statistics at the warmup/measurement boundary.
// Cache and predictor state is preserved.
func (h *Hierarchy) ResetStats() {
	for i := range h.cores {
		h.cores[i].stats = CoreStats{}
		h.cores[i].l1.ResetStats()
		h.cores[i].l2.ResetStats()
	}
	h.llc.ResetStats()
	h.dram.ResetStats()
}

// drain retires all in-flight misses that completed by cycle: prefetch
// entries fill L2+LLC and notify the prefetcher; demand entries fill the
// whole path.
func (h *Hierarchy) drain(core int, cycle int64) {
	cp := &h.cores[core]
	for len(cp.pending) > 0 && cp.pending[0].complete <= cycle {
		e := cp.pending.popEntry()
		h.remove(core, e)
		h.finishMiss(core, e)
		cp.recycle(e)
	}
}

// remove drops an entry from the outstanding bookkeeping.
func (h *Hierarchy) remove(core int, e *missEntry) {
	cp := &h.cores[core]
	cp.outstanding.del(e.line)
	if e.prefetch {
		cp.pfOut--
	} else {
		cp.demandOut--
	}
}

func (h *Hierarchy) finishMiss(core int, e *missEntry) {
	cp := &h.cores[core]
	pfBit := e.prefetch && !e.demanded
	if ev := h.llc.Fill(e.line, e.pc, pfBit, false); ev.Valid && ev.Dirty {
		cp.stats.Writebacks++
		h.dram.Write(ev.Line, e.complete)
	}
	h.fillL2(core, e.line, e.pc, pfBit, e.store)
	if !e.prefetch {
		cp.l1.Fill(e.line, e.pc, false, e.store)
	}
	if e.prefetch {
		cp.stats.PfFills++
		cp.l2pf.Fill(e.line)
		if cp.l1pf != nil {
			cp.l1pf.Fill(e.line)
		}
	}
}

// fillL2 inserts into L2, writing back dirty victims into the LLC.
func (h *Hierarchy) fillL2(core int, lineAddr, pc uint64, pfBit, dirty bool) {
	cp := &h.cores[core]
	if ev := cp.l2.Fill(lineAddr, pc, pfBit, dirty); ev.Valid && ev.Dirty {
		// Dirty L2 victim: update the LLC copy (or allocate).
		h.llc.Fill(ev.Line, pc, false, true)
	}
}

// Access performs a demand access for a core and returns the completion
// cycle of the data (loads); stores return promptly but still generate
// traffic.
func (h *Hierarchy) Access(core int, pc, addr uint64, store bool, cycle int64) int64 {
	cp := &h.cores[core]
	if len(cp.pending) > 0 && cp.pending[0].complete <= cycle {
		h.drain(core, cycle)
	}
	if cp.mmu != nil {
		addr = cp.mmu.Translate(addr)
	}
	lineAddr := mem.LineAddr(addr)
	cp.stats.Accesses++
	if !store {
		cp.stats.Loads++
	}

	// Optional L1 prefetcher trains on every L1 access. The L1 probe is
	// cache.Access hand-inlined (same package): one call boundary per
	// record matters at this loop's rate, and the L1 always runs the
	// devirtualized LRU. Behaviour is identical to cp.l1.Access.
	l1 := cp.l1
	l1Hit, l1WasPf := false, false
	{
		base := int(lineAddr&uint64(l1.sets-1)) * l1.ways
		tags := l1.tags[base : base+l1.ways]
		want := lineAddr | tagValid
		for w := range tags {
			if tags[w] == want {
				l1.Hits++
				idx := base + w
				if p := l1.lruFast; p != nil {
					p.clock++
					p.stamp[idx] = p.clock
				} else {
					l1.repl.Hit(base/l1.ways, w, pc)
				}
				m := &l1.meta[idx]
				l1WasPf = m.prefetch
				m.prefetch = false
				if store {
					m.dirty = true
				}
				l1Hit = true
				break
			}
		}
		if !l1Hit {
			l1.Misses++
		}
	}
	if cp.l1pf != nil {
		for _, cand := range cp.l1pf.Train(prefetch.Access{
			PC: pc, Line: lineAddr, Cycle: cycle, Hit: l1Hit, Store: store,
		}) {
			h.issuePrefetch(core, pc, cand, cycle, true)
		}
	}
	if l1Hit {
		_ = l1WasPf
		return cycle + h.cfg.L1Latency
	}
	cp.stats.L1Misses++
	arr := cycle + h.cfg.L1Latency

	// The L2 prefetcher observes every L1 miss (paper methodology §5.2).
	// The outstanding entry (if any) doubles as demandLookup's merge target,
	// saving a second table probe of the same key; likewise the L2 demand
	// access happens here, once, and its result feeds both the training
	// hit signal and demandLookup. A line with an in-flight miss cannot be
	// L2-resident (it missed L2 to go outstanding, and nothing fills it
	// until the miss completes), so skipping the L2 access on a merge
	// leaves L2 stats and replacement state exactly as the
	// probe-then-access sequence did.
	inFlight := cp.outstanding.get(lineAddr)
	var l2Hit, l2WasPf bool
	if inFlight == nil {
		l2Hit, l2WasPf = cp.l2.Access(lineAddr, pc, store)
	}
	cands := cp.l2pf.Train(prefetch.Access{
		PC: pc, Line: lineAddr, Cycle: cycle, Hit: l2Hit || inFlight != nil, Store: store,
	})

	done := h.demandLookup(core, pc, lineAddr, store, arr, inFlight, l2Hit, l2WasPf)

	for _, cand := range cands {
		h.issuePrefetch(core, pc, cand, cycle, false)
	}
	return done
}

// demandLookup resolves a demand L1 miss through L2, LLC and DRAM.
// inFlight is the line's outstanding entry, nil if none; l2Hit/l2WasPf are
// the result of the single L2 demand access the caller already performed
// (meaningful only when inFlight is nil).
func (h *Hierarchy) demandLookup(core int, pc, lineAddr uint64, store bool, arr int64, inFlight *missEntry, l2Hit, l2WasPf bool) int64 {
	cp := &h.cores[core]

	// Merge with an in-flight miss.
	if e := inFlight; e != nil {
		if e.prefetch && !e.demanded {
			cp.stats.PfLate++
			cp.stats.PfUseful++
		}
		e.demanded = true
		if store {
			e.store = true
		}
		if !store {
			cp.stats.LLCLoadMisses++ // data still comes from DRAM
		}
		if e.complete > arr {
			return e.complete
		}
		return arr
	}

	if l2Hit {
		if l2WasPf {
			cp.stats.PfUseful++
		}
		cp.l1.Fill(lineAddr, pc, false, store)
		return arr + h.cfg.L2Latency
	}
	cp.stats.L2Misses++
	arrLLC := arr + h.cfg.L2Latency
	cp.stats.LLCDemandAccesses++

	if hit, wasPf := h.llc.Access(lineAddr, pc, store); hit {
		if wasPf {
			cp.stats.PfUseful++
		}
		h.fillL2(core, lineAddr, pc, false, false)
		cp.l1.Fill(lineAddr, pc, false, store)
		return arrLLC + h.cfg.LLCLatency
	}
	if !store {
		cp.stats.LLCLoadMisses++
	}

	// Miss to DRAM: take a demand MSHR, stalling until one frees if needed.
	issueAt := arrLLC + h.cfg.LLCLatency
	for cp.demandOut >= h.cfg.MSHRs {
		e := cp.pending.popEntry()
		h.remove(core, e)
		h.finishMiss(core, e)
		if e.complete > issueAt {
			issueAt = e.complete
		}
		cp.recycle(e)
	}
	cp.stats.DRAMReads++
	done := h.dram.Read(lineAddr, issueAt)
	e := cp.newEntry()
	*e = missEntry{line: lineAddr, complete: done, pc: pc, store: store}
	cp.outstanding.put(lineAddr, e)
	cp.demandOut++
	cp.pending.pushEntry(e)
	return done
}

// issuePrefetch injects one prefetch candidate. fillL1 marks multi-level
// (L1) prefetches that should also fill the L1 on completion; for
// simplicity both kinds fill L2+LLC and L1 fills are approximated by L2
// fills, which the 4-cycle L1 latency makes near-equivalent.
func (h *Hierarchy) issuePrefetch(core int, pc, lineAddr uint64, cycle int64, fillL1 bool) {
	cp := &h.cores[core]
	if cp.outstanding.get(lineAddr) != nil {
		cp.stats.PfDropped++
		return
	}
	if _, hit := cp.l2.Lookup(lineAddr); hit {
		cp.stats.PfDropped++
		return
	}
	cp.stats.PfIssued++

	if hit, _ := h.llc.Access(lineAddr, pc, false); hit {
		// Promote from LLC into L2; this is a cheap, always-timely fill.
		cp.stats.PfLLCHits++
		cp.stats.PfFills++
		h.fillL2(core, lineAddr, pc, true, false)
		cp.l2pf.Fill(lineAddr)
		if cp.l1pf != nil {
			cp.l1pf.Fill(lineAddr)
		}
		return
	}

	// Prefetches do not stall for resources: drop when the budget is full
	// (hardware behavior).
	if cp.pfOut >= h.cfg.PrefetchBudget {
		cp.stats.PfIssued--
		cp.stats.PfDropped++
		return
	}
	cp.stats.PfToDRAM++
	cp.stats.DRAMReads++
	issueAt := cycle + h.cfg.L2Latency + h.cfg.LLCLatency
	done := h.dram.Read(lineAddr, issueAt)
	e := cp.newEntry()
	*e = missEntry{line: lineAddr, complete: done, prefetch: true, pc: pc}
	cp.outstanding.put(lineAddr, e)
	cp.pfOut++
	cp.pending.pushEntry(e)
	_ = fillL1
}

// Flush drains every outstanding miss (used at end of simulation so fills
// and prefetcher notifications are complete).
func (h *Hierarchy) Flush() {
	for i := range h.cores {
		h.drain(i, 1<<62)
	}
}
