package cache

import "testing"

func TestSHiPBasicVictim(t *testing.T) {
	s := NewSHiP(4, 4).(*ship)
	// Fill a set; all inserted at mid RRPV, so some way must be evictable
	// after aging.
	for w := 0; w < 4; w++ {
		s.Fill(0, w, uint64(0x100+w), false)
	}
	v := s.Victim(0)
	if v < 0 || v >= 4 {
		t.Fatalf("victim %d out of range", v)
	}
}

func TestSHiPHitPromotes(t *testing.T) {
	s := NewSHiP(4, 2).(*ship)
	s.Fill(0, 0, 0x100, false)
	s.Fill(0, 1, 0x200, false)
	s.Hit(0, 0, 0x100)
	// Way 0 was promoted to RRPV 0; way 1 should be victimized.
	if v := s.Victim(0); v != 1 {
		t.Errorf("victim = %d, want 1 (way 0 was re-referenced)", v)
	}
}

func TestSHiPPrefetchInsertedDistant(t *testing.T) {
	s := NewSHiP(4, 2).(*ship)
	s.Fill(0, 0, 0x100, false)
	s.Fill(0, 1, 0x200, true) // prefetch: distant re-reference
	if v := s.Victim(0); v != 1 {
		t.Errorf("victim = %d, want the prefetched way 1", v)
	}
}

func TestSHiPLearnsDeadPCs(t *testing.T) {
	s := NewSHiP(16, 4).(*ship)
	deadPC := uint64(0xdead0)
	// Train: lines from deadPC never see hits before eviction.
	for i := 0; i < 8; i++ {
		s.Fill(i%16, 0, deadPC, false)
		s.Evict(i%16, 0, false)
	}
	// New fill from the dead PC must be inserted at max RRPV (immediately
	// evictable even against an untouched line).
	s.Fill(1, 0, deadPC, false)
	if got := s.lines[1*4+0].rrpv; got != shipMaxRRPV {
		t.Errorf("dead-PC insertion RRPV = %d, want %d", got, shipMaxRRPV)
	}
}

func TestSHiPLearnsLivePCs(t *testing.T) {
	s := NewSHiP(16, 4).(*ship)
	livePC := uint64(0x11FE)
	for i := 0; i < 8; i++ {
		s.Fill(2, 1, livePC, false)
		s.Hit(2, 1, livePC)
		s.Evict(2, 1, true)
	}
	s.Fill(3, 0, livePC, false)
	if got := s.lines[3*4+0].rrpv; got == shipMaxRRPV {
		t.Error("re-used PC should not be inserted at distant RRPV")
	}
}

func TestSHiPVictimTerminates(t *testing.T) {
	s := NewSHiP(2, 2).(*ship)
	// Even with all RRPVs at 0 the aging loop must find a victim.
	for w := 0; w < 2; w++ {
		s.Fill(0, w, 1, false)
		s.Hit(0, w, 1)
	}
	done := make(chan int, 1)
	go func() { done <- s.Victim(0) }()
	select {
	case v := <-done:
		if v < 0 || v >= 2 {
			t.Errorf("victim %d out of range", v)
		}
	}
}
