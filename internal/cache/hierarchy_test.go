package cache

import (
	"testing"

	"pythia/internal/prefetch"
)

func newTestHierarchy(t *testing.T, cores int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultConfig(cores))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Cores = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("0 cores should fail")
	}
	cfg = DefaultConfig(1)
	cfg.MSHRs = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("0 MSHRs should fail")
	}
	cfg = DefaultConfig(1)
	cfg.PrefetchBudget = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("0 prefetch budget should fail")
	}
}

func TestL1HitLatency(t *testing.T) {
	h := newTestHierarchy(t, 1)
	addr := uint64(1 << 20)
	done := h.Access(0, 1, addr, false, 0) // cold miss, long latency
	if done < 100 {
		t.Errorf("cold miss completed in %d cycles", done)
	}
	// A re-access after completion must be an L1 hit.
	done2 := h.Access(0, 1, addr, false, done+1)
	if lat := done2 - (done + 1); lat != h.Config().L1Latency {
		t.Errorf("L1 hit latency = %d, want %d", lat, h.Config().L1Latency)
	}
	if s := h.CoreStats(0); s.L1Misses != 1 || s.Accesses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestMissMerging(t *testing.T) {
	h := newTestHierarchy(t, 1)
	addr := uint64(1 << 21)
	done1 := h.Access(0, 1, addr, false, 0)
	// Second access to the same line while in flight merges: it must not
	// create a second DRAM read and completes no later than the first.
	done2 := h.Access(0, 1, addr+8, false, 5)
	if done2 > done1 {
		t.Errorf("merged access completes at %d, after the original %d", done2, done1)
	}
	if s := h.CoreStats(0); s.DRAMReads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (merged)", s.DRAMReads)
	}
}

// trainOnce is a prefetcher that emits a fixed candidate on the first
// training event.
type trainOnce struct {
	cand   uint64
	fired  bool
	filled []uint64
}

func (p *trainOnce) Name() string { return "trainonce" }
func (p *trainOnce) Train(a prefetch.Access) []uint64 {
	if p.fired {
		return nil
	}
	p.fired = true
	return []uint64{p.cand}
}
func (p *trainOnce) Fill(line uint64) { p.filled = append(p.filled, line) }

func TestPrefetchFillAndUseful(t *testing.T) {
	h := newTestHierarchy(t, 1)
	trigger := uint64(1 << 22)
	cand := trigger>>6 + 2 // line address two ahead
	pf := &trainOnce{cand: cand}
	h.AttachPrefetcher(0, pf)

	done := h.Access(0, 1, trigger, false, 0)
	// Let the prefetch complete, then demand it: should be an L2 hit and
	// counted useful.
	h.Access(0, 1, trigger+999999, false, done+1000) // unrelated access to drain fills
	s := h.CoreStats(0)
	if s.PfIssued != 1 || s.PfToDRAM != 1 {
		t.Fatalf("prefetch not issued to DRAM: %+v", s)
	}
	if len(pf.filled) != 1 || pf.filled[0] != cand {
		t.Fatalf("Fill callback got %v, want [%d]", pf.filled, cand)
	}
	before := h.CoreStats(0).PfUseful
	h.Access(0, 1, cand<<6, false, done+2000)
	if got := h.CoreStats(0).PfUseful; got != before+1 {
		t.Errorf("useful prefetch not counted: %d -> %d", before, got)
	}
}

func TestLatePrefetchMerge(t *testing.T) {
	h := newTestHierarchy(t, 1)
	trigger := uint64(1 << 23)
	cand := trigger>>6 + 1
	pf := &trainOnce{cand: cand}
	h.AttachPrefetcher(0, pf)

	h.Access(0, 1, trigger, false, 0)
	// Demand the prefetched line immediately: it is still in flight, so the
	// demand merges and counts as late.
	h.Access(0, 1, cand<<6, false, 1)
	s := h.CoreStats(0)
	if s.PfLate != 1 || s.PfUseful != 1 {
		t.Errorf("late merge not counted: late=%d useful=%d", s.PfLate, s.PfUseful)
	}
	// A late-merged demand still counts as an LLC load miss (not covered).
	if s.LLCLoadMisses < 2 {
		t.Errorf("LLC load misses = %d, want >= 2", s.LLCLoadMisses)
	}
}

// floodPF emits many candidates per training event.
type floodPF struct{ n int }

func (p *floodPF) Name() string { return "flood" }
func (p *floodPF) Train(a prefetch.Access) []uint64 {
	out := make([]uint64, p.n)
	for i := range out {
		out[i] = a.Line + uint64(i+1)
	}
	return out
}
func (p *floodPF) Fill(uint64) {}

func TestPrefetchBudgetDrops(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PrefetchBudget = 4
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.AttachPrefetcher(0, &floodPF{n: 20})
	h.Access(0, 1, 1<<24, false, 0)
	s := h.CoreStats(0)
	if s.PfToDRAM > 4 {
		t.Errorf("%d prefetches in flight, budget 4", s.PfToDRAM)
	}
	if s.PfDropped == 0 {
		t.Error("exceeding the budget must drop prefetches")
	}
}

func TestDuplicatePrefetchDropped(t *testing.T) {
	h := newTestHierarchy(t, 1)
	trigger := uint64(1 << 25)
	pf := &floodPF{n: 1}
	h.AttachPrefetcher(0, pf)
	h.Access(0, 1, trigger, false, 0)
	issued := h.CoreStats(0).PfIssued
	// Re-access: candidate is already outstanding or cached; must be dropped.
	h.Access(0, 1, trigger, false, 1)
	s := h.CoreStats(0)
	if s.PfIssued != issued {
		t.Errorf("duplicate prefetch issued: %d -> %d", issued, s.PfIssued)
	}
	if s.PfDropped == 0 {
		t.Error("duplicate should be counted as dropped")
	}
}

func TestMSHRLimitStallsDemands(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MSHRs = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Issue 3 distinct demand misses at the same cycle: the third must wait
	// for an MSHR and finish last.
	d1 := h.Access(0, 1, 1<<26, false, 0)
	d2 := h.Access(0, 1, 1<<26+4096, false, 0)
	d3 := h.Access(0, 1, 1<<26+8192, false, 0)
	if d3 <= d1 || d3 <= d2 {
		t.Errorf("MSHR-limited miss should complete last: %d %d %d", d1, d2, d3)
	}
}

func TestWritebackTraffic(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LLCSizeKBPerCore = 256 // small LLC to force evictions
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycle := int64(0)
	// Fill far beyond LLC capacity with stores.
	for i := 0; i < 10000; i++ {
		cycle = h.Access(0, 1, uint64(i)*64+1<<30, true, cycle)
	}
	h.Flush()
	if h.DRAM().Stats().Writes == 0 {
		t.Error("store-heavy overflow produced no writebacks")
	}
}

func TestMultiCoreIsolation(t *testing.T) {
	h := newTestHierarchy(t, 2)
	h.Access(0, 1, 1<<27, false, 0)
	if s := h.CoreStats(1); s.Accesses != 0 {
		t.Errorf("core 1 saw core 0 traffic: %+v", s)
	}
}

func TestResetStatsClearsCores(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.Access(0, 1, 1<<28, false, 0)
	h.ResetStats()
	if s := h.CoreStats(0); s.Accesses != 0 || s.DRAMReads != 0 {
		t.Errorf("stats survive reset: %+v", s)
	}
}

func TestBandwidthUtilExposed(t *testing.T) {
	h := newTestHierarchy(t, 1)
	if u := h.BandwidthUtil(); u != 0 {
		t.Errorf("idle util = %v", u)
	}
	var _ prefetch.System = h // compile-time interface check
}

func TestTranslationScattersPhysically(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Translate = true
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A virtually contiguous walk across pages still works (hits after
	// fill), and generates DRAM traffic at scattered frames.
	// Spread lines across L1 sets so the working set is L1-resident.
	vaddr := func(i int) uint64 { return uint64(i)*4096 + uint64(i%64)*64 }
	cycle := int64(0)
	for i := 0; i < 256; i++ {
		cycle = h.Access(0, 1, vaddr(i), false, cycle)
	}
	if h.DRAM().Stats().Reads == 0 {
		t.Fatal("no DRAM reads")
	}
	// Re-access the same virtual addresses after completion: translations
	// must be stable, so these hit.
	h.Flush()
	missesBefore := h.CoreStats(0).L1Misses
	for i := 0; i < 256; i++ {
		cycle = h.Access(0, 1, vaddr(i), false, cycle+1000)
	}
	if h.CoreStats(0).L1Misses != missesBefore {
		t.Error("stable translations should make re-accesses L1 hits")
	}
}

func TestLLCPolicySelection(t *testing.T) {
	for _, pol := range []string{"", "ship", "drrip", "lru"} {
		cfg := DefaultConfig(1)
		cfg.LLCPolicy = pol
		if _, err := NewHierarchy(cfg); err != nil {
			t.Errorf("policy %q rejected: %v", pol, err)
		}
	}
	cfg := DefaultConfig(1)
	cfg.LLCPolicy = "random"
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestHierarchyInvariantsUnderRandomTraffic(t *testing.T) {
	h := newTestHierarchy(t, 1)
	h.AttachPrefetcher(0, prefetch.NewSPP(prefetch.DefaultSPPConfig()))
	rng := uint64(1234)
	cycle := int64(0)
	for i := 0; i < 30000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		addr := rng >> 24
		store := rng&7 == 0
		done := h.Access(0, 0x400+rng>>58, addr, store, cycle)
		if done < cycle {
			t.Fatalf("completion %d before issue %d", done, cycle)
		}
		cycle += int64(rng % 13)
	}
	h.Flush()
	s := h.CoreStats(0)
	if s.L1Misses > s.Accesses {
		t.Errorf("L1 misses %d exceed accesses %d", s.L1Misses, s.Accesses)
	}
	if s.L2Misses > s.L1Misses {
		t.Errorf("L2 misses %d exceed L1 misses %d", s.L2Misses, s.L1Misses)
	}
	if s.PfUseful > s.PfIssued {
		t.Errorf("useful prefetches %d exceed issued %d", s.PfUseful, s.PfIssued)
	}
	if s.PfToDRAM > s.PfIssued {
		t.Errorf("DRAM prefetches %d exceed issued %d", s.PfToDRAM, s.PfIssued)
	}
	dr := h.DRAM().Stats()
	if dr.Reads != s.DRAMReads {
		t.Errorf("controller reads %d != core-attributed reads %d (single core)", dr.Reads, s.DRAMReads)
	}
	if dr.RowHits+dr.RowMisses != dr.Reads+dr.Writes {
		t.Errorf("row outcomes %d don't cover accesses %d", dr.RowHits+dr.RowMisses, dr.Reads+dr.Writes)
	}
}

func TestCompletionMonotoneWithArrival(t *testing.T) {
	// For the same cold line, arriving later never completes earlier.
	mk := func(at int64) int64 {
		h := newTestHierarchy(t, 1)
		return h.Access(0, 1, 1<<29, false, at) - at
	}
	latEarly := mk(0)
	latLate := mk(1 << 20)
	if latEarly <= 0 || latLate <= 0 {
		t.Fatal("cold miss latency must be positive")
	}
}
