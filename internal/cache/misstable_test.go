package cache

import (
	"math/rand"
	"testing"
)

// TestMissTableMatchesMap drives the open-addressing table and a reference
// map through the same randomized insert/lookup/delete stream, including
// adversarial keys (dense strided lines, per-core high-bit offsets, probe
// collisions at bounded occupancy) and checks they always agree.
func TestMissTableMatchesMap(t *testing.T) {
	const capacity = 96 // MSHRs + PrefetchBudget at the Table 5 default
	tab := newMissTable(capacity)
	ref := make(map[uint64]*missEntry)
	rng := rand.New(rand.NewSource(1))

	key := func() uint64 {
		base := uint64(rng.Intn(4)) << 56 // per-core address-space offsets
		switch rng.Intn(3) {
		case 0:
			return base + uint64(rng.Intn(512)) // dense, collides in low bits
		case 1:
			return base + uint64(rng.Intn(64))*64 // strided
		default:
			return base + rng.Uint64()>>16
		}
	}

	live := make([]uint64, 0, capacity)
	for op := 0; op < 200_000; op++ {
		if len(live) < capacity && (len(live) == 0 || rng.Intn(2) == 0) {
			k := key()
			if _, ok := ref[k]; ok {
				continue
			}
			e := &missEntry{line: k}
			tab.put(k, e)
			ref[k] = e
			live = append(live, k)
		} else {
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if tab.get(k) != ref[k] {
				t.Fatalf("op %d: get(%#x) = %p, want %p", op, k, tab.get(k), ref[k])
			}
			tab.del(k)
			delete(ref, k)
			if tab.get(k) != nil {
				t.Fatalf("op %d: key %#x still present after delete", op, k)
			}
		}
		// Spot-check a random live key and a random absent key.
		if len(live) > 0 {
			k := live[rng.Intn(len(live))]
			if tab.get(k) != ref[k] {
				t.Fatalf("op %d: live key %#x lookup diverged", op, k)
			}
		}
		if k := key(); ref[k] == nil && tab.get(k) != nil {
			t.Fatalf("op %d: absent key %#x found", op, k)
		}
		if tab.size() != len(ref) {
			t.Fatalf("op %d: size %d, want %d", op, tab.size(), len(ref))
		}
	}
}
