package cache

// SHiP (Signature-based Hit Predictor, Wu et al., MICRO 2011) replacement,
// used at the LLC per the paper's Table 5. Lines are managed with 2-bit
// re-reference prediction values (RRPV); a signature history counter table
// (SHCT) indexed by a PC signature predicts whether a fill will be re-used
// and chooses its insertion RRPV.

const (
	shipMaxRRPV   = 3
	shipSHCTBits  = 14
	shipSHCTSize  = 1 << shipSHCTBits
	shipCtrMax    = 7
	shipInsertFar = shipMaxRRPV     // predicted dead: insert at max RRPV
	shipInsertMid = shipMaxRRPV - 1 // default insertion
)

type shipLine struct {
	rrpv     uint8
	sig      uint16
	outcome  bool // saw a hit during residency
	occupied bool
}

type ship struct {
	ways  int
	lines []shipLine
	shct  []uint8
}

// NewSHiP returns a SHiP replacement policy.
func NewSHiP(sets, ways int) Replacement {
	s := &ship{
		ways:  ways,
		lines: make([]shipLine, sets*ways),
		shct:  make([]uint8, shipSHCTSize),
	}
	for i := range s.shct {
		s.shct[i] = 1 // weakly re-use-predicted
	}
	return s
}

func shipSig(pc uint64) uint16 {
	return uint16((pc ^ pc>>shipSHCTBits ^ pc>>(2*shipSHCTBits)) & (shipSHCTSize - 1))
}

// Hit implements Replacement.
func (s *ship) Hit(set, way int, pc uint64) {
	l := &s.lines[set*s.ways+way]
	l.rrpv = 0
	if !l.outcome {
		l.outcome = true
		if s.shct[l.sig] < shipCtrMax {
			s.shct[l.sig]++
		}
	}
}

// Fill implements Replacement.
func (s *ship) Fill(set, way int, pc uint64, prefetch bool) {
	sig := shipSig(pc)
	l := &s.lines[set*s.ways+way]
	l.sig = sig
	l.outcome = false
	l.occupied = true
	if s.shct[sig] == 0 {
		l.rrpv = shipInsertFar
	} else {
		l.rrpv = shipInsertMid
	}
	if prefetch {
		// Prefetches are inserted with distant re-reference prediction to
		// bound pollution, as common SHiP+prefetch setups do.
		l.rrpv = shipInsertFar
	}
}

// Victim implements Replacement. The reference algorithm rescans the set,
// aging every line by one, until some way reaches max RRPV; that selects
// the lowest-indexed way with the maximal RRPV and ages everyone by
// (max - maxRRPV) rounds. The closed form below computes exactly that in a
// single scan plus one conditional aging pass.
func (s *ship) Victim(set int) int {
	base := set * s.ways
	ls := s.lines[base : base+s.ways]
	victim, maxR := 0, ls[0].rrpv
	for w := 1; w < len(ls); w++ {
		if r := ls[w].rrpv; r > maxR {
			victim, maxR = w, r
		}
	}
	if age := shipMaxRRPV - maxR; age > 0 {
		for w := range ls {
			ls[w].rrpv += age
		}
	}
	return victim
}

// Evict implements Replacement.
func (s *ship) Evict(set, way int, reused bool) {
	l := &s.lines[set*s.ways+way]
	if l.occupied && !l.outcome {
		if s.shct[l.sig] > 0 {
			s.shct[l.sig]--
		}
	}
	l.occupied = false
}
