// Package dram models a DDR4-style main memory: channels × ranks × banks
// with per-bank row-buffer state, tRCD/tRP/tCAS timing, and a shared data
// bus per channel whose occupancy creates bandwidth contention. All timing
// is expressed in core clock cycles.
//
// The controller also exposes a sliding-window bandwidth monitor, which is
// the system-level feedback Pythia's reward scheme consumes (§3.1) and the
// source of the runtime bandwidth-usage buckets of Fig. 14.
package dram

import "fmt"

// Config describes the memory system. The zero value is not usable; use
// DDR4_2400 or derive from it.
type Config struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// RanksPerChannel and BanksPerRank set the bank-level parallelism.
	RanksPerChannel int
	BanksPerRank    int
	// MTPS is the data-bus rate in million transfers per second, the knob
	// swept in Fig. 8(b).
	MTPS int
	// BusBytes is the data bus width in bytes per transfer.
	BusBytes int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// CoreMHz is the core clock used to convert nanoseconds to cycles.
	CoreMHz int
	// TRCDns, TRPns, TCASns are the DRAM timings in nanoseconds.
	TRCDns, TRPns, TCASns float64
	// TREFIns is the all-bank refresh interval; 0 disables refresh
	// modelling. TRFCns is the refresh cycle time (bank-blocking).
	TREFIns, TRFCns float64
}

// DDR4_2400 returns the paper's baseline single-channel DDR4-2400
// configuration (Table 5) for a 4 GHz core.
func DDR4_2400(channels int) Config {
	return Config{
		Channels:        channels,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		MTPS:            2400,
		BusBytes:        8,
		RowBytes:        2048,
		CoreMHz:         4000,
		TRCDns:          15,
		TRPns:           15,
		TCASns:          12.5,
	}
}

// WithMTPS returns a copy of c with the transfer rate replaced.
func (c Config) WithMTPS(mtps int) Config {
	c.MTPS = mtps
	return c
}

// WithRefresh returns a copy of c with DDR4-typical refresh timings
// enabled (tREFI 7.8us, tRFC 350ns).
func (c Config) WithRefresh() Config {
	c.TREFIns = 7800
	c.TRFCns = 350
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: channels must be positive, got %d", c.Channels)
	case c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: ranks/banks must be positive")
	case c.MTPS <= 0:
		return fmt.Errorf("dram: MTPS must be positive, got %d", c.MTPS)
	case c.BusBytes <= 0 || c.RowBytes <= 0:
		return fmt.Errorf("dram: bus/row bytes must be positive")
	case c.CoreMHz <= 0:
		return fmt.Errorf("dram: core clock must be positive")
	}
	return nil
}

func (c Config) cycles(ns float64) int64 {
	return int64(ns * float64(c.CoreMHz) / 1000)
}

// lineTransferCycles returns the core cycles the data bus is busy moving one
// 64B cache line.
func (c Config) lineTransferCycles() int64 {
	beats := float64(64) / float64(c.BusBytes)
	cyclesPerBeat := float64(c.CoreMHz) / float64(c.MTPS)
	n := int64(beats*cyclesPerBeat + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

type bank struct {
	ready   int64
	openRow uint64
	hasRow  bool
}

// Stats accumulates controller activity.
type Stats struct {
	Reads         int64
	Writes        int64
	RowHits       int64
	RowMisses     int64
	BusBusy       int64 // total data-bus busy cycles across channels
	RefreshStalls int64 // accesses delayed by an in-progress refresh
	FirstCycle    int64
	LastCycle     int64
}

// BucketCount is the number of bandwidth-usage quartile buckets tracked for
// Fig. 14 (<25%, 25–50%, 50–75%, >=75% of peak).
const BucketCount = 4

// epochLen is the bandwidth-monitor window in core cycles.
const epochLen = 8192

// Controller is the DRAM controller. It is not safe for concurrent use; the
// simulator is single-threaded per run.
type Controller struct {
	cfg       Config
	banks     []bank  // [channel][rank][bank] flattened
	busReady  []int64 // per channel
	xferCyc   int64
	tRCD, tRP int64
	tCAS      int64

	// mapAddr divisor state, precomputed. The shift fields are valid when
	// the matching pow2 flag is set; shifts and masks produce the same
	// quotients and remainders as the divisions they replace (unsigned
	// power-of-two division), they just keep the address map off the
	// hardware divider in the per-access hot path.
	chanPow2   bool
	chanShift  uint
	banksPow2  bool
	banksShift uint
	lprPow2    bool
	lprShift   uint
	linesRow   uint64 // lines per row, floor 1

	stats Stats

	tREFI, tRFC int64

	// bandwidth monitor state
	epochStart int64
	epochBusy  int64
	prevUtil   float64
	buckets    [BucketCount]int64 // epochs spent per utilization quartile
	epochs     int64
}

// NewController builds a controller; it panics on an invalid config since
// configs are produced by code, not user input.
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Channels * cfg.RanksPerChannel * cfg.BanksPerRank
	c := &Controller{
		cfg:      cfg,
		banks:    make([]bank, n),
		busReady: make([]int64, cfg.Channels),
		xferCyc:  cfg.lineTransferCycles(),
		tRCD:     cfg.cycles(cfg.TRCDns),
		tRP:      cfg.cycles(cfg.TRPns),
		tCAS:     cfg.cycles(cfg.TCASns),
		tREFI:    cfg.cycles(cfg.TREFIns),
		tRFC:     cfg.cycles(cfg.TRFCns),
	}
	c.linesRow = uint64(cfg.RowBytes / 64)
	if c.linesRow == 0 {
		c.linesRow = 1
	}
	c.chanShift, c.chanPow2 = pow2Shift(uint64(cfg.Channels))
	c.banksShift, c.banksPow2 = pow2Shift(uint64(cfg.RanksPerChannel * cfg.BanksPerRank))
	c.lprShift, c.lprPow2 = pow2Shift(c.linesRow)
	return c
}

// pow2Shift returns log2(n) when n is a positive power of two.
func pow2Shift(n uint64) (uint, bool) {
	if n == 0 || n&(n-1) != 0 {
		return 0, false
	}
	var s uint
	for n > 1 {
		n >>= 1
		s++
	}
	return s, true
}

// afterRefresh pushes a service start time out of any refresh window.
// Refresh is modelled as periodic all-bank blocking: every tREFI cycles the
// device is unavailable for tRFC cycles.
func (c *Controller) afterRefresh(start int64) int64 {
	if c.tREFI <= 0 || c.tRFC <= 0 {
		return start
	}
	phase := start % c.tREFI
	if phase < c.tRFC {
		c.stats.RefreshStalls++
		return start - phase + c.tRFC
	}
	return start
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// mapAddr picks the channel, flattened bank index and row for a line address.
// Lines interleave across channels, then banks, so streams spread naturally.
func (c *Controller) mapAddr(line uint64) (channel int, bankIdx int, row uint64) {
	banksPerChannel := uint64(c.cfg.RanksPerChannel * c.cfg.BanksPerRank)
	var l uint64
	if c.chanPow2 {
		channel = int(line & (uint64(c.cfg.Channels) - 1))
		l = line >> c.chanShift
	} else {
		channel = int(line % uint64(c.cfg.Channels))
		l = line / uint64(c.cfg.Channels)
	}
	var rowGlobal uint64
	if c.lprPow2 {
		rowGlobal = l >> c.lprShift
	} else {
		rowGlobal = l / c.linesRow
	}
	// Hash the row number into the bank index so distinct address spaces
	// (per-core offsets at high bits) and strided streams both spread
	// across banks instead of aliasing.
	x := rowGlobal ^ rowGlobal>>33
	f := x * 0x9E3779B97F4A7C15
	if c.banksPow2 {
		b := int((f >> 24) & (banksPerChannel - 1))
		bankIdx = channel*int(banksPerChannel) + b
		row = rowGlobal >> c.banksShift
	} else {
		b := int((f >> 24) % banksPerChannel)
		bankIdx = channel*int(banksPerChannel) + b
		row = rowGlobal / banksPerChannel
	}
	return
}

// Read schedules a 64B line read arriving at the controller at cycle `at`
// and returns the cycle the line's data is fully delivered.
func (c *Controller) Read(line uint64, at int64) int64 {
	return c.access(line, at, false)
}

// Write schedules a 64B writeback. Writes occupy bank and bus resources but
// the caller does not wait on them; the returned cycle is when the write
// finishes draining.
func (c *Controller) Write(line uint64, at int64) int64 {
	return c.access(line, at, true)
}

func (c *Controller) access(line uint64, at int64, write bool) int64 {
	ch, bi, row := c.mapAddr(line)
	b := &c.banks[bi]

	start := at
	if b.ready > start {
		start = b.ready
	}
	start = c.afterRefresh(start)
	// Column reads to an open row pipeline at the column-to-column cadence
	// (~ the transfer time); only the first access after an activation pays
	// the full tRP+tRCD latency. The returned latency is what the requester
	// sees; bank occupancy is the pipelined cadence.
	var lat, hold int64
	if b.hasRow && b.openRow == row {
		lat = c.tCAS
		hold = c.xferCyc
		c.stats.RowHits++
	} else {
		lat = c.tRP + c.tRCD + c.tCAS
		hold = c.tRP + c.tRCD + c.xferCyc
		c.stats.RowMisses++
	}
	b.openRow = row
	b.hasRow = true

	dataReady := start + lat
	busStart := dataReady
	if c.busReady[ch] > busStart {
		busStart = c.busReady[ch]
	}
	complete := busStart + c.xferCyc
	c.busReady[ch] = complete
	b.ready = start + hold

	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.stats.BusBusy += c.xferCyc
	if c.stats.FirstCycle == 0 || at < c.stats.FirstCycle {
		c.stats.FirstCycle = at
	}
	if complete > c.stats.LastCycle {
		c.stats.LastCycle = complete
	}
	c.noteBusy(busStart, c.xferCyc)
	return complete
}

// noteBusy attributes bus occupancy to the bandwidth monitor's epochs.
func (c *Controller) noteBusy(at, cycles int64) {
	for at >= c.epochStart+epochLen {
		c.rollEpoch()
	}
	c.epochBusy += cycles
}

func (c *Controller) rollEpoch() {
	peak := int64(c.cfg.Channels) * epochLen
	util := float64(c.epochBusy) / float64(peak)
	if util > 1 {
		util = 1
	}
	c.prevUtil = util
	bucket := int(util * BucketCount)
	if bucket >= BucketCount {
		bucket = BucketCount - 1
	}
	c.buckets[bucket]++
	c.epochs++
	c.epochBusy = 0
	c.epochStart += epochLen
}

// Util returns the data-bus utilization (0..1) measured over the most recent
// completed monitor window. This is the system-level feedback Pythia reads.
func (c *Controller) Util() float64 { return c.prevUtil }

// Buckets returns the fraction of monitor epochs spent in each utilization
// quartile (<25%, 25–50%, 50–75%, >=75% of peak), as plotted in Fig. 14.
func (c *Controller) Buckets() [BucketCount]float64 {
	var out [BucketCount]float64
	if c.epochs == 0 {
		out[0] = 1
		return out
	}
	for i, n := range c.buckets {
		out[i] = float64(n) / float64(c.epochs)
	}
	return out
}

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats clears accumulated statistics (bank/bus state is preserved);
// used at the warmup/measurement boundary.
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	c.buckets = [BucketCount]int64{}
	c.epochs = 0
}

// PeakBytesPerCycle returns the aggregate peak bandwidth in bytes per core
// cycle, useful for reporting.
func (c *Controller) PeakBytesPerCycle() float64 {
	return float64(c.cfg.Channels) * 64 / float64(c.xferCyc)
}
