package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := DDR4_2400(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := DDR4_2400(1); c.Channels = 0; return c }(),
		func() Config { c := DDR4_2400(1); c.MTPS = -1; return c }(),
		func() Config { c := DDR4_2400(1); c.BusBytes = 0; return c }(),
		func() Config { c := DDR4_2400(1); c.CoreMHz = 0; return c }(),
		func() Config { c := DDR4_2400(1); c.BanksPerRank = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestWithMTPS(t *testing.T) {
	c := DDR4_2400(2).WithMTPS(600)
	if c.MTPS != 600 || c.Channels != 2 {
		t.Errorf("WithMTPS produced %+v", c)
	}
}

func TestTransferCyclesScaleWithMTPS(t *testing.T) {
	slow := DDR4_2400(1).WithMTPS(150)
	fast := DDR4_2400(1).WithMTPS(9600)
	if slow.lineTransferCycles() <= fast.lineTransferCycles() {
		t.Errorf("150 MTPS transfer (%d cyc) should exceed 9600 MTPS (%d cyc)",
			slow.lineTransferCycles(), fast.lineTransferCycles())
	}
	// 2400 MTPS, 8B bus, 4GHz core: 8 beats at 1.667 cyc = ~13 cycles.
	if got := DDR4_2400(1).lineTransferCycles(); got < 12 || got > 15 {
		t.Errorf("DDR4-2400 line transfer = %d cycles, want ~13", got)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := NewController(DDR4_2400(1))
	line := uint64(1000)
	first := c.Read(line, 0)            // row miss (activation)
	second := c.Read(line+1, first)     // same row: hit
	third := c.Read(line+1<<20, second) // far away: likely different row
	missLat := first - 0
	hitLat := second - first
	if hitLat >= missLat {
		t.Errorf("row hit latency %d should beat miss latency %d", hitLat, missLat)
	}
	st := c.Stats()
	if st.RowHits < 1 || st.RowMisses < 2 {
		t.Errorf("row stats wrong: %+v", st)
	}
	_ = third
}

func TestCompletionAfterArrival(t *testing.T) {
	c := NewController(DDR4_2400(1))
	f := func(line uint64, at int64) bool {
		if at < 0 {
			at = -at
		}
		at %= 1 << 40
		return c.Read(line, at) > at
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBusContention(t *testing.T) {
	c := NewController(DDR4_2400(1))
	// Saturate: issue many same-cycle reads to distinct rows/banks; the bus
	// serializes the transfers.
	var last int64
	for i := 0; i < 64; i++ {
		done := c.Read(uint64(i)*32, 0) // one row apart -> spread over banks
		if done > last {
			last = done
		}
	}
	xfer := c.Config().lineTransferCycles()
	if last < 64*xfer {
		t.Errorf("64 concurrent reads completed in %d cycles; bus alone needs %d", last, 64*xfer)
	}
}

func TestMoreChannelsMoreThroughput(t *testing.T) {
	run := func(channels int) int64 {
		c := NewController(DDR4_2400(channels))
		var last int64
		for i := 0; i < 128; i++ {
			if done := c.Read(uint64(i)*32, 0); done > last {
				last = done
			}
		}
		return last
	}
	if run(4) >= run(1) {
		t.Error("four channels should finish a burst faster than one")
	}
}

func TestBandwidthMonitor(t *testing.T) {
	c := NewController(DDR4_2400(1))
	// Fill several epochs with back-to-back independent traffic (arrivals
	// at the bus cadence, not dependent on completions).
	xfer := c.Config().lineTransferCycles()
	var cycle int64
	for i := 0; i < 4000; i++ {
		cycle = int64(i) * xfer
		c.Read(uint64(i)*32, cycle)
	}
	// Force epoch rollover by touching a far-future cycle.
	c.Read(1<<30, cycle+10*epochLen)
	if c.Util() < 0 || c.Util() > 1 {
		t.Errorf("Util() = %v out of range", c.Util())
	}
	b := c.Buckets()
	var sum float64
	for _, f := range b {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("bucket fractions sum to %v", sum)
	}
	// Saturated phase must have registered high-usage epochs.
	if b[2]+b[3] == 0 {
		t.Error("back-to-back traffic never reached >50% usage buckets")
	}
}

func TestResetStats(t *testing.T) {
	c := NewController(DDR4_2400(1))
	c.Read(0, 0)
	c.Write(1, 100)
	c.ResetStats()
	st := c.Stats()
	if st.Reads != 0 || st.Writes != 0 || st.BusBusy != 0 {
		t.Errorf("stats not cleared: %+v", st)
	}
}

func TestReadWriteCounting(t *testing.T) {
	c := NewController(DDR4_2400(1))
	for i := 0; i < 5; i++ {
		c.Read(uint64(i), int64(i)*1000)
	}
	for i := 0; i < 3; i++ {
		c.Write(uint64(i), 99999)
	}
	st := c.Stats()
	if st.Reads != 5 || st.Writes != 3 {
		t.Errorf("counts %d/%d, want 5/3", st.Reads, st.Writes)
	}
}

func TestMapAddrSpreadsBanks(t *testing.T) {
	c := NewController(DDR4_2400(1))
	banks := map[int]bool{}
	// Widely separated streams (distinct cores' address spaces) must not
	// alias onto a single bank.
	for core := 0; core < 8; core++ {
		line := uint64(core) << 50
		_, b, _ := c.mapAddr(line)
		banks[b] = true
	}
	if len(banks) < 3 {
		t.Errorf("8 address spaces map to only %d banks", len(banks))
	}
}

func TestPeakBytesPerCycle(t *testing.T) {
	one := NewController(DDR4_2400(1)).PeakBytesPerCycle()
	four := NewController(DDR4_2400(4)).PeakBytesPerCycle()
	if four <= one {
		t.Errorf("4-channel peak %v should exceed 1-channel %v", four, one)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewController should panic on invalid config")
		}
	}()
	NewController(Config{})
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c := NewController(DDR4_2400(1))
	for i := 0; i < 1000; i++ {
		c.Read(uint64(i)*32, int64(i)*20)
	}
	if c.Stats().RefreshStalls != 0 {
		t.Error("refresh stalls recorded with refresh disabled")
	}
}

func TestRefreshBlocksAccesses(t *testing.T) {
	c := NewController(DDR4_2400(1).WithRefresh())
	// Sweep arrivals across several tREFI windows; some must land inside a
	// refresh and be delayed.
	stalled := false
	for i := 0; i < 20000; i++ {
		at := int64(i) * 17
		done := c.Read(uint64(i)*32, at)
		if done <= at {
			t.Fatalf("completion %d not after arrival %d", done, at)
		}
		if c.Stats().RefreshStalls > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Error("no access was ever delayed by refresh")
	}
}

func TestRefreshReducesThroughputSlightly(t *testing.T) {
	run := func(cfg Config) int64 {
		c := NewController(cfg)
		var last int64
		for i := 0; i < 5000; i++ {
			if done := c.Read(uint64(i)*32, int64(i)*14); done > last {
				last = done
			}
		}
		return last
	}
	base := run(DDR4_2400(1))
	refr := run(DDR4_2400(1).WithRefresh())
	if refr < base {
		t.Errorf("refresh should not speed things up: %d vs %d", refr, base)
	}
}
