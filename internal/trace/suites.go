package trace

import (
	"fmt"
	"sort"
)

// Suite names used throughout the harness, matching the paper's Table 6.
const (
	SuiteSPEC06     = "SPEC06"
	SuiteSPEC17     = "SPEC17"
	SuitePARSEC     = "PARSEC"
	SuiteLigra      = "Ligra"
	SuiteCloudsuite = "Cloudsuite"
	// SuiteCVP2 holds the "unseen" traces of Fig. 12 (crypto/INT/FP/server).
	SuiteCVP2 = "CVP2"
)

// Workload is a named entry in the registry: a spec plus identity. Distinct
// traces of the same workload (the paper's "-417B"-style segments) share the
// workload name with different seeds.
type Workload struct {
	// Name is the trace name, e.g. "459.GemsFDTD-765B".
	Name string
	// Base is the workload name without the segment suffix.
	Base string
	// Suite is the benchmark suite.
	Suite string
	// Spec builds the trace; it must be called freshly per generation since
	// actors carry state.
	Spec func() Spec
	// fixed holds pre-decoded records for file-based workloads; when set,
	// Generate returns them regardless of the requested length.
	fixed *Trace
}

// Generate materializes n records of the workload.
func (w Workload) Generate(n int) *Trace {
	if w.fixed != nil {
		return w.fixed
	}
	return w.Spec().Generate(w.Name, w.Suite, n)
}

// Iter returns a one-pass iterator over the workload's records — the same
// sequence Generate(n) materializes, produced incrementally so arbitrarily
// long traces never need to be resident at once.
func (w Workload) Iter(n int) Iter {
	if w.fixed != nil {
		return NewSliceReader(w.fixed.Records)
	}
	return w.Spec().Generator(n)
}

// NumRecords returns the exact record count Iter(n)/Generate(n) produce:
// n for generated workloads (0 for degenerate specs), the fixed length for
// file-backed ones.
func (w Workload) NumRecords(n int) int {
	if w.fixed != nil {
		return len(w.fixed.Records)
	}
	return w.Spec().Generator(n).Remaining()
}

// Key returns a deterministic identity for the first n records of the
// workload, suitable as an on-disk cache key: it folds in the generator
// seed and GenVersion so cached traces invalidate when either the workload
// is re-seeded or generator output changes.
func (w Workload) Key(n int) string {
	if w.fixed != nil {
		return fmt.Sprintf("%s|fixed|n%d", w.Name, len(w.fixed.Records))
	}
	return fmt.Sprintf("%s|s%d|n%d|g%d", w.Name, w.Spec().Seed, n, GenVersion)
}

// Fixed wraps an already-materialized trace (e.g. decoded from a file) as a
// Workload usable anywhere a registry workload is.
func Fixed(t *Trace) Workload {
	return Workload{Name: t.Name, Base: t.Name, Suite: t.Suite, fixed: t}
}

// FixedTrace returns the pre-materialized trace of a file-backed workload,
// nil for generated ones. Consumers that would otherwise persist the
// workload (the stream trace cache) use it to serve the resident records
// directly: a fixed workload's Key carries no content identity, so caching
// it on disk could serve stale data after the source file changes.
func (w Workload) FixedTrace() *Trace { return w.fixed }

// registry is populated at init time.
var registry []Workload

// All returns every registered workload trace (the paper's 150-trace list
// plus the CVP2 unseen set), sorted by suite then name.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// BySuite returns all workload traces of one suite.
func BySuite(suite string) []Workload {
	var out []Workload
	for _, w := range registry {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the workload with the given trace name.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Suites returns the evaluated suite names in the paper's presentation order
// (excluding the unseen CVP2 set).
func Suites() []string {
	return []string{SuiteSPEC06, SuiteSPEC17, SuitePARSEC, SuiteLigra, SuiteCloudsuite}
}

// Representative returns one trace per distinct workload of a suite: the
// harness uses this smaller set for sweep-heavy experiments.
func Representative(suite string) []Workload {
	seen := map[string]bool{}
	var out []Workload
	for _, w := range BySuite(suite) {
		if !seen[w.Base] {
			seen[w.Base] = true
			out = append(out, w)
		}
	}
	return out
}

// suiteShape applies per-suite defaults that set each suite's memory
// character: compute-heavy suites run at lower miss intensity (larger gaps,
// bigger cache-resident hot fraction), graph suites stay bandwidth-hungry.
func suiteShape(suite string, sp Spec) Spec {
	type shape struct {
		hotFrac float64
		gapMul  float64
	}
	shapes := map[string]shape{
		SuiteSPEC06:     {0.70, 2.0},
		SuiteSPEC17:     {0.70, 2.0},
		SuitePARSEC:     {0.65, 2.0},
		SuiteLigra:      {0.60, 4.0},
		SuiteCloudsuite: {0.50, 1.2},
		SuiteCVP2:       {0.60, 1.5},
	}
	sh := shapes[suite]
	if sp.HotFrac == 0 {
		sp.HotFrac = sh.hotFrac
	}
	if sh.gapMul > 0 {
		sp.MeanGap = int(float64(sp.MeanGap) * sh.gapMul)
	}
	return sp
}

func register(base, suite string, variants int, build func(seed int64) Spec) {
	for v := 0; v < variants; v++ {
		seed := int64(v)
		segment := fmt.Sprintf("%dB", 100*(v+1)+17*v)
		name := fmt.Sprintf("%s-%s", base, segment)
		if variants == 1 {
			name = base
		}
		registry = append(registry, Workload{
			Name:  name,
			Base:  base,
			Suite: suite,
			Spec:  func() Spec { return suiteShape(suite, build(seed)) },
		})
	}
}

// region returns a distinct, widely separated base address per actor slot so
// actors never alias.
func region(slot int) uint64 { return uint64(slot+1) << 33 }

func init() {
	registerSPEC06()
	registerSPEC17()
	registerPARSEC()
	registerLigra()
	registerCloudsuite()
	registerCVP2()
	sort.SliceStable(registry, func(i, j int) bool {
		if registry[i].Suite != registry[j].Suite {
			return registry[i].Suite < registry[j].Suite
		}
		return registry[i].Name < registry[j].Name
	})
}

func registerSPEC06() {
	reg := func(base string, variants int, build func(seed int64) Spec) {
		register(base, SuiteSPEC06, variants, build)
	}
	reg("410.bwaves", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 100, MeanGap: 12, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StreamActor{PC: 0x400100, Base: region(0), Dir: 1, Span: 4096}, 3},
			{&StrideActor{PC: 0x400140, Base: region(1), Stride: 2, Lines: 1 << 17}, 2},
			{&StrideActor{PC: 0x400180, Base: region(2), Stride: 1, Lines: 1 << 17}, 2},
		}}
	})
	reg("429.mcf", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 110, MeanGap: 8, StoreFrac: 0.15, Actors: []WeightedActor{
			{&ChaseActor{PC: 0x401000, Base: region(0), Lines: 1 << 18}, 5},
			{&StrideActor{PC: 0x401040, Base: region(1), Stride: 1, Lines: 1 << 16}, 2},
			{&ZipfActor{PC: 0x401080, Base: region(2), Lines: 1 << 17, Theta: 0.8}, 2},
		}}
	})
	reg("433.milc", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 120, MeanGap: 14, StoreFrac: 0.2, Actors: []WeightedActor{
			{&StrideActor{PC: 0x402000, Base: region(0), Stride: 3, Lines: 1 << 17}, 3},
			{&StreamActor{PC: 0x402040, Base: region(1), Dir: 1, Span: 2048}, 2},
		}}
	})
	reg("436.cactusADM", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 130, MeanGap: 16, StoreFrac: 0.2, Actors: []WeightedActor{
			{&DeltaChainActor{PC: 0x403000, Base: region(0), Chain: []int{1, 3, 1, 3, 1}}, 4},
			{&StrideActor{PC: 0x403040, Base: region(1), Stride: 4, Lines: 1 << 16}, 2},
		}}
	})
	reg("437.leslie3d", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 140, MeanGap: 10, StoreFrac: 0.15, Actors: []WeightedActor{
			{&StreamActor{PC: 0x404000, Base: region(0), Dir: 1, Span: 8192}, 3},
			{&StreamActor{PC: 0x404040, Base: region(1), Dir: -1, Span: 8192}, 2},
			{&StrideActor{PC: 0x404080, Base: region(2), Stride: 5, Lines: 1 << 16}, 2},
		}}
	})
	reg("445.gobmk", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 150, MeanGap: 40, StoreFrac: 0.1, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x405000, Base: region(0), Lines: 1 << 16, Theta: 0.7}, 3},
			{&StrideActor{PC: 0x405040, Base: region(1), Stride: 1, Lines: 1 << 14}, 1},
		}}
	})
	reg("450.soplex", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 160, MeanGap: 12, StoreFrac: 0.15, Actors: []WeightedActor{
			{&StrideActor{PC: 0x406000, Base: region(0), Stride: 1, Lines: 1 << 17}, 3},
			{&RegionActor{TriggerPC: 0x406100, Base: region(1), Footprint: []int{0, 1, 2, 4, 8, 9}, Regions: 4096}, 2},
			{&ChaseActor{PC: 0x406040, Base: region(2), Lines: 1 << 15}, 1},
		}}
	})
	reg("459.GemsFDTD", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 170, MeanGap: 12, StoreFrac: 0.1, Actors: []WeightedActor{
			{&DeltaChainActor{PC: 0x436a81, Base: region(0), Chain: []int{23}, Jitter: 30}, 3},
			{&DeltaChainActor{PC: 0x4377c5, Base: region(1), Chain: []int{11}, Jitter: 30}, 3},
			{&StreamActor{PC: 0x407080, Base: region(2), Dir: 1, Span: 4096}, 2},
		}}
	})
	reg("462.libquantum", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 180, MeanGap: 10, StoreFrac: 0.25, Actors: []WeightedActor{
			{&StreamActor{PC: 0x408000, Base: region(0), Dir: 1, Span: 1 << 16}, 6},
			{&StreamActor{PC: 0x408040, Base: region(1), Dir: 1, Span: 1 << 16}, 1},
		}}
	})
	reg("470.lbm", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 190, MeanGap: 9, StoreFrac: 0.35, Actors: []WeightedActor{
			{&StreamActor{PC: 0x409000, Base: region(0), Dir: 1, Span: 1 << 15}, 3},
			{&StrideActor{PC: 0x409040, Base: region(1), Stride: 2, Lines: 1 << 17}, 2},
			{&StrideActor{PC: 0x409080, Base: region(2), Stride: 7, Lines: 1 << 17}, 2},
		}}
	})
	reg("471.omnetpp", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 200, MeanGap: 18, StoreFrac: 0.2, Actors: []WeightedActor{
			{&ChaseActor{PC: 0x40a000, Base: region(0), Lines: 1 << 17}, 3},
			{&ZipfActor{PC: 0x40a040, Base: region(1), Lines: 1 << 17, Theta: 0.9}, 2},
		}}
	})
	reg("473.astar", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 210, MeanGap: 20, StoreFrac: 0.15, Actors: []WeightedActor{
			{&ChaseActor{PC: 0x40b000, Base: region(0), Lines: 1 << 16}, 4},
			{&StrideActor{PC: 0x40b040, Base: region(1), Stride: 1, Lines: 1 << 14}, 1},
		}}
	})
	reg("481.wrf", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 220, MeanGap: 14, StoreFrac: 0.2, Actors: []WeightedActor{
			{&StreamActor{PC: 0x40c000, Base: region(0), Dir: 1, Span: 4096}, 2},
			{&RegionActor{TriggerPC: 0x40c100, Base: region(1), Footprint: []int{0, 2, 4, 6, 8, 10, 12}, Regions: 2048}, 2},
		}}
	})
	reg("482.sphinx3", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 230, MeanGap: 13, StoreFrac: 0.1, Actors: []WeightedActor{
			{&RegionActor{TriggerPC: 0x40d000, Base: region(0), Footprint: []int{0, 1, 2, 3, 5, 8, 13, 21}, Regions: 4096}, 3},
			{&RegionActor{TriggerPC: 0x40d000, Base: region(3), Footprint: []int{0, 1, 3, 6, 10, 15}, Regions: 4096}, 2},
			{&RegionActor{TriggerPC: 0x40d200, Base: region(1), Footprint: []int{0, 4, 8, 12, 16}, Regions: 4096}, 2},
			{&ZipfActor{PC: 0x40d040, Base: region(2), Lines: 1 << 15, Theta: 0.8}, 1},
		}}
	})
	reg("483.xalancbmk", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 240, MeanGap: 22, StoreFrac: 0.15, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x40e000, Base: region(0), Lines: 1 << 18, Theta: 0.95}, 3},
			{&ChaseActor{PC: 0x40e040, Base: region(1), Lines: 1 << 15}, 2},
		}}
	})
	reg("403.gcc", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 250, MeanGap: 25, StoreFrac: 0.2, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x40f000, Base: region(0), Lines: 1 << 16, Theta: 0.85}, 2},
			{&StrideActor{PC: 0x40f040, Base: region(1), Stride: 1, Lines: 1 << 15}, 1},
			{&DeltaChainActor{PC: 0x40f080, Base: region(2), Chain: []int{2, 1, 2}}, 1},
		}}
	})
}

func registerSPEC17() {
	reg := func(base string, variants int, build func(seed int64) Spec) {
		register(base, SuiteSPEC17, variants, build)
	}
	reg("602.gcc_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 300, MeanGap: 24, StoreFrac: 0.2, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x500000, Base: region(0), Lines: 1 << 16, Theta: 0.85}, 2},
			{&DeltaChainActor{PC: 0x500080, Base: region(1), Chain: []int{1, 2}}, 2},
		}}
	})
	reg("605.mcf_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 310, MeanGap: 9, StoreFrac: 0.15, Actors: []WeightedActor{
			{&ChaseActor{PC: 0x501000, Base: region(0), Lines: 1 << 18}, 5},
			{&StrideActor{PC: 0x501040, Base: region(1), Stride: 1, Lines: 1 << 16}, 2},
		}}
	})
	reg("619.lbm_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 320, MeanGap: 8, StoreFrac: 0.35, Actors: []WeightedActor{
			{&StreamActor{PC: 0x502000, Base: region(0), Dir: 1, Span: 1 << 15}, 3},
			{&StrideActor{PC: 0x502040, Base: region(1), Stride: 3, Lines: 1 << 17}, 2},
		}}
	})
	reg("620.omnetpp_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 330, MeanGap: 18, StoreFrac: 0.2, Actors: []WeightedActor{
			{&ChaseActor{PC: 0x503000, Base: region(0), Lines: 1 << 17}, 3},
			{&ZipfActor{PC: 0x503040, Base: region(1), Lines: 1 << 16, Theta: 0.9}, 2},
		}}
	})
	reg("621.wrf_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 340, MeanGap: 14, StoreFrac: 0.2, Actors: []WeightedActor{
			{&RegionActor{TriggerPC: 0x504000, Base: region(0), Footprint: []int{0, 2, 4, 6, 8}, Regions: 2048}, 2},
			{&StreamActor{PC: 0x504040, Base: region(1), Dir: 1, Span: 4096}, 2},
		}}
	})
	reg("623.xalancbmk_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 350, MeanGap: 26, StoreFrac: 0.15, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x505000, Base: region(0), Lines: 1 << 18, Theta: 0.97}, 4},
			{&TemporalActor{PC: 0x505040, Base: region(1), Len: 8192}, 2},
		}}
	})
	reg("628.pop2_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 360, MeanGap: 13, StoreFrac: 0.2, Actors: []WeightedActor{
			{&StrideActor{PC: 0x506000, Base: region(0), Stride: 2, Lines: 1 << 17}, 3},
			{&RegionActor{TriggerPC: 0x506100, Base: region(1), Footprint: []int{0, 1, 3, 5}, Regions: 2048}, 2},
		}}
	})
	reg("649.fotonik3d_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 370, MeanGap: 10, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StreamActor{PC: 0x507000, Base: region(0), Dir: 1, Span: 1 << 14}, 4},
			{&DeltaChainActor{PC: 0x507040, Base: region(1), Chain: []int{5}}, 2},
		}}
	})
	reg("654.roms_s", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 380, MeanGap: 11, StoreFrac: 0.2, Actors: []WeightedActor{
			{&StreamActor{PC: 0x508000, Base: region(0), Dir: 1, Span: 8192}, 3},
			{&StrideActor{PC: 0x508040, Base: region(1), Stride: 4, Lines: 1 << 16}, 2},
		}}
	})
	reg("603.bwaves_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 390, MeanGap: 9, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StreamActor{PC: 0x509000, Base: region(0), Dir: 1, Span: 1 << 16}, 4},
			{&StrideActor{PC: 0x509040, Base: region(1), Stride: 2, Lines: 1 << 17}, 3},
		}}
	})
	reg("607.cactuBSSN_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 400, MeanGap: 15, StoreFrac: 0.2, Actors: []WeightedActor{
			{&DeltaChainActor{PC: 0x50a000, Base: region(0), Chain: []int{1, 3, 1, 3}}, 3},
			{&StrideActor{PC: 0x50a040, Base: region(1), Stride: 6, Lines: 1 << 16}, 2},
		}}
	})
	reg("657.xz_s", 1, func(seed int64) Spec {
		return Spec{Seed: seed + 410, MeanGap: 20, StoreFrac: 0.25, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x50b000, Base: region(0), Lines: 1 << 17, Theta: 0.8}, 2},
			{&StreamActor{PC: 0x50b040, Base: region(1), Dir: 1, Span: 2048}, 2},
		}}
	})
}

func registerPARSEC() {
	reg := func(base string, variants int, build func(seed int64) Spec) {
		register(base, SuitePARSEC, variants, build)
	}
	reg("canneal", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 500, MeanGap: 11, StoreFrac: 0.15, Actors: []WeightedActor{
			{&RegionActor{TriggerPC: 0x600000, Base: region(0), Footprint: []int{0, 1, 2, 3, 4, 5, 6, 7}, Regions: 8192}, 3},
			{&RegionActor{TriggerPC: 0x600000, Base: region(3), Footprint: []int{0, 1, 2, 5}, Regions: 8192}, 2},
			{&ChaseActor{PC: 0x600040, Base: region(1), Lines: 1 << 17}, 2},
			{&ZipfActor{PC: 0x600080, Base: region(2), Lines: 1 << 16, Theta: 0.8}, 1},
		}}
	})
	reg("facesim", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 510, MeanGap: 12, StoreFrac: 0.25, Actors: []WeightedActor{
			{&RegionActor{TriggerPC: 0x601000, Base: region(0), Footprint: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, Regions: 8192}, 3},
			{&RegionActor{TriggerPC: 0x601000, Base: region(2), Footprint: []int{0, 1, 2, 4, 6}, Regions: 8192}, 2},
			{&RegionActor{TriggerPC: 0x601200, Base: region(1), Footprint: []int{0, 2, 4, 6, 8, 10}, Regions: 4096}, 2},
		}}
	})
	reg("streamcluster", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 520, MeanGap: 9, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StreamActor{PC: 0x602000, Base: region(0), Dir: 1, Span: 1 << 15}, 4},
			{&StrideActor{PC: 0x602040, Base: region(1), Stride: 1, Lines: 1 << 17}, 2},
		}}
	})
	reg("raytrace", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 530, MeanGap: 16, StoreFrac: 0.1, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x603000, Base: region(0), Lines: 1 << 17, Theta: 0.85}, 2},
			{&RegionActor{TriggerPC: 0x603100, Base: region(1), Footprint: []int{0, 1, 4, 5, 8, 9}, Regions: 4096}, 2},
		}}
	})
	reg("fluidanimate", 2, func(seed int64) Spec {
		return Spec{Seed: seed + 540, MeanGap: 13, StoreFrac: 0.3, Actors: []WeightedActor{
			{&RegionActor{TriggerPC: 0x604000, Base: region(0), Footprint: []int{0, 1, 2, 4, 5, 6}, Regions: 4096}, 3},
			{&RegionActor{TriggerPC: 0x604000, Base: region(2), Footprint: []int{0, 2, 3, 7, 9, 12, 14}, Regions: 4096}, 2},
			{&StrideActor{PC: 0x604040, Base: region(1), Stride: 2, Lines: 1 << 16}, 2},
		}}
	})
}

// ligraSpec builds a Ligra-style graph workload. RunLen controls how long the
// in-page neighbor bursts are; gap controls intensity.
func ligraSpec(seed int64, vertices, runLen, gap int) Spec {
	return Spec{Seed: seed, MeanGap: gap, StoreFrac: 0.1, Actors: []WeightedActor{
		{&GraphActor{ScanPC: 0x700000, VisitPC: 0x700040, Base: region(0), VertBase: region(1), Vertices: vertices, RunLen: runLen, ScanFrac: 0.6}, 5},
		{&StreamActor{PC: 0x700080, Base: region(2), Dir: 1, Span: 8192}, 2},
	}}
}

func registerLigra() {
	type lg struct {
		name     string
		variants int
		vertices int
		runLen   int
		gap      int
	}
	graphs := []lg{
		{"BFS", 3, 1 << 16, 2, 6},
		{"BFSCC", 3, 1 << 16, 2, 6},
		{"BFS-Bitvector", 3, 1 << 15, 2, 7},
		{"BC", 3, 1 << 16, 3, 6},
		{"BellmanFord", 3, 1 << 16, 3, 5},
		{"CC", 4, 1 << 17, 2, 5},
		{"CF", 3, 1 << 16, 4, 6},
		{"MIS", 3, 1 << 15, 2, 7},
		{"PageRank", 4, 1 << 17, 3, 5},
		{"PageRankDelta", 4, 1 << 17, 2, 5},
		{"Radii", 3, 1 << 16, 3, 6},
		{"Triangle", 3, 1 << 16, 4, 7},
		{"KCore", 1, 1 << 15, 2, 7},
	}
	for i, g := range graphs {
		g := g
		base := int64(800 + 10*i)
		register(g.name, SuiteLigra, g.variants, func(seed int64) Spec {
			return ligraSpec(base+seed, g.vertices, g.runLen, g.gap)
		})
	}
}

func registerCloudsuite() {
	type cs struct {
		name     string
		variants int
		theta    float64
		gap      int
	}
	apps := []cs{
		{"cassandra", 14, 0.9, 15},
		{"cloud9", 13, 0.85, 18},
		{"nutch", 13, 0.92, 16},
		{"streaming", 13, 0.8, 12},
	}
	for i, a := range apps {
		a := a
		base := int64(900 + 10*i)
		register(a.name, SuiteCloudsuite, a.variants, func(seed int64) Spec {
			return Spec{Seed: base + seed, MeanGap: a.gap, StoreFrac: 0.2, Actors: []WeightedActor{
				{&ZipfActor{PC: 0x800000 + uint64(i)<<12, Base: region(0), Lines: 1 << 16, Theta: a.theta}, 3},
				{&TemporalActor{PC: 0x800040 + uint64(i)<<12, Base: region(1), Len: 8192}, 2},
				{&StreamActor{PC: 0x800080 + uint64(i)<<12, Base: region(2), Dir: 1, Span: 2048}, 2},
			}}
		})
	}
}

func registerCVP2() {
	reg := func(base string, variants int, build func(seed int64) Spec) {
		register(base, SuiteCVP2, variants, build)
	}
	reg("crypto", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 1000, MeanGap: 28, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StrideActor{PC: 0x900000, Base: region(0), Stride: 1, Lines: 1 << 14}, 3},
			{&ZipfActor{PC: 0x900040, Base: region(1), Lines: 1 << 13, Theta: 0.7}, 1},
		}}
	})
	reg("int", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 1010, MeanGap: 20, StoreFrac: 0.2, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x901000, Base: region(0), Lines: 1 << 16, Theta: 0.85}, 2},
			{&DeltaChainActor{PC: 0x901040, Base: region(1), Chain: []int{1, 2, 1}}, 2},
			{&ChaseActor{PC: 0x901080, Base: region(2), Lines: 1 << 15}, 1},
		}}
	})
	reg("fp", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 1020, MeanGap: 11, StoreFrac: 0.15, Actors: []WeightedActor{
			{&StreamActor{PC: 0x902000, Base: region(0), Dir: 1, Span: 8192}, 3},
			{&StrideActor{PC: 0x902040, Base: region(1), Stride: 3, Lines: 1 << 16}, 2},
		}}
	})
	reg("server", 3, func(seed int64) Spec {
		return Spec{Seed: seed + 1030, MeanGap: 16, StoreFrac: 0.25, Actors: []WeightedActor{
			{&ZipfActor{PC: 0x903000, Base: region(0), Lines: 1 << 18, Theta: 0.9}, 3},
			{&TemporalActor{PC: 0x903040, Base: region(1), Len: 4096}, 2},
		}}
	})
}
