package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeTrace is a test helper that encodes t and fails the test on error.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRoundTrip feeds arbitrary bytes to the decoder: anything that
// decodes must re-encode and decode again to the identical trace, and
// nothing — however corrupt — may crash or over-allocate (the decoder caps
// name lengths, record counts and the records pre-allocation).
//
// Run with: go test -fuzz=FuzzRoundTrip ./internal/trace
func FuzzRoundTrip(f *testing.F) {
	// Seeds: a healthy trace, an empty trace, tricky varint boundaries.
	healthy := &Trace{Name: "fuzz-1", Suite: "TEST", Records: []Record{
		{PC: 0x400000, Addr: 1 << 33, NonMem: 12},
		{PC: 0x3fff00, Addr: 1 << 20, NonMem: 65535, Store: true},
		{PC: 0, Addr: 0, NonMem: 0},
	}}
	for _, tr := range []*Trace{healthy, {Name: "", Suite: "", Records: nil}} {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("PYTR1"))
	f.Add([]byte("PYTR1\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("non-nil trace alongside a decode error")
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding a decoded trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if back.Name != tr.Name || back.Suite != tr.Suite || len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip diverged: %v vs %v", back, tr)
		}
		for i := range back.Records {
			if back.Records[i] != tr.Records[i] {
				t.Fatalf("record %d diverged: %+v vs %+v", i, back.Records[i], tr.Records[i])
			}
		}
	})
}

// TestReadHugeCountRejected ensures a corrupt header cannot demand a huge
// record count (and that the pre-allocation is capped below it anyway).
func TestReadHugeCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0) // empty name
	buf.WriteByte(0) // empty suite
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<40) // absurd count
	buf.Write(tmp[:n])
	if _, err := Read(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("count 1<<40: got %v, want ErrBadFormat", err)
	}
}

// TestReadHugeStringRejected ensures name/suite lengths are bounded.
func TestReadHugeStringRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<30)
	buf.Write(tmp[:n])
	if _, err := Read(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("name length 1<<30: got %v, want ErrBadFormat", err)
	}
}

// TestReadNonMemOverflowRejected ensures an encoded nonmem beyond uint16
// is a format error rather than a silent truncation.
func TestReadNonMemOverflowRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0) // name
	buf.WriteByte(0) // suite
	buf.WriteByte(1) // one record
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], 0) // pc delta
	buf.Write(tmp[:n])
	n = binary.PutVarint(tmp[:], 0) // addr delta
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], 1<<20) // nonmem way past uint16
	buf.Write(tmp[:n])
	buf.WriteByte(0) // flags
	if _, err := Read(&buf); !errors.Is(err, ErrBadFormat) {
		t.Errorf("nonmem 1<<20: got %v, want ErrBadFormat", err)
	}
}

// TestDecoderTruncatedMidRecord walks every truncation point of a small
// trace through the incremental Decoder.
func TestDecoderTruncatedMidRecord(t *testing.T) {
	tr := &Trace{Name: "trunc", Suite: "TEST", Records: []Record{
		{PC: 1 << 40, Addr: 1 << 41, NonMem: 300},
		{PC: 1, Addr: 2, NonMem: 0, Store: true},
	}}
	full := encodeTrace(t, tr)
	for cut := 0; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d/%d not detected", cut, len(full))
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at byte %d: %v is not ErrBadFormat", cut, err)
		}
	}
}

// TestDecoderHeaderAndEOF exercises the Decoder surface directly: header
// accessors, io.EOF after the declared count, and EOF stickiness.
func TestDecoderHeaderAndEOF(t *testing.T) {
	tr := &Trace{Name: "dec", Suite: "SUITE", Records: []Record{{PC: 7, Addr: 9, NonMem: 3}}}
	d, err := NewDecoder(bytes.NewReader(encodeTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "dec" || d.Suite() != "SUITE" || d.Count() != 1 {
		t.Fatalf("header: %q/%q count %d", d.Name(), d.Suite(), d.Count())
	}
	rec, err := d.Next()
	if err != nil || rec != tr.Records[0] {
		t.Fatalf("Next = %+v, %v", rec, err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("post-count Next #%d: %v, want io.EOF", i, err)
		}
	}
}

// TestEncoderCountEnforced ensures the encoder rejects both over- and
// under-writing the declared record count.
func TestEncoderCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, "n", "s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err == nil {
		t.Error("Close with a missing record succeeded")
	}
	if err := e.WriteRecord(Record{}); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteRecord(Record{}); err == nil {
		t.Error("writing past the declared count succeeded")
	}
	if err := e.Close(); err != nil {
		t.Errorf("Close after exactly count records: %v", err)
	}
	if _, err := NewEncoder(io.Discard, "n", "s", -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestReadRejectsShortMagic(t *testing.T) {
	for _, in := range []string{"", "P", "PYTR", "PYTR2"} {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("magic %q: got %v, want ErrBadFormat", in, err)
		}
	}
}
