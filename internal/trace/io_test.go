package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := &Trace{
		Name:  "roundtrip-1",
		Suite: "TEST",
		Records: []Record{
			{PC: 0x400000, Addr: 1 << 33, NonMem: 12},
			{PC: 0x400004, Addr: 1<<33 + 64, NonMem: 0, Store: true},
			{PC: 0x3fff00, Addr: 1 << 20, NonMem: 65535},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name || got.Suite != orig.Suite {
		t.Errorf("identity mismatch: %q/%q", got.Name, got.Suite)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], orig.Records[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "p", Suite: "q"}
		var pc, addr uint64
		for i := 0; i < int(n); i++ {
			// Mix forward and backward movements to exercise signed deltas.
			pc += uint64(rng.Intn(1000)) - 200
			addr += uint64(rng.Intn(100000)) - 20000
			tr.Records = append(tr.Records, Record{
				PC: pc, Addr: addr,
				NonMem: uint16(rng.Intn(1 << 16)),
				Store:  rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTATRACE"))
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("want ErrBadFormat, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	tr := &Trace{Name: "x", Suite: "y", Records: make([]Record, 10)}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestReadEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", Suite: "s"}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 || got.Name != "empty" {
		t.Errorf("got %+v", got)
	}
}
