package trace

import (
	"testing"

	"pythia/internal/mem"
)

// Fidelity tests pin the paper-documented character of key workloads: the
// experiments depend on these traces exercising the pattern classes the
// figures attribute to them.

// deltaHistogram returns per-page in-page delta counts over a trace.
func deltaHistogram(tr *Trace) map[int]int {
	last := map[uint64]int{}
	hist := map[int]int{}
	hotBase := uint64(31) << 33 // the cache-resident hot region (slot 30)
	for _, r := range tr.Records {
		if r.Addr >= hotBase && r.Addr < hotBase+(1<<33) {
			continue // hot accesses are cache hits, invisible to prefetchers
		}
		page := mem.PageOf(r.Addr)
		off := mem.LineOffset(r.Addr)
		if prev, ok := last[page]; ok && off != prev {
			hist[off-prev]++
		}
		last[page] = off
	}
	return hist
}

func TestGemsFDTDHasCaseStudyDeltas(t *testing.T) {
	w, ok := ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	hist := deltaHistogram(w.Generate(60_000))
	// §6.5: the +23 and +11 deltas dominate GemsFDTD's in-page behavior.
	if hist[23] < 500 || hist[11] < 500 {
		t.Errorf("case-study deltas underrepresented: +23=%d +11=%d", hist[23], hist[11])
	}
}

func TestLibquantumIsStreamDominated(t *testing.T) {
	w, ok := ByName("462.libquantum-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	hist := deltaHistogram(w.Generate(60_000))
	total, plus1ish := 0, 0
	for d, n := range hist {
		total += n
		if d >= 1 && d <= 4 {
			plus1ish += n
		}
	}
	if total == 0 || float64(plus1ish)/float64(total) < 0.5 {
		t.Errorf("libquantum not stream-dominated: %d/%d small positive deltas", plus1ish, total)
	}
}

func TestMcfIsIrregular(t *testing.T) {
	w, ok := ByName("429.mcf-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	tr := w.Generate(60_000)
	// The pointer-chase component: consecutive non-hot accesses rarely
	// repeat pages; measure distinct pages touched relative to accesses.
	pages := map[uint64]bool{}
	n := 0
	for _, r := range tr.Records {
		if r.Addr>>33 == 0 {
			continue
		}
		pages[mem.PageOf(r.Addr)] = true
		n++
	}
	if n == 0 || float64(len(pages))/float64(n) < 0.05 {
		t.Errorf("mcf touches too few distinct pages: %d pages over %d accesses", len(pages), n)
	}
}

func TestSphinxFootprintsRecur(t *testing.T) {
	w, ok := ByName("482.sphinx3-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	tr := w.Generate(60_000)
	// Accesses from the region actor (PC base 0x40d000) must form recurring
	// within-page offset sets: the SMS/Bingo-learnable structure.
	perPage := map[uint64]map[int]bool{}
	for _, r := range tr.Records {
		if r.PC >= 0x40d000 && r.PC < 0x40d100 {
			p := mem.PageOf(r.Addr)
			if perPage[p] == nil {
				perPage[p] = map[int]bool{}
			}
			perPage[p][mem.LineOffset(r.Addr)] = true
		}
	}
	multi := 0
	for _, offs := range perPage {
		if len(offs) >= 3 {
			multi++
		}
	}
	if multi < 50 {
		t.Errorf("only %d pages with >=3-line footprints from the sphinx region PC", multi)
	}
}

func TestLigraBandwidthCharacter(t *testing.T) {
	// Ligra traces must be markedly denser (more accesses per instruction)
	// than SPEC06, the property behind Figs. 1/14.
	density := func(name string) float64 {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		tr := w.Generate(20_000)
		return float64(len(tr.Records)) / float64(tr.Instructions())
	}
	if density("CC-100B") <= density("445.gobmk") {
		t.Error("Ligra-CC should be denser than gobmk")
	}
}

func TestCloudsuiteHasTemporalReuse(t *testing.T) {
	w, ok := ByName("cassandra-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	tr := w.Generate(60_000)
	seen := map[uint64]int{}
	for _, r := range tr.Records {
		seen[mem.LineAddr(r.Addr)]++
	}
	reused := 0
	for _, n := range seen {
		if n >= 3 {
			reused++
		}
	}
	if reused < 100 {
		t.Errorf("cloudsuite shows little temporal reuse: %d lines reused >=3 times", reused)
	}
}
