package trace

// The batched (SoA) record path. A Chunk carries a batch of records as
// parallel column slices instead of a []Record: the simulation kernel
// walks dense uint64/uint16/bool columns with no per-record interface
// call and no 26-byte struct copies, and producers (generator, file
// decoder) append straight into the columns without ever materializing
// an intermediate []Record. PERF.md "Batched SoA kernel" documents the
// layout invariants and the measured effect.

// DefaultBatch is the column-batch size NewChunkingReader uses when the
// caller does not specify one. It matches the working-set goal of the
// stream pipeline's chunks: large enough to amortize per-batch costs to
// noise, small enough to stay cache-resident alongside the simulator's
// own state.
const DefaultBatch = 1 << 13

// Chunk is a batch of records in column (SoA) layout. All four columns
// always have equal length; index i across the columns is record i.
// Chunks are plain data: producers fill them with Append (or column-wise
// writes that keep the equal-length invariant), consumers index the
// columns directly.
type Chunk struct {
	PC     []uint64
	Addr   []uint64
	NonMem []uint16
	Store  []bool
}

// NewChunk returns an empty chunk with capacity for n records per column.
func NewChunk(n int) *Chunk {
	return &Chunk{
		PC:     make([]uint64, 0, n),
		Addr:   make([]uint64, 0, n),
		NonMem: make([]uint16, 0, n),
		Store:  make([]bool, 0, n),
	}
}

// Len returns the number of records in the chunk.
func (c *Chunk) Len() int { return len(c.PC) }

// Reset truncates all columns to zero length, keeping their capacity, so
// chunk buffers recycle through free lists without reallocating.
func (c *Chunk) Reset() {
	c.PC = c.PC[:0]
	c.Addr = c.Addr[:0]
	c.NonMem = c.NonMem[:0]
	c.Store = c.Store[:0]
}

// Append adds one record to the columns.
func (c *Chunk) Append(r Record) {
	c.PC = append(c.PC, r.PC)
	c.Addr = append(c.Addr, r.Addr)
	c.NonMem = append(c.NonMem, r.NonMem)
	c.Store = append(c.Store, r.Store)
}

// At returns record i assembled from the columns.
func (c *Chunk) At(i int) Record {
	return Record{PC: c.PC[i], Addr: c.Addr[i], NonMem: c.NonMem[i], Store: c.Store[i]}
}

// Tail returns a view of the records from i on. The view shares the
// underlying column arrays; it is valid exactly as long as the chunk it
// was taken from.
func (c *Chunk) Tail(i int) Chunk {
	return Chunk{PC: c.PC[i:], Addr: c.Addr[i:], NonMem: c.NonMem[i:], Store: c.Store[i:]}
}

// Instructions returns the total instruction count of the chunk's
// records (each record counts its access plus its NonMem gap).
func (c *Chunk) Instructions() int64 {
	n := int64(len(c.NonMem))
	for _, g := range c.NonMem {
		n += int64(g)
	}
	return n
}

// ChunkReader is the batched fast path over Reader: NextChunk delivers
// the next run of records as a column view, and ok == false signals the
// end of the pass (or a delivery failure, distinguished by the reader's
// Err method where one exists — exactly as with Next).
//
// The returned chunk is valid only until the next NextChunk, Next, Reset
// or Close call on the same reader: implementations recycle column
// buffers. Mixing Next and NextChunk on one reader is allowed and never
// skips or duplicates records — NextChunk first drains whatever the
// record-at-a-time path left unconsumed in the current batch.
type ChunkReader interface {
	Reader
	NextChunk() (Chunk, bool)
}

// ChunkFiller is implemented by one-pass iterators (the workload
// generator, the file decoder) that can append records directly to a
// chunk's columns, letting producers fill batches without a per-record
// interface call. FillChunk appends up to max records and returns how
// many were appended; fewer than max means the pass ended or failed
// (iterators that can fail expose Err, as with Iter).
type ChunkFiller interface {
	FillChunk(c *Chunk, max int) int
}

// FillChunk appends up to max records from it to c, using the iterator's
// direct column path when it has one and falling back to per-record Next
// calls otherwise. It returns the number of records appended.
func FillChunk(it Iter, c *Chunk, max int) int {
	if f, ok := it.(ChunkFiller); ok {
		return f.FillChunk(c, max)
	}
	n := 0
	for n < max {
		rec, ok := it.Next()
		if !ok {
			break
		}
		c.Append(rec)
		n++
	}
	return n
}

// chunkingReader adapts a record-at-a-time Reader to the ChunkReader
// fast path by batching Next calls into an internal column buffer. It is
// how the simulation kernel consumes readers that have no native batch
// path (materialized SliceReaders, test readers): the record sequence is
// exactly the wrapped reader's, delivered batch-wise.
type chunkingReader struct {
	r   Reader
	buf *Chunk
}

// NewChunkingReader returns a ChunkReader over r with batches of up to
// chunk records (chunk <= 0 selects DefaultBatch).
func NewChunkingReader(r Reader, chunk int) ChunkReader {
	if chunk <= 0 {
		chunk = DefaultBatch
	}
	return &chunkingReader{r: r, buf: NewChunk(chunk)}
}

// Next implements Reader by delegating to the wrapped reader.
func (a *chunkingReader) Next() (Record, bool) { return a.r.Next() }

// Reset implements Reader.
func (a *chunkingReader) Reset() { a.r.Reset() }

// Err surfaces the wrapped reader's delivery error, if it has one.
func (a *chunkingReader) Err() error {
	if e, ok := a.r.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// NextChunk implements ChunkReader.
func (a *chunkingReader) NextChunk() (Chunk, bool) {
	a.buf.Reset()
	for a.buf.Len() < cap(a.buf.PC) {
		rec, ok := a.r.Next()
		if !ok {
			break
		}
		a.buf.Append(rec)
	}
	if a.buf.Len() == 0 {
		return Chunk{}, false
	}
	return *a.buf, true
}
