package trace

import "testing"

// TestGeneratorMatchesGenerate is the contract the streaming pipeline
// stands on: Spec.Generator must yield exactly the sequence Generate
// materializes, for every registered workload shape.
func TestGeneratorMatchesGenerate(t *testing.T) {
	names := []string{
		"459.GemsFDTD-100B", // delta chains
		"410.bwaves-100B",   // streams/strides
		"429.mcf-100B",      // pointer chase
		"CC-100B",           // graph
		"cassandra-100B",    // zipf/server
	}
	const n = 30_000
	for _, name := range names {
		w, ok := ByName(name)
		if !ok {
			t.Errorf("missing workload %s", name)
			continue
		}
		want := w.Generate(n).Records
		it := w.Iter(n)
		for i := 0; ; i++ {
			rec, ok := it.Next()
			if !ok {
				if i != len(want) {
					t.Errorf("%s: iterator ended at %d, want %d", name, i, len(want))
				}
				break
			}
			if i >= len(want) {
				t.Errorf("%s: iterator overran %d records", name, len(want))
				break
			}
			if rec != want[i] {
				t.Fatalf("%s: record %d = %+v, want %+v", name, i, rec, want[i])
			}
		}
	}
}

func TestGeneratorRemaining(t *testing.T) {
	w, ok := ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	g := w.Spec().Generator(10)
	if g.Remaining() != 10 {
		t.Errorf("Remaining = %d, want 10", g.Remaining())
	}
	g.Next()
	if g.Remaining() != 9 {
		t.Errorf("Remaining after one Next = %d, want 9", g.Remaining())
	}
	if w.NumRecords(10) != 10 {
		t.Errorf("NumRecords = %d", w.NumRecords(10))
	}
	// Degenerate specs produce nothing.
	if got := (Spec{}).Generator(5).Remaining(); got != 0 {
		t.Errorf("empty spec Remaining = %d, want 0", got)
	}
	if _, ok := (Spec{}).Generator(5).Next(); ok {
		t.Error("empty spec produced a record")
	}
}

func TestWorkloadKeyDistinguishes(t *testing.T) {
	a, _ := ByName("459.GemsFDTD-100B")
	b, _ := ByName("410.bwaves-100B")
	if a.Key(100) == b.Key(100) {
		t.Error("different workloads share a key")
	}
	if a.Key(100) == a.Key(200) {
		t.Error("different lengths share a key")
	}
	if a.Key(100) != a.Key(100) {
		t.Error("key not deterministic")
	}
	// Fixed workloads ignore n: both keys describe the same 3 records.
	ft := Fixed(&Trace{Name: "f", Suite: "s", Records: make([]Record, 3)})
	if ft.Key(100) != ft.Key(200) {
		t.Error("fixed workload keys should not depend on n")
	}
	if ft.NumRecords(100) != 3 {
		t.Errorf("fixed NumRecords = %d, want 3", ft.NumRecords(100))
	}
}
