package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pytr")
	w, ok := ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	orig := w.Generate(5000)
	if err := SaveFile(path, orig); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace().Name != orig.Name || len(r.Trace().Records) != len(orig.Records) {
		t.Fatalf("decoded identity mismatch: %s/%d", r.Trace().Name, len(r.Trace().Records))
	}
	// Reader semantics: full pass, then Reset.
	n := 0
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if rec != orig.Records[n] {
			t.Fatalf("record %d mismatch", n)
		}
		n++
	}
	if n != len(orig.Records) {
		t.Fatalf("read %d records", n)
	}
	r.Reset()
	if rec, ok := r.Next(); !ok || rec != orig.Records[0] {
		t.Error("Reset did not restart the stream")
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, err := OpenFile("/nonexistent/path.pytr"); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pytr")
	if err := SaveFile(bad, &Trace{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic.
	if err := corruptFirstByte(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("corrupt file should fail to decode")
	}
}

// corruptFirstByte flips the first byte of a file.
func corruptFirstByte(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b[0] ^= 0xFF
	return os.WriteFile(path, b, 0o644)
}
