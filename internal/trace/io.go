package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [5]byte  "PYTR1"
//	name    uvarint length + bytes
//	suite   uvarint length + bytes
//	count   uvarint
//	records: per record
//	    pcDelta   varint  (PC - prevPC)
//	    addrDelta varint  (Addr - prevAddr)
//	    nonmem    uvarint
//	    flags     byte    (bit0 = store)
//
// Delta encoding keeps traces compact since both PCs and addresses are
// strongly local.

var magic = [5]byte{'P', 'Y', 'T', 'R', '1'}

// ErrBadFormat is returned when decoding input that is not a valid trace.
var ErrBadFormat = errors.New("trace: bad format")

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeString := func(s string) error {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(t.Name); err != nil {
		return err
	}
	if err := writeString(t.Suite); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Records)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prevPC, prevAddr uint64
	for _, r := range t.Records {
		n = binary.PutVarint(buf[:], int64(r.PC-prevPC))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutVarint(buf[:], int64(r.Addr-prevAddr))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(r.NonMem))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		var flags byte
		if r.Store {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		prevPC, prevAddr = r.PC, r.Addr
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var got [5]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, got[:])
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("%w: string length %d", ErrBadFormat, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	var err error
	if t.Name, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	if t.Suite, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: suite: %v", ErrBadFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: record count %d", ErrBadFormat, count)
	}
	t.Records = make([]Record, 0, count)
	var prevPC, prevAddr uint64
	for i := uint64(0); i < count; i++ {
		pcD, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		addrD, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		nonmem, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
		}
		prevPC += uint64(pcD)
		prevAddr += uint64(addrD)
		t.Records = append(t.Records, Record{
			PC:     prevPC,
			Addr:   prevAddr,
			NonMem: uint16(nonmem),
			Store:  flags&1 != 0,
		})
	}
	return t, nil
}
