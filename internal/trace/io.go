package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format:
//
//	magic   [5]byte  "PYTR1"
//	name    uvarint length + bytes
//	suite   uvarint length + bytes
//	count   uvarint
//	records: per record
//	    pcDelta   varint  (PC - prevPC)
//	    addrDelta varint  (Addr - prevAddr)
//	    nonmem    uvarint
//	    flags     byte    (bit0 = store)
//
// Delta encoding keeps traces compact since both PCs and addresses are
// strongly local. Encoder/Decoder process the format incrementally so
// paper-scale traces stream to and from disk without ever being resident
// in memory; Write/Read wrap them for whole-trace convenience.

var magic = [5]byte{'P', 'Y', 'T', 'R', '1'}

// ErrBadFormat is returned when decoding input that is not a valid trace.
var ErrBadFormat = errors.New("trace: bad format")

// maxNameLen bounds the decoded name/suite strings.
const maxNameLen = 1 << 20

// maxRecordCount bounds the decoded record count.
const maxRecordCount = 1 << 32

// Encoder streams records into the binary trace format. The record count
// is part of the header, so it must be known up front; Close fails if the
// number of records written differs.
type Encoder struct {
	bw       *bufio.Writer
	left     uint64
	prevPC   uint64
	prevAddr uint64
}

// NewEncoder writes the trace header for count records to w and returns an
// encoder ready to accept exactly count WriteRecord calls.
func NewEncoder(w io.Writer, name, suite string, count int) (*Encoder, error) {
	if count < 0 {
		return nil, fmt.Errorf("trace: negative record count %d", count)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeString := func(s string) error {
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(name); err != nil {
		return nil, err
	}
	if err := writeString(suite); err != nil {
		return nil, err
	}
	n := binary.PutUvarint(buf[:], uint64(count))
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, err
	}
	return &Encoder{bw: bw, left: uint64(count)}, nil
}

// WriteRecord appends one record.
func (e *Encoder) WriteRecord(r Record) error {
	if e.left == 0 {
		return fmt.Errorf("trace: encoder: more records than the declared count")
	}
	e.left--
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(r.PC-e.prevPC))
	if _, err := e.bw.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutVarint(buf[:], int64(r.Addr-e.prevAddr))
	if _, err := e.bw.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutUvarint(buf[:], uint64(r.NonMem))
	if _, err := e.bw.Write(buf[:n]); err != nil {
		return err
	}
	var flags byte
	if r.Store {
		flags |= 1
	}
	if err := e.bw.WriteByte(flags); err != nil {
		return err
	}
	e.prevPC, e.prevAddr = r.PC, r.Addr
	return nil
}

// EncodeChunk appends every record of a column chunk, streaming straight
// off the columns: the chunked write path never assembles a Record or a
// []Record between producer and encoder.
func (e *Encoder) EncodeChunk(c *Chunk) error {
	n := c.Len()
	if uint64(n) > e.left {
		return fmt.Errorf("trace: encoder: more records than the declared count")
	}
	e.left -= uint64(n)
	var buf [binary.MaxVarintLen64]byte
	for i := 0; i < n; i++ {
		w := binary.PutVarint(buf[:], int64(c.PC[i]-e.prevPC))
		if _, err := e.bw.Write(buf[:w]); err != nil {
			return err
		}
		w = binary.PutVarint(buf[:], int64(c.Addr[i]-e.prevAddr))
		if _, err := e.bw.Write(buf[:w]); err != nil {
			return err
		}
		w = binary.PutUvarint(buf[:], uint64(c.NonMem[i]))
		if _, err := e.bw.Write(buf[:w]); err != nil {
			return err
		}
		var flags byte
		if c.Store[i] {
			flags |= 1
		}
		if err := e.bw.WriteByte(flags); err != nil {
			return err
		}
		e.prevPC, e.prevAddr = c.PC[i], c.Addr[i]
	}
	return nil
}

// Close flushes buffered output and verifies the declared record count was
// written. It does not close the underlying writer.
func (e *Encoder) Close() error {
	if e.left != 0 {
		return fmt.Errorf("trace: encoder: %d records short of the declared count", e.left)
	}
	return e.bw.Flush()
}

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	e, err := NewEncoder(w, t.Name, t.Suite, len(t.Records))
	if err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := e.WriteRecord(r); err != nil {
			return err
		}
	}
	return e.Close()
}

// Decoder streams records out of the binary trace format, validating the
// header on construction and each record as it is read.
type Decoder struct {
	br       *bufio.Reader
	name     string
	suite    string
	count    uint64
	read     uint64
	prevPC   uint64
	prevAddr uint64
}

// NewDecoder reads and validates the trace header from r.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var got [5]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, got[:])
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxNameLen {
			return "", fmt.Errorf("%w: string length %d", ErrBadFormat, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	d := &Decoder{br: br}
	var err error
	if d.name, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	if d.suite, err = readString(); err != nil {
		return nil, fmt.Errorf("%w: suite: %v", ErrBadFormat, err)
	}
	if d.count, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	if d.count > maxRecordCount {
		return nil, fmt.Errorf("%w: record count %d", ErrBadFormat, d.count)
	}
	return d, nil
}

// Name returns the trace name from the header.
func (d *Decoder) Name() string { return d.name }

// Suite returns the suite from the header.
func (d *Decoder) Suite() string { return d.suite }

// Count returns the declared record count from the header.
func (d *Decoder) Count() int64 { return int64(d.count) }

// Next decodes the next record. It returns io.EOF after the declared count
// of records has been read, and an ErrBadFormat-wrapped error on corrupt
// input.
func (d *Decoder) Next() (Record, error) {
	if d.read >= d.count {
		return Record{}, io.EOF
	}
	i := d.read
	pcD, err := binary.ReadVarint(d.br)
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	addrD, err := binary.ReadVarint(d.br)
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	nonmem, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	if nonmem > math.MaxUint16 {
		return Record{}, fmt.Errorf("%w: record %d: nonmem %d overflows uint16", ErrBadFormat, i, nonmem)
	}
	flags, err := d.br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	d.read++
	d.prevPC += uint64(pcD)
	d.prevAddr += uint64(addrD)
	return Record{
		PC:     d.prevPC,
		Addr:   d.prevAddr,
		NonMem: uint16(nonmem),
		Store:  flags&1 != 0,
	}, nil
}

// DecodeInto decodes the next record directly onto c's columns, without
// materializing a Record. It returns io.EOF after the declared count.
func (d *Decoder) DecodeInto(c *Chunk) error {
	if d.read >= d.count {
		return io.EOF
	}
	i := d.read
	pcD, err := binary.ReadVarint(d.br)
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	addrD, err := binary.ReadVarint(d.br)
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	nonmem, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	if nonmem > math.MaxUint16 {
		return fmt.Errorf("%w: record %d: nonmem %d overflows uint16", ErrBadFormat, i, nonmem)
	}
	flags, err := d.br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrBadFormat, i, err)
	}
	d.read++
	d.prevPC += uint64(pcD)
	d.prevAddr += uint64(addrD)
	c.PC = append(c.PC, d.prevPC)
	c.Addr = append(c.Addr, d.prevAddr)
	c.NonMem = append(c.NonMem, uint16(nonmem))
	c.Store = append(c.Store, flags&1 != 0)
	return nil
}

// DecodeChunk appends up to max records onto c's columns, returning how
// many were decoded. A clean end of trace yields (n, nil) with n < max;
// corrupt input yields the ErrBadFormat-wrapped error.
func (d *Decoder) DecodeChunk(c *Chunk, max int) (int, error) {
	for n := 0; n < max; n++ {
		if err := d.DecodeInto(c); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
	}
	return max, nil
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: d.Name(), Suite: d.Suite()}
	// Cap the pre-allocation: the header's count is untrusted input, so a
	// corrupt file must not force a huge up-front allocation.
	capHint := d.count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Records = make([]Record, 0, capHint)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
}
