package trace

import (
	"math"
	"math/rand"

	"pythia/internal/mem"
)

// Generators synthesize workload traces from composable access-pattern
// "actors". Each actor models one pattern class discussed in the paper:
// sequential streams, per-PC strides, in-page delta chains, spatial region
// footprints, pointer chases, graph frontier scans, and server-style
// low-locality accesses. A workload Spec mixes several actors with weights
// and an instruction-gap distribution that sets memory intensity.

// Actor produces one access at a time for a single pattern.
type Actor interface {
	// Next returns the next (pc, addr, store) triple for this pattern.
	Next(rng *rand.Rand) (pc, addr uint64, store bool)
}

// WeightedActor pairs an actor with a selection weight.
type WeightedActor struct {
	Actor  Actor
	Weight int
}

// Spec describes a synthetic workload.
type Spec struct {
	// Actors is the weighted mix of access patterns.
	Actors []WeightedActor
	// MeanGap is the mean number of non-memory instructions between
	// consecutive memory accesses. Lower means more memory intensive.
	MeanGap int
	// Seed makes the trace deterministic.
	Seed int64
	// StoreFrac is the fraction of accesses converted to stores
	// (applied on top of what actors report), in [0,1).
	StoreFrac float64
	// HotFrac is the fraction of accesses diverted to a small cache-resident
	// hot region, modelling the cache-hitting majority of real workloads
	// (controls the LLC MPKI of the trace).
	HotFrac float64
	// HotLines sizes the hot region in cache lines (default 192, L1-sized).
	HotLines int
}

// GenVersion identifies the generator output: any change that alters the
// record sequence a Spec produces must bump it, so on-disk trace caches
// keyed on it (internal/stream) invalidate instead of replaying stale data.
const GenVersion = 1

// Generate materializes n records from the spec.
func (s Spec) Generate(name, suite string, n int) *Trace {
	g := s.Generator(n)
	recs := make([]Record, 0, max(n, 0))
	for {
		rec, ok := g.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return &Trace{Name: name, Suite: suite, Records: recs}
}

// Gen produces a Spec's records one at a time, in exactly the order
// Generate materializes them, so callers can stream arbitrarily long traces
// in constant memory. It implements Iter.
type Gen struct {
	spec     Spec
	rng      *rand.Rand
	total    int
	hotLines int
	hotBase  uint64
	left     int
}

// Generator returns an iterator over the first n records of the spec. The
// spec's actors carry state, so each Generator call needs a fresh Spec
// (e.g. from Workload.Spec).
func (s Spec) Generator(n int) *Gen {
	g := &Gen{spec: s, rng: rand.New(rand.NewSource(s.Seed)), left: n, hotBase: region(30)}
	for _, wa := range s.Actors {
		g.total += wa.Weight
	}
	g.hotLines = s.HotLines
	if g.hotLines <= 0 {
		g.hotLines = 192
	}
	if g.total == 0 {
		g.left = 0
	}
	return g
}

// Remaining returns how many records the generator has yet to produce.
func (g *Gen) Remaining() int {
	if g.left < 0 {
		return 0
	}
	return g.left
}

// FillChunk implements ChunkFiller: it appends up to max records to c's
// columns, producing exactly the sequence repeated Next calls would —
// both run the same generation step, so the stream equivalence tests and
// the on-disk cache (keyed by GenVersion) see identical output.
func (g *Gen) FillChunk(c *Chunk, max int) int {
	n := 0
	for n < max {
		rec, ok := g.Next()
		if !ok {
			break
		}
		c.Append(rec)
		n++
	}
	return n
}

// Next implements Iter.
func (g *Gen) Next() (Record, bool) {
	if g.left <= 0 {
		return Record{}, false
	}
	g.left--
	s, rng := &g.spec, g.rng
	if s.HotFrac > 0 && rng.Float64() < s.HotFrac {
		l := rng.Intn(g.hotLines)
		gap := 0
		if s.MeanGap > 0 {
			gap = rng.Intn(2*s.MeanGap + 1)
		}
		return Record{
			PC:     0xA00000 + uint64(l&7)*4,
			Addr:   g.hotBase + uint64(l)*mem.LineSize,
			NonMem: uint16(gap),
			Store:  rng.Float64() < s.StoreFrac,
		}, true
	}
	pick := rng.Intn(g.total)
	var act Actor
	for _, wa := range s.Actors {
		if pick < wa.Weight {
			act = wa.Actor
			break
		}
		pick -= wa.Weight
	}
	pc, addr, store := act.Next(rng)
	if !store && s.StoreFrac > 0 && rng.Float64() < s.StoreFrac {
		store = true
	}
	gap := 0
	if s.MeanGap > 0 {
		// Geometric-ish gap with the requested mean, capped to fit
		// the record field.
		gap = rng.Intn(2*s.MeanGap + 1)
	}
	return Record{PC: pc, Addr: addr, NonMem: uint16(gap), Store: store}, true
}

// pageBase returns a page-aligned address inside an actor's private region.
func pageBase(region uint64, page uint64) uint64 {
	return region + page*mem.PageSize
}

// StreamActor models a sequential stream: consecutive cache lines in one
// direction across many pages, occasionally restarting at a fresh region.
// This is the libquantum-style pattern where aggressive region prefetchers
// (Bingo) achieve the best timeliness.
type StreamActor struct {
	PC   uint64
	Base uint64
	Dir  int // +1 or -1 lines
	Span int // lines before jumping to a new region
	// SkipProb makes the stream sparse: with this probability a step jumps
	// 2-4 lines instead of 1 (real streams have holes; footprint learners
	// overpredict them). Defaults to 0.08; negative disables.
	SkipProb float64
	nexLine  uint64
	left     int
	region   int
}

// Next implements Actor.
func (a *StreamActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if a.left <= 0 {
		a.region++
		a.nexLine = mem.LineAddr(a.Base + uint64(a.region)*(1<<21)) // fresh 2MB region
		a.left = a.Span
		if a.Span <= 0 {
			a.left = 1 << 30
		}
	}
	skip := a.SkipProb
	if skip == 0 {
		skip = 0.08
	}
	step := int64(1)
	if skip > 0 && rng.Float64() < skip {
		step = int64(2 + rng.Intn(3))
	}
	line := a.nexLine
	if a.Dir < 0 {
		a.nexLine -= uint64(step)
	} else {
		a.nexLine += uint64(step)
	}
	a.left -= int(step)
	return a.PC, mem.LineToByte(line), false
}

// StrideActor models a per-PC constant stride over a large array, the
// pattern PC-based stride prefetchers capture.
type StrideActor struct {
	PC     uint64
	Base   uint64
	Stride int // stride in cache lines
	Lines  int // array length in lines before wrap
	pos    int
}

// Next implements Actor.
func (a *StrideActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	line := mem.LineAddr(a.Base) + uint64(a.pos)
	a.pos += a.Stride
	if a.Lines > 0 && a.pos >= a.Lines {
		a.pos = 0
	}
	return a.PC, mem.LineToByte(line), false
}

// DeltaChainActor models a repeating in-page delta sequence: on each new
// page the actor touches the page's first line then follows the Chain of
// line deltas, then moves to the next page. With Chain=[23] this reproduces
// the 459.GemsFDTD access structure from the paper's case study (§6.5): one
// access to the first line of a page, then exactly one more access 23 lines
// ahead. SPP- and Pythia-style delta learners capture this; region
// prefetchers overshoot.
type DeltaChainActor struct {
	PC    uint64 // PC of the page-leading access
	PCs   []uint64
	Base  uint64
	Chain []int
	// Parallel is the number of pages walked concurrently (round-robin);
	// it sets the temporal spacing between same-page accesses and thus
	// prefetch timeliness. Default 8.
	Parallel int
	// Jitter randomizes the page-leading offset in [0, Jitter]; it decouples
	// the chain from fixed 2KB-region positions (delta learners are
	// unaffected; region-footprint learners see varying patterns).
	Jitter int

	walkers []deltaWalker
	cur     int
	nextPg  uint64
}

type deltaWalker struct {
	step int
	line uint64
}

// Next implements Actor.
func (a *DeltaChainActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if a.walkers == nil {
		p := a.Parallel
		if p <= 0 {
			p = 8
		}
		a.walkers = make([]deltaWalker, p)
	}
	w := &a.walkers[a.cur]
	a.cur = (a.cur + 1) % len(a.walkers)
	if w.step == 0 {
		a.nextPg++
		w.line = mem.LineAddr(pageBase(a.Base, a.nextPg))
		if a.Jitter > 0 {
			w.line += uint64(rng.Intn(a.Jitter + 1))
		}
		w.step = 1
		return a.PC, mem.LineToByte(w.line), false
	}
	d := a.Chain[w.step-1]
	w.line += uint64(int64(d))
	pc := a.PC
	if len(a.PCs) >= w.step {
		pc = a.PCs[w.step-1]
	}
	line := w.line
	w.step++
	if w.step > len(a.Chain) {
		w.step = 0
	}
	return pc, mem.LineToByte(line), false
}

// RegionActor models SMS/Bingo-style spatial footprints: each program phase
// (keyed by trigger PC) touches a recurring bit-pattern of lines inside a
// 2KB/4KB region. When a new region is entered, the same footprint repeats,
// so prefetchers that key on (PC, first offset) predict the whole region.
type RegionActor struct {
	TriggerPC uint64
	Base      uint64
	Footprint []int // in-page line offsets accessed, in order
	Regions   int   // distinct regions before reuse
	// Parallel is the number of regions visited concurrently; like real
	// spatial workloads, a region's footprint unfolds over time while
	// other regions are active. Default 8.
	Parallel int
	// Noise is the probability that a region instance truncates its
	// footprint to a random prefix (real spatial footprints recur only
	// approximately; truncation hurts whole-footprint replayers more than
	// delta-sequence learners, as in the paper's SPP-vs-Bingo contrast).
	// Defaults to 0.4; set negative for none.
	Noise float64
	// Drift mutates one footprint element every Drift region generations,
	// modelling slow phase change; footprint-history prefetchers keep
	// predicting the stale pattern. Defaults to 48; set negative for none.
	Drift int

	walkers []regionWalker
	cur     int
	nextRg  int
}

type regionWalker struct {
	pos    int
	region int
	limit  int
}

// Next implements Actor.
func (a *RegionActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if a.walkers == nil {
		p := a.Parallel
		if p <= 0 {
			p = 8
		}
		a.walkers = make([]regionWalker, p)
		for i := range a.walkers {
			a.walkers[i] = regionWalker{pos: len(a.Footprint)} // force fresh region
		}
	}
	noise := a.Noise
	if noise == 0 {
		noise = 0.4
	}
	drift := a.Drift
	if drift == 0 {
		drift = 48
	}
	w := &a.walkers[a.cur]
	a.cur = (a.cur + 1) % len(a.walkers)
	if w.limit == 0 || w.pos >= w.limit {
		w.pos = 0
		a.nextRg++
		w.region = a.nextRg
		if a.Regions > 0 {
			w.region = a.nextRg % a.Regions
		}
		w.limit = len(a.Footprint)
		if noise > 0 && len(a.Footprint) > 2 && rng.Float64() < noise {
			w.limit = 2 + rng.Intn(len(a.Footprint)-2)
		}
		if drift > 0 && a.nextRg%drift == 0 && len(a.Footprint) > 2 {
			// Nudge one interior element to a fresh offset strictly between
			// its neighbors: footprints evolve but stay ordered, so delta
			// learners can re-learn while footprint replayers hold stale
			// patterns.
			i := 1 + rng.Intn(len(a.Footprint)-2)
			lo, hi := a.Footprint[i-1]+1, a.Footprint[i+1]-1
			if hi >= lo {
				a.Footprint[i] = lo + rng.Intn(hi-lo+1)
			}
		}
	}
	off := a.Footprint[w.pos]
	pc := a.TriggerPC + uint64(w.pos)*4
	addr := pageBase(a.Base, uint64(w.region)) + uint64(off)*mem.LineSize
	w.pos++
	return pc, addr, false
}

// ChaseActor models dependent pointer chasing over a random permutation of
// lines: the canonical irregular pattern no spatial prefetcher covers
// (mcf/canneal style).
type ChaseActor struct {
	PC    uint64
	Base  uint64
	Lines int
	perm  []int32
	cur   int
}

// Next implements Actor.
func (a *ChaseActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if a.perm == nil {
		n := a.Lines
		if n <= 0 {
			n = 1 << 16
		}
		a.perm = make([]int32, n)
		for i := range a.perm {
			a.perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { a.perm[i], a.perm[j] = a.perm[j], a.perm[i] })
	}
	line := mem.LineAddr(a.Base) + uint64(a.perm[a.cur])
	a.cur = int(a.perm[a.cur])
	return a.PC, mem.LineToByte(line), false
}

// GraphActor models Ligra-style frontier processing: a sequential scan over
// an edge-offset array interleaved with short bursty runs at random vertex
// neighborhoods. The scan is prefetchable; the neighbor bursts are partially
// prefetchable (short in-page runs); the mix is highly memory intensive, so
// wasted prefetch bandwidth is costly — the property Fig. 14 builds on.
type GraphActor struct {
	ScanPC   uint64
	VisitPC  uint64
	Base     uint64
	VertBase uint64
	Vertices int
	RunLen   int // lines per neighborhood burst
	// ScanFrac is the probability a non-burst step advances the sequential
	// scan instead of opening a new neighborhood (default 0.5). Graph
	// kernels interleave large sequential sweeps (frontier, offsets) with
	// random vertex-data bursts.
	ScanFrac float64
	scanLine uint64
	burst    int
	burstAt  uint64
}

// Next implements Actor.
func (a *GraphActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if a.burst > 0 {
		a.burst--
		a.burstAt++
		return a.VisitPC, mem.LineToByte(a.burstAt), false
	}
	scanFrac := a.ScanFrac
	if scanFrac == 0 {
		scanFrac = 0.5
	}
	if rng.Float64() < scanFrac {
		if a.scanLine == 0 {
			a.scanLine = mem.LineAddr(a.Base)
		}
		a.scanLine++
		return a.ScanPC, mem.LineToByte(a.scanLine), false
	}
	v := rng.Intn(max(a.Vertices, 1))
	a.burstAt = mem.LineAddr(a.VertBase) + uint64(v)*8
	// Burst length varies with (synthetic) vertex degree, so footprint
	// learners overshoot on short neighborhoods.
	a.burst = rng.Intn(2*a.RunLen+1) - 1
	if a.burst < 0 {
		a.burst = 0
	}
	return a.VisitPC, mem.LineToByte(a.burstAt), false
}

// ZipfActor models server/cloud workloads: a large footprint accessed with a
// skewed (approximately Zipfian) reuse distribution and little spatial
// structure.
type ZipfActor struct {
	PC    uint64
	Base  uint64
	Lines int
	Theta float64 // skew; higher = more concentrated
}

// Next implements Actor.
func (a *ZipfActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	n := a.Lines
	if n <= 0 {
		n = 1 << 18
	}
	// Approximate Zipf via a power-law transform of a uniform draw; exact
	// Zipf normalization is unnecessary for traffic shaping.
	u := rng.Float64()
	theta := a.Theta
	if theta <= 0 {
		theta = 0.99
	}
	idx := int(float64(n) * math.Pow(u, 1/(1-theta+1e-9)))
	if idx >= n {
		idx = n - 1
	}
	line := mem.LineAddr(a.Base) + uint64(idx)
	pc := a.PC + uint64(idx&7)*4
	return pc, mem.LineToByte(line), false
}

// TemporalActor replays a fixed, irregular address sequence over and over:
// temporally correlated but spatially unpredictable (what temporal
// prefetchers capture and spatial ones do not).
type TemporalActor struct {
	PC    uint64
	Base  uint64
	Len   int
	seq   []uint64
	pos   int
	built bool
}

// Next implements Actor.
func (a *TemporalActor) Next(rng *rand.Rand) (uint64, uint64, bool) {
	if !a.built {
		n := a.Len
		if n <= 0 {
			n = 4096
		}
		a.seq = make([]uint64, n)
		for i := range a.seq {
			a.seq[i] = mem.LineAddr(a.Base) + uint64(rng.Intn(1<<18))
		}
		a.built = true
	}
	line := a.seq[a.pos]
	a.pos = (a.pos + 1) % len(a.seq)
	return a.PC, mem.LineToByte(line), false
}
