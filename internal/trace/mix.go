package trace

import (
	"fmt"
	"math/rand"
)

// Mix is a multi-programmed workload: one trace name per core, following the
// paper's multi-core methodology (§5.1).
type Mix struct {
	// Name identifies the mix (e.g. "Mix-59" or "429.mcf-homo4").
	Name string
	// Workloads holds one workload per core.
	Workloads []Workload
}

// Suite returns the suite label of the mix: the common suite for homogeneous
// mixes, "Mix" for heterogeneous ones.
func (m Mix) Suite() string {
	if len(m.Workloads) == 0 {
		return "Mix"
	}
	s := m.Workloads[0].Suite
	for _, w := range m.Workloads[1:] {
		if w.Suite != s {
			return "Mix"
		}
	}
	return s
}

// HomogeneousMix builds an n-core mix running n copies of one workload.
func HomogeneousMix(w Workload, n int) Mix {
	m := Mix{Name: fmt.Sprintf("%s-homo%d", w.Name, n)}
	for i := 0; i < n; i++ {
		m.Workloads = append(m.Workloads, w)
	}
	return m
}

// HeterogeneousMixes builds count random n-core mixes drawn from the given
// workload pool, deterministically from seed.
func HeterogeneousMixes(pool []Workload, n, count int, seed int64) []Mix {
	rng := rand.New(rand.NewSource(seed))
	mixes := make([]Mix, 0, count)
	for i := 0; i < count; i++ {
		m := Mix{Name: fmt.Sprintf("Mix-%d", i+1)}
		for c := 0; c < n; c++ {
			m.Workloads = append(m.Workloads, pool[rng.Intn(len(pool))])
		}
		mixes = append(mixes, m)
	}
	return mixes
}

// StandardMixes returns the evaluation mix list for an n-core system: one
// homogeneous mix per representative workload of each suite plus `hetero`
// random heterogeneous mixes, mirroring the paper's 4C methodology.
func StandardMixes(n, hetero int) []Mix {
	var mixes []Mix
	var pool []Workload
	for _, s := range Suites() {
		reps := Representative(s)
		pool = append(pool, reps...)
		for _, w := range reps {
			mixes = append(mixes, HomogeneousMix(w, n))
		}
	}
	mixes = append(mixes, HeterogeneousMixes(pool, n, hetero, 42)...)
	return mixes
}
