// Package trace defines the memory-access trace format consumed by the
// simulator and provides deterministic synthetic workload generators that
// stand in for the paper's SPEC CPU2006/2017, PARSEC, Ligra, Cloudsuite and
// CVP-2 instruction traces (see DESIGN.md for the substitution rationale).
//
// A trace is a sequence of Records. Each record is one memory instruction
// (load or store) annotated with the number of non-memory instructions that
// execute before it. The core timing model replays records to compute IPC.
package trace

import "fmt"

// Record is one memory instruction in a trace.
type Record struct {
	// PC is the program counter of the memory instruction.
	PC uint64
	// Addr is the accessed virtual byte address.
	Addr uint64
	// NonMem is the number of non-memory instructions that precede this
	// access since the previous record.
	NonMem uint16
	// Store marks the access as a write.
	Store bool
}

// Instructions returns the instruction count the record contributes
// (the access itself plus the preceding non-memory instructions).
func (r Record) Instructions() int64 { return int64(r.NonMem) + 1 }

// Trace is a fully materialized workload trace.
type Trace struct {
	// Name identifies the trace (e.g. "459.GemsFDTD-765B").
	Name string
	// Suite is the benchmark suite the trace belongs to.
	Suite string
	// Records holds the access sequence.
	Records []Record
}

// Instructions returns the total instruction count of the trace.
func (t *Trace) Instructions() int64 {
	var n int64
	for _, r := range t.Records {
		n += r.Instructions()
	}
	return n
}

// String implements fmt.Stringer.
func (t *Trace) String() string {
	return fmt.Sprintf("%s/%s (%d accesses)", t.Suite, t.Name, len(t.Records))
}

// Iter yields trace records one at a time, once: the minimal producer
// interface that generators, file decoders and slices share. Streaming
// sources (internal/stream) build restartable Readers out of Iters.
type Iter interface {
	// Next returns the next record. ok is false when the trace is exhausted.
	Next() (rec Record, ok bool)
}

// Reader yields trace records one at a time and can restart from the
// beginning, which the multi-core driver uses to replay traces for cores
// that finish early (per the paper's methodology).
type Reader interface {
	Iter
	// Reset restarts the reader from the first record.
	Reset()
}

// SliceReader adapts a materialized record slice to the Reader interface.
// Internally the records live in column (SoA) layout, converted once at
// construction: NextChunk serves zero-copy column views, so slice-backed
// traces (cached harness traces, microbenches, tests) feed the batched
// kernel without a per-record copy, and Reset is a cursor rewind.
type SliceReader struct {
	cols  Chunk // the whole trace, in column layout
	pos   int
	batch int // NextChunk view size; 0 = DefaultBatch
}

// NewSliceReader returns a Reader over recs. The records are copied into
// column layout; later mutation of recs does not affect the reader.
func NewSliceReader(recs []Record) *SliceReader {
	c := NewChunk(len(recs))
	for i := range recs {
		c.Append(recs[i])
	}
	return &SliceReader{cols: *c}
}

// Next implements Reader.
func (s *SliceReader) Next() (Record, bool) {
	if s.pos >= s.cols.Len() {
		return Record{}, false
	}
	r := s.cols.At(s.pos)
	s.pos++
	return r, true
}

// NextChunk implements ChunkReader: the returned chunk is a view into the
// reader's columns, valid until Reset (nothing is overwritten by
// subsequent calls, but the blanket ChunkReader contract applies).
func (s *SliceReader) NextChunk() (Chunk, bool) {
	n := s.cols.Len()
	if s.pos >= n {
		return Chunk{}, false
	}
	b := s.batch
	if b <= 0 {
		b = DefaultBatch
	}
	end := s.pos + b
	if end > n {
		end = n
	}
	ch := Chunk{
		PC:     s.cols.PC[s.pos:end],
		Addr:   s.cols.Addr[s.pos:end],
		NonMem: s.cols.NonMem[s.pos:end],
		Store:  s.cols.Store[s.pos:end],
	}
	s.pos = end
	return ch, true
}

// SetBatch sets the view size NextChunk serves (n <= 0 restores
// DefaultBatch). Batch size is delivery granularity only; it never changes
// the record sequence.
func (s *SliceReader) SetBatch(n int) { s.batch = n }

// Reset implements Reader.
func (s *SliceReader) Reset() { s.pos = 0 }

// Len returns the number of records in the trace.
func (s *SliceReader) Len() int { return s.cols.Len() }
