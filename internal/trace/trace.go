// Package trace defines the memory-access trace format consumed by the
// simulator and provides deterministic synthetic workload generators that
// stand in for the paper's SPEC CPU2006/2017, PARSEC, Ligra, Cloudsuite and
// CVP-2 instruction traces (see DESIGN.md for the substitution rationale).
//
// A trace is a sequence of Records. Each record is one memory instruction
// (load or store) annotated with the number of non-memory instructions that
// execute before it. The core timing model replays records to compute IPC.
package trace

import "fmt"

// Record is one memory instruction in a trace.
type Record struct {
	// PC is the program counter of the memory instruction.
	PC uint64
	// Addr is the accessed virtual byte address.
	Addr uint64
	// NonMem is the number of non-memory instructions that precede this
	// access since the previous record.
	NonMem uint16
	// Store marks the access as a write.
	Store bool
}

// Instructions returns the instruction count the record contributes
// (the access itself plus the preceding non-memory instructions).
func (r Record) Instructions() int64 { return int64(r.NonMem) + 1 }

// Trace is a fully materialized workload trace.
type Trace struct {
	// Name identifies the trace (e.g. "459.GemsFDTD-765B").
	Name string
	// Suite is the benchmark suite the trace belongs to.
	Suite string
	// Records holds the access sequence.
	Records []Record
}

// Instructions returns the total instruction count of the trace.
func (t *Trace) Instructions() int64 {
	var n int64
	for _, r := range t.Records {
		n += r.Instructions()
	}
	return n
}

// String implements fmt.Stringer.
func (t *Trace) String() string {
	return fmt.Sprintf("%s/%s (%d accesses)", t.Suite, t.Name, len(t.Records))
}

// Iter yields trace records one at a time, once: the minimal producer
// interface that generators, file decoders and slices share. Streaming
// sources (internal/stream) build restartable Readers out of Iters.
type Iter interface {
	// Next returns the next record. ok is false when the trace is exhausted.
	Next() (rec Record, ok bool)
}

// Reader yields trace records one at a time and can restart from the
// beginning, which the multi-core driver uses to replay traces for cores
// that finish early (per the paper's methodology).
type Reader interface {
	Iter
	// Reset restarts the reader from the first record.
	Reset()
}

// SliceReader adapts a materialized record slice to the Reader interface.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader returns a Reader over recs.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset implements Reader.
func (s *SliceReader) Reset() { s.pos = 0 }

// Len returns the number of records in the underlying slice.
func (s *SliceReader) Len() int { return len(s.recs) }
