package trace

import (
	"math/rand"
	"testing"

	"pythia/internal/mem"
)

func newRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }

func TestStreamActorSequential(t *testing.T) {
	a := &StreamActor{PC: 0x100, Base: 1 << 30, Dir: 1, Span: 100, SkipProb: -1}
	rng := newRNG()
	_, first, _ := a.Next(rng)
	prev := mem.LineAddr(first)
	for i := 0; i < 50; i++ {
		pc, addr, store := a.Next(rng)
		if pc != 0x100 || store {
			t.Fatalf("unexpected pc/store: %#x %v", pc, store)
		}
		line := mem.LineAddr(addr)
		if line != prev+1 {
			t.Fatalf("non-sequential line %d after %d", line, prev)
		}
		prev = line
	}
}

func TestStreamActorBackward(t *testing.T) {
	a := &StreamActor{PC: 0x100, Base: 1 << 30, Dir: -1, Span: 100, SkipProb: -1}
	rng := newRNG()
	_, first, _ := a.Next(rng)
	_, second, _ := a.Next(rng)
	if mem.LineAddr(second) != mem.LineAddr(first)-1 {
		t.Errorf("backward stream moved %d -> %d", mem.LineAddr(first), mem.LineAddr(second))
	}
}

func TestStreamActorSkips(t *testing.T) {
	a := &StreamActor{PC: 0x100, Base: 1 << 30, Dir: 1, Span: 1 << 20, SkipProb: 0.5}
	rng := newRNG()
	_, prev, _ := a.Next(rng)
	skips := 0
	for i := 0; i < 200; i++ {
		_, addr, _ := a.Next(rng)
		d := mem.LineAddr(addr) - mem.LineAddr(prev)
		if d > 1 {
			skips++
		}
		if d < 1 || d > 4 {
			t.Fatalf("stream step %d out of range", d)
		}
		prev = addr
	}
	if skips < 50 {
		t.Errorf("only %d skips at SkipProb=0.5", skips)
	}
}

func TestStreamActorRegionJump(t *testing.T) {
	a := &StreamActor{PC: 0x100, Base: 1 << 30, Dir: 1, Span: 4, SkipProb: -1}
	rng := newRNG()
	var lines []uint64
	for i := 0; i < 8; i++ {
		_, addr, _ := a.Next(rng)
		lines = append(lines, mem.LineAddr(addr))
	}
	// After Span accesses the stream restarts in a fresh region.
	if lines[4] == lines[3]+1 {
		t.Error("stream did not jump to a new region after Span lines")
	}
}

func TestStrideActor(t *testing.T) {
	a := &StrideActor{PC: 0x200, Base: 1 << 30, Stride: 7, Lines: 1 << 12}
	rng := newRNG()
	_, a0, _ := a.Next(rng)
	_, a1, _ := a.Next(rng)
	_, a2, _ := a.Next(rng)
	d1 := int64(mem.LineAddr(a1)) - int64(mem.LineAddr(a0))
	d2 := int64(mem.LineAddr(a2)) - int64(mem.LineAddr(a1))
	if d1 != 7 || d2 != 7 {
		t.Errorf("strides %d,%d want 7,7", d1, d2)
	}
}

func TestStrideActorWraps(t *testing.T) {
	a := &StrideActor{PC: 0x200, Base: 1 << 30, Stride: 3, Lines: 9}
	rng := newRNG()
	_, first, _ := a.Next(rng)
	for i := 0; i < 2; i++ {
		a.Next(rng)
	}
	_, wrapped, _ := a.Next(rng)
	if wrapped != first {
		t.Errorf("expected wrap to %d, got %d", mem.LineAddr(first), mem.LineAddr(wrapped))
	}
}

func TestDeltaChainActor(t *testing.T) {
	a := &DeltaChainActor{PC: 0x436a81, Base: 1 << 30, Chain: []int{23}, Parallel: 1}
	rng := newRNG()
	_, first, _ := a.Next(rng)
	_, second, _ := a.Next(rng)
	if mem.LineAddr(second)-mem.LineAddr(first) != 23 {
		t.Errorf("chain delta = %d, want 23", mem.LineAddr(second)-mem.LineAddr(first))
	}
	// Third access starts a new page.
	_, third, _ := a.Next(rng)
	if mem.PageOf(third) == mem.PageOf(first) {
		t.Error("chain did not advance to a new page")
	}
	if mem.LineOffset(third) != 0 {
		t.Errorf("new page should start at offset 0 without jitter, got %d", mem.LineOffset(third))
	}
}

func TestDeltaChainActorParallel(t *testing.T) {
	a := &DeltaChainActor{PC: 1, Base: 1 << 30, Chain: []int{5}, Parallel: 4}
	rng := newRNG()
	pages := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		_, addr, _ := a.Next(rng)
		pages[mem.PageOf(addr)] = true
	}
	if len(pages) != 4 {
		t.Errorf("parallel walkers should open 4 distinct pages, got %d", len(pages))
	}
}

func TestDeltaChainActorJitter(t *testing.T) {
	a := &DeltaChainActor{PC: 1, Base: 1 << 30, Chain: []int{9}, Parallel: 1, Jitter: 10}
	rng := newRNG()
	offsets := map[int]bool{}
	for i := 0; i < 40; i++ {
		_, addr, _ := a.Next(rng) // page lead
		offsets[mem.LineOffset(addr)] = true
		a.Next(rng) // chain step
	}
	if len(offsets) < 3 {
		t.Errorf("jitter should vary the leading offset, saw %d distinct", len(offsets))
	}
	for off := range offsets {
		if off < 0 || off > 10 {
			t.Errorf("jittered offset %d outside [0,10]", off)
		}
	}
}

func TestRegionActorFootprint(t *testing.T) {
	fp := []int{0, 3, 7, 12}
	a := &RegionActor{TriggerPC: 0x500, Base: 1 << 32, Footprint: fp, Regions: 100, Parallel: 1, Noise: -1, Drift: -1}
	rng := newRNG()
	for round := 0; round < 3; round++ {
		var page uint64
		for i, want := range fp {
			pc, addr, _ := a.Next(rng)
			if i == 0 {
				page = mem.PageOf(addr)
			} else if mem.PageOf(addr) != page {
				t.Fatalf("footprint left its region at step %d", i)
			}
			if got := mem.LineOffset(addr); got != want {
				t.Fatalf("round %d step %d offset %d, want %d", round, i, got, want)
			}
			if pc != 0x500+uint64(i)*4 {
				t.Fatalf("per-position PC wrong: %#x", pc)
			}
		}
	}
}

func TestRegionActorTruncation(t *testing.T) {
	fp := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a := &RegionActor{TriggerPC: 1, Base: 1 << 32, Footprint: fp, Parallel: 1, Noise: 0.9, Drift: -1}
	rng := newRNG()
	// With heavy truncation, some regions must end before the full footprint.
	regions := map[uint64]int{}
	for i := 0; i < 400; i++ {
		_, addr, _ := a.Next(rng)
		regions[mem.PageOf(addr)]++
	}
	short := 0
	for _, n := range regions {
		if n < len(fp) {
			short++
		}
	}
	if short == 0 {
		t.Error("no truncated regions observed at Noise=0.9")
	}
}

func TestChaseActorPermutation(t *testing.T) {
	a := &ChaseActor{PC: 1, Base: 1 << 32, Lines: 64}
	rng := newRNG()
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		_, addr, _ := a.Next(rng)
		seen[mem.LineAddr(addr)]++
	}
	// A permutation cycle visits distinct lines (a small cycle may repeat,
	// but must stay within the region).
	base := mem.LineAddr(uint64(1 << 32))
	for line := range seen {
		if line < base || line >= base+64 {
			t.Fatalf("chase left its region: line %d", line)
		}
	}
	if len(seen) < 2 {
		t.Error("chase degenerated to a single line")
	}
}

func TestGraphActorScanAdvances(t *testing.T) {
	a := &GraphActor{ScanPC: 1, VisitPC: 2, Base: 1 << 32, VertBase: 1 << 34, Vertices: 1024, RunLen: 2, ScanFrac: 1.0}
	rng := newRNG()
	var prev uint64
	for i := 0; i < 20; i++ {
		pc, addr, _ := a.Next(rng)
		if pc != 1 {
			t.Fatalf("ScanFrac=1 should only scan, got pc %d", pc)
		}
		line := mem.LineAddr(addr)
		if prev != 0 && line != prev+1 {
			t.Fatalf("scan not sequential: %d after %d", line, prev)
		}
		prev = line
	}
}

func TestZipfActorSkew(t *testing.T) {
	a := &ZipfActor{PC: 1, Base: 1 << 32, Lines: 1 << 12, Theta: 0.9}
	rng := newRNG()
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		_, addr, _ := a.Next(rng)
		counts[mem.LineAddr(addr)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Strong skew: the hottest line is far above uniform expectation (~5).
	if max < 50 {
		t.Errorf("zipf skew too weak: hottest line count %d", max)
	}
}

func TestTemporalActorRepeats(t *testing.T) {
	a := &TemporalActor{PC: 1, Base: 1 << 32, Len: 16}
	rng := newRNG()
	var first []uint64
	for i := 0; i < 16; i++ {
		_, addr, _ := a.Next(rng)
		first = append(first, addr)
	}
	for i := 0; i < 16; i++ {
		_, addr, _ := a.Next(rng)
		if addr != first[i] {
			t.Fatalf("temporal sequence did not repeat at %d", i)
		}
	}
}

func TestSpecGenerateDeterministic(t *testing.T) {
	build := func() Spec {
		return Spec{Seed: 42, MeanGap: 10, StoreFrac: 0.2, HotFrac: 0.5, Actors: []WeightedActor{
			{&StreamActor{PC: 1, Base: 1 << 30, Dir: 1, Span: 100}, 1},
			{&ZipfActor{PC: 2, Base: 1 << 32, Lines: 1024, Theta: 0.8}, 1},
		}}
	}
	a := build().Generate("x", "s", 5000)
	b := build().Generate("x", "s", 5000)
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSpecGenerateHotFraction(t *testing.T) {
	sp := Spec{Seed: 1, MeanGap: 0, HotFrac: 0.5, HotLines: 64, Actors: []WeightedActor{
		{&StreamActor{PC: 1, Base: 1 << 40, Dir: 1}, 1},
	}}
	tr := sp.Generate("x", "s", 10000)
	hot := 0
	for _, r := range tr.Records {
		if r.Addr < 1<<40 {
			hot++
		}
	}
	frac := float64(hot) / float64(len(tr.Records))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("hot fraction %.2f, want ~0.5", frac)
	}
}

func TestSpecGenerateEmpty(t *testing.T) {
	tr := Spec{}.Generate("x", "s", 100)
	if len(tr.Records) != 0 {
		t.Error("spec without actors should produce an empty trace")
	}
	tr = Spec{Actors: []WeightedActor{{&StreamActor{}, 1}}}.Generate("x", "s", 0)
	if len(tr.Records) != 0 {
		t.Error("n=0 should produce an empty trace")
	}
}
