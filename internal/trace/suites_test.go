package trace

import "testing"

func TestRegistryPopulated(t *testing.T) {
	all := All()
	if len(all) < 150 {
		t.Errorf("registry has %d traces, want >= 150 (evaluated set + unseen)", len(all))
	}
	counts := map[string]int{}
	for _, w := range all {
		counts[w.Suite]++
	}
	// Paper Table 6 trace counts (plus CVP2 for Fig. 12).
	want := map[string]int{
		SuiteSPEC06: 28, SuiteSPEC17: 18, SuitePARSEC: 11,
		SuiteLigra: 40, SuiteCloudsuite: 53,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d traces, want %d", suite, counts[suite], n)
		}
	}
	if counts[SuiteCVP2] == 0 {
		t.Error("CVP2 unseen traces missing")
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range All() {
		if seen[w.Name] {
			t.Errorf("duplicate trace name %s", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("GemsFDTD trace missing")
	}
	if w.Suite != SuiteSPEC06 || w.Base != "459.GemsFDTD" {
		t.Errorf("wrong identity: %+v", w)
	}
	if _, ok := ByName("no-such-trace"); ok {
		t.Error("ByName should fail for unknown names")
	}
}

func TestGenerateNonEmptyAndDeterministic(t *testing.T) {
	for _, suite := range Suites() {
		ws := Representative(suite)
		if len(ws) == 0 {
			t.Fatalf("suite %s has no workloads", suite)
		}
		w := ws[0]
		a := w.Generate(2000)
		b := w.Generate(2000)
		if len(a.Records) != 2000 {
			t.Fatalf("%s generated %d records", w.Name, len(a.Records))
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("%s not deterministic at record %d", w.Name, i)
			}
		}
	}
}

func TestSuiteIntensityOrdering(t *testing.T) {
	// Ligra must be markedly more memory-intensive (smaller instruction
	// gaps) than SPEC06, which drives the paper's bandwidth findings.
	gap := func(suite string) float64 {
		var sum, n float64
		for _, w := range Representative(suite)[:3] {
			tr := w.Generate(5000)
			for _, r := range tr.Records {
				sum += float64(r.NonMem)
				n++
			}
		}
		return sum / n
	}
	if g1, g2 := gap(SuiteLigra), gap(SuiteSPEC06); g1 >= g2 {
		t.Errorf("Ligra mean gap %.1f should be below SPEC06 %.1f", g1, g2)
	}
}

func TestHomogeneousMix(t *testing.T) {
	w, _ := ByName("429.mcf-100B")
	m := HomogeneousMix(w, 4)
	if len(m.Workloads) != 4 {
		t.Fatalf("mix has %d workloads", len(m.Workloads))
	}
	if m.Suite() != SuiteSPEC06 {
		t.Errorf("homogeneous mix suite = %s", m.Suite())
	}
}

func TestHeterogeneousMixes(t *testing.T) {
	pool := Representative(SuiteSPEC06)
	ms := HeterogeneousMixes(pool, 4, 5, 1)
	if len(ms) != 5 {
		t.Fatalf("got %d mixes", len(ms))
	}
	for _, m := range ms {
		if len(m.Workloads) != 4 {
			t.Errorf("mix %s has %d workloads", m.Name, len(m.Workloads))
		}
	}
	// Deterministic for a fixed seed.
	ms2 := HeterogeneousMixes(pool, 4, 5, 1)
	for i := range ms {
		for c := range ms[i].Workloads {
			if ms[i].Workloads[c].Name != ms2[i].Workloads[c].Name {
				t.Fatal("heterogeneous mixes not deterministic")
			}
		}
	}
}

func TestStandardMixes(t *testing.T) {
	ms := StandardMixes(2, 3)
	if len(ms) == 0 {
		t.Fatal("no standard mixes")
	}
	hetero := 0
	for _, m := range ms {
		if len(m.Workloads) != 2 {
			t.Errorf("mix %s has %d workloads", m.Name, len(m.Workloads))
		}
		if m.Suite() == "Mix" {
			hetero++
		}
	}
	if hetero < 1 {
		t.Error("expected heterogeneous mixes in the standard list")
	}
}

func TestFixedWorkload(t *testing.T) {
	orig := &Trace{Name: "file-x", Suite: "FILE", Records: []Record{{PC: 1, Addr: 64}}}
	w := Fixed(orig)
	got := w.Generate(999999)
	if got != orig {
		t.Error("Fixed workload should return the wrapped trace verbatim")
	}
	if w.Name != "file-x" || w.Suite != "FILE" {
		t.Errorf("identity wrong: %+v", w)
	}
}
