package trace

import (
	"testing"
)

func TestRecordInstructions(t *testing.T) {
	r := Record{NonMem: 10}
	if r.Instructions() != 11 {
		t.Errorf("Instructions() = %d, want 11", r.Instructions())
	}
	if (Record{}).Instructions() != 1 {
		t.Error("bare record should count 1 instruction")
	}
}

func TestTraceInstructions(t *testing.T) {
	tr := &Trace{Records: []Record{{NonMem: 5}, {NonMem: 0}, {NonMem: 3}}}
	if got := tr.Instructions(); got != 11 {
		t.Errorf("Instructions() = %d, want 11", got)
	}
}

func TestTraceString(t *testing.T) {
	tr := &Trace{Name: "x", Suite: "S", Records: make([]Record, 3)}
	if got := tr.String(); got != "S/x (3 accesses)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSliceReader(t *testing.T) {
	recs := []Record{{PC: 1}, {PC: 2}, {PC: 3}}
	r := NewSliceReader(recs)
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
	var seen []uint64
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		seen = append(seen, rec.PC)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("iteration order wrong: %v", seen)
	}
	if _, ok := r.Next(); ok {
		t.Error("exhausted reader should keep returning !ok")
	}
	r.Reset()
	rec, ok := r.Next()
	if !ok || rec.PC != 1 {
		t.Errorf("after Reset got (%v, %v)", rec.PC, ok)
	}
}

func TestSliceReaderEmpty(t *testing.T) {
	r := NewSliceReader(nil)
	if _, ok := r.Next(); ok {
		t.Error("empty reader should return !ok")
	}
	r.Reset()
	if _, ok := r.Next(); ok {
		t.Error("empty reader should return !ok after Reset")
	}
}
