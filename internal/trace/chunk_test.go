package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

func randRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     rng.Uint64() >> 20,
			Addr:   rng.Uint64() >> 16,
			NonMem: uint16(rng.Intn(300)),
			Store:  rng.Intn(5) == 0,
		}
	}
	return recs
}

func TestChunkAppendAtTailReset(t *testing.T) {
	recs := randRecords(100, 1)
	c := NewChunk(100)
	for _, r := range recs {
		c.Append(r)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, r := range recs {
		if c.At(i) != r {
			t.Fatalf("At(%d) = %+v, want %+v", i, c.At(i), r)
		}
	}
	tail := c.Tail(40)
	if tail.Len() != 60 {
		t.Fatalf("Tail(40).Len = %d", tail.Len())
	}
	for i := 0; i < tail.Len(); i++ {
		if tail.At(i) != recs[40+i] {
			t.Fatalf("tail record %d = %+v, want %+v", i, tail.At(i), recs[40+i])
		}
	}
	var wantInstr int64
	for _, r := range recs {
		wantInstr += int64(r.NonMem) + 1
	}
	if c.Instructions() != wantInstr {
		t.Fatalf("Instructions = %d, want %d", c.Instructions(), wantInstr)
	}
	c.Reset()
	if c.Len() != 0 || cap(c.PC) != 100 {
		t.Fatalf("Reset left len=%d cap=%d", c.Len(), cap(c.PC))
	}
}

// TestEncodeChunkMatchesWriteRecord: the column encoder must produce the
// exact bytes of the per-record encoder, including across an arbitrary
// chunk split (delta state carries over).
func TestEncodeChunkMatchesWriteRecord(t *testing.T) {
	recs := randRecords(1000, 2)
	var a bytes.Buffer
	e1, err := NewEncoder(&a, "t", "s", len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e1.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	var b bytes.Buffer
	e2, err := NewEncoder(&b, "t", "s", len(recs))
	if err != nil {
		t.Fatal(err)
	}
	c := NewChunk(len(recs))
	for _, r := range recs[:337] {
		c.Append(r)
	}
	if err := e2.EncodeChunk(c); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	for _, r := range recs[337:] {
		c.Append(r)
	}
	if err := e2.EncodeChunk(c); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chunked encoding produced different bytes than per-record encoding")
	}
}

// TestDecodeChunkRoundTrip: records written per-record come back intact
// through the column decode path, at a chunk size that leaves a partial
// final chunk.
func TestDecodeChunkRoundTrip(t *testing.T) {
	recs := randRecords(777, 3)
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, "rt", "s", len(recs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	c := NewChunk(100)
	var got []Record
	for {
		c.Reset()
		n, err := d.DecodeChunk(c, 100)
		if err != nil {
			t.Fatal(err)
		}
		if n != c.Len() {
			t.Fatalf("DecodeChunk returned %d but chunk holds %d", n, c.Len())
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, c.At(i))
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestFillChunkGenMatchesNext: the generator's direct column fill yields
// the exact record sequence of repeated Next calls.
func TestFillChunkGenMatchesNext(t *testing.T) {
	// Actors carry state, so each Generator needs its own Spec.
	build := func() Spec {
		return Spec{Seed: 11, MeanGap: 6, StoreFrac: 0.1, Actors: []WeightedActor{
			{&StreamActor{PC: 1, Base: 1 << 30, Dir: 1, Span: 100}, 1},
			{&ZipfActor{PC: 2, Base: 1 << 32, Lines: 1024, Theta: 0.8}, 1},
		}}
	}
	byNext := build().Generator(2000)
	byFill := build().Generator(2000)
	c := NewChunk(64)
	for i := 0; i < 1000; {
		c.Reset()
		n := FillChunk(byFill, c, 64)
		if n == 0 {
			t.Fatal("generator ended early")
		}
		for j := 0; j < n; j++ {
			want, ok := byNext.Next()
			if !ok {
				t.Fatal("reference generator ended early")
			}
			if c.At(j) != want {
				t.Fatalf("record %d = %+v, want %+v", i+j, c.At(j), want)
			}
		}
		i += n
	}
}

// TestChunkingReaderEquivalence: the adapter delivers the wrapped
// reader's exact sequence batch-wise, supports mixing the two faces, and
// restarts cleanly on Reset.
func TestChunkingReaderEquivalence(t *testing.T) {
	recs := randRecords(500, 4)
	cr := NewChunkingReader(NewSliceReader(recs), 64)

	drain := func() []Record {
		var got []Record
		for {
			ch, ok := cr.NextChunk()
			if !ok {
				return got
			}
			for i := 0; i < ch.Len(); i++ {
				got = append(got, ch.At(i))
			}
		}
	}
	got := drain()
	if len(got) != len(recs) {
		t.Fatalf("chunked drain yielded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// Mixed faces: alternate Next and NextChunk; the concatenation must be
	// the full sequence with nothing skipped or duplicated.
	cr.Reset()
	rng := rand.New(rand.NewSource(7))
	got = got[:0]
	for {
		if rng.Intn(2) == 0 {
			r, ok := cr.Next()
			if !ok {
				break
			}
			got = append(got, r)
		} else {
			ch, ok := cr.NextChunk()
			if !ok {
				break
			}
			for i := 0; i < ch.Len(); i++ {
				got = append(got, ch.At(i))
			}
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("mixed drain yielded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("mixed-face record %d mismatch", i)
		}
	}

	// Default batch size kicks in for chunk <= 0.
	cr = NewChunkingReader(NewSliceReader(recs), 0)
	ch, ok := cr.NextChunk()
	if !ok || ch.Len() != len(recs) {
		t.Fatalf("default-batch NextChunk = (%d, %v), want all %d records", ch.Len(), ok, len(recs))
	}
}
