package trace

import (
	"fmt"
	"os"
)

// FileReader streams records from a trace file written by Write, decoding
// incrementally and supporting Reset for multi-core replay. It keeps the
// whole decoded trace in memory after the first pass (traces are compact);
// the streaming interface exists so very long traces start executing
// immediately.
type FileReader struct {
	path string
	tr   *Trace
	pos  int
}

// OpenFile opens and fully decodes a trace file.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: decode %s: %w", path, err)
	}
	return &FileReader{path: path, tr: tr}, nil
}

// Trace returns the decoded trace (name, suite, records).
func (r *FileReader) Trace() *Trace { return r.tr }

// Next implements Reader.
func (r *FileReader) Next() (Record, bool) {
	if r.pos >= len(r.tr.Records) {
		return Record{}, false
	}
	rec := r.tr.Records[r.pos]
	r.pos++
	return rec, true
}

// Reset implements Reader.
func (r *FileReader) Reset() { r.pos = 0 }

// SaveFile writes a trace to path in the binary format.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer f.Close()
	if err := Write(f, t); err != nil {
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	return nil
}
