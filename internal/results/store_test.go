package results_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pythia/internal/fault"
	"pythia/internal/fsutil"
	"pythia/internal/results"
)

type payload struct {
	Label string    `json:"label"`
	IPC   []float64 `json:"ipc"`
}

func testKey(name string, parts ...string) results.Key {
	return results.Key{Kind: "run", Name: name, Fingerprint: results.Fingerprint(parts...)}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := results.Open(t.TempDir())
	key := testKey("gems|pythia", "scale=quick")
	want := payload{Label: "gems", IPC: []float64{1.25, 0.75}}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !s.Get(key, &got) {
		t.Fatal("stored entry missed")
	}
	if got.Label != want.Label || len(got.IPC) != 2 || got.IPC[0] != want.IPC[0] {
		t.Fatalf("round trip mangled payload: %+v", got)
	}
	if s.Hits() != 1 || s.Writes() != 1 {
		t.Errorf("counters hits=%d writes=%d, want 1/1", s.Hits(), s.Writes())
	}
}

func TestGetMissesOnDifferentFingerprint(t *testing.T) {
	s := results.Open(t.TempDir())
	if err := s.Put(testKey("w", "cfg=a"), payload{Label: "a"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if s.Get(testKey("w", "cfg=b"), &got) {
		t.Error("fingerprint for a different config served a hit")
	}
}

func TestEntriesSurviveReopen(t *testing.T) {
	// The property RunCached builds on: a fresh Store over the same
	// directory (a process restart) serves entries written by the old one.
	dir := t.TempDir()
	key := testKey("gems|nopref", "scale=quick")
	if err := results.Open(dir).Put(key, payload{Label: "persisted"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !results.Open(dir).Get(key, &got) || got.Label != "persisted" {
		t.Fatalf("entry did not survive reopen: %+v", got)
	}
}

func TestGetRejectsTamperedEnvelope(t *testing.T) {
	dir := t.TempDir()
	s := results.Open(dir)
	key := testKey("w", "cfg")
	if err := s.Put(key, payload{Label: "x"}); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("expected 1 file, found %d", len(ents))
	}
	// Rename the file to where a different key would live: the embedded
	// identity must be re-checked, not trusted from the filename.
	other := testKey("w", "other-cfg")
	src := filepath.Join(dir, ents[0].Name())
	dst := strings.Replace(src, key.Fingerprint, other.Fingerprint, 1)
	if src == dst {
		t.Fatal("test keys collided")
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	var got payload
	if s.Get(other, &got) {
		t.Error("renamed entry served under the wrong key")
	}
}

func TestGetOrComputeDeduplicatesConcurrentCallers(t *testing.T) {
	s := results.Open(t.TempDir())
	key := testKey("w", "cfg")
	var calls atomic.Int32
	release := make(chan struct{})
	const callers = 8
	var wg, arrived sync.WaitGroup
	outs := make([]payload, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			_, err := s.GetOrCompute(key, &outs[i], func() (any, error) {
				calls.Add(1)
				<-release
				return payload{Label: "computed", IPC: []float64{1}}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	arrived.Wait()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times for one key, want 1", got)
	}
	for i := range outs {
		if outs[i].Label != "computed" {
			t.Errorf("caller %d got %+v", i, outs[i])
		}
	}
	// A later call is a plain disk hit.
	var again payload
	hit, err := s.GetOrCompute(key, &again, func() (any, error) {
		t.Error("compute ran despite persisted entry")
		return nil, nil
	})
	if err != nil || !hit {
		t.Errorf("follow-up GetOrCompute hit=%v err=%v", hit, err)
	}
}

func TestReadOnlySuppressesWrites(t *testing.T) {
	s := results.Open(t.TempDir())
	s.SetReadOnly(true)
	key := testKey("w", "cfg")
	if err := s.Put(key, payload{Label: "x"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("read-only Put landed a file")
	}
	var out payload
	hit, err := s.GetOrCompute(key, &out, func() (any, error) {
		return payload{Label: "fresh"}, nil
	})
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if out.Label != "fresh" {
		t.Errorf("computed value not delivered: %+v", out)
	}
	if s.Len() != 0 {
		t.Error("read-only GetOrCompute landed a file")
	}
}

// TestWriteFailureLeavesNoPartialFiles is the failure-injection audit: a
// write that dies between payload and sync must deliver the computed value,
// surface the error, and leave the store directory free of temp or partial
// entry files.
func TestWriteFailureLeavesNoPartialFiles(t *testing.T) {
	dir := t.TempDir()
	s := results.Open(dir)
	boom := errors.New("injected disk failure")
	disable := fault.Enable(fsutil.FPWriteAtomic, fault.Spec{Err: boom})
	defer disable()

	key := testKey("w", "cfg")
	if err := s.Put(key, payload{Label: "x"}); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected failure", err)
	}
	var out payload
	hit, err := s.GetOrCompute(key, &out, func() (any, error) {
		return payload{Label: "survives"}, nil
	})
	if hit {
		t.Error("failed write somehow produced a hit")
	}
	if !errors.Is(err, boom) {
		t.Errorf("GetOrCompute error = %v, want injected failure surfaced", err)
	}
	if out.Label != "survives" {
		t.Errorf("computed value lost on write failure: %+v", out)
	}

	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Errorf("file left behind after injected failures: %s", e.Name())
	}

	// After the fault clears, the same key persists normally.
	disable()
	if err := s.Put(key, payload{Label: "x"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("store has %d entries after recovery, want 1", s.Len())
	}
}

func TestSweepReclaimsOnlyStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "run-w-abc.json.tmp123")
	fresh := filepath.Join(dir, "run-w-def.json.tmp456")
	entry := filepath.Join(dir, "run-w-abc.json")
	for _, p := range []string{stale, fresh, entry} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fsutil.SweepStaleTemps(dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a live writer) was reclaimed")
	}
	if _, err := os.Stat(entry); err != nil {
		t.Error("committed entry was reclaimed")
	}
}

func TestFingerprintSeparatesParts(t *testing.T) {
	if results.Fingerprint("ab", "c") == results.Fingerprint("a", "bc") {
		t.Error("part boundaries not separated in fingerprint")
	}
	if results.Fingerprint("x") == results.Fingerprint("y") {
		t.Error("distinct inputs collided")
	}
}
