// Package results is the persistent experiment result store: a
// content-addressed, on-disk collection of JSON payloads keyed by what was
// measured (kind + name) and a fingerprint of everything that could change
// the outcome (configuration, scale, trace.GenVersion, payload schema).
//
// It shares the crash-safety machinery of the on-disk trace cache
// (internal/fsutil, internal/flight): population is deduplicated through a
// singleflight so concurrent writers for one key do the work once, and
// files land via fully-written temp files plus atomic rename, so readers
// never observe partial JSON and concurrent processes sharing a directory
// are safe (both write, either rename wins, contents are identical because
// simulations are deterministic).
//
// Unlike the harness's in-memory memoization, entries survive process
// restarts: pythia-bench, pythia-serve, tests and examples pointed at one
// directory all reuse each other's simulations. Payloads carry per-trial
// statistics (every simulated core's full counter set), not just headline
// aggregates, so downstream consumers can report dispersion.
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pythia/internal/fault"
	"pythia/internal/flight"
	"pythia/internal/fsutil"
	"pythia/internal/obs"
	"pythia/internal/trace"
)

// Process-wide registry counters, shared by every Store instance (the
// per-instance atomics remain the per-store source of truth for tests and
// /healthz detail; these feed /metrics, labeled by store).
var (
	obsHits   = obs.GetCounter("pythia_store_hits_total", "Store lookups served from disk.", obs.L("store", "results"))
	obsMisses = obs.GetCounter("pythia_store_misses_total", "Store lookups that found no valid entry.", obs.L("store", "results"))
	obsWrites = obs.GetCounter("pythia_store_writes_total", "Store entries successfully persisted.", obs.L("store", "results"))
)

// FPWrite is the failpoint at the head of every store write; chaos tests
// arm it to fail result persistence without touching other WriteAtomic
// users (the policy store, the job journal).
const FPWrite = "results.write"

// SchemaVersion is baked into every fingerprint; bump it when a payload's
// JSON shape changes incompatibly so stale entries miss instead of
// half-decoding.
const SchemaVersion = 1

// Key identifies one stored result.
type Key struct {
	// Kind groups entries by producer ("run" for single simulations,
	// "experiment" for rendered tables).
	Kind string
	// Name is the human-readable identity (mix|prefetcher, experiment ID).
	Name string
	// Fingerprint hashes everything else that determines the outcome; use
	// Fingerprint to build it.
	Fingerprint string
}

// Fingerprint condenses the outcome-determining parts of a key into a
// fixed-width hex digest. trace.GenVersion and SchemaVersion are always
// mixed in, so generator changes and schema changes both invalidate every
// prior entry without any deletion pass.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "g%d|v%d", trace.GenVersion, SchemaVersion)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// envelope is the on-disk JSON document. The key fields are stored
// alongside the payload and re-checked on read, so a filename-hash
// collision (or a hand-copied file) can never serve the wrong result.
type envelope struct {
	Kind        string          `json:"kind"`
	Name        string          `json:"name"`
	Fingerprint string          `json:"fingerprint"`
	GenVersion  int             `json:"gen_version"`
	CreatedAt   time.Time       `json:"created_at"`
	Payload     json.RawMessage `json:"payload"`
}

// Store is an on-disk result store rooted at one directory (created on
// first write). The zero value is not usable; call Open.
type Store struct {
	dir      string
	readOnly atomic.Bool

	flight flight.Group[flightOut]

	sweepOnce sync.Once

	hits, misses, writes atomic.Int64
}

// flightOut is what a GetOrCompute flight delivers to every caller; the
// flight's error return carries compute/persist failures alongside it.
type flightOut struct {
	payload json.RawMessage
	hit     bool
}

// Open returns a store rooted at dir. The directory is created lazily on
// first write, so opening a store never touches the filesystem.
func Open(dir string) *Store {
	return &Store{dir: dir}
}

// DefaultDir returns the store directory used when none is configured: the
// PYTHIA_RESULT_STORE environment variable, or pythia-result-store under
// the OS temp directory.
func DefaultDir() string {
	if dir := os.Getenv("PYTHIA_RESULT_STORE"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "pythia-result-store")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetReadOnly toggles write suppression: a read-only store serves hits but
// silently drops Put calls (CI uses this to consume a shared populated
// store without mutating it).
func (s *Store) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether writes are suppressed.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// Hits returns the number of Get/GetOrCompute calls served from disk.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses returns the number of lookups that found no valid entry.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Writes returns the number of entries successfully persisted.
func (s *Store) Writes() int64 { return s.writes.Load() }

// hit/miss/wrote bump the per-instance atomic and the shared registry
// counter together so /metrics and the instance views cannot drift.
func (s *Store) hit()   { s.hits.Add(1); obsHits.Inc() }
func (s *Store) miss()  { s.misses.Add(1); obsMisses.Inc() }
func (s *Store) wrote() { s.writes.Add(1); obsWrites.Inc() }

// path maps a key to its file. The name is embedded (sanitized) for
// debuggability; the fingerprint digest provides the content addressing.
func (s *Store) path(key Key) string {
	name := fsutil.Sanitize(key.Name)
	if len(name) > 80 {
		name = name[:80]
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s-%s.json", fsutil.Sanitize(key.Kind), name, key.Fingerprint))
}

// Get looks a key up and, on a hit, unmarshals the stored payload into
// out. It returns false on any miss: absent file, unreadable JSON, or an
// envelope whose identity fields do not match the key.
func (s *Store) Get(key Key, out any) bool {
	env, ok := s.load(key)
	if !ok {
		s.miss()
		return false
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		s.miss()
		return false
	}
	s.hit()
	return true
}

// load reads and validates the envelope for a key.
func (s *Store) load(key Key) (envelope, bool) {
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		return envelope{}, false
	}
	var env envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return envelope{}, false
	}
	if env.Kind != key.Kind || env.Name != key.Name || env.Fingerprint != key.Fingerprint {
		return envelope{}, false
	}
	return env, true
}

// Put persists a payload under a key, overwriting any previous entry.
// Writes go through a unique temp file and atomic rename; no error path
// leaves a partial file behind. On a read-only store Put is a no-op.
func (s *Store) Put(key Key, payload any) error {
	if s.ReadOnly() {
		return nil
	}
	buf, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("results: marshal %s/%s: %w", key.Kind, key.Name, err)
	}
	return s.write(key, buf)
}

// write lands raw payload bytes on disk.
func (s *Store) write(key Key, payload json.RawMessage) error {
	env := envelope{
		Kind:        key.Kind,
		Name:        key.Name,
		Fingerprint: key.Fingerprint,
		GenVersion:  trace.GenVersion,
		CreatedAt:   time.Now().UTC(),
		Payload:     payload,
	}
	buf, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal envelope: %w", err)
	}
	buf = append(buf, '\n')

	s.Sweep()
	if err := fault.Hit(FPWrite); err != nil {
		return fmt.Errorf("results: write %s/%s: %w", key.Kind, key.Name, err)
	}
	path := s.path(key)
	if err := fsutil.WriteAtomic(s.dir, path, func(tmp *os.File) error {
		_, werr := tmp.Write(buf)
		return fault.Transient(werr)
	}); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	s.wrote()
	return nil
}

// Sweep reclaims temp files orphaned by crashed processes now, instead
// of waiting for the first write (long-lived services sweep at startup).
// It runs at most once per Store.
func (s *Store) Sweep() {
	s.sweepOnce.Do(func() { fsutil.SweepStaleTemps(s.dir) })
}

// Has reports whether a valid entry for key is on disk, without
// decoding its payload or touching the hit/miss counters. The serving
// layer uses it to admit store-hit requests while writes are degraded.
func (s *Store) Has(key Key) bool {
	_, ok := s.load(key)
	return ok
}

// GetOrCompute returns the stored payload for key, computing and persisting
// it on a miss. Concurrent callers for one key are deduplicated through a
// singleflight: exactly one runs compute, everyone shares the result. The
// result is unmarshalled into out; hit reports whether disk served it
// without running compute. A failed persist does not fail the call — the
// computed value is still delivered (and the error surfaced) so a full
// disk degrades to "no reuse", never to "no results".
func (s *Store) GetOrCompute(key Key, out any, compute func() (any, error)) (hit bool, err error) {
	if s.Get(key, out) {
		return true, nil
	}

	flightKey := key.Kind + "\x00" + key.Name + "\x00" + key.Fingerprint
	res, leader, ferr := s.flight.Do(flightKey, func() (flightOut, error) {
		// Re-check under the flight: an earlier flight (or another process)
		// may have landed the entry between our miss and taking leadership.
		if env, ok := s.load(key); ok {
			s.hit()
			return flightOut{payload: env.Payload, hit: true}, nil
		}
		v, err := compute()
		if err != nil {
			return flightOut{}, err
		}
		buf, err := json.Marshal(v)
		if err != nil {
			return flightOut{}, fmt.Errorf("results: marshal %s/%s: %w", key.Kind, key.Name, err)
		}
		o := flightOut{payload: buf}
		if !s.ReadOnly() {
			// Delivery beats persistence; report a write failure without
			// discarding the computed value.
			return o, s.write(key, buf)
		}
		return o, nil
	})
	if res.payload == nil {
		return false, ferr
	}
	if uerr := json.Unmarshal(res.payload, out); uerr != nil {
		return false, uerr
	}
	// Waiters share the leader's payload but report hit=false: they did
	// not observe the entry on disk themselves.
	return res.hit && leader, ferr
}

// Len reports how many entries are currently on disk (for tests and
// status endpoints; it scans the directory).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
