package harness

import (
	"context"
	"strings"
	"testing"

	"pythia/internal/cache"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

// mustTable unwraps an experiment result, failing the test on error:
// mustTable(t)(SomeExperiment(bg, sc)).
func mustTable(t *testing.T) func(*stats.Table, error) *stats.Table {
	return func(tb *stats.Table, err error) *stats.Table {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
}

// tinyScale keeps harness tests fast.
var tinyScale = Scale{Warmup: 50_000, Sim: 200_000, TraceLen: 40_000, WorkloadsPerSuite: 1, HeteroMixes: 1}

func tinyMix(t *testing.T) trace.Mix {
	t.Helper()
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	return single(w)
}

func TestRunProducesResults(t *testing.T) {
	r, err := Run(bg, RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.SumLLCLoadMisses() <= 0 || r.SumDRAMReads() <= 0 {
		t.Errorf("no memory traffic recorded: %+v", r.Stats)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: BasicPythiaPF()}
	a, errA := Run(bg, spec)
	b, errB := Run(bg, spec)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.IPC[0] != b.IPC[0] {
		t.Errorf("runs differ: %v vs %v", a.IPC[0], b.IPC[0])
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()}
	a, errA := RunCached(bg, spec)
	b, errB := RunCached(bg, spec)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a.IPC[0] != b.IPC[0] {
		t.Error("cached result differs")
	}
}

func TestSpeedupOnPythiaBeatsBaselineOnGems(t *testing.T) {
	sp, err := SpeedupOn(bg, tinyMix(t), cache.DefaultConfig(1), tinyScale, BasicPythiaPF())
	if err != nil {
		t.Fatal(err)
	}
	if sp < 1.0 {
		t.Errorf("Pythia speedup %.3f on GemsFDTD, expected > 1", sp)
	}
}

func TestPFByName(t *testing.T) {
	for _, name := range []string{"nopref", "spp", "bingo", "mlop", "pythia", "pythia-paper", "pythia-strict", "cphw", "power7", "stride+pythia"} {
		pf, err := PFByName(name)
		if err != nil {
			t.Errorf("PFByName(%q): %v", name, err)
			continue
		}
		if pf.L2 == nil && pf.L1 == nil {
			t.Errorf("%q has no factories", name)
		}
	}
	if _, err := PFByName("bogus"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "full", "long", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 27 {
		t.Errorf("registry has %d experiments, want 27 (4 tables + 23 figure panels)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ExperimentByID("fig9a"); !ok {
		t.Error("fig9a missing")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestStaticTables(t *testing.T) {
	// The four static tables run instantly and must carry the paper's
	// headline values.
	t2 := mustTable(t)(Table2BasicConfig(bg, tinyScale)).Render()
	if !strings.Contains(t2, "PC+Delta") || !strings.Contains(t2, "0.556") {
		t.Errorf("table 2 missing key values:\n%s", t2)
	}
	t4 := mustTable(t)(Table4Storage(bg, tinyScale)).Render()
	if !strings.Contains(t4, "25.5") {
		t.Errorf("table 4 missing 25.5KB total:\n%s", t4)
	}
	t7 := mustTable(t)(Table7PrefetcherConfigs(bg, tinyScale)).Render()
	if !strings.Contains(t7, "Bingo") || !strings.Contains(t7, "46.0") {
		t.Errorf("table 7 wrong:\n%s", t7)
	}
	t8 := mustTable(t)(Table8AreaPower(bg, tinyScale)).Render()
	if !strings.Contains(t8, "Skylake") {
		t.Errorf("table 8 wrong:\n%s", t8)
	}
}

func TestFig13ProducesCurves(t *testing.T) {
	tb := mustTable(t)(Fig13QValueCurves(bg, tinyScale))
	if len(tb.Rows) == 0 {
		t.Fatalf("fig13 produced no rows:\n%s", tb.Render())
	}
}

func TestFig14Buckets(t *testing.T) {
	tb := mustTable(t)(Fig14BandwidthBuckets(bg, tinyScale))
	if len(tb.Rows) != 6 {
		t.Fatalf("fig14 rows = %d, want 6:\n%s", len(tb.Rows), tb.Render())
	}
	// Every row's four buckets must be rendered percentages.
	for _, r := range tb.Rows {
		if len(r) != 6 {
			t.Errorf("row %v malformed", r)
		}
	}
}

func TestFig1RunsAtTinyScale(t *testing.T) {
	tb := mustTable(t)(Fig1Motivation(bg, tinyScale))
	if len(tb.Rows) != 18 { // 6 workloads × 3 prefetchers
		t.Errorf("fig1 rows = %d, want 18:\n%s", len(tb.Rows), tb.Render())
	}
}

func TestMixesForCoverSuitesAndHetero(t *testing.T) {
	mixes := mixesFor(2, tinyScale)
	suites := map[string]bool{}
	for _, m := range mixes {
		suites[m.Suite()] = true
		if len(m.Workloads) != 2 {
			t.Errorf("mix %s has %d workloads", m.Name, len(m.Workloads))
		}
	}
	if !suites["Mix"] {
		t.Error("no heterogeneous mixes")
	}
	if len(suites) < 5 {
		t.Errorf("mixes cover %d suites", len(suites))
	}
}

func TestCombinationStacks(t *testing.T) {
	stacks := combinationStacks()
	if len(stacks) != 6 {
		t.Fatalf("stacks = %d", len(stacks))
	}
	if stacks[0].Name != "Stride" || stacks[5].Name != "pythia" {
		t.Errorf("stack order wrong: %s ... %s", stacks[0].Name, stacks[5].Name)
	}
	// A hybrid must emit the union of its parts' candidates.
	h := stacks[2] // St+S+B
	p := h.L2(nil)
	if p.Name() != "St+S+B" {
		t.Errorf("hybrid name %q", p.Name())
	}
}

func TestExtendedExperimentsRegistered(t *testing.T) {
	ext := ExtendedExperiments()
	if len(ext) != 9 {
		t.Errorf("extended experiments = %d, want 9", len(ext))
	}
	for _, id := range []string{"ext-fdp", "ext-generalization", "ext-warmstart"} {
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("%s not resolvable", id)
		}
	}
	if len(AllExperiments()) != len(Experiments())+len(ext) {
		t.Error("AllExperiments composition wrong")
	}
}

func TestExtFixedPointRunsAtTinyScale(t *testing.T) {
	tb := mustTable(t)(ExtFixedPoint(bg, tinyScale))
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
}

func TestScorecardStructure(t *testing.T) {
	claims := Scorecard()
	if len(claims) != 10 {
		t.Errorf("scorecard has %d claims, want 10", len(claims))
	}
	seen := map[string]bool{}
	for _, c := range claims {
		if c.ID == "" || c.Source == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %+v incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestScorecardStorageClaim(t *testing.T) {
	// The static claim must pass at any scale.
	for _, c := range Scorecard() {
		if c.ID == "storage" {
			detail, ok, err := c.Check(bg, tinyScale)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("storage claim failed: %s", detail)
			}
		}
	}
}

func TestFig15RunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := mustTable(t)(Fig15StrictPythia(bg, tinyScale))
	// 13 Ligra workloads + GEOMEAN row.
	if len(tb.Rows) != 14 {
		t.Errorf("fig15 rows = %d, want 14:\n%s", len(tb.Rows), tb.Render())
	}
}

func TestFig12RunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := mustTable(t)(Fig12Unseen(bg, tinyScale))
	// (4 categories + GEOMEAN) × 2 systems.
	if len(tb.Rows) != 10 {
		t.Errorf("fig12 rows = %d, want 10:\n%s", len(tb.Rows), tb.Render())
	}
}

func TestFig11RunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := mustTable(t)(Fig11BandwidthOblivious(bg, tinyScale))
	if len(tb.Rows) != len(BandwidthPoints) {
		t.Errorf("fig11 rows = %d, want %d", len(tb.Rows), len(BandwidthPoints))
	}
}

func TestExtTranslationRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := mustTable(t)(ExtTranslation(bg, tinyScale))
	if len(tb.Rows) != 2 {
		t.Errorf("ext-xlat rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
}

// TestAllExperimentsRun executes every registered experiment once at a
// micro scale: structure and plumbing of each table is exercised even when
// the statistics are too small to be meaningful.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	micro := Scale{Warmup: 20_000, Sim: 60_000, TraceLen: 20_000, WorkloadsPerSuite: 1, HeteroMixes: 1}
	for _, e := range AllExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(bg, micro)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tb == nil || tb.Title == "" {
				t.Fatalf("%s returned an empty table", e.ID)
			}
			if len(tb.Header) == 0 || len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows:\n%s", e.ID, tb.Render())
			}
			for _, r := range tb.Rows {
				if len(r) == 0 || len(r) > len(tb.Header) {
					t.Errorf("%s row %v does not fit header %v", e.ID, r, tb.Header)
				}
			}
			if tb.CSV() == "" {
				t.Errorf("%s CSV empty", e.ID)
			}
		})
	}
}
