package harness

import (
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/stats"
)

// sweepCells fills the (sweep point × prefetcher) grid of a Fig. 8-style
// sweep in parallel: every cell is the geomean speedup of a prefetcher
// across all suites at one system configuration. Cells are independent
// simulations, so the whole grid fans out at once; the grid is assembled by
// index, keeping tables identical at any worker count.
func sweepCells(points int, pfs []PF, sc Scale, cfgFor func(point int) cache.Config) [][]float64 {
	cells := make([][]float64, points)
	for i := range cells {
		cells[i] = make([]float64, len(pfs))
	}
	RunAll(points*len(pfs), func(k int) {
		i, j := k/len(pfs), k%len(pfs)
		cfg := cfgFor(i)
		var all []float64
		for _, suite := range suitesList() {
			all = append(all, suiteSpeedups(suite, cfg, sc, pfs[j])...)
		}
		cells[i][j] = stats.Geomean(all)
	})
	return cells
}

// Fig8aCores reproduces Fig. 8(a): geomean speedup while scaling the core
// count (channel counts scale with cores per Table 5).
func Fig8aCores(sc Scale) *stats.Table {
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 8a: speedup vs core count",
		Header: append([]string{"cores"}, pfNames(pfs)...),
	}
	coreCounts := []int{1, 2, 4, 8}
	cells := make([][]float64, len(coreCounts))
	for i := range cells {
		cells[i] = make([]float64, len(pfs))
	}
	RunAll(len(coreCounts)*len(pfs), func(k int) {
		i, j := k/len(pfs), k%len(pfs)
		cfg := cache.DefaultConfig(coreCounts[i])
		mixes := mixesFor(coreCounts[i], sc)
		cells[i][j] = stats.Geomean(mixSpeedups(mixes, cfg, sc, pfs[j]))
	})
	for i, cores := range coreCounts {
		cellsRow := []string{fmt.Sprint(cores)}
		for j := range pfs {
			cellsRow = append(cellsRow, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(cellsRow...)
	}
	t.Notes = append(t.Notes, "paper: Pythia's margin over prior prefetchers grows with core count")
	return t
}

// BandwidthPoints is the Fig. 8(b) MTPS sweep.
var BandwidthPoints = []int{150, 300, 600, 1200, 2400, 4800, 9600}

// Fig8bBandwidth reproduces Fig. 8(b): single-core speedup while scaling
// DRAM bandwidth from 150 to 9600 MTPS.
func Fig8bBandwidth(sc Scale) *stats.Table {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), PPFPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8b: speedup vs DRAM bandwidth (MTPS, single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	cells := sweepCells(len(BandwidthPoints), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(BandwidthPoints[i])
		return cfg
	})
	for i, mtps := range BandwidthPoints {
		row := []string{fmt.Sprint(mtps)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: at 150 MTPS Pythia outperforms MLOP/Bingo by 16.9%/20.2%; MLOP underperforms the baseline by 16%")
	return t
}

// Fig8cLLCSize reproduces Fig. 8(c): single-core speedup while scaling the
// LLC from 256KB to 4MB.
func Fig8cLLCSize(sc Scale) *stats.Table {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8c: speedup vs LLC size (single-core)",
		Header: append([]string{"LLC KB"}, pfNames(pfs)...),
	}
	sizes := []int{256, 512, 1024, 2048, 4096}
	cells := sweepCells(len(sizes), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.LLCSizeKBPerCore = sizes[i]
		return cfg
	})
	for i, kb := range sizes {
		row := []string{fmt.Sprint(kb)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: Pythia outperforms all competitors at every LLC size")
	return t
}

// Fig8dMultiLevel reproduces Fig. 8(d): multi-level prefetching schemes
// (stride@L1+streamer@L2, IPCP, stride@L1+Pythia@L2) under the MTPS sweep.
func Fig8dMultiLevel(sc Scale) *stats.Table {
	pfs := []PF{StrideStreamerPF(), IPCPPF(), StridePythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8d: multi-level prefetching vs DRAM bandwidth (single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	points := []int{150, 600, 2400, 9600}
	cells := sweepCells(len(points), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(points[i])
		return cfg
	})
	for i, mtps := range points {
		row := []string{fmt.Sprint(mtps)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Stride+Pythia outperforms Stride+Streamer and IPCP at every bandwidth point")
	return t
}

// suitesList is a tiny indirection so experiment files avoid repeating the
// trace import for one call.
func suitesList() []string {
	return []string{"SPEC06", "SPEC17", "PARSEC", "Ligra", "Cloudsuite"}
}
