package harness

import (
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/stats"
)

// Fig8aCores reproduces Fig. 8(a): geomean speedup while scaling the core
// count (channel counts scale with cores per Table 5).
func Fig8aCores(sc Scale) *stats.Table {
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 8a: speedup vs core count",
		Header: append([]string{"cores"}, pfNames(pfs)...),
	}
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := cache.DefaultConfig(cores)
		mixes := mixesFor(cores, sc)
		cells := []string{fmt.Sprint(cores)}
		for _, pf := range pfs {
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(mixSpeedups(mixes, cfg, sc, pf))))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: Pythia's margin over prior prefetchers grows with core count")
	return t
}

// BandwidthPoints is the Fig. 8(b) MTPS sweep.
var BandwidthPoints = []int{150, 300, 600, 1200, 2400, 4800, 9600}

// Fig8bBandwidth reproduces Fig. 8(b): single-core speedup while scaling
// DRAM bandwidth from 150 to 9600 MTPS.
func Fig8bBandwidth(sc Scale) *stats.Table {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), PPFPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8b: speedup vs DRAM bandwidth (MTPS, single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	for _, mtps := range BandwidthPoints {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(mtps)
		cells := []string{fmt.Sprint(mtps)}
		for _, pf := range pfs {
			var all []float64
			for _, suite := range suitesList() {
				all = append(all, suiteSpeedups(suite, cfg, sc, pf)...)
			}
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all)))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper: at 150 MTPS Pythia outperforms MLOP/Bingo by 16.9%/20.2%; MLOP underperforms the baseline by 16%")
	return t
}

// Fig8cLLCSize reproduces Fig. 8(c): single-core speedup while scaling the
// LLC from 256KB to 4MB.
func Fig8cLLCSize(sc Scale) *stats.Table {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8c: speedup vs LLC size (single-core)",
		Header: append([]string{"LLC KB"}, pfNames(pfs)...),
	}
	for _, kb := range []int{256, 512, 1024, 2048, 4096} {
		cfg := cache.DefaultConfig(1)
		cfg.LLCSizeKBPerCore = kb
		cells := []string{fmt.Sprint(kb)}
		for _, pf := range pfs {
			var all []float64
			for _, suite := range suitesList() {
				all = append(all, suiteSpeedups(suite, cfg, sc, pf)...)
			}
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all)))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: Pythia outperforms all competitors at every LLC size")
	return t
}

// Fig8dMultiLevel reproduces Fig. 8(d): multi-level prefetching schemes
// (stride@L1+streamer@L2, IPCP, stride@L1+Pythia@L2) under the MTPS sweep.
func Fig8dMultiLevel(sc Scale) *stats.Table {
	pfs := []PF{StrideStreamerPF(), IPCPPF(), StridePythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8d: multi-level prefetching vs DRAM bandwidth (single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	for _, mtps := range []int{150, 600, 2400, 9600} {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(mtps)
		cells := []string{fmt.Sprint(mtps)}
		for _, pf := range pfs {
			var all []float64
			for _, suite := range suitesList() {
				all = append(all, suiteSpeedups(suite, cfg, sc, pf)...)
			}
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all)))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper: Stride+Pythia outperforms Stride+Streamer and IPCP at every bandwidth point")
	return t
}

// suitesList is a tiny indirection so experiment files avoid repeating the
// trace import for one call.
func suitesList() []string {
	return []string{"SPEC06", "SPEC17", "PARSEC", "Ligra", "Cloudsuite"}
}
