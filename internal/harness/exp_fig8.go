package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/stats"
)

// sweepCells fills the (sweep point × prefetcher) grid of a Fig. 8-style
// sweep in parallel: every cell is the geomean speedup of a prefetcher
// across all suites at one system configuration. Cells are independent
// simulations, so the whole grid fans out at once; the grid is assembled by
// index, keeping tables identical at any worker count.
func sweepCells(ctx context.Context, points int, pfs []PF, sc Scale, cfgFor func(point int) cache.Config) ([][]float64, error) {
	cells := make([][]float64, points)
	for i := range cells {
		cells[i] = make([]float64, len(pfs))
	}
	err := RunAll(ctx, points*len(pfs), func(k int) error {
		i, j := k/len(pfs), k%len(pfs)
		cfg := cfgFor(i)
		var all []float64
		for _, suite := range suitesList() {
			sp, err := suiteSpeedups(ctx, suite, cfg, sc, pfs[j])
			if err != nil {
				return err
			}
			all = append(all, sp...)
		}
		cells[i][j] = stats.Geomean(all)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Fig8aCores reproduces Fig. 8(a): geomean speedup while scaling the core
// count (channel counts scale with cores per Table 5).
func Fig8aCores(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 8a: speedup vs core count",
		Header: append([]string{"cores"}, pfNames(pfs)...),
	}
	coreCounts := []int{1, 2, 4, 8}
	cells := make([][]float64, len(coreCounts))
	for i := range cells {
		cells[i] = make([]float64, len(pfs))
	}
	err := RunAll(ctx, len(coreCounts)*len(pfs), func(k int) error {
		i, j := k/len(pfs), k%len(pfs)
		cfg := cache.DefaultConfig(coreCounts[i])
		mixes := mixesFor(coreCounts[i], sc)
		sp, err := mixSpeedups(ctx, mixes, cfg, sc, pfs[j])
		if err != nil {
			return err
		}
		cells[i][j] = stats.Geomean(sp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, cores := range coreCounts {
		cellsRow := []string{fmt.Sprint(cores)}
		for j := range pfs {
			cellsRow = append(cellsRow, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(cellsRow...)
	}
	t.Notes = append(t.Notes, "paper: Pythia's margin over prior prefetchers grows with core count")
	return t, nil
}

// BandwidthPoints is the Fig. 8(b) MTPS sweep.
var BandwidthPoints = []int{150, 300, 600, 1200, 2400, 4800, 9600}

// Fig8bBandwidth reproduces Fig. 8(b): single-core speedup while scaling
// DRAM bandwidth from 150 to 9600 MTPS.
func Fig8bBandwidth(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), PPFPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8b: speedup vs DRAM bandwidth (MTPS, single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	cells, err := sweepCells(ctx, len(BandwidthPoints), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(BandwidthPoints[i])
		return cfg
	})
	if err != nil {
		return nil, err
	}
	for i, mtps := range BandwidthPoints {
		row := []string{fmt.Sprint(mtps)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: at 150 MTPS Pythia outperforms MLOP/Bingo by 16.9%/20.2%; MLOP underperforms the baseline by 16%")
	return t, nil
}

// Fig8cLLCSize reproduces Fig. 8(c): single-core speedup while scaling the
// LLC from 256KB to 4MB.
func Fig8cLLCSize(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := []PF{SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8c: speedup vs LLC size (single-core)",
		Header: append([]string{"LLC KB"}, pfNames(pfs)...),
	}
	sizes := []int{256, 512, 1024, 2048, 4096}
	cells, err := sweepCells(ctx, len(sizes), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.LLCSizeKBPerCore = sizes[i]
		return cfg
	})
	if err != nil {
		return nil, err
	}
	for i, kb := range sizes {
		row := []string{fmt.Sprint(kb)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: Pythia outperforms all competitors at every LLC size")
	return t, nil
}

// Fig8dMultiLevel reproduces Fig. 8(d): multi-level prefetching schemes
// (stride@L1+streamer@L2, IPCP, stride@L1+Pythia@L2) under the MTPS sweep.
func Fig8dMultiLevel(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := []PF{StrideStreamerPF(), IPCPPF(), StridePythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 8d: multi-level prefetching vs DRAM bandwidth (single-core)",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	points := []int{150, 600, 2400, 9600}
	cells, err := sweepCells(ctx, len(points), pfs, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(points[i])
		return cfg
	})
	if err != nil {
		return nil, err
	}
	for i, mtps := range points {
		row := []string{fmt.Sprint(mtps)}
		for j := range pfs {
			row = append(row, fmt.Sprintf("%.3f", cells[i][j]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Stride+Pythia outperforms Stride+Streamer and IPCP at every bandwidth point")
	return t, nil
}

// suitesList is a tiny indirection so experiment files avoid repeating the
// trace import for one call.
func suitesList() []string {
	return []string{"SPEC06", "SPEC17", "PARSEC", "Ligra", "Cloudsuite"}
}
