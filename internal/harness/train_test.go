package harness

import (
	"errors"
	"testing"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/fault"
	"pythia/internal/fsutil"
	"pythia/internal/policy"
	"pythia/internal/prefetch"
	"pythia/internal/trace"
)

func tinyTrainSpec(t *testing.T) TrainSpec {
	t.Helper()
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	return TrainSpec{Workload: w, CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, Config: core.BasicConfig()}
}

// TestTrainPolicyRepeatIsStoreHit is the lifecycle acceptance test: the
// first training request simulates and persists; an identical repeat —
// even through a fresh store handle, a process restart in miniature — is
// a policy-store hit with zero additional simulations.
func TestTrainPolicyRepeatIsStoreHit(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	dir := t.TempDir()
	ts := tinyTrainSpec(t)

	st := policy.Open(dir)
	before := SimCount()
	env, hit, err := TrainPolicyIn(bg, st, ts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first training request claims a store hit")
	}
	if delta := SimCount() - before; delta != 1 {
		t.Errorf("training executed %d simulations, want 1", delta)
	}
	if env.ID != ts.PolicyID() || len(env.Snapshot) == 0 {
		t.Fatalf("trained envelope incomplete: %+v", env.Meta)
	}
	if env.TrainedOn.Workload != ts.Workload.Name || env.TrainedOn.Seed != ts.Config.Seed {
		t.Errorf("provenance wrong: %+v", env.TrainedOn)
	}

	before = SimCount()
	again, hit, err := TrainPolicyIn(bg, policy.Open(dir), ts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("repeat training request was not a store hit")
	}
	if delta := SimCount() - before; delta != 0 {
		t.Errorf("repeat training executed %d simulations, want 0", delta)
	}
	if again.ID != env.ID {
		t.Errorf("repeat served a different policy: %s vs %s", again.ID, env.ID)
	}
}

// TestWarmStartedEvaluationNeverRetrains: with the policy in the store
// and the evaluation in the result store, a full warm-started evaluation
// cycle after a restart costs zero simulations — and the warm result is
// distinct from the cold one (the policy ID keys the cache).
func TestWarmStartedEvaluationNeverRetrains(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	resDir, polDir := t.TempDir(), t.TempDir()
	SetResultStore(resDir)
	defer SetResultStore("")
	ts := tinyTrainSpec(t)

	env, _, err := TrainPolicyIn(bg, policy.Open(polDir), ts)
	if err != nil {
		t.Fatal(err)
	}
	cold := RunSpec{Mix: single(ts.Workload), CacheCfg: ts.CacheCfg, Scale: ts.Scale, PF: PythiaPF(ts.Config)}
	warm := cold
	warm.WarmStart = &env
	coldRes, err := RunCached(bg, cold)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := RunCached(bg, warm)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.IPC[0] == warmRes.IPC[0] && coldRes.SumLLCLoadMisses() == warmRes.SumLLCLoadMisses() {
		t.Error("warm and cold runs produced identical results — cache key collision?")
	}

	// Restart: drop every in-memory cache; the whole warm cycle (policy
	// fetch + evaluation) must be served from the two stores.
	ResetCaches()
	SetResultStore(resDir)
	before := SimCount()
	env2, hit, err := TrainPolicyIn(bg, policy.Open(polDir), ts)
	if err != nil || !hit {
		t.Fatalf("policy refetch hit=%v err=%v", hit, err)
	}
	warm.WarmStart = &env2
	warmAgain, err := RunCached(bg, warm)
	if err != nil {
		t.Fatal(err)
	}
	if delta := SimCount() - before; delta != 0 {
		t.Errorf("warm-started evaluation after restart executed %d simulations, want 0", delta)
	}
	if warmAgain.IPC[0] != warmRes.IPC[0] {
		t.Error("restored warm result differs from the original")
	}
}

// TestWarmStartRejectsMismatch: a policy restored across a configuration
// or generator-version mismatch fails the run with the typed error, and a
// warm spec whose prefetcher has no Pythia agent fails loudly too.
func TestWarmStartRejectsMismatch(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	ts := tinyTrainSpec(t)
	env, _, err := TrainPolicyIn(bg, nil, ts)
	if err != nil {
		t.Fatal(err)
	}

	mismatched := RunSpec{Mix: single(ts.Workload), CacheCfg: ts.CacheCfg, Scale: ts.Scale,
		PF: PythiaPF(core.StrictConfig()), WarmStart: &env}
	if _, err := Run(bg, mismatched); !errors.Is(err, policy.ErrMismatch) {
		t.Errorf("config mismatch: want policy.ErrMismatch, got %v", err)
	}

	skewed := env
	skewed.GenVersion++
	genSkew := RunSpec{Mix: single(ts.Workload), CacheCfg: ts.CacheCfg, Scale: ts.Scale,
		PF: PythiaPF(ts.Config), WarmStart: &skewed}
	if _, err := Run(bg, genSkew); !errors.Is(err, policy.ErrMismatch) {
		t.Errorf("generator skew: want policy.ErrMismatch, got %v", err)
	}

	noAgent := RunSpec{Mix: single(ts.Workload), CacheCfg: ts.CacheCfg, Scale: ts.Scale,
		PF: SPPPF(), WarmStart: &env}
	if _, err := Run(bg, noAgent); err == nil {
		t.Error("warm start with no Pythia agent succeeded silently")
	}
}

// TestExtGeneralizationRunsAtTinyScale renders the full matrix at a tiny
// scale and proves the lifecycle accounting: a second render over the
// same populated policy and result stores performs zero simulations.
func TestExtGeneralizationRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ResetCaches()
	defer ResetCaches()
	SetResultStore(t.TempDir())
	defer SetResultStore("")
	SetPolicyStore(t.TempDir())
	defer SetPolicyStore("")

	tb, err := ExtGeneralization(bg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// tinyScale caps the matrix edge at 1 workload: 1 data row, 2 columns.
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 2 {
		t.Fatalf("matrix shape wrong:\n%s", tb.Render())
	}

	// Restart: everything — training included — must come from the stores.
	ResetCaches()
	before := SimCount()
	tb2, err := ExtGeneralization(bg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if delta := SimCount() - before; delta != 0 {
		t.Errorf("re-render executed %d simulations, want 0 (warm evaluations must never re-train)", delta)
	}
	if tb2.Render() != tb.Render() {
		t.Error("re-rendered matrix differs from the original")
	}
}

func TestExtWarmStartRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ResetCaches()
	defer ResetCaches()
	tb, err := ExtWarmStart(bg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload (tinyScale cap) × 2 arms.
	if len(tb.Rows) != 2 {
		t.Fatalf("warm-start rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	if tb.Rows[0][1] != "cold" || tb.Rows[1][1] != "warm" {
		t.Errorf("arm ordering wrong:\n%s", tb.Render())
	}
	if tb.Rows[1][len(tb.Rows[1])-1] == "-" {
		t.Error("warm row lacks the converge-speedup column")
	}
}

// TestWarmExperimentsSurvivePersistFailure: an unwritable policy store
// degrades training to "no reuse", never to a failed experiment — the
// trained envelope is delivered past the persist error and the table
// still renders (the store's delivery-beats-persistence contract,
// honored by the experiment callers).
func TestWarmExperimentsSurvivePersistFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ResetCaches()
	defer ResetCaches()
	st := SetPolicyStore(t.TempDir())
	defer SetPolicyStore("")
	defer fault.Enable(fsutil.FPWriteAtomic, fault.Spec{Err: errors.New("injected disk failure")})()

	tb, err := ExtWarmStart(bg, tinyScale)
	if err != nil {
		t.Fatalf("persist-only failure aborted the experiment: %v", err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("table incomplete:\n%s", tb.Render())
	}
	if st.Writes() != 0 {
		t.Errorf("store recorded %d writes past the failpoint", st.Writes())
	}
}

// TestTrainPolicySpecsBypassResultCaches: a spec carrying the TrainPolicy
// post-run hook must always simulate through RunCached (composing with
// the Hook-exclusion rule), and must never leak into the persistent
// result store.
func TestTrainPolicySpecsBypassResultCaches(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	st := SetResultStore(t.TempDir())
	defer SetResultStore("")

	hooks := 0
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale,
		PF: BasicPythiaPF(), TrainPolicy: func(pfs []prefetch.Prefetcher) { hooks++ }}
	for i := 0; i < 2; i++ {
		if _, err := RunCached(bg, spec); err != nil {
			t.Fatal(err)
		}
	}
	if hooks != 2 {
		t.Errorf("TrainPolicy hook ran %d times over 2 RunCached calls, want 2", hooks)
	}
	if st.Writes() != 0 {
		t.Errorf("TrainPolicy spec wrote %d result-store entries, want 0", st.Writes())
	}
}
