package harness

import (
	"sync/atomic"
	"time"

	"pythia/internal/obs"
)

// instrRetired tallies instructions retired by every simulation this
// process has run (warmup and replays included: it measures kernel work,
// not measurement windows). Like simCount it only grows; pythia-bench
// computes per-experiment throughput from deltas.
var instrRetired atomic.Int64

// InstructionsRetired returns the total instructions simulated by this
// process across all runs.
func InstructionsRetired() int64 { return instrRetired.Load() }

// simRate is the distribution of per-run simulated-instructions/sec —
// each observation is one worker's throughput over one simulation, so
// p50/p95 expose stragglers that a process-wide average would hide.
var simRate = obs.GetHistogram("pythia_sim_instructions_per_second",
	"Per-run simulated-instructions/sec (one observation per simulation).",
	obs.RateBuckets, nil)

func init() {
	// Func-backed: the atomics above stay the single source of truth that
	// tests already assert on (SimCount deltas prove store hits ran zero
	// simulations); /metrics reads them through these callbacks.
	obs.RegisterCounterFunc("pythia_sims_total",
		"Simulations executed by this process.", nil,
		func() float64 { return float64(SimCount()) })
	obs.RegisterCounterFunc("pythia_sim_instructions_total",
		"Instructions retired across all simulations (warmup and replays included).", nil,
		func() float64 { return float64(InstructionsRetired()) })
	obs.RegisterGaugeFunc("pythia_harness_workers",
		"Current harness parallelism bound.", nil,
		func() float64 { return float64(Workers()) })
}

// recordSimThroughput accounts one finished simulation: retired
// instructions into the process counter and, when the run took long
// enough to give a meaningful rate, an instructions/sec observation.
func recordSimThroughput(retired int64, elapsed time.Duration) {
	instrRetired.Add(retired)
	if sec := elapsed.Seconds(); sec > 0 && retired > 0 {
		simRate.Observe(float64(retired) / sec)
	}
}
