package harness

import (
	"sync"
	"sync/atomic"
	"testing"

	"pythia/internal/cache"
)

func TestRunAllCoversEveryIndex(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		hits := make([]int32, 100)
		if err := RunAll(bg, len(hits), func(i int) error { atomic.AddInt32(&hits[i], 1); return nil }); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunAllNests(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var n atomic.Int32
	err := RunAll(bg, 5, func(int) error {
		return RunAll(bg, 7, func(int) error { n.Add(1); return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 35 {
		t.Errorf("nested RunAll ran %d leaf calls, want 35", n.Load())
	}
}

// The singleflight behind RunCached's deduplication is exercised directly
// in internal/flight; here we keep the end-to-end guarantee.

func TestRunCachedConcurrentCallersAgree(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: BasicPythiaPF()}
	const callers = 4
	out := make([]RunResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := RunCached(bg, spec)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = r
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if out[i].IPC[0] != out[0].IPC[0] {
			t.Fatalf("caller %d IPC %v != caller 0 IPC %v", i, out[i].IPC[0], out[0].IPC[0])
		}
	}
}

// TestExperimentDeterministicAcrossWorkerCounts is the parallel harness's
// core guarantee: the same experiment renders byte-identical tables at 1
// worker and at N workers (fresh caches each time, so every simulation
// actually re-runs).
func TestExperimentDeterministicAcrossWorkerCounts(t *testing.T) {
	defer SetWorkers(0)
	render := func(workers int) string {
		SetWorkers(workers)
		ResetCaches()
		defer ResetCaches()
		return mustTable(t)(Fig1Motivation(bg, tinyScale)).Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("Fig. 1 table differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestSetWorkersBounds(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Errorf("default worker count %d", Workers())
	}
}
