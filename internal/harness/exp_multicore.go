package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Fig10aFourCore reproduces Fig. 10(a): per-suite geomean speedup in the
// four-core system over homogeneous and heterogeneous mixes.
func Fig10aFourCore(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(4)
	pfs := StandardPFs()
	mixes := mixesFor(4, sc)
	t := &stats.Table{
		Title:  "Fig. 10a: per-suite speedup (four-core)",
		Header: append([]string{"suite"}, pfNames(pfs)...),
	}
	groups := map[string][]trace.Mix{}
	var order []string
	for _, m := range mixes {
		s := suiteOfMix(m)
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = append(groups[s], m)
	}
	all := map[string][]float64{}
	for _, suite := range order {
		cells := []string{suite}
		for _, pf := range pfs {
			sp, err := mixSpeedups(ctx, groups[suite], cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			all[pf.Name] = append(all[pf.Name], sp...)
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(sp)))
		}
		t.AddRow(cells...)
	}
	cells := []string{"GEOMEAN"}
	for _, pf := range pfs {
		cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all[pf.Name])))
	}
	t.AddRow(cells...)
	t.Notes = append(t.Notes, "paper: Pythia outperforms MLOP/Bingo/SPP by 5.8/8.2/6.5% at 4C")
	return t, nil
}

// Fig10bCombinations reproduces Fig. 10(b): prefetcher stacks at four
// cores, where combining overpredictors hurts.
func Fig10bCombinations(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(4)
	mixes := mixesFor(4, sc)
	t := &stats.Table{
		Title:  "Fig. 10b: prefetcher combinations (four-core)",
		Header: []string{"configuration", "geomean speedup"},
	}
	for _, pf := range combinationStacks() {
		sp, err := mixSpeedups(ctx, mixes, cfg, sc, pf)
		if err != nil {
			return nil, err
		}
		t.AddRow(pf.Name, fmt.Sprintf("%.3f", stats.Geomean(sp)))
	}
	t.Notes = append(t.Notes, "paper: stacking prefetchers beyond St+S lowers 4C performance; Pythia wins by 4.9%")
	return t, nil
}

// Fig11BandwidthOblivious reproduces Fig. 11: the bandwidth-oblivious
// ablation of Pythia relative to basic Pythia under the MTPS sweep.
func Fig11BandwidthOblivious(ctx context.Context, sc Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 11: bandwidth-oblivious Pythia vs basic Pythia",
		Header: []string{"MTPS", "basic", "bw-oblivious", "delta"},
	}
	// Both variants of every bandwidth point simulate concurrently.
	variants := []PF{BasicPythiaPF(), PythiaPF(core.BandwidthObliviousConfig())}
	cells, err := sweepCells(ctx, len(BandwidthPoints), variants, sc, func(i int) cache.Config {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(BandwidthPoints[i])
		return cfg
	})
	if err != nil {
		return nil, err
	}
	for i, mtps := range BandwidthPoints {
		b, o := cells[i][0], cells[i][1]
		t.AddRow(fmt.Sprint(mtps), fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", o), pct(o/b-1))
	}
	t.Notes = append(t.Notes,
		"paper: the oblivious variant loses up to 4.6% at 150 MTPS and converges to basic at high bandwidth")
	return t, nil
}

// Fig12Unseen reproduces Fig. 12: performance on the CVP-2 "unseen" trace
// categories in single-core and four-core systems.
func Fig12Unseen(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 12: performance on unseen CVP-2 traces",
		Header: append([]string{"system", "category"}, pfNames(pfs)...),
	}
	categories := map[string][]trace.Workload{}
	var order []string
	for _, w := range trace.BySuite(trace.SuiteCVP2) {
		if _, ok := categories[w.Base]; !ok {
			order = append(order, w.Base)
		}
		categories[w.Base] = append(categories[w.Base], w)
	}
	for _, cores := range []int{1, 4} {
		cores := cores
		cfg := cache.DefaultConfig(cores)
		sys := fmt.Sprintf("%dC", cores)
		// Every (category, prefetcher, workload) simulation of this system
		// fans out at once; aggregation walks the job list in order.
		type job struct {
			cat         string
			pfIdx, wIdx int
		}
		var jobs []job
		for _, cat := range order {
			for pi := range pfs {
				for wi := range categories[cat] {
					jobs = append(jobs, job{cat, pi, wi})
				}
			}
		}
		sps := make([]float64, len(jobs))
		err := RunAll(ctx, len(jobs), func(k int) error {
			j := jobs[k]
			w := categories[j.cat][j.wIdx]
			mix := single(w)
			if cores > 1 {
				mix = trace.HomogeneousMix(w, cores)
			}
			sp, err := SpeedupOn(ctx, mix, cfg, sc, pfs[j.pfIdx])
			sps[k] = sp
			return err
		})
		if err != nil {
			return nil, err
		}
		all := map[string][]float64{}
		k := 0
		for _, cat := range order {
			cells := []string{sys, cat}
			for _, pf := range pfs {
				var sp []float64
				for range categories[cat] {
					sp = append(sp, sps[k])
					k++
				}
				all[pf.Name] = append(all[pf.Name], sp...)
				cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(sp)))
			}
			t.AddRow(cells...)
		}
		cells := []string{sys, "GEOMEAN"}
		for _, pf := range pfs {
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all[pf.Name])))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: Pythia wins on traces never used for tuning (crypto/INT/FP/server)")
	return t, nil
}
