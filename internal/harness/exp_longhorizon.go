package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// longHorizonWorkloads is the study set: the paper's §6.5 case-study
// workload plus one streaming-friendly and one irregular trace, covering
// the pattern classes whose convergence behavior differs most with
// horizon length.
func longHorizonWorkloads() []string {
	return []string{"459.GemsFDTD-100B", "410.bwaves-100B", "CC-100B"}
}

// ExtLongHorizon runs the long-horizon training study enabled by the
// streaming trace pipeline: at ScaleLong (≥50M measured instructions per
// core, the paper's order of magnitude) Pythia trains with the paper's
// actual Table 2 hyperparameters (α=0.0065, ε=0.002) next to this
// library's horizon-scaled defaults (α=0.10, ε=0.01). At short horizons
// the paper values under-converge; given a paper-scale horizon they no
// longer need the inflation documented in DESIGN.md "Horizon scaling".
//
// The experiment honors whatever scale it is given (so it smoke-tests at
// quick scale), but its headline run is:
//
//	pythia-bench -exp ext-longhorizon -scale long
func ExtLongHorizon(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := []PF{BasicPythiaPF(), PythiaPF(core.PaperHorizonConfig())}
	t := &stats.Table{
		Title: "Long-horizon study: paper Table 2 hyperparameters vs horizon-scaled defaults",
		Header: []string{"workload", "instructions/core",
			pfs[0].Name + " speedup", pfs[1].Name + " speedup"},
	}
	type row struct{ sp [2]float64 }
	var ws []trace.Workload
	for _, name := range longHorizonWorkloads() {
		w, ok := trace.ByName(name)
		if !ok {
			t.Notes = append(t.Notes, "missing workload "+name)
			continue
		}
		ws = append(ws, w)
	}
	rows := make([]row, len(ws))
	err := RunAll(ctx, len(ws)*len(pfs), func(i int) error {
		w, pf := ws[i/len(pfs)], i%len(pfs)
		sp, err := SpeedupOn(ctx, single(w), cfg, sc, pfs[pf])
		rows[i/len(pfs)].sp[pf] = sp
		return err
	})
	if err != nil {
		return nil, err
	}
	geo := [2][]float64{}
	for i, w := range ws {
		t.AddRow(w.Name, fmt.Sprintf("%d", sc.Sim),
			fmt.Sprintf("%.3f", rows[i].sp[0]), fmt.Sprintf("%.3f", rows[i].sp[1]))
		geo[0] = append(geo[0], rows[i].sp[0])
		geo[1] = append(geo[1], rows[i].sp[1])
	}
	t.AddRow("GEOMEAN", fmt.Sprintf("%d", sc.Sim),
		fmt.Sprintf("%.3f", stats.Geomean(geo[0])), fmt.Sprintf("%.3f", stats.Geomean(geo[1])))
	if sc.StreamChunk > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"traces streamed via internal/stream (%d-record chunks); peak resident trace memory is the chunk ring, not TraceLen", sc.StreamChunk))
	} else {
		t.Notes = append(t.Notes,
			"run at -scale long for the paper-horizon result (streaming pipeline, α=0.0065/ε=0.002 converges)")
	}
	return t, nil
}
