package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Claim is one qualitative finding of the paper, checked against this
// reproduction. Claims compare measured quantities directionally (who wins,
// what grows) rather than against the paper's absolute numbers, per the
// substitution policy in DESIGN.md.
type Claim struct {
	// ID names the claim ("1c-ordering").
	ID string
	// Source cites the paper section/figure.
	Source string
	// Statement is the finding in one sentence.
	Statement string
	// Check measures the claim; it returns the observed detail and whether
	// the claim holds. A simulation failure (or canceled ctx) aborts the
	// check with an error rather than reporting a verdict.
	Check func(ctx context.Context, sc Scale) (detail string, ok bool, err error)
}

// Scorecard returns the checked claims in presentation order.
func Scorecard() []Claim {
	return []Claim{
		{
			ID: "1c-ordering", Source: "§6.2.1 / Fig. 9a",
			Statement: "Pythia outperforms SPP, Bingo and MLOP on the single-core geomean",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				g := map[string]float64{}
				for _, pf := range StandardPFs() {
					var sp []float64
					for _, suite := range trace.Suites() {
						s, err := suiteSpeedups(ctx, suite, cfg, sc, pf)
						if err != nil {
							return "", false, err
						}
						sp = append(sp, s...)
					}
					g[pf.Name] = stats.Geomean(sp)
				}
				ok := g["pythia"] > g["SPP"] && g["pythia"] > g["Bingo"] && g["pythia"] > g["MLOP"]
				return fmt.Sprintf("pythia %.3f, SPP %.3f, Bingo %.3f, MLOP %.3f",
					g["pythia"], g["SPP"], g["Bingo"], g["MLOP"]), ok, nil
			},
		},
		{
			ID: "gems-delta-win", Source: "Fig. 1 / §6.5",
			Statement: "On the GemsFDTD delta-chain workload, Pythia beats Bingo (delta learners win)",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				w, _ := trace.ByName("459.GemsFDTD-100B")
				py, err := SpeedupOn(ctx, single(w), cfg, sc, BasicPythiaPF())
				if err != nil {
					return "", false, err
				}
				bi, err := SpeedupOn(ctx, single(w), cfg, sc, BingoPF())
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("pythia %.3f vs Bingo %.3f", py, bi), py > bi, nil
			},
		},
		{
			ID: "sphinx-spatial-win", Source: "Fig. 1",
			Statement: "On the sphinx3 spatial-footprint workload, Bingo beats SPP",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				w, _ := trace.ByName("482.sphinx3-100B")
				bi, err := SpeedupOn(ctx, single(w), cfg, sc, BingoPF())
				if err != nil {
					return "", false, err
				}
				sp, err := SpeedupOn(ctx, single(w), cfg, sc, SPPPF())
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("Bingo %.3f vs SPP %.3f", bi, sp), bi > sp, nil
			},
		},
		{
			ID: "low-bw-lead", Source: "§6.2.2 / Fig. 8b",
			Statement: "At 150 MTPS Pythia leads SPP, Bingo and MLOP; every prefetcher does worse than at 2400 MTPS",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				low := cache.DefaultConfig(1)
				low.DRAM = low.DRAM.WithMTPS(150)
				high := cache.DefaultConfig(1)
				lowG := map[string]float64{}
				ok := true
				for _, pf := range StandardPFs() {
					var l, h []float64
					for _, suite := range trace.Suites() {
						ls, err := suiteSpeedups(ctx, suite, low, sc, pf)
						if err != nil {
							return "", false, err
						}
						hs, err := suiteSpeedups(ctx, suite, high, sc, pf)
						if err != nil {
							return "", false, err
						}
						l = append(l, ls...)
						h = append(h, hs...)
					}
					lowG[pf.Name] = stats.Geomean(l)
					if stats.Geomean(l) >= stats.Geomean(h) {
						ok = false
					}
				}
				for _, rival := range []string{"SPP", "Bingo", "MLOP"} {
					if lowG["pythia"] < lowG[rival] {
						ok = false
					}
				}
				return fmt.Sprintf("150 MTPS: pythia %.3f, SPP %.3f, Bingo %.3f, MLOP %.3f",
					lowG["pythia"], lowG["SPP"], lowG["Bingo"], lowG["MLOP"]), ok, nil
			},
		},
		{
			ID: "bw-awareness", Source: "§6.3.3 / Fig. 11",
			Statement: "The bandwidth-oblivious ablation does not beat basic Pythia under constrained bandwidth",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				cfg.DRAM = cfg.DRAM.WithMTPS(300)
				var b, o []float64
				for _, suite := range trace.Suites() {
					bs, err := suiteSpeedups(ctx, suite, cfg, sc, BasicPythiaPF())
					if err != nil {
						return "", false, err
					}
					os, err := suiteSpeedups(ctx, suite, cfg, sc, PythiaPF(core.BandwidthObliviousConfig()))
					if err != nil {
						return "", false, err
					}
					b = append(b, bs...)
					o = append(o, os...)
				}
				gb, gobl := stats.Geomean(b), stats.Geomean(o)
				return fmt.Sprintf("basic %.3f vs oblivious %.3f at 300 MTPS", gb, gobl), gobl <= gb*1.02, nil
			},
		},
		{
			ID: "strict-ligra", Source: "§6.6.1 / Fig. 15",
			Statement: "Strict reward customization does not lose on the Ligra suite",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				var b, s []float64
				for _, w := range suiteWorkloads(trace.SuiteLigra, sc) {
					bs, err := SpeedupOn(ctx, single(w), cfg, sc, BasicPythiaPF())
					if err != nil {
						return "", false, err
					}
					ss, err := SpeedupOn(ctx, single(w), cfg, sc, PythiaPF(core.StrictConfig()))
					if err != nil {
						return "", false, err
					}
					b = append(b, bs)
					s = append(s, ss)
				}
				gb, gs := stats.Geomean(b), stats.Geomean(s)
				return fmt.Sprintf("basic %.3f vs strict %.3f", gb, gs), gs >= gb*0.99, nil
			},
		},
		{
			ID: "cphw", Source: "§4.5 / Fig. 21",
			Statement: "Pythia beats the myopic contextual-bandit CP-HW on the single-core geomean",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				return rivalGeomeans(ctx, sc, CPHWPF(), "CP-HW")
			},
		},
		{
			ID: "power7", Source: "Appendix B.5 / Fig. 22",
			Statement: "Pythia beats the POWER7-style adaptive prefetcher on the single-core geomean",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				return rivalGeomeans(ctx, sc, Power7PF(), "POWER7")
			},
		},
		{
			ID: "unseen", Source: "§6.4 / Fig. 12",
			Statement: "Pythia gains on the unseen CVP-2 traces it was never tuned on",
			Check: func(ctx context.Context, sc Scale) (string, bool, error) {
				cfg := cache.DefaultConfig(1)
				var sp []float64
				for _, w := range trace.Representative(trace.SuiteCVP2) {
					s, err := SpeedupOn(ctx, single(w), cfg, sc, BasicPythiaPF())
					if err != nil {
						return "", false, err
					}
					sp = append(sp, s)
				}
				g := stats.Geomean(sp)
				return fmt.Sprintf("geomean %.3f", g), g > 1.0, nil
			},
		},
		{
			ID: "storage", Source: "Table 4",
			Statement: "Pythia's metadata budget is 25.5 KB (QVStore 24 KB + EQ 1.5 KB)",
			Check: func(context.Context, Scale) (string, bool, error) {
				qv := core.NewQVStore(core.BasicConfig().Features, 128, 16, 3, 1, 1)
				kb := float64(qv.StorageBits()) / 8 / 1024
				return fmt.Sprintf("QVStore %.1f KB", kb), kb == 24, nil
			},
		},
	}
}

// rivalGeomeans compares Pythia's single-core geomean to a rival's across
// every suite (the shared body of the CP-HW and POWER7 claims).
func rivalGeomeans(ctx context.Context, sc Scale, rival PF, label string) (string, bool, error) {
	cfg := cache.DefaultConfig(1)
	var p, c []float64
	for _, suite := range trace.Suites() {
		ps, err := suiteSpeedups(ctx, suite, cfg, sc, BasicPythiaPF())
		if err != nil {
			return "", false, err
		}
		cs, err := suiteSpeedups(ctx, suite, cfg, sc, rival)
		if err != nil {
			return "", false, err
		}
		p = append(p, ps...)
		c = append(c, cs...)
	}
	gp, gc := stats.Geomean(p), stats.Geomean(c)
	return fmt.Sprintf("pythia %.3f vs %s %.3f", gp, label, gc), gp > gc, nil
}

// RunScorecard evaluates every claim at a scale.
func RunScorecard(ctx context.Context, sc Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Reproduction scorecard: the paper's qualitative claims",
		Header: []string{"claim", "source", "result", "observed"},
	}
	pass := 0
	for _, c := range Scorecard() {
		detail, ok, err := c.Check(ctx, sc)
		if err != nil {
			return nil, fmt.Errorf("scorecard claim %s: %w", c.ID, err)
		}
		verdict := "FAIL"
		if ok {
			verdict = "PASS"
			pass++
		}
		t.AddRow(c.ID, c.Source, verdict, detail)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d claims hold at this scale", pass, len(Scorecard())))
	return t, nil
}
