package harness

import (
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Claim is one qualitative finding of the paper, checked against this
// reproduction. Claims compare measured quantities directionally (who wins,
// what grows) rather than against the paper's absolute numbers, per the
// substitution policy in DESIGN.md.
type Claim struct {
	// ID names the claim ("1c-ordering").
	ID string
	// Source cites the paper section/figure.
	Source string
	// Statement is the finding in one sentence.
	Statement string
	// Check measures the claim; it returns the observed detail and whether
	// the claim holds.
	Check func(sc Scale) (detail string, ok bool)
}

// Scorecard returns the checked claims in presentation order.
func Scorecard() []Claim {
	return []Claim{
		{
			ID: "1c-ordering", Source: "§6.2.1 / Fig. 9a",
			Statement: "Pythia outperforms SPP, Bingo and MLOP on the single-core geomean",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				g := map[string]float64{}
				for _, pf := range StandardPFs() {
					var sp []float64
					for _, suite := range trace.Suites() {
						sp = append(sp, suiteSpeedups(suite, cfg, sc, pf)...)
					}
					g[pf.Name] = stats.Geomean(sp)
				}
				ok := g["pythia"] > g["SPP"] && g["pythia"] > g["Bingo"] && g["pythia"] > g["MLOP"]
				return fmt.Sprintf("pythia %.3f, SPP %.3f, Bingo %.3f, MLOP %.3f",
					g["pythia"], g["SPP"], g["Bingo"], g["MLOP"]), ok
			},
		},
		{
			ID: "gems-delta-win", Source: "Fig. 1 / §6.5",
			Statement: "On the GemsFDTD delta-chain workload, Pythia beats Bingo (delta learners win)",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				w, _ := trace.ByName("459.GemsFDTD-100B")
				py := SpeedupOn(single(w), cfg, sc, BasicPythiaPF())
				bi := SpeedupOn(single(w), cfg, sc, BingoPF())
				return fmt.Sprintf("pythia %.3f vs Bingo %.3f", py, bi), py > bi
			},
		},
		{
			ID: "sphinx-spatial-win", Source: "Fig. 1",
			Statement: "On the sphinx3 spatial-footprint workload, Bingo beats SPP",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				w, _ := trace.ByName("482.sphinx3-100B")
				bi := SpeedupOn(single(w), cfg, sc, BingoPF())
				sp := SpeedupOn(single(w), cfg, sc, SPPPF())
				return fmt.Sprintf("Bingo %.3f vs SPP %.3f", bi, sp), bi > sp
			},
		},
		{
			ID: "low-bw-lead", Source: "§6.2.2 / Fig. 8b",
			Statement: "At 150 MTPS Pythia leads SPP, Bingo and MLOP; every prefetcher does worse than at 2400 MTPS",
			Check: func(sc Scale) (string, bool) {
				low := cache.DefaultConfig(1)
				low.DRAM = low.DRAM.WithMTPS(150)
				high := cache.DefaultConfig(1)
				lowG := map[string]float64{}
				ok := true
				for _, pf := range StandardPFs() {
					var l, h []float64
					for _, suite := range trace.Suites() {
						l = append(l, suiteSpeedups(suite, low, sc, pf)...)
						h = append(h, suiteSpeedups(suite, high, sc, pf)...)
					}
					lowG[pf.Name] = stats.Geomean(l)
					if stats.Geomean(l) >= stats.Geomean(h) {
						ok = false
					}
				}
				for _, rival := range []string{"SPP", "Bingo", "MLOP"} {
					if lowG["pythia"] < lowG[rival] {
						ok = false
					}
				}
				return fmt.Sprintf("150 MTPS: pythia %.3f, SPP %.3f, Bingo %.3f, MLOP %.3f",
					lowG["pythia"], lowG["SPP"], lowG["Bingo"], lowG["MLOP"]), ok
			},
		},
		{
			ID: "bw-awareness", Source: "§6.3.3 / Fig. 11",
			Statement: "The bandwidth-oblivious ablation does not beat basic Pythia under constrained bandwidth",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				cfg.DRAM = cfg.DRAM.WithMTPS(300)
				var b, o []float64
				for _, suite := range trace.Suites() {
					b = append(b, suiteSpeedups(suite, cfg, sc, BasicPythiaPF())...)
					o = append(o, suiteSpeedups(suite, cfg, sc, PythiaPF(core.BandwidthObliviousConfig()))...)
				}
				gb, gobl := stats.Geomean(b), stats.Geomean(o)
				return fmt.Sprintf("basic %.3f vs oblivious %.3f at 300 MTPS", gb, gobl), gobl <= gb*1.02
			},
		},
		{
			ID: "strict-ligra", Source: "§6.6.1 / Fig. 15",
			Statement: "Strict reward customization does not lose on the Ligra suite",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				var b, s []float64
				for _, w := range suiteWorkloads(trace.SuiteLigra, sc) {
					b = append(b, SpeedupOn(single(w), cfg, sc, BasicPythiaPF()))
					s = append(s, SpeedupOn(single(w), cfg, sc, PythiaPF(core.StrictConfig())))
				}
				gb, gs := stats.Geomean(b), stats.Geomean(s)
				return fmt.Sprintf("basic %.3f vs strict %.3f", gb, gs), gs >= gb*0.99
			},
		},
		{
			ID: "cphw", Source: "§4.5 / Fig. 21",
			Statement: "Pythia beats the myopic contextual-bandit CP-HW on the single-core geomean",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				var p, c []float64
				for _, suite := range trace.Suites() {
					p = append(p, suiteSpeedups(suite, cfg, sc, BasicPythiaPF())...)
					c = append(c, suiteSpeedups(suite, cfg, sc, CPHWPF())...)
				}
				gp, gc := stats.Geomean(p), stats.Geomean(c)
				return fmt.Sprintf("pythia %.3f vs CP-HW %.3f", gp, gc), gp > gc
			},
		},
		{
			ID: "power7", Source: "Appendix B.5 / Fig. 22",
			Statement: "Pythia beats the POWER7-style adaptive prefetcher on the single-core geomean",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				var p, c []float64
				for _, suite := range trace.Suites() {
					p = append(p, suiteSpeedups(suite, cfg, sc, BasicPythiaPF())...)
					c = append(c, suiteSpeedups(suite, cfg, sc, Power7PF())...)
				}
				gp, gc := stats.Geomean(p), stats.Geomean(c)
				return fmt.Sprintf("pythia %.3f vs POWER7 %.3f", gp, gc), gp > gc
			},
		},
		{
			ID: "unseen", Source: "§6.4 / Fig. 12",
			Statement: "Pythia gains on the unseen CVP-2 traces it was never tuned on",
			Check: func(sc Scale) (string, bool) {
				cfg := cache.DefaultConfig(1)
				var sp []float64
				for _, w := range trace.Representative(trace.SuiteCVP2) {
					sp = append(sp, SpeedupOn(single(w), cfg, sc, BasicPythiaPF()))
				}
				g := stats.Geomean(sp)
				return fmt.Sprintf("geomean %.3f", g), g > 1.0
			},
		},
		{
			ID: "storage", Source: "Table 4",
			Statement: "Pythia's metadata budget is 25.5 KB (QVStore 24 KB + EQ 1.5 KB)",
			Check: func(Scale) (string, bool) {
				qv := core.NewQVStore(core.BasicConfig().Features, 128, 16, 3, 1, 1)
				kb := float64(qv.StorageBits()) / 8 / 1024
				return fmt.Sprintf("QVStore %.1f KB", kb), kb == 24
			},
		},
	}
}

// RunScorecard evaluates every claim at a scale.
func RunScorecard(sc Scale) *stats.Table {
	t := &stats.Table{
		Title:  "Reproduction scorecard: the paper's qualitative claims",
		Header: []string{"claim", "source", "result", "observed"},
	}
	pass := 0
	for _, c := range Scorecard() {
		detail, ok := c.Check(sc)
		verdict := "FAIL"
		if ok {
			verdict = "PASS"
			pass++
		}
		t.AddRow(c.ID, c.Source, verdict, detail)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d claims hold at this scale", pass, len(Scorecard())))
	return t
}
