package harness

import (
	"context"
	"fmt"
	"sort"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/prefetch"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// ExtendedExperiments returns studies beyond the paper's figures: the
// automated design-space exploration methods of §4.3 exercised end to end,
// and ablations of this library's modelling choices (DESIGN.md).
func ExtendedExperiments() []Experiment {
	return []Experiment{
		{"ext-pruning", "Action-list pruning study (§4.3.2 method)", ExtActionPruning},
		{"ext-autotune", "Reward/hyperparameter grid search (§4.3.3 method)", ExtAutoTune},
		{"ext-fdp", "Inherent vs bolt-on bandwidth awareness: Pythia vs FDP-throttled SPP", ExtFDPComparison},
		{"ext-xlat", "Virtual-to-physical translation ablation", ExtTranslation},
		{"ext-fixedpoint", "16-bit fixed-point QVStore ablation", ExtFixedPoint},
		{"ext-longhorizon", "Long-horizon study: paper Table 2 hyperparameters over streamed traces", ExtLongHorizon},
		{"ext-generalization", "Cross-workload generalization matrix: train-on-A / evaluate-on-B speedup delta", ExtGeneralization},
		{"ext-warmstart", "Warm-start study: instructions to converged IPC, warm vs cold", ExtWarmStart},
		{"scorecard", "Reproduction scorecard: the paper's qualitative claims", RunScorecard},
	}
}

// AllExperiments returns the paper experiments followed by the extended
// studies.
func AllExperiments() []Experiment {
	return append(Experiments(), ExtendedExperiments()...)
}

// designWorkloads is the small tuning set used by the design-space studies
// (the paper uses 10 random traces for its grid search).
func designWorkloads() []trace.Workload {
	names := []string{
		"459.GemsFDTD-100B", "410.bwaves-100B", "482.sphinx3-100B",
		"429.mcf-100B", "CC-100B", "cassandra-100B",
	}
	var out []trace.Workload
	for _, n := range names {
		if w, ok := trace.ByName(n); ok {
			out = append(out, w)
		}
	}
	return out
}

func designSpeedup(ctx context.Context, cfg cache.Config, sc Scale, pf PF) (float64, error) {
	var sp []float64
	for _, w := range designWorkloads() {
		s, err := SpeedupOn(ctx, single(w), cfg, sc, pf)
		if err != nil {
			return 0, err
		}
		sp = append(sp, s)
	}
	return stats.Geomean(sp), nil
}

// ExtActionPruning reproduces the §4.3.2 pruning method: drop each action
// from the basic list individually and measure the performance impact;
// actions whose removal does not hurt are pruning candidates.
func ExtActionPruning(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Action-list pruning: performance impact of dropping each action",
		Header: []string{"dropped action", "geomean speedup", "delta vs full list"},
	}
	base, err := designSpeedup(ctx, cfg, sc, BasicPythiaPF())
	if err != nil {
		return nil, err
	}
	t.AddRow("(none)", fmt.Sprintf("%.3f", base), "-")
	full := core.BasicConfig().Actions
	for _, drop := range full {
		if drop == 0 {
			continue // the no-prefetch action is structural
		}
		c := core.BasicConfig()
		c.Name = fmt.Sprintf("pythia-drop%+d", drop)
		c.Actions = nil
		for _, a := range full {
			if a != drop {
				c.Actions = append(c.Actions, a)
			}
		}
		sp, err := designSpeedup(ctx, cfg, sc, PythiaPF(c))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%+d", drop), fmt.Sprintf("%.3f", sp), pct(sp/base-1))
	}
	t.Notes = append(t.Notes,
		"paper §4.3.2: actions whose removal leaves performance unchanged are pruned from [-63,63] down to 16")
	return t, nil
}

// ExtAutoTune reproduces the §4.3.3 method at small scale: a uniform grid
// over hyperparameters evaluated on a tuning suite, reporting the top
// configurations.
func ExtAutoTune(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Hyperparameter grid search (top configurations)",
		Header: []string{"alpha", "gamma", "epsilon", "geomean speedup"},
	}
	type result struct {
		alpha, gamma, eps, sp float64
	}
	var results []result
	for _, alpha := range []float64{0.02, 0.1, 0.3} {
		for _, gamma := range []float64{0.2, 0.556, 0.8} {
			for _, eps := range []float64{0.002, 0.01, 0.05} {
				c := core.BasicConfig()
				c.Name = fmt.Sprintf("pythia-a%v-g%v-e%v", alpha, gamma, eps)
				c.Alpha, c.Gamma, c.Epsilon = alpha, gamma, eps
				sp, err := designSpeedup(ctx, cfg, sc, PythiaPF(c))
				if err != nil {
					return nil, err
				}
				results = append(results, result{alpha, gamma, eps, sp})
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].sp > results[j].sp })
	top := results
	if len(top) > 8 {
		top = top[:8]
	}
	for _, r := range top {
		t.AddRow(fmt.Sprintf("%g", r.alpha), fmt.Sprintf("%g", r.gamma),
			fmt.Sprintf("%g", r.eps), fmt.Sprintf("%.3f", r.sp))
	}
	t.Notes = append(t.Notes,
		"paper §4.3.3: 10x10x10 exponential grid on a 10-trace suite, then full-suite validation of the top 25")
	return t, nil
}

// ExtFDPComparison contrasts inherent system awareness (Pythia) with a
// bolt-on throttle (FDP over SPP), the distinction §1 draws, at normal and
// constrained bandwidth.
func ExtFDPComparison(ctx context.Context, sc Scale) (*stats.Table, error) {
	fdpPF := PF{Name: "FDP(SPP)", L2: func(sys prefetch.System) prefetch.Prefetcher {
		return prefetch.NewFDP(prefetch.DefaultFDPConfig(), prefetch.NewSPP(prefetch.DefaultSPPConfig()), sys)
	}}
	pfs := []PF{SPPPF(), fdpPF, BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Inherent vs bolt-on bandwidth awareness",
		Header: append([]string{"MTPS"}, pfNames(pfs)...),
	}
	for _, mtps := range []int{150, 2400} {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(mtps)
		cells := []string{fmt.Sprint(mtps)}
		for _, pf := range pfs {
			sp, err := designSpeedup(ctx, cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"FDP recovers part of SPP's low-bandwidth loss by throttling after the fact;",
		"Pythia's reward-inherent feedback retains more performance (paper §1, §6.3.3)")
	return t, nil
}

// ExtTranslation measures the virtual-to-physical translation ablation:
// scattered physical frames break cross-page virtual contiguity.
func ExtTranslation(ctx context.Context, sc Scale) (*stats.Table, error) {
	pfs := []PF{SPPPF(), BingoPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Address translation ablation",
		Header: append([]string{"config"}, pfNames(pfs)...),
	}
	for _, translate := range []bool{false, true} {
		cfg := cache.DefaultConfig(1)
		cfg.Translate = translate
		label := "virtual (identity)"
		if translate {
			label = "translated (scattered frames)"
		}
		cells := []string{label}
		for _, pf := range pfs {
			sp, err := designSpeedup(ctx, cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"in-page prefetchers are translation-invariant by construction; deltas survive, page-crossing patterns do not")
	return t, nil
}

// ExtFixedPoint verifies that 16-bit fixed-point Q-value storage (the
// hardware's Table 4 entry width) matches the float reference.
func ExtFixedPoint(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "16-bit fixed-point QVStore vs float reference",
		Header: []string{"config", "geomean speedup"},
	}
	ref, err := designSpeedup(ctx, cfg, sc, BasicPythiaPF())
	if err != nil {
		return nil, err
	}
	t.AddRow("float64 Q-values", fmt.Sprintf("%.3f", ref))
	fp := core.BasicConfig()
	fp.Name = "pythia-fixp"
	fp.FixedPoint = true
	fps, err := designSpeedup(ctx, cfg, sc, PythiaPF(fp))
	if err != nil {
		return nil, err
	}
	t.AddRow("Q8.8 fixed point", fmt.Sprintf("%.3f", fps))
	t.Notes = append(t.Notes, "the paper's hardware stores 16-bit Q-values; parity here validates that width")
	return t, nil
}
