package harness

import (
	"testing"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Shape tests assert the paper's qualitative findings end to end. All
// simulations are seeded and deterministic, so these are stable; they are
// skipped under -short because each runs full (quick-scale) simulations.

func shapeScale() Scale { return ScaleQuick }

func speedups(t *testing.T, names []string, cfg cache.Config, pf PF) []float64 {
	t.Helper()
	var out []float64
	for _, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			t.Fatalf("missing workload %s", n)
		}
		sp, err := SpeedupOn(bg, single(w), cfg, shapeScale(), pf)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sp)
	}
	return out
}

var shapeSet = []string{
	"459.GemsFDTD-100B", "410.bwaves-100B", "482.sphinx3-100B",
	"429.mcf-100B", "CC-100B", "cassandra-100B", "facesim-100B",
}

func TestShapePrefetchingHelpsOverall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := cache.DefaultConfig(1)
	for _, pf := range []PF{SPPPF(), BingoPF(), BasicPythiaPF()} {
		g := stats.Geomean(speedups(t, shapeSet, cfg, pf))
		if g <= 1.0 {
			t.Errorf("%s geomean %.3f: prefetching should help on the representative set", pf.Name, g)
		}
	}
}

func TestShapePythiaWinsGemsFDTD(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fig. 1: the delta-chain workload favors delta learners; Pythia must
	// beat Bingo there (its PC+Delta feature finds the +23/+11 offsets).
	cfg := cache.DefaultConfig(1)
	names := []string{"459.GemsFDTD-100B"}
	py := speedups(t, names, cfg, BasicPythiaPF())[0]
	bingo := speedups(t, names, cfg, BingoPF())[0]
	if py <= bingo {
		t.Errorf("Pythia %.3f should beat Bingo %.3f on GemsFDTD", py, bingo)
	}
}

func TestShapeBingoWinsSphinx(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fig. 1: the spatial-footprint workload favors Bingo over SPP.
	cfg := cache.DefaultConfig(1)
	names := []string{"482.sphinx3-100B"}
	bingo := speedups(t, names, cfg, BingoPF())[0]
	spp := speedups(t, names, cfg, SPPPF())[0]
	if bingo <= 1.0 || spp <= 1.0 {
		t.Errorf("both should gain on sphinx3: bingo %.3f spp %.3f", bingo, spp)
	}
}

func TestShapeBandwidthCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fig. 8b: every prefetcher performs worse (relative to baseline) at
	// 150 MTPS than at 2400 MTPS, and Pythia degrades least.
	lowCfg := cache.DefaultConfig(1)
	lowCfg.DRAM = lowCfg.DRAM.WithMTPS(150)
	highCfg := cache.DefaultConfig(1)

	type res struct {
		name      string
		low, high float64
	}
	var all []res
	for _, pf := range []PF{SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF()} {
		all = append(all, res{
			pf.Name,
			stats.Geomean(speedups(t, shapeSet, lowCfg, pf)),
			stats.Geomean(speedups(t, shapeSet, highCfg, pf)),
		})
	}
	var pythiaLow float64
	for _, r := range all {
		if r.low >= r.high {
			t.Errorf("%s: low-bandwidth %.3f should trail normal %.3f", r.name, r.low, r.high)
		}
		if r.name == "pythia" {
			pythiaLow = r.low
		}
	}
	for _, r := range all {
		if r.name != "pythia" && pythiaLow < r.low {
			t.Errorf("Pythia (%.3f) should lead %s (%.3f) at 150 MTPS", pythiaLow, r.name, r.low)
		}
	}
}

func TestShapeStrictWinsOnGraphWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fig. 15: strict rewards should not lose on the bandwidth-hungry graph
	// suite average.
	cfg := cache.DefaultConfig(1)
	graphs := []string{"CC-100B", "PageRank-100B", "BellmanFord-100B", "BFSCC-100B"}
	basic := stats.Geomean(speedups(t, graphs, cfg, BasicPythiaPF()))
	strict := stats.Geomean(speedups(t, graphs, cfg, PythiaPF(core.StrictConfig())))
	if strict < basic*0.99 {
		t.Errorf("strict %.3f materially below basic %.3f on Ligra set", strict, basic)
	}
}

func TestShapeBandwidthAwarenessMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fig. 11: the bandwidth-oblivious ablation must not beat basic Pythia
	// under constrained bandwidth.
	cfg := cache.DefaultConfig(1)
	cfg.DRAM = cfg.DRAM.WithMTPS(300)
	basic := stats.Geomean(speedups(t, shapeSet, cfg, BasicPythiaPF()))
	obl := stats.Geomean(speedups(t, shapeSet, cfg, PythiaPF(core.BandwidthObliviousConfig())))
	if obl > basic*1.02 {
		t.Errorf("oblivious %.3f should not beat basic %.3f at 300 MTPS", obl, basic)
	}
}

func TestShapeCaseStudyLearnsPlus23(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// §6.5: after running GemsFDTD, the Q-value of +23 for context
	// (PC=0x436a81, delta=0) must dominate small offsets.
	w, _ := trace.ByName("459.GemsFDTD-100B")
	r, err := Run(bg, RunSpec{Mix: single(w), CacheCfg: cache.DefaultConfig(1), Scale: shapeScale(), PF: BasicPythiaPF()})
	if err != nil {
		t.Fatal(err)
	}
	p := r.PFs[0].(*core.Pythia)
	featVal := core.FeaturePCDelta.Value(&core.State{PC: 0x436a81, Delta: 0})
	qv := p.QVStore()
	actions := p.Config().Actions
	qOf := func(off int) float64 {
		for i, a := range actions {
			if a == off {
				return qv.VaultQ(0, featVal, i)
			}
		}
		t.Fatalf("offset %d not in action list", off)
		return 0
	}
	q23 := qOf(23)
	for _, off := range []int{-6, -1, 1, 5} {
		if q23 <= qOf(off) {
			t.Errorf("Q(+23)=%.2f should dominate Q(%+d)=%.2f for the case-study context", q23, off, qOf(off))
		}
	}
}
