package harness

import (
	"context"
	"fmt"
	"sync"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/flight"
	"pythia/internal/policy"
	"pythia/internal/prefetch"
	"pythia/internal/trace"
)

// --- Trained-policy lifecycle ---
//
// The paper frames Pythia's learned policy as programmable state that can
// be customized and reused in silicon without refabrication. This file is
// the software counterpart: TrainPolicyIn runs one training simulation,
// snapshots the learned QVStore into a policy.Envelope, and persists it in
// a policy.Store — so later evaluations warm-start from the envelope
// (RunSpec.WarmStart) instead of re-paying the training ramp, and a repeat
// training request is a store hit with zero simulations.

var (
	policyStoreMu  sync.Mutex
	policyStoreVal *policy.Store
)

// SetPolicyStore points TrainPolicy at a persistent policy store rooted at
// dir and returns it. An empty dir disables persistence (the default);
// training then always simulates.
func SetPolicyStore(dir string) *policy.Store {
	policyStoreMu.Lock()
	defer policyStoreMu.Unlock()
	if dir == "" {
		policyStoreVal = nil
		return nil
	}
	policyStoreVal = policy.Open(dir)
	return policyStoreVal
}

// PolicyStore returns the active policy store, or nil when disabled.
func PolicyStore() *policy.Store {
	policyStoreMu.Lock()
	defer policyStoreMu.Unlock()
	return policyStoreVal
}

// TrainSpec describes one policy-training run: a single-core simulation of
// one workload with a Pythia configuration, whose learned Q-table is the
// artifact.
type TrainSpec struct {
	Workload trace.Workload
	CacheCfg cache.Config
	Scale    Scale
	Config   core.Config
}

// Provenance renders the spec's training identity: the workload's display
// name and canonical trace key, the scale key, and the agent seed.
func (ts TrainSpec) Provenance() policy.Provenance {
	return policy.Provenance{
		Workload: ts.Workload.Name,
		Trace:    ts.Workload.Key(ts.Scale.TraceLen),
		Scale:    ts.Scale.Key(),
		Seed:     ts.Config.Seed,
		Cores:    1,
	}
}

// PolicyID returns the content address the trained policy will carry —
// deterministic across processes, so any store populated by one run
// serves every later identical request.
func (ts TrainSpec) PolicyID() string {
	return policy.ID(ts.Config, ts.Provenance())
}

// trainFlight deduplicates concurrent identical training runs when no
// store is configured (a configured store brings its own singleflight).
var trainFlight flight.Group[policy.Envelope]

// TrainPolicyIn trains the policy described by ts, or serves it from st.
// A store hit (or a concurrent duplicate) costs zero simulations — hit
// reports which, so callers can prove the accounting via SimCount deltas.
// st may be nil: training then always simulates (but concurrent identical
// requests still share one run). The training run itself goes through Run
// with a TrainPolicy post-run hook, composing with RunCached's
// hook-exclusion rule rather than bypassing it: a training run is never
// served from, or leaked into, the simulation result caches under a
// cold-run key.
func TrainPolicyIn(ctx context.Context, st *policy.Store, ts TrainSpec) (policy.Envelope, bool, error) {
	if err := ts.Config.Validate(); err != nil {
		return policy.Envelope{}, false, fmt.Errorf("harness: train %s: %w", ts.Workload.Name, err)
	}
	train := func() (policy.Envelope, error) {
		var env policy.Envelope
		var envErr error
		spec := RunSpec{
			Mix:      single(ts.Workload),
			CacheCfg: ts.CacheCfg,
			Scale:    ts.Scale,
			PF:       PythiaPF(ts.Config),
			TrainPolicy: func(pfs []prefetch.Prefetcher) {
				for _, p := range pfs {
					if py, ok := p.(*core.Pythia); ok {
						prov := ts.Provenance()
						prov.Sims = 1
						env, envErr = policy.New(py, prov)
						return
					}
				}
				envErr = fmt.Errorf("harness: train %s: run produced no Pythia agent", ts.Workload.Name)
			},
		}
		if _, err := Run(ctx, spec); err != nil {
			return policy.Envelope{}, err
		}
		if envErr != nil {
			return policy.Envelope{}, envErr
		}
		return env, nil
	}
	if st == nil {
		env, _, err := trainFlight.Do(ts.PolicyID(), train)
		return env, false, err
	}
	return st.GetOrTrain(ts.PolicyID(), train)
}

// TrainPolicy is TrainPolicyIn against the store configured with
// SetPolicyStore (which may be none).
func TrainPolicy(ctx context.Context, ts TrainSpec) (policy.Envelope, bool, error) {
	return TrainPolicyIn(ctx, PolicyStore(), ts)
}
