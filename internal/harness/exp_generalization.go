package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/policy"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// genMatrixWorkloads is the generalization study set: one streaming-
// friendly, one stencil-regular and one irregular graph trace — the
// pattern classes across which a learned policy's transferability differs
// most. The scale's per-suite cap bounds the matrix edge so the study
// smoke-tests cheaply at small scales.
func genMatrixWorkloads(sc Scale) ([]trace.Workload, error) {
	names := []string{"459.GemsFDTD-100B", "410.bwaves-100B", "CC-100B"}
	if sc.WorkloadsPerSuite > 0 && len(names) > sc.WorkloadsPerSuite {
		names = names[:sc.WorkloadsPerSuite]
	}
	ws := make([]trace.Workload, len(names))
	for i, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: generalization workload %s missing", n)
		}
		ws[i] = w
	}
	return ws, nil
}

// genTrials is how many independent trials populate each matrix cell,
// varying the agent seed (RNG and tile-shifting constants) between
// trials. Per-cell dispersion is reported alongside the mean: a single
// seed's delta understates its own uncertainty (cf. the Su et al. note in
// PAPERS.md), and transfer deltas are exactly the kind of small effect a
// bare mean misrepresents.
func genTrials(sc Scale) int {
	if sc.WorkloadsPerSuite > 0 && sc.WorkloadsPerSuite <= 2 {
		return 2
	}
	return 3
}

// genConfig returns the trial's agent configuration: the basic Table 2
// Pythia with a per-trial seed. Train and evaluate always share the exact
// configuration — the policy envelope's fingerprint enforces it. The name
// carries the seed because PF.Name is the agent's identity in cacheKey
// (and therefore in the persistent result store): same-named configs
// differing only in seed would collide there, serving one trial's cold
// run to every trial — and poisoning the seed-1 entries the paper
// figures share.
func genConfig(trial int) core.Config {
	c := core.BasicConfig()
	c.Seed = int64(1 + trial)
	c.Name = fmt.Sprintf("pythia-seed%d", c.Seed)
	return c
}

// ExtGeneralization runs the cross-workload generalization matrix the
// policy lifecycle enables: train Pythia on workload A (persisting the
// policy), warm-start an evaluation on workload B from it, and report the
// speedup delta against training from scratch on B — for every (A, B)
// pair. The diagonal measures self-transfer (the warm agent resumes its
// own converged policy); off-diagonal cells measure how much of one
// workload's learned policy carries to another, the paper's
// "customizable silicon" story quantified.
//
// Each cell aggregates genTrials independent (seed-varied) trials as
// mean ± sample standard deviation of
//
//	Δ = speedup(B | policy trained on A) − speedup(B | trained from scratch)
//
// With a policy store configured (SetPolicyStore), training runs are
// reused across invocations; re-rendering a populated matrix performs
// zero training simulations.
func ExtGeneralization(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	ws, err := genMatrixWorkloads(sc)
	if err != nil {
		return nil, err
	}
	trials := genTrials(sc)
	n := len(ws)

	// Phase 1: train one policy per (train workload, trial seed). The
	// policy store (if configured) deduplicates across invocations; the
	// in-process singleflight deduplicates within one.
	envs := make([]policy.Envelope, n*trials)
	err = RunAll(ctx, n*trials, func(i int) error {
		a, tr := i/trials, i%trials
		env, err := trainBestEffort(ctx, TrainSpec{Workload: ws[a], CacheCfg: cfg, Scale: sc, Config: genConfig(tr)})
		envs[i] = env
		return err
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: every (train A, eval B, trial) cell in parallel. Baseline
	// and cold runs recur across cells and deduplicate through RunCached.
	deltas := make([]float64, n*n*trials)
	err = RunAll(ctx, n*n*trials, func(i int) error {
		a, b, tr := i/(n*trials), (i/trials)%n, i%trials
		mix := single(ws[b])
		pf := PythiaPF(genConfig(tr))
		base, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: Baseline()})
		if err != nil {
			return err
		}
		cold, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf})
		if err != nil {
			return err
		}
		env := envs[a*trials+tr]
		warm, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf, WarmStart: &env})
		if err != nil {
			return err
		}
		deltas[i] = Speedup(warm, base) - Speedup(cold, base)
		return nil
	})
	if err != nil {
		return nil, err
	}

	header := []string{"train \\ eval"}
	for _, w := range ws {
		header = append(header, w.Base)
	}
	t := &stats.Table{
		Title:  "Generalization matrix: warm-start speedup delta vs from-scratch training (mean ± sd over seeds)",
		Header: header,
	}
	for a := 0; a < n; a++ {
		row := []string{ws[a].Base}
		for b := 0; b < n; b++ {
			cell := deltas[(a*n+b)*trials : (a*n+b+1)*trials]
			row = append(row, fmt.Sprintf("%+.3f ±%.3f", stats.Mean(cell), stats.Stddev(cell)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials per cell (agent seeds 1..%d); Δ > 0 means the transferred policy beat training from scratch", trials, trials),
		"diagonal = self-transfer (resuming a converged policy); off-diagonal = cross-workload transfer",
		"train once, evaluate everywhere: with a populated policy store this matrix re-renders with zero training simulations")
	return t, nil
}
