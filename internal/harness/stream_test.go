package harness

import (
	"testing"

	"pythia/internal/cache"
)

// streamScale is tinyScale with streaming delivery switched on.
var streamScale = Scale{
	Warmup: tinyScale.Warmup, Sim: tinyScale.Sim, TraceLen: tinyScale.TraceLen,
	WorkloadsPerSuite: tinyScale.WorkloadsPerSuite, HeteroMixes: tinyScale.HeteroMixes,
	StreamChunk: 4096,
}

// useTempTraceCache points streaming runs at a per-test cache directory.
func useTempTraceCache(t *testing.T) {
	t.Helper()
	SetTraceCacheDir(t.TempDir())
	t.Cleanup(func() { SetTraceCacheDir("") })
}

// TestStreamingRunMatchesMaterialized is the acceptance gate for the
// rewired harness: a streamed simulation must produce exactly the result
// of a materialized one — same IPC, same per-core statistics, same DRAM
// traffic — because the pipeline delivers the identical record sequence.
// This is what keeps every experiment table byte-identical whichever
// delivery path a scale selects.
func TestStreamingRunMatchesMaterialized(t *testing.T) {
	useTempTraceCache(t)
	mix := tinyMix(t)
	cfg := cache.DefaultConfig(1)
	for _, pf := range []PF{Baseline(), BasicPythiaPF()} {
		mat, err := Run(bg, RunSpec{Mix: mix, CacheCfg: cfg, Scale: tinyScale, PF: pf})
		if err != nil {
			t.Fatal(err)
		}
		str, err := Run(bg, RunSpec{Mix: mix, CacheCfg: cfg, Scale: streamScale, PF: pf})
		if err != nil {
			t.Fatal(err)
		}
		if mat.IPC[0] != str.IPC[0] {
			t.Errorf("%s: IPC %v materialized vs %v streamed", pf.Name, mat.IPC[0], str.IPC[0])
		}
		if mat.Stats[0] != str.Stats[0] {
			t.Errorf("%s: stats diverge:\nmaterialized %+v\nstreamed     %+v", pf.Name, mat.Stats[0], str.Stats[0])
		}
		if mat.DRAM != str.DRAM {
			t.Errorf("%s: DRAM stats diverge", pf.Name)
		}
		if mat.Buckets != str.Buckets {
			t.Errorf("%s: bandwidth buckets diverge", pf.Name)
		}
	}
}

// TestStreamingMultiCoreReplay exercises the Reset path end to end: a
// 2-core homogeneous mix replays its streamed trace for the straggler
// core, and must match the materialized run exactly.
func TestStreamingMultiCoreReplay(t *testing.T) {
	useTempTraceCache(t)
	w := tinyMix(t).Workloads[0]
	mix := tinyMix(t)
	mix.Workloads = append(mix.Workloads, w)
	mix.Name = w.Name + "-homo2"
	cfg := cache.DefaultConfig(2)
	mat, err := Run(bg, RunSpec{Mix: mix, CacheCfg: cfg, Scale: tinyScale, PF: BasicPythiaPF()})
	if err != nil {
		t.Fatal(err)
	}
	str, err := Run(bg, RunSpec{Mix: mix, CacheCfg: cfg, Scale: streamScale, PF: BasicPythiaPF()})
	if err != nil {
		t.Fatal(err)
	}
	for c := range mat.IPC {
		if mat.IPC[c] != str.IPC[c] {
			t.Errorf("core %d: IPC %v materialized vs %v streamed", c, mat.IPC[c], str.IPC[c])
		}
		if mat.Stats[c] != str.Stats[c] {
			t.Errorf("core %d stats diverge", c)
		}
	}
}

// TestStreamingDeterministicAcrossWorkerCounts extends the harness's core
// determinism guarantee to the streaming path: tables rendered from
// streamed traces are byte-identical at any worker count (workers race at
// the trace cache through the population singleflight).
func TestStreamingDeterministicAcrossWorkerCounts(t *testing.T) {
	useTempTraceCache(t)
	defer SetWorkers(0)
	render := func(workers int) string {
		SetWorkers(workers)
		ResetCaches()
		defer ResetCaches()
		return mustTable(t)(ExtLongHorizon(bg, streamScale)).Render()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("long-horizon table differs between 1 and 8 workers:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestScaleLongShape pins the paper-horizon scale's invariants: at least
// 50M measured instructions per core, streaming delivery on, and a trace
// long enough that materializing it (~192 MB at 24 B/record) would dwarf
// the chunk ring it actually uses.
func TestScaleLongShape(t *testing.T) {
	if ScaleLong.Sim < 50_000_000 {
		t.Errorf("ScaleLong.Sim = %d, want >= 50M", ScaleLong.Sim)
	}
	if ScaleLong.StreamChunk <= 0 {
		t.Error("ScaleLong must stream")
	}
	if ScaleLong.TraceLen < 4_000_000 {
		t.Errorf("ScaleLong.TraceLen = %d: too short to exceed the materialized ceiling", ScaleLong.TraceLen)
	}
	sc, err := ScaleByName("long")
	if err != nil || sc != ScaleLong {
		t.Errorf("ScaleByName(long) = %+v, %v", sc, err)
	}
}
