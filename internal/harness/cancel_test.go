package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// TestRunCanceledPromptlyAndReleasesSlots: canceling a long run returns
// ctx.Err() well before the simulation would finish, and the worker slot
// it held is released — a fresh simulation runs to completion afterwards.
func TestRunCanceledPromptlyAndReleasesSlots(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	long := Scale{Warmup: 1_000_000, Sim: 500_000_000, TraceLen: 100_000}
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: long, PF: Baseline()}

	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Run(ctx, spec)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the run get in flight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return promptly")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("cancellation took %v", d)
	}

	// The slot must be free again: a small run completes normally.
	if _, err := Run(bg, RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()}); err != nil {
		t.Fatalf("run after cancellation failed: %v", err)
	}
}

// TestRunCachedDoesNotMemoizeErrors: a canceled RunCached must not poison
// the memoization — the next call with a live context simulates afresh and
// succeeds.
func TestRunCachedDoesNotMemoizeErrors(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()}
	canceled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := RunCached(canceled, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCached under canceled ctx returned %v", err)
	}
	r, err := RunCached(bg, spec)
	if err != nil {
		t.Fatalf("retry after canceled RunCached failed: %v", err)
	}
	if len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Fatalf("retry produced no result: %+v", r)
	}
}

// TestRunCachedStripsLivePFs: memoized results must not pin prefetcher
// state (a Pythia agent retains its whole QVStore); only direct Run
// callers see live PFs.
func TestRunCachedStripsLivePFs(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: BasicPythiaPF()}
	direct, err := Run(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.PFs) == 0 {
		t.Fatal("direct Run lost its live PFs")
	}
	for _, call := range []string{"first", "memoized"} {
		r, err := RunCached(bg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.PFs) != 0 {
			t.Errorf("%s RunCached result carries %d live PFs, want 0", call, len(r.PFs))
		}
	}
}

// TestRunAllStopsOnError: after a worker reports an error, RunAll stops
// dispatching further indices and returns that error.
func TestRunAllStopsOnError(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	boom := errors.New("cell failed")
	var calls atomic.Int32
	err := RunAll(bg, 1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunAll returned %v, want the worker error", err)
	}
	if n := calls.Load(); n > 100 {
		t.Errorf("RunAll dispatched %d calls after an early error", n)
	}
}

// TestRunAllHonorsContext: a pre-canceled context runs nothing.
func TestRunAllHonorsContext(t *testing.T) {
	canceled, cancel := context.WithCancel(bg)
	cancel()
	var calls atomic.Int32
	err := RunAll(canceled, 100, func(int) error { calls.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll returned %v", err)
	}
	if calls.Load() != 0 {
		t.Errorf("RunAll ran %d calls under a canceled context", calls.Load())
	}
}

// TestTracesForKeyIncludesSeed is the regression test for the in-memory
// materialized-trace cache key: it used to key by Name|length, so two
// same-named workloads differing only in generator seed collided and one
// silently simulated the other's records. The key is Workload.Key now.
func TestTracesForKeyIncludesSeed(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	base, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	reseeded := base
	origSpec := base.Spec
	reseeded.Spec = func() trace.Spec {
		s := origSpec()
		s.Seed += 1
		return s
	}

	const n = 5000
	ta, err := tracesFor(bg, trace.Mix{Name: "m", Workloads: []trace.Workload{base}}, n)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tracesFor(bg, trace.Mix{Name: "m", Workloads: []trace.Workload{reseeded}}, n)
	if err != nil {
		t.Fatal(err)
	}
	if ta[0] == tb[0] {
		t.Fatal("same-named workloads with different seeds share a cached trace")
	}
	differs := len(ta[0].Records) != len(tb[0].Records)
	for i := 0; !differs && i < len(ta[0].Records); i++ {
		differs = ta[0].Records[i] != tb[0].Records[i]
	}
	if !differs {
		t.Fatal("reseeded workload produced identical records (seed not honored)")
	}
}

// TestDynSemaShrinkGrowWakesWaiters: shrinking the limit below the current
// occupancy and then growing it again must wake blocked acquirers — the
// release-side Signal plus the setLimit Broadcast may not strand anyone.
func TestDynSemaShrinkGrowWakesWaiters(t *testing.T) {
	s := newDynSema(2)
	if err := s.acquire(bg); err != nil {
		t.Fatal(err)
	}
	if err := s.acquire(bg); err != nil {
		t.Fatal(err)
	}
	s.setLimit(1) // now over-committed: inUse 2 > cap 1

	const waiters = 4
	var acquired atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.acquire(bg); err == nil {
				acquired.Add(1)
				s.release()
			}
		}()
	}
	// While shrunk and fully held, nobody may get in.
	time.Sleep(50 * time.Millisecond)
	if acquired.Load() != 0 {
		t.Fatalf("%d waiters acquired while over-committed", acquired.Load())
	}
	// Release one slot: still over the shrunk limit (inUse 1 == cap 1).
	s.release()
	time.Sleep(50 * time.Millisecond)
	if acquired.Load() != 0 {
		t.Fatalf("%d waiters acquired at the shrunk limit", acquired.Load())
	}
	// Growing the limit must wake everyone blocked.
	s.setLimit(4)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters still blocked after the limit grew")
	}
	if acquired.Load() != waiters {
		t.Fatalf("%d of %d waiters acquired", acquired.Load(), waiters)
	}
	s.release()
}

// TestDynSemaAcquireCanceledWhileWaiting: a waiter blocked on a full
// semaphore unblocks with ctx.Err() when its context is canceled, without
// consuming a slot.
func TestDynSemaAcquireCanceledWhileWaiting(t *testing.T) {
	s := newDynSema(1)
	if err := s.acquire(bg); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() { errc <- s.acquire(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled acquire never returned")
	}
	s.release()
	// The canceled waiter must not have consumed the freed slot.
	if err := s.acquire(bg); err != nil {
		t.Fatal(err)
	}
	s.release()
}
