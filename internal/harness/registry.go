package harness

import (
	"fmt"
	"sort"

	"pythia/internal/core"
)

// PFByName resolves a prefetcher configuration by name for the CLIs.
func PFByName(name string) (PF, error) {
	all := map[string]func() PF{
		"nopref":          Baseline,
		"stride":          StridePF,
		"spp":             SPPPF,
		"bingo":           BingoPF,
		"mlop":            MLOPPF,
		"dspatch":         DSPatchPF,
		"ppf":             PPFPF,
		"pythia":          BasicPythiaPF,
		"pythia-paper":    func() PF { return PythiaPF(core.PaperHorizonConfig()) },
		"pythia-strict":   func() PF { return PythiaPF(core.StrictConfig()) },
		"pythia-bwobl":    func() PF { return PythiaPF(core.BandwidthObliviousConfig()) },
		"cphw":            CPHWPF,
		"power7":          Power7PF,
		"ipcp":            IPCPPF,
		"stride+streamer": StrideStreamerPF,
		"stride+pythia":   StridePythiaPF,
	}
	if f, ok := all[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return PF{}, fmt.Errorf("unknown prefetcher %q (available: %v)", name, names)
}

// PythiaConfigByName resolves a Pythia configuration by name for the
// policy-training entry points (pythia-train, the serve training API).
// Unlike PFByName this returns the raw core.Config, which training needs
// for provenance and fingerprinting.
func PythiaConfigByName(name string) (core.Config, error) {
	all := map[string]func() core.Config{
		"pythia":        core.BasicConfig,
		"pythia-paper":  core.PaperHorizonConfig,
		"pythia-strict": core.StrictConfig,
		"pythia-bwobl":  core.BandwidthObliviousConfig,
	}
	if f, ok := all[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return core.Config{}, fmt.Errorf("unknown Pythia configuration %q (available: %v)", name, names)
}

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return ScaleQuick, nil
	case "default", "":
		return ScaleDefault, nil
	case "full":
		return ScaleFull, nil
	case "long":
		return ScaleLong, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (quick|default|full|long)", name)
	}
}
