package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pythia/internal/core"
)

// PFByName resolves a prefetcher configuration by name for the CLIs.
func PFByName(name string) (PF, error) {
	all := map[string]func() PF{
		"nopref":          Baseline,
		"stride":          StridePF,
		"spp":             SPPPF,
		"bingo":           BingoPF,
		"mlop":            MLOPPF,
		"dspatch":         DSPatchPF,
		"ppf":             PPFPF,
		"pythia":          BasicPythiaPF,
		"pythia-paper":    func() PF { return PythiaPF(core.PaperHorizonConfig()) },
		"pythia-strict":   func() PF { return PythiaPF(core.StrictConfig()) },
		"pythia-bwobl":    func() PF { return PythiaPF(core.BandwidthObliviousConfig()) },
		"cphw":            CPHWPF,
		"power7":          Power7PF,
		"ipcp":            IPCPPF,
		"stride+streamer": StrideStreamerPF,
		"stride+pythia":   StridePythiaPF,
	}
	if f, ok := all[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return PF{}, fmt.Errorf("unknown prefetcher %q (available: %v)", name, names)
}

// PythiaConfigByName resolves a Pythia configuration by name for the
// policy-training entry points (pythia-train, the serve training API).
// Unlike PFByName this returns the raw core.Config, which training needs
// for provenance and fingerprinting.
func PythiaConfigByName(name string) (core.Config, error) {
	all := map[string]func() core.Config{
		"pythia":        core.BasicConfig,
		"pythia-paper":  core.PaperHorizonConfig,
		"pythia-strict": core.StrictConfig,
		"pythia-bwobl":  core.BandwidthObliviousConfig,
	}
	if f, ok := all[name]; ok {
		return f(), nil
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return core.Config{}, fmt.Errorf("unknown Pythia configuration %q (available: %v)", name, names)
}

// ScaleByName resolves a scale preset, or a parametric "custom:" scale.
// Parametric scales make the name self-describing: any process that can
// parse the name reconstructs the identical Scale, so a multi-process
// fleet never has to ship ExtraScales configuration to its workers for
// journaled jobs to be claimable (see internal/serve's worker loop).
func ScaleByName(name string) (Scale, error) {
	if strings.HasPrefix(name, customScalePrefix) {
		return ParseCustomScale(name)
	}
	switch name {
	case "quick":
		return ScaleQuick, nil
	case "default", "":
		return ScaleDefault, nil
	case "full":
		return ScaleFull, nil
	case "long":
		return ScaleLong, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (quick|default|full|long|custom:...)", name)
	}
}

// customScalePrefix marks a parametric scale name.
const customScalePrefix = "custom:"

// ParseCustomScale parses a parametric scale name of the form
//
//	custom:warmup=300000,sim=1000000,tracelen=120000,wps=2,mixes=2,chunk=0
//
// Every field is optional; omitted fields default to a small smoke-test
// footprint (warmup 50k, sim 200k, tracelen 40k, one workload, one mix,
// materialized delivery). The name is the scale: two processes given the
// same string always resolve the same Scale, and two distinct strings
// address distinct store entries (Scale.Key feeds the fingerprint), which
// is what lets load generators mint deliberately uncacheable jobs.
func ParseCustomScale(name string) (Scale, error) {
	sc := Scale{Warmup: 50_000, Sim: 200_000, TraceLen: 40_000, WorkloadsPerSuite: 1, HeteroMixes: 1}
	spec := strings.TrimPrefix(name, customScalePrefix)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Scale{}, fmt.Errorf("bad custom scale field %q (want key=value)", part)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		if err != nil || n < 0 {
			return Scale{}, fmt.Errorf("bad custom scale value in %q", part)
		}
		switch strings.TrimSpace(k) {
		case "warmup":
			sc.Warmup = n
		case "sim":
			sc.Sim = n
		case "tracelen":
			sc.TraceLen = int(n)
		case "wps":
			sc.WorkloadsPerSuite = int(n)
		case "mixes":
			sc.HeteroMixes = int(n)
		case "chunk":
			sc.StreamChunk = int(n)
		default:
			return Scale{}, fmt.Errorf("unknown custom scale field %q (warmup|sim|tracelen|wps|mixes|chunk)", k)
		}
	}
	if sc.Sim <= 0 || sc.TraceLen <= 0 {
		return Scale{}, fmt.Errorf("custom scale %q needs sim > 0 and tracelen > 0", name)
	}
	return sc, nil
}
