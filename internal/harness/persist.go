package harness

import (
	"fmt"
	"sync"

	"pythia/internal/cache"
	"pythia/internal/dram"
	"pythia/internal/results"
	"pythia/internal/stats"
)

// --- Persistent result store integration ---
//
// The in-memory memoization in RunCached dies with the process; pointing
// the harness at a results.Store makes simulation results survive
// restarts, so pythia-bench, pythia-serve, tests and examples sharing one
// store directory reuse each other's work. Entries are keyed by the same
// outcome-determining fields as the in-memory cache plus trace.GenVersion
// (via results.Fingerprint), so generator changes invalidate them
// automatically.

var (
	resultStoreMu  sync.Mutex
	resultStoreVal *results.Store
)

// SetResultStore points RunCached at a persistent result store rooted at
// dir and returns it. An empty dir disables persistence (the default).
// It affects subsequent runs only; in-memory memoization is unchanged.
func SetResultStore(dir string) *results.Store {
	resultStoreMu.Lock()
	defer resultStoreMu.Unlock()
	if dir == "" {
		resultStoreVal = nil
		return nil
	}
	resultStoreVal = results.Open(dir)
	return resultStoreVal
}

// ResultStore returns the active persistent store, or nil when disabled.
func ResultStore() *results.Store {
	resultStoreMu.Lock()
	defer resultStoreMu.Unlock()
	return resultStoreVal
}

// Key returns the canonical identity string of everything in a Scale that
// determines simulation outcomes. StreamChunk is excluded for the same
// reason it is absent from cacheKey: streamed and materialized delivery
// produce identical records.
func (sc Scale) Key() string {
	return fmt.Sprintf("w%d|s%d|t%d|wps%d|hm%d",
		sc.Warmup, sc.Sim, sc.TraceLen, sc.WorkloadsPerSuite, sc.HeteroMixes)
}

// runPayload is the persisted form of a RunResult: every core's full
// counter set (the per-trial statistics), not just the aggregates derived
// from them. Live prefetcher objects (RunResult.PFs) are inherently
// process-local and are not persisted; consumers that introspect policies
// already guard for their absence.
type runPayload struct {
	Name    string                    `json:"name"`
	IPC     []float64                 `json:"ipc"`
	Stats   []cache.CoreStats         `json:"core_stats"`
	Buckets [dram.BucketCount]float64 `json:"dram_buckets"`
	DRAM    dram.Stats                `json:"dram"`
}

func payloadOf(r RunResult) runPayload {
	return runPayload{Name: r.Name, IPC: r.IPC, Stats: r.Stats, Buckets: r.Buckets, DRAM: r.DRAM}
}

func (p runPayload) result() RunResult {
	return RunResult{Name: p.Name, IPC: p.IPC, Stats: p.Stats, Buckets: p.Buckets, DRAM: p.DRAM}
}

// runKey addresses one simulation in the persistent store.
func runKey(spec RunSpec) results.Key {
	return results.Key{
		Kind:        "run",
		Name:        fmt.Sprintf("%s|%s", spec.Mix.Name, spec.PF.Name),
		Fingerprint: results.Fingerprint(cacheKey(spec)),
	}
}

// ExperimentKey addresses a rendered experiment table in the persistent
// store (pythia-serve's unit of reuse).
func ExperimentKey(expID string, sc Scale) results.Key {
	return results.Key{
		Kind:        "experiment",
		Name:        expID,
		Fingerprint: results.Fingerprint("experiment", expID, sc.Key()),
	}
}

// ExperimentPayload is the persisted form of one experiment run: the
// rendered table plus provenance (how much simulation produced it).
type ExperimentPayload struct {
	ID    string       `json:"id"`
	Title string       `json:"title"`
	Scale string       `json:"scale"`
	Table *stats.Table `json:"table"`
	// Sims is the number of simulations executed to produce the table
	// (0 when every underlying run was itself served from cache).
	Sims int64 `json:"sims"`
	// Seconds is the wall time of the producing run.
	Seconds float64 `json:"seconds"`
}

// loadPersisted consults the persistent store for a spec. Specs carrying a
// live-state hook (Hook or TrainPolicy) are never persisted or restored:
// hooks exist to observe live simulation state (Q-value watches, policy
// snapshots), which a disk hit cannot provide. RunCached already bypasses
// every cache layer for such specs; the check here keeps the rule local
// too. Warm-started specs persist normally — their policy's content
// address is part of the key.
func loadPersisted(spec RunSpec) (RunResult, bool) {
	st := ResultStore()
	if st == nil || spec.Hook != nil || spec.TrainPolicy != nil {
		return RunResult{}, false
	}
	var p runPayload
	if !st.Get(runKey(spec), &p) {
		return RunResult{}, false
	}
	return p.result(), true
}

// storePersisted writes a completed run to the persistent store
// (best-effort: a full disk degrades to "no reuse").
func storePersisted(spec RunSpec, r RunResult) {
	st := ResultStore()
	if st == nil || spec.Hook != nil || spec.TrainPolicy != nil {
		return
	}
	_ = st.Put(runKey(spec), payloadOf(r))
}
