package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Experiment is one reproducible table/figure from the paper.
type Experiment struct {
	// ID is the paper's label ("fig9a", "table4", ...).
	ID string
	// Title describes what the experiment shows.
	Title string
	// Run executes the experiment at a scale and renders the result. A
	// simulation failure (or a canceled ctx) aborts the experiment and
	// surfaces here as an error; a nil error guarantees a complete table.
	Run func(ctx context.Context, sc Scale) (*stats.Table, error)
}

// Experiments returns every experiment in the paper's presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Basic Pythia configuration (Table 2)", Table2BasicConfig},
		{"table4", "Pythia storage overhead (Table 4)", Table4Storage},
		{"table7", "Evaluated prefetcher configurations (Table 7)", Table7PrefetcherConfigs},
		{"table8", "Area and power overhead (Table 8)", Table8AreaPower},
		{"fig1", "Motivation: coverage/overprediction/performance on six workloads (Fig. 1)", Fig1Motivation},
		{"fig7", "Coverage and overprediction per suite, single-core (Fig. 7)", Fig7Coverage},
		{"fig8a", "Speedup vs core count (Fig. 8a)", Fig8aCores},
		{"fig8b", "Speedup vs DRAM bandwidth (Fig. 8b)", Fig8bBandwidth},
		{"fig8c", "Speedup vs LLC size (Fig. 8c)", Fig8cLLCSize},
		{"fig8d", "Multi-level prefetching vs DRAM bandwidth (Fig. 8d)", Fig8dMultiLevel},
		{"fig9a", "Per-suite speedup, single-core (Fig. 9a)", Fig9aSingleCore},
		{"fig9b", "Prefetcher combinations, single-core (Fig. 9b)", Fig9bCombinations},
		{"fig10a", "Per-suite speedup, four-core (Fig. 10a)", Fig10aFourCore},
		{"fig10b", "Prefetcher combinations, four-core (Fig. 10b)", Fig10bCombinations},
		{"fig11", "Bandwidth-oblivious Pythia vs basic (Fig. 11)", Fig11BandwidthOblivious},
		{"fig12", "Performance on unseen CVP-2 traces (Fig. 12)", Fig12Unseen},
		{"fig13", "Q-value learning curves, GemsFDTD case study (Fig. 13)", Fig13QValueCurves},
		{"fig14", "Bandwidth-usage buckets and performance on Ligra-CC (Fig. 14)", Fig14BandwidthBuckets},
		{"fig15", "Basic vs strict Pythia on Ligra (Fig. 15)", Fig15StrictPythia},
		{"fig16", "Basic vs feature-optimized Pythia on SPEC06 (Fig. 16)", Fig16FeatureOpt},
		{"fig17", "Single-core performance line graph (Fig. 17)", Fig17LineGraph1C},
		{"fig18", "Four-core performance line graph (Fig. 18)", Fig18LineGraph4C},
		{"fig19", "Feature-combination design space (Fig. 19)", Fig19FeatureSweep},
		{"fig20", "Hyperparameter sensitivity (Fig. 20)", Fig20Hyperparams},
		{"fig21", "Pythia vs context prefetcher CP-HW (Fig. 21)", Fig21ContextPrefetcher},
		{"fig22", "Pythia vs POWER7 adaptive prefetcher (Fig. 22)", Fig22Power7},
		{"fig23", "Sensitivity to warmup length (Fig. 23)", Fig23Warmup},
	}
}

// ExperimentByID finds an experiment, including the extended studies.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// suiteSpeedups runs pf over a suite's workloads (1-core) in parallel and
// returns per-workload speedups in workload order.
func suiteSpeedups(ctx context.Context, suite string, cfg cache.Config, sc Scale, pf PF) ([]float64, error) {
	ws := suiteWorkloads(suite, sc)
	out := make([]float64, len(ws))
	err := RunAll(ctx, len(ws), func(i int) error {
		sp, err := SpeedupOn(ctx, single(ws[i]), cfg, sc, pf)
		out[i] = sp
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// coverageOverpred returns the artifact-formula coverage and overprediction
// of a prefetcher on one 1-core workload.
func coverageOverpred(ctx context.Context, w trace.Workload, cfg cache.Config, sc Scale, pf PF) (cov, over float64, err error) {
	mix := single(w)
	base, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: Baseline()})
	if err != nil {
		return 0, 0, err
	}
	run, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf})
	if err != nil {
		return 0, 0, err
	}
	cov = stats.Coverage(base.SumLLCLoadMisses(), run.SumLLCLoadMisses())
	over = stats.Overprediction(base.SumDRAMReads(), run.SumDRAMReads())
	return cov, over, nil
}

// mixesFor builds the standard multi-core mix list at a scale.
func mixesFor(cores int, sc Scale) []trace.Mix {
	var mixes []trace.Mix
	var pool []trace.Workload
	for _, s := range trace.Suites() {
		ws := suiteWorkloads(s, sc)
		pool = append(pool, ws...)
		for _, w := range ws {
			mixes = append(mixes, trace.HomogeneousMix(w, cores))
		}
	}
	mixes = append(mixes, trace.HeterogeneousMixes(pool, cores, sc.HeteroMixes, 42)...)
	return mixes
}

// mixSpeedups runs pf over a mix list in parallel, preserving mix order.
func mixSpeedups(ctx context.Context, mixes []trace.Mix, cfg cache.Config, sc Scale, pf PF) ([]float64, error) {
	out := make([]float64, len(mixes))
	err := RunAll(ctx, len(mixes), func(i int) error {
		sp, err := SpeedupOn(ctx, mixes[i], cfg, sc, pf)
		out[i] = sp
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// suiteOfMix groups a mix under its suite or "Mix".
func suiteOfMix(m trace.Mix) string { return m.Suite() }
