package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// fig1Workloads are the six example workloads of Fig. 1 (our trace-segment
// names differ from the paper's DPC2 segment suffixes).
func fig1Workloads() []string {
	return []string{
		"482.sphinx3-100B", "canneal-100B", "facesim-100B",
		"459.GemsFDTD-100B", "CC-100B", "PageRankDelta-100B",
	}
}

// Fig1Motivation reproduces Fig. 1: coverage, overprediction and IPC
// improvement of SPP, Bingo and Pythia on six example workloads. All
// (workload, prefetcher) cells simulate in parallel; rows are assembled in
// presentation order afterwards.
func Fig1Motivation(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := []PF{SPPPF(), BingoPF(), BasicPythiaPF()}
	t := &stats.Table{
		Title:  "Fig. 1: motivation workloads (single-core)",
		Header: []string{"workload", "prefetcher", "coverage", "overpred", "speedup"},
	}
	type job struct {
		w  trace.Workload
		pf PF
	}
	var jobs []job
	for _, name := range fig1Workloads() {
		w, ok := trace.ByName(name)
		if !ok {
			t.Notes = append(t.Notes, "missing workload "+name)
			continue
		}
		for _, pf := range pfs {
			jobs = append(jobs, job{w, pf})
		}
	}
	type cell struct{ cov, over, sp float64 }
	cells := make([]cell, len(jobs))
	err := RunAll(ctx, len(jobs), func(i int) error {
		j := jobs[i]
		cov, over, err := coverageOverpred(ctx, j.w, cfg, sc, j.pf)
		if err != nil {
			return err
		}
		sp, err := SpeedupOn(ctx, single(j.w), cfg, sc, j.pf)
		if err != nil {
			return err
		}
		cells[i] = cell{cov, over, sp}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		c := cells[i]
		t.AddRow(j.w.Name, j.pf.Name, pct(c.cov), pct(c.over), fmt.Sprintf("%.3f", c.sp))
	}
	t.Notes = append(t.Notes,
		"paper shape: Bingo > SPP on sphinx3/canneal/facesim; SPP > Bingo on GemsFDTD;",
		"Bingo loses on Ligra-CC despite coverage; Pythia competitive everywhere")
	return t, nil
}

// Fig7Coverage reproduces Fig. 7: per-suite prefetch coverage and
// overprediction at the LLC-memory boundary, single-core.
func Fig7Coverage(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 7: coverage and overprediction per suite (single-core)",
		Header: []string{"suite", "prefetcher", "coverage", "overpred"},
	}
	// Simulate every (suite, prefetcher, workload) cell in parallel, then
	// aggregate in presentation order.
	type job struct {
		suite string
		pf    PF
		w     trace.Workload
	}
	var jobs []job
	for _, suite := range trace.Suites() {
		for _, pf := range pfs {
			for _, w := range suiteWorkloads(suite, sc) {
				jobs = append(jobs, job{suite, pf, w})
			}
		}
	}
	covs := make([]float64, len(jobs))
	overs := make([]float64, len(jobs))
	err := RunAll(ctx, len(jobs), func(i int) error {
		var err error
		covs[i], overs[i], err = coverageOverpred(ctx, jobs[i].w, cfg, sc, jobs[i].pf)
		return err
	})
	if err != nil {
		return nil, err
	}
	type agg struct{ cov, over []float64 }
	total := map[string]*agg{}
	for i := 0; i < len(jobs); {
		suite, pf := jobs[i].suite, jobs[i].pf
		var scov, sover []float64
		for ; i < len(jobs) && jobs[i].suite == suite && jobs[i].pf.Name == pf.Name; i++ {
			scov = append(scov, covs[i])
			sover = append(sover, overs[i])
		}
		if total[pf.Name] == nil {
			total[pf.Name] = &agg{}
		}
		total[pf.Name].cov = append(total[pf.Name].cov, scov...)
		total[pf.Name].over = append(total[pf.Name].over, sover...)
		t.AddRow(suite, pf.Name, pct(stats.Mean(scov)), pct(stats.Mean(sover)))
	}
	for _, pf := range pfs {
		a := total[pf.Name]
		t.AddRow("AVG", pf.Name, pct(stats.Mean(a.cov)), pct(stats.Mean(a.over)))
	}
	t.Notes = append(t.Notes, "paper: Pythia 71% coverage / 27% overpredictions; MLOP 64%/110%")
	return t, nil
}

// Fig9aSingleCore reproduces Fig. 9(a): per-suite geomean speedup over the
// no-prefetching baseline in the single-core system.
func Fig9aSingleCore(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 9a: per-suite speedup (single-core)",
		Header: append([]string{"suite"}, pfNames(pfs)...),
	}
	all := map[string][]float64{}
	for _, suite := range trace.Suites() {
		cells := []string{suite}
		for _, pf := range pfs {
			sp, err := suiteSpeedups(ctx, suite, cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			all[pf.Name] = append(all[pf.Name], sp...)
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(sp)))
		}
		t.AddRow(cells...)
	}
	cells := []string{"GEOMEAN"}
	for _, pf := range pfs {
		cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all[pf.Name])))
	}
	t.AddRow(cells...)
	t.Notes = append(t.Notes, "paper: Pythia 1.224 geomean; outperforms MLOP/Bingo/SPP by 3.4/3.8/4.3%")
	return t, nil
}

// combinationStacks returns the Fig. 9b hybrid ladder.
func combinationStacks() []PF {
	st := StridePF()
	s := SPPPF()
	b := BingoPF()
	d := DSPatchPF()
	m := MLOPPF()
	return []PF{
		st,
		HybridPF("St+S", st, s),
		HybridPF("St+S+B", st, s, b),
		HybridPF("St+S+B+D", st, s, b, d),
		HybridPF("St+S+B+D+M", st, s, b, d, m),
		BasicPythiaPF(),
	}
}

// Fig9bCombinations reproduces Fig. 9(b): Pythia vs stacked combinations of
// prior prefetchers, single-core.
func Fig9bCombinations(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 9b: prefetcher combinations (single-core)",
		Header: []string{"configuration", "geomean speedup"},
	}
	for _, pf := range combinationStacks() {
		var all []float64
		for _, suite := range trace.Suites() {
			sp, err := suiteSpeedups(ctx, suite, cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			all = append(all, sp...)
		}
		t.AddRow(pf.Name, fmt.Sprintf("%.3f", stats.Geomean(all)))
	}
	t.Notes = append(t.Notes, "paper: Pythia outperforms the full St+S+B+D+M stack by 1.4% at 1C")
	return t, nil
}

func pfNames(pfs []PF) []string {
	out := make([]string, len(pfs))
	for i, p := range pfs {
		out[i] = p.Name
	}
	return out
}
