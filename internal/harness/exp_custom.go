package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/prefetch"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Fig13QValueCurves reproduces Fig. 13: the Q-value trajectories of the
// PC+Delta feature values 0x436a81+0 and 0x4377c5+0 in the GemsFDTD case
// study, for a subset of actions.
func Fig13QValueCurves(ctx context.Context, sc Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 13: Q-value curves of PC+Delta feature values (GemsFDTD)",
		Header: []string{"feature", "sample", "Q(+1)", "Q(+3)", "Q(+11)", "Q(+22)", "Q(+23)"},
	}
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Notes = append(t.Notes, "missing GemsFDTD workload")
		return t, nil
	}
	cfgActions := core.BasicConfig().Actions
	actIdx := func(off int) int {
		for i, a := range cfgActions {
			if a == off {
				return i
			}
		}
		return -1
	}
	for _, study := range []struct {
		pc    uint64
		label string
	}{{0x436a81, "0x436a81+0"}, {0x4377c5, "0x4377c5+0"}} {
		featVal := core.FeaturePCDelta.Value(&core.State{PC: study.pc, Delta: 0})
		var watch *core.QWatch
		spec := RunSpec{
			Mix: single(w), CacheCfg: cache.DefaultConfig(1), Scale: sc, PF: BasicPythiaPF(),
			Hook: func(h *cache.Hierarchy, pfs []prefetch.Prefetcher) {
				watch = pfs[0].(*core.Pythia).WatchFeature(0, featVal, 8)
			},
		}
		if _, err := Run(ctx, spec); err != nil {
			return nil, err
		}
		if watch == nil || len(watch.Series) == 0 {
			t.Notes = append(t.Notes, "no Q-updates observed for "+study.label)
			continue
		}
		step := len(watch.Series)/10 + 1
		for i := 0; i < len(watch.Series); i += step {
			row := watch.Series[i]
			cells := []string{study.label, fmt.Sprint(i * watch.Every)}
			for _, off := range []int{1, 3, 11, 22, 23} {
				if j := actIdx(off); j >= 0 {
					cells = append(cells, fmt.Sprintf("%.2f", row[j]))
				} else {
					cells = append(cells, "-")
				}
			}
			t.AddRow(cells...)
		}
	}
	t.Notes = append(t.Notes,
		"paper: Q(+23) dominates for 0x436a81+0 and Q(+11) for 0x4377c5+0 as updates accumulate")
	return t, nil
}

// fig14PFs returns the Fig. 14 comparison set.
func fig14PFs() []PF {
	return []PF{Baseline(), SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF(), PythiaPF(core.StrictConfig())}
}

// Fig14BandwidthBuckets reproduces Fig. 14: the fraction of runtime spent
// in each DRAM bandwidth-usage quartile and the IPC improvement on
// Ligra-CC for each prefetcher.
func Fig14BandwidthBuckets(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 14: bandwidth-usage buckets and performance on Ligra-CC",
		Header: []string{"prefetcher", "<25%", "25-50%", "50-75%", ">=75%", "speedup"},
	}
	w, ok := trace.ByName("CC-100B")
	if !ok {
		t.Notes = append(t.Notes, "missing Ligra-CC workload")
		return t, nil
	}
	mix := single(w)
	base, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: Baseline()})
	if err != nil {
		return nil, err
	}
	for _, pf := range fig14PFs() {
		run, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf})
		if err != nil {
			return nil, err
		}
		sp := 1.0
		if pf.Name != "nopref" {
			sp = Speedup(run, base)
		}
		t.AddRow(pf.Name,
			pct(run.Buckets[0]), pct(run.Buckets[1]), pct(run.Buckets[2]), pct(run.Buckets[3]),
			fmt.Sprintf("%.3f", sp))
	}
	t.Notes = append(t.Notes,
		"paper: MLOP/Bingo push Ligra-CC into the >50% buckets and lose performance;",
		"strict Pythia uses the least bandwidth and gains the most")
	return t, nil
}

// Fig15StrictPythia reproduces Fig. 15: basic vs strict (reward-customized)
// Pythia over the Ligra suite.
func Fig15StrictPythia(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 15: basic vs strict Pythia on Ligra",
		Header: []string{"workload", "basic", "strict", "delta"},
	}
	basic, strict := BasicPythiaPF(), PythiaPF(core.StrictConfig())
	var bs, ss []float64
	for _, w := range trace.Representative(trace.SuiteLigra) {
		b, err := SpeedupOn(ctx, single(w), cfg, sc, basic)
		if err != nil {
			return nil, err
		}
		s, err := SpeedupOn(ctx, single(w), cfg, sc, strict)
		if err != nil {
			return nil, err
		}
		bs = append(bs, b)
		ss = append(ss, s)
		t.AddRow(w.Base, fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", s), pct(s/b-1))
	}
	gb, gs := stats.Geomean(bs), stats.Geomean(ss)
	t.AddRow("GEOMEAN", fmt.Sprintf("%.3f", gb), fmt.Sprintf("%.3f", gs), pct(gs/gb-1))
	t.Notes = append(t.Notes,
		"paper: strict Pythia gains up to 7.8% (2.0% on average) over basic via reward registers alone")
	return t, nil
}

// fig16Candidates is the candidate feature-combination set used for the
// per-workload feature optimization (the paper sweeps all 1- and 2-feature
// combinations; we sweep a representative subset).
func fig16Candidates() []core.Config {
	b := core.BasicConfig()
	mk := func(name string, fs ...core.Feature) core.Config {
		return b.WithFeatures(name, fs...)
	}
	return []core.Config{
		b,
		mk("pythia-f1", core.FeaturePCDelta),
		mk("pythia-f2", core.FeatureLast4Deltas),
		mk("pythia-f3", core.FeaturePCDelta, core.Feature{CF: core.CFPC, DF: core.DFOffset}),
		mk("pythia-f4", core.Feature{CF: core.CFPC, DF: core.DFAddress}, core.FeatureLast4Deltas),
		mk("pythia-f5", core.Feature{CF: core.CFNone, DF: core.DFLast4Offsets}, core.FeaturePCDelta),
		mk("pythia-f6", core.Feature{CF: core.CFPCPath, DF: core.DFDelta}, core.FeatureLast4Deltas),
	}
}

// Fig16FeatureOpt reproduces Fig. 16: basic vs per-workload
// feature-optimized Pythia on SPEC06.
func Fig16FeatureOpt(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 16: basic vs feature-optimized Pythia on SPEC06",
		Header: []string{"workload", "basic", "best", "best features"},
	}
	var bs, os []float64
	for _, w := range suiteWorkloads(trace.SuiteSPEC06, sc) {
		base, err := SpeedupOn(ctx, single(w), cfg, sc, BasicPythiaPF())
		if err != nil {
			return nil, err
		}
		best, bestName := base, "basic"
		for _, cand := range fig16Candidates()[1:] {
			sp, err := SpeedupOn(ctx, single(w), cfg, sc, PythiaPF(cand))
			if err != nil {
				return nil, err
			}
			if sp > best {
				best, bestName = sp, featureNames(cand)
			}
		}
		bs = append(bs, base)
		os = append(os, best)
		t.AddRow(w.Base, fmt.Sprintf("%.3f", base), fmt.Sprintf("%.3f", best), bestName)
	}
	gb, go_ := stats.Geomean(bs), stats.Geomean(os)
	t.AddRow("GEOMEAN", fmt.Sprintf("%.3f", gb), fmt.Sprintf("%.3f", go_), pct(go_/gb-1))
	t.Notes = append(t.Notes, "paper: feature optimization adds up to 5.1% (1.5% on average) over basic")
	return t, nil
}

func featureNames(cfg core.Config) string {
	s := ""
	for i, f := range cfg.Features {
		if i > 0 {
			s += ", "
		}
		s += f.String()
	}
	return s
}
