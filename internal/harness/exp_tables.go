package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pythia/internal/core"
	"pythia/internal/hw"
	"pythia/internal/stats"
)

// Table2BasicConfig reports the basic Pythia configuration (paper Table 2).
// The paper's 500M-instruction hyperparameters are shown alongside the
// horizon-scaled values this library's runs use (see DESIGN.md).
func Table2BasicConfig(context.Context, Scale) (*stats.Table, error) {
	cfg := core.BasicConfig()
	t := &stats.Table{
		Title:  "Table 2: basic Pythia configuration",
		Header: []string{"parameter", "value"},
	}
	var feats []string
	for _, f := range cfg.Features {
		feats = append(feats, f.String())
	}
	t.AddRow("Features", strings.Join(feats, ", "))
	t.AddRow("Prefetch action list", fmt.Sprint(cfg.Actions))
	t.AddRow("R_AT / R_AL / R_CL", fmt.Sprintf("%g / %g / %g", cfg.Rewards.AT, cfg.Rewards.AL, cfg.Rewards.CL))
	t.AddRow("R_IN (high/low BW)", fmt.Sprintf("%g / %g", cfg.Rewards.INHigh, cfg.Rewards.INLow))
	t.AddRow("R_NP (high/low BW)", fmt.Sprintf("%g / %g", cfg.Rewards.NPHigh, cfg.Rewards.NPLow))
	t.AddRow("alpha (paper @500M instr)", "0.0065")
	t.AddRow("alpha (this library, scaled horizon)", fmt.Sprint(cfg.Alpha))
	t.AddRow("gamma", fmt.Sprint(cfg.Gamma))
	t.AddRow("epsilon (paper @500M instr)", "0.002")
	t.AddRow("epsilon (this library, scaled horizon)", fmt.Sprint(cfg.Epsilon))
	t.AddRow("EQ size", fmt.Sprint(cfg.EQSize))
	t.AddRow("Planes per vault", fmt.Sprint(cfg.PlanesPerVault))
	t.AddRow("Plane feature dimension", fmt.Sprint(cfg.FeatureDim))
	return t, nil
}

// Table4Storage reports Pythia's metadata storage (paper Table 4: 25.5 KB).
func Table4Storage(context.Context, Scale) (*stats.Table, error) {
	cfg := core.BasicConfig()
	items := hw.PythiaStorage(cfg)
	t := &stats.Table{
		Title:  "Table 4: Pythia storage overhead",
		Header: []string{"structure", "description", "size (KB)"},
	}
	for _, s := range items {
		t.AddRow(s.Name, s.Description, fmt.Sprintf("%.1f", s.KB()))
	}
	t.AddRow("Total", "", fmt.Sprintf("%.1f", hw.TotalKB(items)))
	t.Notes = append(t.Notes, "paper: QVStore 24 KB, EQ 1.5 KB, total 25.5 KB")
	return t, nil
}

// Table7PrefetcherConfigs reports the evaluated prefetchers and their
// storage budgets (paper Table 7).
func Table7PrefetcherConfigs(context.Context, Scale) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Table 7: evaluated prefetcher configurations",
		Header: []string{"prefetcher", "configuration", "storage (KB)"},
	}
	budgets := hw.BaselineStorageKB()
	rows := []struct{ name, desc string }{
		{"SPP", "256-entry ST, 512-entry PT, path-confidence lookahead"},
		{"Bingo", "2KB region, 128-entry AT, 4K-entry PHT"},
		{"MLOP", "128-entry AMT, 500-access update, degree 8"},
		{"DSPatch", "dual CovP/AccP patterns, bandwidth-modulated"},
		{"SPP+PPF", "SPP + 4-table perceptron filter"},
		{"Pythia", "2 features, 2 vaults, 3 planes, 16 actions"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.desc, fmt.Sprintf("%.1f", budgets[r.name]))
	}
	return t, nil
}

// Table8AreaPower reports Pythia's area/power and its overhead over
// reference processors (paper Table 8), from the calibrated analytical
// model in internal/hw.
func Table8AreaPower(context.Context, Scale) (*stats.Table, error) {
	kb := hw.TotalKB(hw.PythiaStorage(core.BasicConfig()))
	t := &stats.Table{
		Title:  "Table 8: area and power overhead of Pythia",
		Header: []string{"reference processor", "area overhead", "power overhead"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Pythia per core: %.2f mm², %.2f mW (model calibrated to the paper's 14nm synthesis)",
			hw.AreaMM2(kb), hw.PowerMW(kb)),
		"paper: 1.03%/0.37%, 1.24%/0.60%, 1.33%/0.75%")
	procs := hw.ReferenceProcessors()
	sort.Slice(procs, func(i, j int) bool { return procs[i].Cores < procs[j].Cores })
	for _, p := range procs {
		a, pw := hw.Overhead(kb, p)
		t.AddRow(p.Name, pct(a), pct(pw))
	}
	return t, nil
}
