// Package harness runs the paper's experiments: it wires workloads,
// prefetchers and system configurations into simulations, caches baseline
// runs, and exposes one function per table/figure of the evaluation (see
// the experiment index in DESIGN.md).
//
// Experiments fan their independent simulations out over a worker pool
// (SetWorkers / RunAll); every simulation is deterministic and results are
// written into index-addressed slots, so a rendered table is byte-identical
// at any worker count. PERF.md describes the parallel architecture.
//
// The harness never panics on unrunnable work: construction, stream and
// simulation failures return as errors, and every entry point accepts a
// context.Context that aborts in-flight simulations at chunk boundaries
// with their worker slots released (DESIGN.md "Error model and
// cancellation").
package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/cpu"
	"pythia/internal/dram"
	"pythia/internal/flight"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/prefetch"
	"pythia/internal/stats"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

// --- Worker pool ---

// simSlots caps the number of simulations executing at once; RunAll fan-out
// may nest (an experiment over a sweep whose cells run suites of
// workloads), so the cap is enforced where the work happens, in Run.
var simSlots = newDynSema(runtime.GOMAXPROCS(0))

// SetWorkers bounds harness parallelism to n concurrent simulations
// (n <= 1 forces sequential execution; n == 0 restores the default,
// GOMAXPROCS). Worker count never affects experiment output, only wall
// time.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	simSlots.setLimit(n)
	genSlots.setLimit(n)
}

// Workers reports the current parallelism bound.
func Workers() int { return simSlots.limit() }

// RunAll invokes fn(0..n-1), fanning out over the worker pool. Every fn
// must write its result to its own index-addressed slot; on success RunAll
// returns nil once all calls complete, so the slot array is fully
// populated and tables stay byte-identical at any worker count. Calls may
// nest — the global simulation cap keeps total CPU bounded.
//
// Errors short-circuit the fan-out: once any fn returns non-nil (or ctx is
// canceled), no further indices are dispatched, in-flight calls finish,
// and RunAll returns the first error observed. Partial results in the slot
// array must be discarded by the caller.
func RunAll(ctx context.Context, n int, fn func(i int) error) error {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// dynSema is a counting semaphore with an adjustable limit.
type dynSema struct {
	mu    sync.Mutex
	cond  *sync.Cond
	cap   int
	inUse int
}

func newDynSema(limit int) *dynSema {
	s := &dynSema{cap: limit}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until a slot is free or ctx is canceled; a canceled wait
// returns ctx.Err() without consuming a slot, so canceled simulations
// never leak pool capacity. Cancellation is delivered to waiters through
// an AfterFunc broadcast taken under the mutex, which closes the
// check-then-wait race; the AfterFunc is registered lazily, only once a
// caller actually has to wait, keeping the uncontended fast path free of
// per-acquire allocation and parent-context locking.
func (s *dynSema) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.inUse < s.cap {
		s.inUse++
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.inUse >= s.cap {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	s.inUse++
	return nil
}

// release frees one slot. Signal suffices here: exactly one slot opened,
// so exactly one waiter can proceed (limit growth, which can unblock many
// waiters at once, broadcasts in setLimit instead).
func (s *dynSema) release() {
	s.mu.Lock()
	s.inUse--
	s.mu.Unlock()
	s.cond.Signal()
}

func (s *dynSema) setLimit(n int) {
	s.mu.Lock()
	s.cap = n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *dynSema) limit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// Scale controls simulation lengths so the full suite finishes in minutes
// instead of the paper's cluster-days; EXPERIMENTS.md records results at
// the default scale.
type Scale struct {
	// Warmup / Sim are per-core instruction counts.
	Warmup, Sim int64
	// TraceLen is records generated per trace (replayed as needed).
	TraceLen int
	// WorkloadsPerSuite caps per-suite workload counts in sweep-heavy
	// figures (0 = all).
	WorkloadsPerSuite int
	// HeteroMixes is the number of random heterogeneous multi-core mixes.
	HeteroMixes int
	// StreamChunk switches trace delivery to the bounded-memory streaming
	// pipeline (internal/stream) with this many records per chunk; 0 keeps
	// the in-memory materialized path. Streaming delivers exactly the same
	// record sequence, so results are identical either way — only peak
	// memory and the horizon ceiling change.
	StreamChunk int
}

// ScaleQuick is used by unit benchmarks and smoke tests.
var ScaleQuick = Scale{Warmup: 300_000, Sim: 1_000_000, TraceLen: 120_000, WorkloadsPerSuite: 2, HeteroMixes: 2}

// ScaleDefault is the standard evaluation scale.
var ScaleDefault = Scale{Warmup: 1_000_000, Sim: 4_000_000, TraceLen: 400_000, WorkloadsPerSuite: 4, HeteroMixes: 4}

// ScaleFull runs every registered trace.
var ScaleFull = Scale{Warmup: 2_000_000, Sim: 10_000_000, TraceLen: 1_000_000, WorkloadsPerSuite: 0, HeteroMixes: 8}

// ScaleLong is the paper-horizon scale the materialized architecture could
// not reach: ≥50M measured instructions per core over 8M-record traces,
// streamed through the chunk pipeline (a few MB resident per core instead
// of ~200 MB per trace). Designed for the long-horizon study, where the
// paper's Table 2 hyperparameters apply unmodified (see DESIGN.md
// "Horizon scaling").
var ScaleLong = Scale{Warmup: 10_000_000, Sim: 50_000_000, TraceLen: 8_000_000, WorkloadsPerSuite: 1, HeteroMixes: 1, StreamChunk: 1 << 15}

// PF names a prefetcher configuration and knows how to instantiate it per
// core. L1 is optional (multi-level schemes).
type PF struct {
	Name string
	L2   func(sys prefetch.System) prefetch.Prefetcher
	L1   func(sys prefetch.System) prefetch.Prefetcher
}

// Baseline is the no-prefetching configuration.
func Baseline() PF {
	return PF{Name: "nopref", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.None{} }}
}

// SPPPF returns the SPP baseline.
func SPPPF() PF {
	return PF{Name: "SPP", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewSPP(prefetch.DefaultSPPConfig()) }}
}

// BingoPF returns the Bingo baseline.
func BingoPF() PF {
	return PF{Name: "Bingo", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewBingo(prefetch.DefaultBingoConfig()) }}
}

// MLOPPF returns the MLOP baseline.
func MLOPPF() PF {
	return PF{Name: "MLOP", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewMLOP(prefetch.DefaultMLOPConfig()) }}
}

// DSPatchPF returns the DSPatch baseline.
func DSPatchPF() PF {
	return PF{Name: "DSPatch", L2: func(sys prefetch.System) prefetch.Prefetcher {
		return prefetch.NewDSPatch(prefetch.DefaultDSPatchConfig(), sys)
	}}
}

// PPFPF returns SPP+PPF.
func PPFPF() PF {
	return PF{Name: "SPP+PPF", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewPPF(prefetch.DefaultPPFConfig()) }}
}

// StridePF returns the PC-stride baseline.
func StridePF() PF {
	return PF{Name: "Stride", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewStride(256, 2) }}
}

// PythiaPF returns Pythia with the given configuration.
func PythiaPF(cfg core.Config) PF {
	return PF{Name: cfg.Name, L2: func(sys prefetch.System) prefetch.Prefetcher { return core.MustNew(cfg, sys) }}
}

// BasicPythiaPF returns the Table 2 configuration.
func BasicPythiaPF() PF { return PythiaPF(core.BasicConfig()) }

// CPHWPF returns the contextual-bandit comparison point.
func CPHWPF() PF {
	return PF{Name: "CP-HW", L2: func(sys prefetch.System) prefetch.Prefetcher { return core.NewCPHW(sys) }}
}

// Power7PF returns the POWER7-style adaptive prefetcher.
func Power7PF() PF {
	return PF{Name: "POWER7", L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewPower7(prefetch.DefaultPower7Config()) }}
}

// IPCPPF returns IPCP as a multi-level (L1-trained) scheme.
func IPCPPF() PF {
	return PF{Name: "IPCP", L1: func(prefetch.System) prefetch.Prefetcher { return prefetch.NewIPCP(prefetch.DefaultIPCPConfig()) },
		L2: func(prefetch.System) prefetch.Prefetcher { return prefetch.None{} }}
}

// StrideStreamerPF returns the commercial-style multi-level scheme of
// Fig. 8d: stride at L1 plus streamer at L2.
func StrideStreamerPF() PF {
	return PF{
		Name: "Stride+Streamer",
		L1:   func(prefetch.System) prefetch.Prefetcher { return prefetch.NewStride(256, 2) },
		L2:   func(prefetch.System) prefetch.Prefetcher { return prefetch.NewStreamer(64, 8) },
	}
}

// StridePythiaPF returns stride at L1 plus Pythia at L2 (Fig. 8d).
func StridePythiaPF() PF {
	return PF{
		Name: "Stride+Pythia",
		L1:   func(prefetch.System) prefetch.Prefetcher { return prefetch.NewStride(256, 2) },
		L2:   func(sys prefetch.System) prefetch.Prefetcher { return core.MustNew(core.BasicConfig(), sys) },
	}
}

// HybridPF stacks several PF factories at the L2 (Fig. 9b/10b combos).
func HybridPF(name string, parts ...PF) PF {
	return PF{Name: name, L2: func(sys prefetch.System) prefetch.Prefetcher {
		ps := make([]prefetch.Prefetcher, 0, len(parts))
		for _, p := range parts {
			ps = append(ps, p.L2(sys))
		}
		return prefetch.NewMulti(name, ps...)
	}}
}

// StandardPFs returns the paper's headline comparison set.
func StandardPFs() []PF {
	return []PF{SPPPF(), BingoPF(), MLOPPF(), BasicPythiaPF()}
}

// RunSpec fully describes one simulation.
type RunSpec struct {
	Mix      trace.Mix
	CacheCfg cache.Config
	Scale    Scale
	PF       PF
	// Hook runs after prefetchers are attached, before simulation; used by
	// the Fig. 13 case study to install Q-value watches.
	Hook func(h *cache.Hierarchy, pfs []prefetch.Prefetcher)
	// WarmStart restores a trained policy into every Pythia agent of the
	// run before simulation begins. The envelope's compatibility checks
	// apply: a configuration or generator-version mismatch fails the run
	// with a typed error (policy.ErrMismatch) instead of silently training
	// from scratch. The policy's identity is part of the run's cache key,
	// so warm and cold runs of one spec never share a memoized result.
	WarmStart *policy.Envelope
	// TrainPolicy runs after a successful simulation with the live
	// prefetchers, before Run returns — the post-run counterpart of Hook,
	// used by the policy-training path to snapshot learned Q-state. Like
	// Hook, it observes live simulation state, so specs carrying it are
	// excluded from memoization and the persistent result store (a cached
	// result could not invoke it).
	TrainPolicy func(pfs []prefetch.Prefetcher)
}

// RunResult summarizes one simulation.
type RunResult struct {
	Name    string
	IPC     []float64
	Stats   []cache.CoreStats
	Buckets [dram.BucketCount]float64
	DRAM    dram.Stats
	PFs     []prefetch.Prefetcher
}

// SumLLCLoadMisses totals demand-load LLC misses across cores.
func (r RunResult) SumLLCLoadMisses() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.LLCLoadMisses
	}
	return n
}

// SumDRAMReads totals LLC read misses (demand + prefetch) across cores.
func (r RunResult) SumDRAMReads() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.DRAMReads
	}
	return n
}

var (
	traceCache  sync.Map // key string -> *trace.Trace
	traceFlight flight.Group[*trace.Trace]
	// genSlots bounds concurrent trace generation separately from
	// simSlots: generation happens inside Run (which already holds a sim
	// slot), so reusing simSlots would self-deadlock at low worker counts.
	// Transient cold-start CPU use is thus bounded by 2× the worker limit.
	genSlots = newDynSema(runtime.GOMAXPROCS(0))
)

// --- Streaming trace delivery ---

var (
	streamCacheMu  sync.Mutex
	streamCacheVal *stream.Cache
)

// streamCache returns the process-wide on-disk trace cache for streaming
// runs, creating it at stream.DefaultDir on first use.
func streamCache() *stream.Cache {
	streamCacheMu.Lock()
	defer streamCacheMu.Unlock()
	if streamCacheVal == nil {
		streamCacheVal = stream.NewCache(stream.DefaultDir())
	}
	return streamCacheVal
}

// SetTraceCacheDir points streaming runs at a different on-disk trace
// cache directory (tests use a temp dir; clusters can share a populated
// one). An empty dir restores the default. It affects subsequent runs
// only.
func SetTraceCacheDir(dir string) {
	if dir == "" {
		dir = stream.DefaultDir()
	}
	streamCacheMu.Lock()
	defer streamCacheMu.Unlock()
	streamCacheVal = stream.NewCache(dir)
}

// SweepTraceCache reclaims stale temp files from the on-disk trace
// cache immediately; long-lived services call it at startup so a crash
// mid-population never leaves litter across restarts.
func SweepTraceCache() {
	streamCache().Sweep()
}

// streamSources resolves each workload of a mix to a bounded-memory
// stream source. The disk cache shares one generation pass across every
// core, worker and experiment that wants the same trace; if the cache is
// unusable (unwritable directory), delivery falls back to per-reader
// generator replay, which costs CPU on replay but never materializes the
// trace either. A canceled ctx aborts the generation passes and returns
// ctx.Err().
func streamSources(ctx context.Context, mix trace.Mix, sc Scale) ([]stream.Source, error) {
	out := make([]stream.Source, len(mix.Workloads))
	err := RunAll(ctx, len(mix.Workloads), func(i int) error {
		w := mix.Workloads[i]
		if err := genSlots.acquire(ctx); err != nil {
			return err
		}
		src, err := streamCache().Source(ctx, w, sc.TraceLen, sc.StreamChunk)
		genSlots.release()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			src = &stream.GenSource{W: w, N: sc.TraceLen, Chunk: sc.StreamChunk}
		}
		out[i] = src
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// tracesFor materializes the traces of a mix: cached, generated in
// parallel, and deduplicated so concurrent runs of the same workload (e.g.
// a homogeneous mix, or a baseline and a prefetched run racing) generate
// each trace exactly once. The cache keys by the workload's full identity
// (Workload.Key: name, seed, length, generator version), not just its
// display name — two same-named workloads with different seeds must not
// share a materialized trace.
func tracesFor(ctx context.Context, mix trace.Mix, length int) ([]*trace.Trace, error) {
	out := make([]*trace.Trace, len(mix.Workloads))
	err := RunAll(ctx, len(mix.Workloads), func(i int) error {
		w := mix.Workloads[i]
		key := w.Key(length)
		if v, ok := traceCache.Load(key); ok {
			out[i] = v.(*trace.Trace)
			return nil
		}
		t, _, err := traceFlight.Do(key, func() (*trace.Trace, error) {
			if v, ok := traceCache.Load(key); ok {
				return v.(*trace.Trace), nil
			}
			if err := genSlots.acquire(ctx); err != nil {
				return nil, err
			}
			t := w.Generate(length)
			genSlots.release()
			traceCache.Store(key, t)
			return t, nil
		})
		if err != nil {
			return err
		}
		out[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// simCount tallies simulations executed by this process; it is how tests
// and pythia-serve prove a result came from the store rather than from
// re-simulation.
var simCount atomic.Int64

// SimCount returns the number of simulations this process has executed.
// It only ever grows; callers measure work by deltas.
func SimCount() int64 { return simCount.Load() }

// Run executes one simulation. Concurrent callers are throttled to the
// worker limit; each simulation owns all its mutable state, so any number
// may run side by side with deterministic results.
//
// Errors are returned, never panicked: an unbuildable hierarchy or system,
// a stream that cannot open or fails mid-run, and a canceled ctx all
// surface as values, so long-lived callers (pythia-serve) survive a bad
// spec or a corrupted trace-cache file. Cancellation is prompt — checked
// while waiting for a worker slot, during trace generation, and at chunk
// boundaries inside the simulation — and the slot is always released on
// the way out.
func Run(ctx context.Context, spec RunSpec) (RunResult, error) {
	if err := simSlots.acquire(ctx); err != nil {
		return RunResult{}, err
	}
	defer simSlots.release()
	simCount.Add(1)
	// A serve job's timeline (if one rides the context) learns when its
	// first worker reached each stage; Mark is a no-op outside serve.
	tl := obs.TimelineFrom(ctx)
	tl.Mark("streaming", time.Now())
	cores := len(spec.Mix.Workloads)
	cfg := spec.CacheCfg
	cfg.Cores = cores
	hier, err := cache.NewHierarchy(cfg)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: %s: hierarchy: %w", spec.Mix.Name, err)
	}

	readers := make([]trace.Reader, cores)
	closeReaders := func() {
		for _, r := range readers {
			if cl, ok := r.(interface{ Close() error }); ok && cl != nil {
				cl.Close()
			}
		}
	}
	if spec.Scale.StreamChunk > 0 {
		// Streaming delivery: records flow through the bounded chunk
		// pipeline instead of a materialized []Record, so the horizon is
		// limited by disk, not memory. The record sequence is identical to
		// the materialized path (stream package equivalence tests), so a
		// spec yields the same result either way.
		srcs, err := streamSources(ctx, spec.Mix, spec.Scale)
		if err != nil {
			return RunResult{}, err
		}
		for i, src := range srcs {
			r, err := src.Open()
			if err != nil {
				closeReaders()
				return RunResult{}, fmt.Errorf("harness: open stream %s: %w", src.Name(), err)
			}
			readers[i] = r
		}
	} else {
		traces, err := tracesFor(ctx, spec.Mix, spec.Scale.TraceLen)
		if err != nil {
			return RunResult{}, err
		}
		for i, t := range traces {
			readers[i] = trace.NewSliceReader(t.Records)
		}
	}

	var pfs []prefetch.Prefetcher
	for i := 0; i < cores; i++ {
		if spec.PF.L2 != nil {
			p := spec.PF.L2(hier)
			hier.AttachPrefetcher(i, p)
			pfs = append(pfs, p)
		}
		if spec.PF.L1 != nil {
			hier.AttachL1Prefetcher(i, spec.PF.L1(hier))
		}
	}
	if spec.Hook != nil {
		spec.Hook(hier, pfs)
	}
	if spec.WarmStart != nil {
		restored := 0
		for _, p := range pfs {
			py, ok := p.(*core.Pythia)
			if !ok {
				continue
			}
			if err := spec.WarmStart.Restore(py); err != nil {
				closeReaders()
				return RunResult{}, fmt.Errorf("harness: %s: warm start: %w", spec.Mix.Name, err)
			}
			restored++
		}
		if restored == 0 {
			closeReaders()
			return RunResult{}, fmt.Errorf("harness: %s: warm start: prefetcher %s has no Pythia agent to restore into", spec.Mix.Name, spec.PF.Name)
		}
	}

	sysCfg := cpu.SystemConfig{
		Core:               cpu.DefaultCoreConfig(),
		WarmupInstructions: spec.Scale.Warmup,
		SimInstructions:    spec.Scale.Sim,
		// Streaming readers feed the fused kernel StreamChunk-sized column
		// batches directly; materialized slice readers are adapted at the
		// same granularity so both paths batch identically. Batch size
		// never changes results (it is excluded from cacheKey for the same
		// reason) — cancellation lands at chunk boundaries either way.
		Chunk: spec.Scale.StreamChunk,
	}
	sys, err := cpu.NewSystem(sysCfg, hier, readers)
	if err != nil {
		closeReaders()
		return RunResult{}, fmt.Errorf("harness: %s: %w", spec.Mix.Name, err)
	}
	// Streaming readers own producer goroutines and file handles; release
	// them once the simulation is done (a no-op for slice readers).
	defer sys.Close()
	tl.Mark("simulating", time.Now())
	simStart := time.Now()
	if err := sys.Run(ctx); err != nil {
		return RunResult{}, fmt.Errorf("harness: %s/%s: %w", spec.Mix.Name, spec.PF.Name, err)
	}
	var retired int64
	for _, c := range sys.Cores {
		retired += c.Retired()
	}
	recordSimThroughput(retired, time.Since(simStart))

	res := RunResult{Name: spec.Mix.Name, PFs: pfs}
	for _, c := range sys.Cores {
		res.IPC = append(res.IPC, c.IPC())
		res.Stats = append(res.Stats, c.Stats())
	}
	res.Buckets = hier.DRAM().Buckets()
	res.DRAM = hier.DRAM().Stats()
	if spec.TrainPolicy != nil {
		spec.TrainPolicy(pfs)
	}
	return res, nil
}

var (
	baselineCache sync.Map // key string -> RunResult
	runFlight     flight.Group[RunResult]
)

// ResetCaches drops all memoized simulation results and materialized
// traces. Tests use it to force fresh runs; long-lived tools can use it to
// bound memory between sweeps.
func ResetCaches() {
	baselineCache.Range(func(k, _ any) bool { baselineCache.Delete(k); return true })
	traceCache.Range(func(k, _ any) bool { traceCache.Delete(k); return true })
}

// mixIdentity renders a mix's full composition, not just its display
// name: heterogeneous mixes are all named "Mix-N" while their workload
// draw varies with scale, so a name-only key would collide different
// compositions (fatal once keys outlive the process in the persistent
// store). Each workload contributes its canonical identity key
// (name, seed, length, generator version).
func mixIdentity(mix trace.Mix, traceLen int) string {
	parts := make([]string, 0, len(mix.Workloads)+1)
	parts = append(parts, mix.Name)
	for _, w := range mix.Workloads {
		parts = append(parts, w.Key(traceLen))
	}
	return strings.Join(parts, ",")
}

// cacheKey captures everything that affects a run's outcome. The whole
// cache/DRAM configuration is rendered into the key (%+v over plain value
// structs, deterministic field order) rather than a hand-picked subset: an
// earlier version listed individual fields and silently collided specs
// differing in the unlisted ones (Translate, LLCPolicy, geometry), serving
// one ablation arm the other arm's cached result; the mix contributes its
// full composition for the same reason (mixIdentity). StreamChunk is
// deliberately absent: streaming and materialized delivery produce the
// same records and therefore the same result, so runs differing only in
// delivery mode share a memoization slot. A warm-started run contributes
// its policy's content address: warm and cold runs of one spec produce
// different results and must never share a slot (on disk or in memory).
func cacheKey(spec RunSpec) string {
	key := fmt.Sprintf("%s|%s|c%d|%+v|w%d|s%d|t%d",
		mixIdentity(spec.Mix, spec.Scale.TraceLen), spec.PF.Name, len(spec.Mix.Workloads),
		spec.CacheCfg, spec.Scale.Warmup, spec.Scale.Sim, spec.Scale.TraceLen)
	if spec.WarmStart != nil {
		key += "|warm:" + spec.WarmStart.ID
	}
	return key
}

// stripPFs returns r without its live prefetcher objects. Memoized
// results must not pin PFs: a Pythia agent retains its whole QVStore, so
// caching it for the process lifetime would hold every table of every
// baseline ever run. The stripped form matches what the persistent store
// restores, keeping memory hits and disk hits indistinguishable.
func stripPFs(r RunResult) RunResult {
	r.PFs = nil
	return r
}

// RunCached executes a simulation, memoizing results (baselines recur in
// every figure). Concurrent callers with the same key are deduplicated
// through a singleflight: exactly one runs the simulation, the rest share
// its result (including its error — though errors are never memoized, so
// a later retry simulates afresh; note the shared result means a waiter
// can observe the leader's ctx cancellation). When a persistent store is
// configured (SetResultStore), a miss in memory falls through to disk
// before simulating, and fresh results are written back — so the
// memoization survives process restarts.
//
// RunCached results never carry live PFs, whether they come from memory
// or disk (see stripPFs); callers that introspect prefetcher state must
// use Run directly. For the same reason, specs carrying a live-state hook
// (Hook or TrainPolicy) bypass every cache layer and always simulate: a
// memoized or persisted result cannot replay the hook, so serving one
// would silently skip it.
func RunCached(ctx context.Context, spec RunSpec) (RunResult, error) {
	if spec.Hook != nil || spec.TrainPolicy != nil {
		return Run(ctx, spec)
	}
	key := cacheKey(spec)
	if v, ok := baselineCache.Load(key); ok {
		return v.(RunResult), nil
	}
	r, _, err := runFlight.Do(key, func() (RunResult, error) {
		if v, ok := baselineCache.Load(key); ok {
			return v.(RunResult), nil
		}
		if r, ok := loadPersisted(spec); ok {
			baselineCache.Store(key, r)
			return r, nil
		}
		r, err := Run(ctx, spec)
		if err != nil {
			return RunResult{}, err
		}
		storePersisted(spec, r)
		r = stripPFs(r)
		baselineCache.Store(key, r)
		return r, nil
	})
	return r, err
}

// Speedup returns the geomean over cores of per-core IPC ratios between a
// prefetched run and its baseline.
func Speedup(pf, base RunResult) float64 {
	ratios := make([]float64, 0, len(pf.IPC))
	for i := range pf.IPC {
		if base.IPC[i] > 0 {
			ratios = append(ratios, pf.IPC[i]/base.IPC[i])
		}
	}
	return stats.Geomean(ratios)
}

// SpeedupOn runs prefetcher pf and the no-prefetch baseline on a mix and
// returns the speedup (both runs cached).
func SpeedupOn(ctx context.Context, mix trace.Mix, cfg cache.Config, sc Scale, pf PF) (float64, error) {
	base, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: Baseline()})
	if err != nil {
		return 0, err
	}
	run, err := RunCached(ctx, RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf})
	if err != nil {
		return 0, err
	}
	return Speedup(run, base), nil
}

// suiteWorkloads returns the workloads of a suite honoring the scale's
// per-suite cap.
func suiteWorkloads(suite string, sc Scale) []trace.Workload {
	ws := trace.Representative(suite)
	if sc.WorkloadsPerSuite > 0 && len(ws) > sc.WorkloadsPerSuite {
		ws = ws[:sc.WorkloadsPerSuite]
	}
	return ws
}

// single wraps a workload as a 1-core mix.
func single(w trace.Workload) trace.Mix {
	return trace.Mix{Name: w.Name, Workloads: []trace.Workload{w}}
}
