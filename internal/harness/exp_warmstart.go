package harness

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/policy"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// WarmCheckpoints are the horizon fractions the convergence study
// samples: each arm is simulated to every fraction of the scale's
// instruction budget, and "converged" is the first checkpoint whose IPC
// reaches WarmConvergedFrac of that arm's own full-horizon IPC. Exported
// (with WarmConvergeInstr) so pythia-bench's -warmbench records exactly
// the metric this experiment defines — tuning the ladder or threshold
// here changes both in lockstep, keeping BENCH_*.json comparable.
var WarmCheckpoints = []float64{0.125, 0.25, 0.5, 1.0}

// WarmConvergedFrac is the convergence threshold.
const WarmConvergedFrac = 0.99

// WarmConvergeInstr returns the instruction count of the first
// checkpoint whose IPC reaches the threshold of the series' final
// (full-horizon) IPC. ipc must have one entry per WarmCheckpoints
// fraction; sim is the full-horizon budget.
func WarmConvergeInstr(ipc []float64, sim int64) int64 {
	final := ipc[len(ipc)-1]
	for i, frac := range WarmCheckpoints {
		if ipc[i] >= WarmConvergedFrac*final {
			return int64(frac * float64(sim))
		}
	}
	return sim
}

// WarmLadderSpec builds the single-core RunSpec for checkpoint ci of the
// warm-start ladder (warm == nil is the cold arm). It is the one
// definition of the ladder's arm construction, shared by ext-warmstart
// and pythia-bench -warmbench so their recorded metrics cannot drift.
func WarmLadderSpec(w trace.Workload, cfg cache.Config, sc Scale, ci int, warm *policy.Envelope) RunSpec {
	scAt := sc
	scAt.Sim = int64(WarmCheckpoints[ci] * float64(sc.Sim))
	if scAt.Sim < 1 {
		scAt.Sim = 1
	}
	return RunSpec{Mix: single(w), CacheCfg: cfg, Scale: scAt, PF: BasicPythiaPF(), WarmStart: warm}
}

// trainBestEffort trains (or fetches) a policy, tolerating persist-only
// failures: GetOrTrain delivers the trained envelope even when writing
// it to disk fails, and for an experiment that means "no reuse", never
// "no table" — the result store's own degradation contract.
func trainBestEffort(ctx context.Context, ts TrainSpec) (policy.Envelope, error) {
	env, _, err := TrainPolicy(ctx, ts)
	if err != nil && env.ID != "" {
		return env, nil
	}
	return env, err
}

// warmStartWorkloads is the convergence study set (a regular and an
// irregular trace; the scale's per-suite cap keeps micro-scale smoke
// tests cheap).
func warmStartWorkloads(sc Scale) ([]trace.Workload, error) {
	names := []string{"459.GemsFDTD-100B", "CC-100B"}
	if sc.WorkloadsPerSuite > 0 && len(names) > sc.WorkloadsPerSuite {
		names = names[:sc.WorkloadsPerSuite]
	}
	ws := make([]trace.Workload, len(names))
	for i, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: warm-start workload %s missing", n)
		}
		ws[i] = w
	}
	return ws, nil
}

// ExtWarmStart measures what warm-starting buys: instructions to converged
// IPC, warm (policy restored from a trained envelope) versus cold (from
// scratch), by simulating both arms to a ladder of horizon checkpoints. A
// warm agent starts at its trained policy and should sit at (or near) its
// final IPC from the first checkpoint; a cold agent pays the learning ramp
// first. The last column reports the convergence advantage — how many
// times fewer instructions the warm arm needed.
//
// The experiment honors whatever scale it is given (so it smoke-tests at
// quick scale); the headline runs are
//
//	pythia-bench -exp ext-warmstart -scale default
//	pythia-bench -exp ext-warmstart -scale long
func ExtWarmStart(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	ws, err := warmStartWorkloads(sc)
	if err != nil {
		return nil, err
	}

	// Phase 1: one trained policy per workload (store-deduplicated, so a
	// populated policy store makes re-renders training-free).
	envs := make([]policy.Envelope, len(ws))
	err = RunAll(ctx, len(ws), func(i int) error {
		env, err := trainBestEffort(ctx, TrainSpec{Workload: ws[i], CacheCfg: cfg, Scale: sc, Config: core.BasicConfig()})
		envs[i] = env
		return err
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: workload × {cold, warm} × checkpoint, all in parallel into
	// index-addressed slots.
	nc := len(WarmCheckpoints)
	ipc := make([]float64, len(ws)*2*nc)
	err = RunAll(ctx, len(ws)*2*nc, func(i int) error {
		wi, arm, ci := i/(2*nc), (i/nc)%2, i%nc
		var warm *policy.Envelope
		if arm == 1 {
			warm = &envs[wi]
		}
		r, err := RunCached(ctx, WarmLadderSpec(ws[wi], cfg, sc, ci, warm))
		if err != nil {
			return err
		}
		ipc[i] = r.IPC[0]
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title: "Warm-start study: instructions to converged IPC, warm vs cold",
		Header: []string{"workload", "arm",
			"IPC@12.5%", "IPC@25%", "IPC@50%", "IPC@100%", "converged at (instr)", "converge speedup"},
	}
	for wi, w := range ws {
		cold := ipc[wi*2*nc : wi*2*nc+nc]
		warm := ipc[wi*2*nc+nc : wi*2*nc+2*nc]
		coldConv := WarmConvergeInstr(cold, sc.Sim)
		warmConv := WarmConvergeInstr(warm, sc.Sim)
		for arm, series := range [][]float64{cold, warm} {
			name, conv, adv := "cold", coldConv, "-"
			if arm == 1 {
				name, conv = "warm", warmConv
				adv = fmt.Sprintf("%.1fx", float64(coldConv)/float64(warmConv))
			}
			row := []string{w.Base, name}
			for ci := 0; ci < nc; ci++ {
				row = append(row, fmt.Sprintf("%.3f", series[ci]))
			}
			row = append(row, fmt.Sprint(conv), adv)
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("converged = first checkpoint reaching %.0f%% of the arm's own full-horizon IPC (budget %d instr/core)", 100*WarmConvergedFrac, sc.Sim),
		"warm arms restore the policy trained on the same workload at this scale (self-transfer); training costs are excluded from both arms",
		"with a populated policy store, warm evaluations perform zero training simulations")
	return t, nil
}
