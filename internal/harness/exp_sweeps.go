package harness

import (
	"context"
	"fmt"
	"sort"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/stats"
	"pythia/internal/trace"
)

// Fig17LineGraph1C reproduces Fig. 17: the sorted single-core performance
// curve of every prefetcher, summarized at deciles (the paper plots 150
// traces; we report the distribution).
func Fig17LineGraph1C(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 17: single-core speedup distribution (sorted, deciles)",
		Header: append([]string{"percentile"}, pfNames(pfs)...),
	}
	curves := map[string][]float64{}
	for _, suite := range trace.Suites() {
		for _, pf := range pfs {
			sp, err := suiteSpeedups(ctx, suite, cfg, sc, pf)
			if err != nil {
				return nil, err
			}
			curves[pf.Name] = append(curves[pf.Name], sp...)
		}
	}
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		cells := []string{fmt.Sprintf("p%.0f", p)}
		for _, pf := range pfs {
			cells = append(cells, fmt.Sprintf("%.3f", stats.Percentile(curves[pf.Name], p)))
		}
		t.AddRow(cells...)
	}
	// Best/worst traces for Pythia, as the paper calls out.
	type wl struct {
		name string
		sp   float64
	}
	var all []trace.Workload
	for _, suite := range trace.Suites() {
		all = append(all, suiteWorkloads(suite, sc)...)
	}
	list := make([]wl, len(all))
	err := RunAll(ctx, len(all), func(i int) error {
		sp, err := SpeedupOn(ctx, single(all[i]), cfg, sc, BasicPythiaPF())
		list[i] = wl{all[i].Name, sp}
		return err
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(list, func(i, j int) bool { return list[i].sp < list[j].sp })
	if len(list) > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("Pythia worst: %s (%.3f); best: %s (%.3f)",
				list[0].name, list[0].sp, list[len(list)-1].name, list[len(list)-1].sp))
	}
	return t, nil
}

// Fig18LineGraph4C reproduces Fig. 18: the four-core mix speedup
// distribution.
func Fig18LineGraph4C(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(4)
	pfs := StandardPFs()
	mixes := mixesFor(4, sc)
	t := &stats.Table{
		Title:  "Fig. 18: four-core mix speedup distribution (sorted, deciles)",
		Header: append([]string{"percentile"}, pfNames(pfs)...),
	}
	curves := map[string][]float64{}
	for _, pf := range pfs {
		sp, err := mixSpeedups(ctx, mixes, cfg, sc, pf)
		if err != nil {
			return nil, err
		}
		curves[pf.Name] = sp
	}
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		cells := []string{fmt.Sprintf("p%.0f", p)}
		for _, pf := range pfs {
			cells = append(cells, fmt.Sprintf("%.3f", stats.Percentile(curves[pf.Name], p)))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig19FeatureSweep reproduces Fig. 19 / §4.3.1: the automated feature
// selection sweep — Pythia's speedup, coverage and overprediction across
// feature combinations, sorted by speedup.
func Fig19FeatureSweep(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 19: feature-combination design space (sorted by speedup)",
		Header: []string{"features", "speedup", "coverage", "overpred"},
	}
	// All single features plus selected 2-feature combinations (the full
	// 32+496 sweep is the paper's cluster-scale search; the candidate set
	// spans every component class).
	var configs []core.Config
	b := core.BasicConfig()
	for _, f := range core.AllFeatures() {
		if f.CF == core.CFNone && f.DF == core.DFNone {
			continue
		}
		configs = append(configs, b.WithFeatures("1f:"+f.String(), f))
	}
	configs = append(configs, fig16Candidates()...)
	type row struct {
		name            string
		sp, cov, overpr float64
	}
	ws := suiteWorkloads(trace.SuiteSPEC06, sc)
	// The design-space sweep is embarrassingly parallel: every candidate
	// config evaluates independently (and within one, every workload).
	rows := make([]row, len(configs))
	err := RunAll(ctx, len(configs), func(ci int) error {
		cand := configs[ci]
		sps := make([]float64, len(ws))
		covs := make([]float64, len(ws))
		overs := make([]float64, len(ws))
		err := RunAll(ctx, len(ws), func(wi int) error {
			pf := PythiaPF(cand)
			sp, err := SpeedupOn(ctx, single(ws[wi]), cfg, sc, pf)
			if err != nil {
				return err
			}
			sps[wi] = sp
			covs[wi], overs[wi], err = coverageOverpred(ctx, ws[wi], cfg, sc, pf)
			return err
		})
		if err != nil {
			return err
		}
		rows[ci] = row{featureNames(cand), stats.Geomean(sps), stats.Mean(covs), stats.Mean(overs)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sp < rows[j].sp })
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.3f", r.sp), pct(r.cov), pct(r.overpr))
	}
	t.Notes = append(t.Notes, "paper: performance correlates with coverage; the PC+Delta & last-4-deltas pair wins")
	return t, nil
}

// Fig20Hyperparams reproduces Fig. 20: sensitivity to the exploration rate
// ε and learning rate α (log sweeps).
func Fig20Hyperparams(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	t := &stats.Table{
		Title:  "Fig. 20: hyperparameter sensitivity",
		Header: []string{"parameter", "value", "geomean speedup"},
	}
	ws := suiteWorkloads(trace.SuiteSPEC06, sc)
	run := func(c core.Config) (float64, error) {
		sp := make([]float64, len(ws))
		err := RunAll(ctx, len(ws), func(i int) error {
			var err error
			sp[i], err = SpeedupOn(ctx, single(ws[i]), cfg, sc, PythiaPF(c))
			return err
		})
		if err != nil {
			return 0, err
		}
		return stats.Geomean(sp), nil
	}
	// Both log sweeps fan out across their sample points.
	epss := []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0}
	alphas := []float64{1e-5, 1e-3, 0.0065, 0.05, 0.1, 0.3, 1.0}
	epsSp := make([]float64, len(epss))
	alphaSp := make([]float64, len(alphas))
	err := RunAll(ctx, len(epss)+len(alphas), func(i int) error {
		c := core.BasicConfig()
		var err error
		if i < len(epss) {
			c.Name = fmt.Sprintf("pythia-eps%g", epss[i])
			c.Epsilon = epss[i]
			epsSp[i], err = run(c)
		} else {
			j := i - len(epss)
			c.Name = fmt.Sprintf("pythia-alpha%g", alphas[j])
			c.Alpha = alphas[j]
			alphaSp[j], err = run(c)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, eps := range epss {
		t.AddRow("epsilon", fmt.Sprintf("%g", eps), fmt.Sprintf("%.3f", epsSp[i]))
	}
	for i, alpha := range alphas {
		t.AddRow("alpha", fmt.Sprintf("%g", alpha), fmt.Sprintf("%.3f", alphaSp[i]))
	}
	t.Notes = append(t.Notes,
		"paper: performance collapses as epsilon->1; alpha has an interior optimum",
		"(the optimum alpha/epsilon shift upward at this library's scaled-down horizon; see DESIGN.md)")
	return t, nil
}

// Fig21ContextPrefetcher reproduces Fig. 21 / Appendix B.4: Pythia vs the
// hardware-context contextual-bandit prefetcher CP-HW.
func Fig21ContextPrefetcher(ctx context.Context, sc Scale) (*stats.Table, error) {
	return versusTable(ctx, sc, "Fig. 21: Pythia vs CP-HW", CPHWPF(),
		"paper: Pythia outperforms CP-HW by 5.3% (1C) and 7.6% (4C) via long-term credit and bandwidth awareness")
}

// Fig22Power7 reproduces Fig. 22 / Appendix B.5: Pythia vs the POWER7-style
// adaptive prefetcher.
func Fig22Power7(ctx context.Context, sc Scale) (*stats.Table, error) {
	return versusTable(ctx, sc, "Fig. 22: Pythia vs POWER7 adaptive prefetcher", Power7PF(),
		"paper: Pythia outperforms the POWER7 prefetcher by 4.5% (1C) and 6.5% (4C)")
}

// versusTable builds the 1C+4C per-suite comparison used by Figs. 21-22.
func versusTable(ctx context.Context, sc Scale, title string, rival PF, note string) (*stats.Table, error) {
	pfs := []PF{rival, BasicPythiaPF()}
	t := &stats.Table{
		Title:  title,
		Header: append([]string{"system", "suite"}, pfNames(pfs)...),
	}
	// Single-core per suite.
	cfg1 := cache.DefaultConfig(1)
	all := map[string][]float64{}
	for _, suite := range trace.Suites() {
		cells := []string{"1C", suite}
		for _, pf := range pfs {
			sp, err := suiteSpeedups(ctx, suite, cfg1, sc, pf)
			if err != nil {
				return nil, err
			}
			all[pf.Name] = append(all[pf.Name], sp...)
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(sp)))
		}
		t.AddRow(cells...)
	}
	cells := []string{"1C", "GEOMEAN"}
	for _, pf := range pfs {
		cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all[pf.Name])))
	}
	t.AddRow(cells...)
	// Four-core aggregate.
	cfg4 := cache.DefaultConfig(4)
	mixes := mixesFor(4, sc)
	cells = []string{"4C", "ALL"}
	for _, pf := range pfs {
		sp, err := mixSpeedups(ctx, mixes, cfg4, sc, pf)
		if err != nil {
			return nil, err
		}
		cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(sp)))
	}
	t.AddRow(cells...)
	t.Notes = append(t.Notes, note)
	return t, nil
}

// Fig23Warmup reproduces Fig. 23: sensitivity to the number of warmup
// instructions.
func Fig23Warmup(ctx context.Context, sc Scale) (*stats.Table, error) {
	cfg := cache.DefaultConfig(1)
	pfs := StandardPFs()
	t := &stats.Table{
		Title:  "Fig. 23: sensitivity to warmup length",
		Header: append([]string{"warmup instr"}, pfNames(pfs)...),
	}
	fracs := []float64{0, 0.05, 0.15, 0.25, 0.5, 1.0}
	for _, f := range fracs {
		scv := sc
		scv.Warmup = int64(float64(sc.Warmup) * f)
		cells := []string{fmt.Sprint(scv.Warmup)}
		for _, pf := range pfs {
			var all []float64
			for _, suite := range trace.Suites() {
				sp, err := suiteSpeedups(ctx, suite, cfg, scv, pf)
				if err != nil {
					return nil, err
				}
				all = append(all, sp...)
			}
			cells = append(cells, fmt.Sprintf("%.3f", stats.Geomean(all)))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: Pythia outperforms prior prefetchers at every warmup length, including none")
	return t, nil
}
