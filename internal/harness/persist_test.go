package harness

import (
	"testing"

	"pythia/internal/cache"
	"pythia/internal/prefetch"
	"pythia/internal/trace"
)

// TestRunCachedSurvivesRestart is the tentpole guarantee: with a
// persistent store configured, clearing every in-memory cache (the moral
// equivalent of a process restart) and re-running the same spec serves
// the result from disk with zero additional simulation work.
func TestRunCachedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	SetResultStore(dir)
	defer SetResultStore("")
	ResetCaches()
	defer ResetCaches()

	spec := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: BasicPythiaPF()}
	first, err := RunCached(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ResultStore().Writes() == 0 {
		t.Fatal("fresh run was not persisted")
	}

	// "Restart": drop memoization and traces, point a fresh store handle at
	// the same directory.
	ResetCaches()
	SetResultStore(dir)
	before := SimCount()
	second, err := RunCached(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if delta := SimCount() - before; delta != 0 {
		t.Fatalf("restored run simulated %d times, want 0", delta)
	}
	if second.IPC[0] != first.IPC[0] || second.Name != first.Name {
		t.Fatalf("restored result differs: %+v vs %+v", second, first)
	}
	if second.SumLLCLoadMisses() != first.SumLLCLoadMisses() || second.DRAM != first.DRAM {
		t.Error("restored per-trial stats differ from the original run")
	}
	if len(second.PFs) != 0 {
		t.Error("disk-restored result claims live prefetcher objects")
	}
}

// TestHookSpecsBypassPersistence: hooks observe live simulation state, so
// a spec carrying one must neither be served from disk nor written there.
func TestHookSpecsBypassPersistence(t *testing.T) {
	dir := t.TempDir()
	SetResultStore(dir)
	defer SetResultStore("")
	ResetCaches()
	defer ResetCaches()

	hooked := 0
	spec := RunSpec{
		Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline(),
		Hook: func(*cache.Hierarchy, []prefetch.Prefetcher) { hooked++ },
	}
	if _, err := RunCached(bg, spec); err != nil {
		t.Fatal(err)
	}
	if hooked != 1 {
		t.Fatalf("hook ran %d times, want 1", hooked)
	}
	if n := ResultStore().Writes(); n != 0 {
		t.Fatalf("hooked spec persisted %d entries, want 0", n)
	}

	ResetCaches()
	before := SimCount()
	if _, err := RunCached(bg, spec); err != nil {
		t.Fatal(err)
	}
	if delta := SimCount() - before; delta != 1 {
		t.Errorf("hooked spec after reset simulated %d times, want 1 (no disk hit)", delta)
	}
	if hooked != 2 {
		t.Errorf("hook ran %d times total, want 2", hooked)
	}
}

// TestCacheKeyDistinguishesFullConfig guards the memoization key against
// the collision class a review caught empirically: specs differing only in
// a cache-config field absent from a hand-picked key (Translate,
// LLCPolicy, geometry) shared a slot, so one ablation arm was served the
// other arm's result — and the persistent store baked the collision to
// disk. The key now renders the whole config.
func TestCacheKeyDistinguishesFullConfig(t *testing.T) {
	base := RunSpec{Mix: tinyMix(t), CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()}
	for name, mutate := range map[string]func(*cache.Config){
		"Translate":      func(c *cache.Config) { c.Translate = true },
		"LLCPolicy":      func(c *cache.Config) { c.LLCPolicy = "lru" },
		"LLCWays":        func(c *cache.Config) { c.LLCWays++ },
		"L2SizeKB":       func(c *cache.Config) { c.L2SizeKB *= 2 },
		"PrefetchBudget": func(c *cache.Config) { c.PrefetchBudget++ },
		"DRAM.TRCDns":    func(c *cache.Config) { c.DRAM.TRCDns++ },
	} {
		mutated := base
		mutate(&mutated.CacheCfg)
		if cacheKey(mutated) == cacheKey(base) {
			t.Errorf("cacheKey ignores CacheCfg.%s", name)
		}
	}
}

// TestCacheKeyDistinguishesMixComposition: heterogeneous mixes are all
// named "Mix-N" while their workload draw varies with scale, so the key
// must fold in the full composition — a name-only key silently served one
// composition the other's persisted result.
func TestCacheKeyDistinguishesMixComposition(t *testing.T) {
	a, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	b, ok := trace.ByName("482.sphinx3-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	mixA := trace.Mix{Name: "Mix-1", Workloads: []trace.Workload{a}}
	mixB := trace.Mix{Name: "Mix-1", Workloads: []trace.Workload{b}}
	specA := RunSpec{Mix: mixA, CacheCfg: cache.DefaultConfig(1), Scale: tinyScale, PF: Baseline()}
	specB := specA
	specB.Mix = mixB
	if cacheKey(specA) == cacheKey(specB) {
		t.Error("cacheKey collides same-named mixes with different workload compositions")
	}
}

// TestScaleKeyDistinguishesOutcomes: every outcome-relevant Scale field
// must land in the key; StreamChunk (delivery-only) must not.
func TestScaleKeyDistinguishesOutcomes(t *testing.T) {
	base := tinyScale
	for name, mutate := range map[string]func(*Scale){
		"Warmup":            func(s *Scale) { s.Warmup++ },
		"Sim":               func(s *Scale) { s.Sim++ },
		"TraceLen":          func(s *Scale) { s.TraceLen++ },
		"WorkloadsPerSuite": func(s *Scale) { s.WorkloadsPerSuite++ },
		"HeteroMixes":       func(s *Scale) { s.HeteroMixes++ },
	} {
		mutated := base
		mutate(&mutated)
		if mutated.Key() == base.Key() {
			t.Errorf("Scale.Key ignores %s", name)
		}
	}
	streamed := base
	streamed.StreamChunk = 4096
	if streamed.Key() != base.Key() {
		t.Error("Scale.Key includes StreamChunk, splitting identical results")
	}
}
