package prefetch

import "pythia/internal/mem"

// Stride is the classic PC-based stride prefetcher [Fu & Patel; Jouppi]:
// a table indexed by load PC tracks the last address and the stride between
// consecutive accesses by the same PC; confident strides trigger prefetches
// a configurable degree ahead. The paper uses it as the L1 prefetcher in
// multi-level configurations (Fig. 8d) and as the "St" component of the
// hybrid stacks (Fig. 9b).
type Stride struct {
	degree  int
	entries []strideEntry
	mask    uint64
}

type strideEntry struct {
	tag      uint64
	lastLine uint64
	stride   int64
	conf     int8
	valid    bool
}

// NewStride builds a stride prefetcher with the given table size (power of
// two) and prefetch degree.
func NewStride(tableSize, degree int) *Stride {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("prefetch: stride table size must be a power of two")
	}
	if degree <= 0 {
		degree = 2
	}
	return &Stride{degree: degree, entries: make([]strideEntry, tableSize), mask: uint64(tableSize - 1)}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// Train implements Prefetcher.
func (s *Stride) Train(a Access) []uint64 {
	e := &s.entries[(a.PC>>2)&s.mask]
	if !e.valid || e.tag != a.PC {
		*e = strideEntry{tag: a.PC, lastLine: a.Line, valid: true}
		return nil
	}
	delta := int64(a.Line) - int64(e.lastLine)
	e.lastLine = a.Line
	if delta == 0 {
		return nil
	}
	if delta == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = delta
		}
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	var out []uint64
	next := a.Line
	for i := 0; i < s.degree; i++ {
		next = uint64(int64(next) + e.stride)
		out = append(out, next)
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (s *Stride) Fill(uint64) {}

// NextLine prefetches the next sequential line(s); the simplest useful
// baseline and a building block for tests.
type NextLine struct {
	degree int
}

// NewNextLine builds a next-line prefetcher of the given degree.
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		degree = 1
	}
	return &NextLine{degree: degree}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "nextline" }

// Train implements Prefetcher.
func (n *NextLine) Train(a Access) []uint64 {
	out := make([]uint64, 0, n.degree)
	for i := 1; i <= n.degree; i++ {
		out = append(out, a.Line+uint64(i))
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (n *NextLine) Fill(uint64) {}

// Streamer is an L2 stream prefetcher in the style of commercial cores
// [Chen & Baer '95; Intel's L2 streamer]: it detects monotonic access
// streams within a page and runs a configurable distance ahead in the
// detected direction.
type Streamer struct {
	depth   int
	entries []streamEntry
	mask    uint64
}

type streamEntry struct {
	page    uint64
	lastOff int
	dir     int8
	conf    int8
	valid   bool
}

// NewStreamer builds a streamer tracking `streams` concurrent pages running
// `depth` lines ahead.
func NewStreamer(streams, depth int) *Streamer {
	if streams <= 0 || streams&(streams-1) != 0 {
		panic("prefetch: streamer table size must be a power of two")
	}
	if depth <= 0 {
		depth = 4
	}
	return &Streamer{depth: depth, entries: make([]streamEntry, streams), mask: uint64(streams - 1)}
}

// Name implements Prefetcher.
func (s *Streamer) Name() string { return "streamer" }

// SetDepth adjusts the stream run-ahead distance (used by the POWER7-style
// adaptive wrapper).
func (s *Streamer) SetDepth(d int) {
	if d < 0 {
		d = 0
	}
	s.depth = d
}

// Depth returns the current run-ahead distance.
func (s *Streamer) Depth() int { return s.depth }

// Train implements Prefetcher.
func (s *Streamer) Train(a Access) []uint64 {
	page := mem.PageOfLine(a.Line)
	off := mem.LineOffsetOfLine(a.Line)
	e := &s.entries[page&s.mask]
	if !e.valid || e.page != page {
		*e = streamEntry{page: page, lastOff: off, valid: true}
		return nil
	}
	d := off - e.lastOff
	e.lastOff = off
	if d == 0 {
		return nil
	}
	dir := int8(1)
	if d < 0 {
		dir = -1
	}
	if dir == e.dir {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.dir = dir
		e.conf = 1
		return nil
	}
	if e.conf < 2 || s.depth == 0 {
		return nil
	}
	out := make([]uint64, 0, s.depth)
	for i := 1; i <= s.depth; i++ {
		out = append(out, uint64(int64(a.Line)+int64(i)*int64(dir)))
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (s *Streamer) Fill(uint64) {}
