package prefetch

import "math/bits"

// DSPatch implements the Dual Spatial Pattern prefetcher [Bera et al.,
// MICRO 2019]: per trigger-PC it maintains two bit patterns over 2KB
// regions — CovP (coverage-biased, OR of observed footprints) and AccP
// (accuracy-biased, AND of observed footprints) — and selects between them
// using the measured DRAM bandwidth: under low bandwidth pressure it
// prefetches the coverage pattern, under high pressure the accurate one.
// It is the one bandwidth-aware baseline in the paper's comparison set.

const dspatchRegionLines = 32

// DSPatchConfig tunes DSPatch.
type DSPatchConfig struct {
	// SPTSize is the signature pattern table size (power of two).
	SPTSize int
	// ATSize is the accumulation table size (power of two).
	ATSize int
	// HighBW is the bus-utilization threshold that switches to AccP.
	HighBW float64
}

// DefaultDSPatchConfig returns the published configuration scaled to the
// paper's 3.6KB budget.
func DefaultDSPatchConfig() DSPatchConfig {
	return DSPatchConfig{SPTSize: 256, ATSize: 64, HighBW: 0.5}
}

type dspatchSPT struct {
	pcTag uint64
	covP  uint32
	accP  uint32
	seen  uint8
	valid bool
}

type dspatchGen struct {
	regionTag uint64
	pc        uint64
	footprint uint32
	valid     bool
}

// DSPatch is the dual-pattern prefetcher.
type DSPatch struct {
	cfg DSPatchConfig
	sys System
	spt []dspatchSPT
	at  []dspatchGen
}

// NewDSPatch builds a DSPatch using sys for bandwidth feedback.
func NewDSPatch(cfg DSPatchConfig, sys System) *DSPatch {
	if cfg.SPTSize <= 0 || cfg.SPTSize&(cfg.SPTSize-1) != 0 {
		panic("prefetch: DSPatch SPT size must be a power of two")
	}
	if cfg.ATSize <= 0 || cfg.ATSize&(cfg.ATSize-1) != 0 {
		panic("prefetch: DSPatch AT size must be a power of two")
	}
	if sys == nil {
		sys = NilSystem()
	}
	return &DSPatch{cfg: cfg, sys: sys, spt: make([]dspatchSPT, cfg.SPTSize), at: make([]dspatchGen, cfg.ATSize)}
}

// Name implements Prefetcher.
func (d *DSPatch) Name() string { return "dspatch" }

func (d *DSPatch) sptSlot(pc uint64) *dspatchSPT {
	h := pc * 0x9E3779B97F4A7C15
	return &d.spt[h>>32&uint64(d.cfg.SPTSize-1)]
}

func (d *DSPatch) commit(g *dspatchGen) {
	if !g.valid || g.footprint == 0 {
		return
	}
	s := d.sptSlot(g.pc)
	if !s.valid || s.pcTag != g.pc {
		*s = dspatchSPT{pcTag: g.pc, covP: g.footprint, accP: g.footprint, seen: 1, valid: true}
		return
	}
	s.covP |= g.footprint
	s.accP &= g.footprint
	if s.accP == 0 {
		// AND collapsed: restart the accurate pattern from this footprint.
		s.accP = g.footprint
	}
	if s.seen < 255 {
		s.seen++
	}
	// Periodically decay CovP so it tracks the program phase.
	if s.seen%32 == 0 {
		s.covP = g.footprint | s.accP
	}
}

// Train implements Prefetcher.
func (d *DSPatch) Train(a Access) []uint64 {
	region := a.Line / dspatchRegionLines
	off := int(a.Line % dspatchRegionLines)
	slot := &d.at[region&uint64(d.cfg.ATSize-1)]

	if slot.valid && slot.regionTag == region {
		slot.footprint |= 1 << uint(off)
		return nil
	}
	d.commit(slot)
	*slot = dspatchGen{regionTag: region, pc: a.PC, footprint: 1 << uint(off), valid: true}

	s := d.sptSlot(a.PC)
	if !s.valid || s.pcTag != a.PC || s.seen < 2 {
		return nil
	}
	pattern := s.covP
	if d.sys.BandwidthUtil() >= d.cfg.HighBW {
		pattern = s.accP
	}
	if bits.OnesCount32(pattern) <= 1 {
		return nil
	}
	base := region * dspatchRegionLines
	var out []uint64
	for i := 0; i < dspatchRegionLines; i++ {
		if pattern&(1<<uint(i)) != 0 && i != off {
			out = append(out, base+uint64(i))
		}
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (d *DSPatch) Fill(uint64) {}
