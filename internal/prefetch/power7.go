package prefetch

// Power7 models the IBM POWER7 adaptive prefetcher [Jiménez et al., TOPC
// 2014], the comparison point of the paper's Appendix B.5: a stream
// prefetcher whose depth is tuned at runtime by a feedback controller that
// watches prefetch usefulness, plus an optional stride engine. Unlike
// Pythia it adapts a single aggressiveness knob rather than learning a
// policy over program features.

// Power7Config tunes the adaptive controller.
type Power7Config struct {
	// Depths is the depth ladder the controller moves along.
	Depths []int
	// Interval is the number of observed accesses between adaptations.
	Interval int
	// UpThreshold / DownThreshold are usefulness ratios that trigger
	// depth increase / decrease.
	UpThreshold, DownThreshold float64
	// Window is the usefulness tracking window.
	Window int
}

// DefaultPower7Config returns a POWER7-like ladder.
func DefaultPower7Config() Power7Config {
	return Power7Config{
		Depths:        []int{0, 2, 4, 6, 8, 16, 24},
		Interval:      2048,
		UpThreshold:   0.55,
		DownThreshold: 0.30,
		Window:        512,
	}
}

// Power7 is the adaptive stream+stride prefetcher.
type Power7 struct {
	cfg      Power7Config
	streamer *Streamer
	stride   *Stride
	level    int
	window   *recentSet
	seen     int
	useful   int
	issued   int
}

// NewPower7 builds the adaptive prefetcher.
func NewPower7(cfg Power7Config) *Power7 {
	if len(cfg.Depths) == 0 {
		cfg = DefaultPower7Config()
	}
	p := &Power7{
		cfg:      cfg,
		streamer: NewStreamer(64, cfg.Depths[len(cfg.Depths)/2]),
		stride:   NewStride(256, 2),
		level:    len(cfg.Depths) / 2,
	}
	p.window = newRecentSet(cfg.Window, nil)
	return p
}

// Name implements Prefetcher.
func (p *Power7) Name() string { return "power7" }

// Depth returns the current stream depth (for tests).
func (p *Power7) Depth() int { return p.cfg.Depths[p.level] }

// Train implements Prefetcher.
func (p *Power7) Train(a Access) []uint64 {
	if p.window.demand(a.Line) {
		p.useful++
	}
	p.seen++
	if p.seen >= p.cfg.Interval {
		p.adapt()
	}

	out := p.streamer.Train(a)
	out = append(out, p.stride.Train(a)...)
	for _, l := range out {
		p.window.add(l)
	}
	p.issued += len(out)
	return out
}

// adapt moves the depth ladder based on the usefulness ratio of the last
// interval.
func (p *Power7) adapt() {
	if p.issued > 32 {
		ratio := float64(p.useful) / float64(p.issued)
		if ratio >= p.cfg.UpThreshold && p.level < len(p.cfg.Depths)-1 {
			p.level++
		} else if ratio <= p.cfg.DownThreshold && p.level > 0 {
			p.level--
		}
		p.streamer.SetDepth(p.cfg.Depths[p.level])
	}
	p.seen, p.useful, p.issued = 0, 0, 0
}

// Fill implements Prefetcher.
func (p *Power7) Fill(uint64) {}
