package prefetch

import "pythia/internal/mem"

// SPP implements the Signature Path Prefetcher [Kim et al., MICRO 2016]:
// a per-page signature of recent in-page deltas indexes a pattern table of
// delta predictions with confidence counters; lookahead prefetching walks
// the signature path multiplying path confidence until it falls below a
// threshold. Configuration follows the paper's Table 7 (256-entry ST,
// 512-entry pattern table).

const (
	sppSigBits    = 12
	sppSigMask    = (1 << sppSigBits) - 1
	sppSigShift   = 3
	sppPTWays     = 4
	sppCtrMax     = 15
	sppMaxDegree  = 4
	sppMaxLookahe = 6
)

type sppSTEntry struct {
	pageTag uint64
	lastOff int
	sig     uint16
	valid   bool
}

type sppPTEntry struct {
	delta [sppPTWays]int16
	ctr   [sppPTWays]uint8
	used  [sppPTWays]bool
	total uint8
}

// SPPConfig tunes SPP.
type SPPConfig struct {
	// STSize is the signature-table size (pages tracked), a power of two.
	STSize int
	// PTSize is the pattern-table size indexed by signature, a power of two.
	PTSize int
	// Threshold is the minimum path confidence to keep prefetching.
	Threshold float64
}

// DefaultSPPConfig returns the paper's configuration.
func DefaultSPPConfig() SPPConfig {
	return SPPConfig{STSize: 256, PTSize: 512, Threshold: 0.33}
}

// SPP is the signature path prefetcher.
type SPP struct {
	cfg SPPConfig
	st  []sppSTEntry
	pt  []sppPTEntry
}

// NewSPP builds an SPP instance.
func NewSPP(cfg SPPConfig) *SPP {
	if cfg.STSize <= 0 || cfg.STSize&(cfg.STSize-1) != 0 {
		panic("prefetch: SPP ST size must be a power of two")
	}
	if cfg.PTSize <= 0 || cfg.PTSize&(cfg.PTSize-1) != 0 {
		panic("prefetch: SPP PT size must be a power of two")
	}
	return &SPP{cfg: cfg, st: make([]sppSTEntry, cfg.STSize), pt: make([]sppPTEntry, cfg.PTSize)}
}

// Name implements Prefetcher.
func (s *SPP) Name() string { return "spp" }

func (s *SPP) ptIndex(sig uint16) *sppPTEntry {
	return &s.pt[int(sig)&(s.cfg.PTSize-1)]
}

func sppAdvance(sig uint16, delta int) uint16 {
	return uint16((int(sig)<<sppSigShift ^ (delta & 0x7f)) & sppSigMask)
}

func (s *SPP) trainPT(sig uint16, delta int) {
	e := s.ptIndex(sig)
	d := int16(delta)
	// Existing way?
	for w := 0; w < sppPTWays; w++ {
		if e.used[w] && e.delta[w] == d {
			if e.ctr[w] >= sppCtrMax {
				// Saturate: halve all counters to age the distribution.
				for i := 0; i < sppPTWays; i++ {
					e.ctr[i] /= 2
				}
				e.total /= 2
			}
			e.ctr[w]++
			e.total++
			return
		}
	}
	// Allocate or replace the weakest way.
	victim, min := 0, uint8(255)
	for w := 0; w < sppPTWays; w++ {
		if !e.used[w] {
			victim = w
			min = 0
			break
		}
		if e.ctr[w] < min {
			victim, min = w, e.ctr[w]
		}
	}
	if e.total >= min {
		e.total -= min
	}
	e.delta[victim] = d
	e.ctr[victim] = 1
	e.used[victim] = true
	e.total++
}

// bestDelta returns the strongest delta prediction and its confidence.
func (s *SPP) bestDelta(sig uint16) (delta int, conf float64, ok bool) {
	e := s.ptIndex(sig)
	if e.total == 0 {
		return 0, 0, false
	}
	bestW, best := -1, uint8(0)
	for w := 0; w < sppPTWays; w++ {
		if e.used[w] && e.ctr[w] > best {
			bestW, best = w, e.ctr[w]
		}
	}
	if bestW < 0 {
		return 0, 0, false
	}
	// Laplace-style smoothing keeps low-sample signatures from reporting
	// full confidence after a single observation.
	return int(e.delta[bestW]), float64(best) / float64(e.total+3), true
}

// Train implements Prefetcher: updates the signature path and performs
// confidence-gated lookahead prefetching.
func (s *SPP) Train(a Access) []uint64 {
	page := mem.PageOfLine(a.Line)
	off := mem.LineOffsetOfLine(a.Line)
	e := &s.st[page&uint64(s.cfg.STSize-1)]

	var sig uint16
	if e.valid && e.pageTag == page {
		delta := off - e.lastOff
		if delta == 0 {
			return nil
		}
		s.trainPT(e.sig, delta)
		sig = sppAdvance(e.sig, delta)
		e.sig = sig
		e.lastOff = off
	} else {
		*e = sppSTEntry{pageTag: page, lastOff: off, sig: 0, valid: true}
		sig = 0
	}

	// Lookahead: walk the signature path while confidence holds.
	var out []uint64
	conf := 1.0
	curSig := sig
	line := a.Line
	for depth := 0; depth < sppMaxLookahe && len(out) < sppMaxDegree; depth++ {
		d, c, ok := s.bestDelta(curSig)
		if !ok || d == 0 {
			break
		}
		conf *= c
		if conf < s.cfg.Threshold {
			break
		}
		next := uint64(int64(line) + int64(d))
		if !mem.SamePage(a.Line, next) {
			break
		}
		out = append(out, next)
		curSig = sppAdvance(curSig, d)
		line = next
	}
	return out
}

// Fill implements Prefetcher.
func (s *SPP) Fill(uint64) {}
