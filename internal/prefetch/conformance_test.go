package prefetch

import (
	"math/rand"
	"testing"

	"pythia/internal/mem"
)

// allPrefetchers instantiates every baseline for conformance checks.
func allPrefetchers() map[string]Prefetcher {
	return map[string]Prefetcher{
		"none":     None{},
		"nextline": NewNextLine(2),
		"stride":   NewStride(256, 2),
		"streamer": NewStreamer(64, 4),
		"spp":      NewSPP(DefaultSPPConfig()),
		"ppf":      NewPPF(DefaultPPFConfig()),
		"bingo":    NewBingo(DefaultBingoConfig()),
		"mlop":     NewMLOP(DefaultMLOPConfig()),
		"dspatch":  NewDSPatch(DefaultDSPatchConfig(), fixedBW(0.3)),
		"ipcp":     NewIPCP(DefaultIPCPConfig()),
		"power7":   NewPower7(DefaultPower7Config()),
		"fdp":      NewFDP(DefaultFDPConfig(), NewNextLine(2), fixedBW(0.3)),
		"multi":    NewMulti("m", NewNextLine(1), NewStride(256, 2)),
	}
}

// TestConformanceRandomTraffic drives every prefetcher with adversarial
// random traffic: no panics, and every candidate stays within the
// triggering access's physical page (the post-L1 prefetcher contract every
// design in the paper obeys).
func TestConformanceRandomTraffic(t *testing.T) {
	for name, p := range allPrefetchers() {
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 20000; i++ {
			line := rng.Uint64() >> 20
			pc := uint64(0x400000 + rng.Intn(64)*4)
			for _, c := range p.Train(Access{PC: pc, Line: line, Cycle: int64(i), Store: i%7 == 0}) {
				if !mem.SamePage(c, line) {
					t.Fatalf("%s: candidate %d outside page of %d", name, c, line)
				}
				if c == line {
					t.Fatalf("%s: prefetched the demanded line itself", name)
				}
			}
			if i%97 == 0 {
				p.Fill(line + 1) // fills must never panic, matched or not
			}
		}
	}
}

// TestConformanceNames checks every prefetcher exposes a non-empty,
// distinct name.
func TestConformanceNames(t *testing.T) {
	seen := map[string]string{}
	for key, p := range allPrefetchers() {
		n := p.Name()
		if n == "" {
			t.Errorf("%s has an empty name", key)
		}
		if other, dup := seen[n]; dup {
			t.Errorf("name %q shared by %s and %s", n, key, other)
		}
		seen[n] = key
	}
}

// TestConformancePageBoundaryEdges hits the exact first/last line of pages
// with every prefetcher — the off-by-one zone for page clamps.
func TestConformancePageBoundaryEdges(t *testing.T) {
	for name, p := range allPrefetchers() {
		for page := uint64(100); page < 130; page++ {
			for _, off := range []uint64{0, mem.LinesPerPage - 1} {
				line := page*mem.LinesPerPage + off
				for _, c := range p.Train(Access{PC: 0x500, Line: line}) {
					if !mem.SamePage(c, line) {
						t.Fatalf("%s leaked across page at offset %d", name, off)
					}
				}
			}
		}
	}
}

// TestConformanceDeterminism re-runs an identical stream on fresh instances
// and requires identical candidate sequences (the whole simulator depends
// on this for reproducibility).
func TestConformanceDeterminism(t *testing.T) {
	build := func() map[string]Prefetcher { return allPrefetchers() }
	drive := func(p Prefetcher) []uint64 {
		rng := rand.New(rand.NewSource(7))
		var out []uint64
		for i := 0; i < 5000; i++ {
			line := uint64(1<<22) + uint64(rng.Intn(1<<14))
			out = append(out, p.Train(Access{PC: 0x600, Line: line, Cycle: int64(i)})...)
		}
		return out
	}
	a, b := build(), build()
	for name := range a {
		ca, cb := drive(a[name]), drive(b[name])
		if len(ca) != len(cb) {
			t.Errorf("%s nondeterministic: %d vs %d candidates", name, len(ca), len(cb))
			continue
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Errorf("%s nondeterministic at candidate %d", name, i)
				break
			}
		}
	}
}
