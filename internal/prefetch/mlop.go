package prefetch

import (
	"math/bits"

	"pythia/internal/mem"
)

// MLOP implements Multi-Lookahead Offset Prefetching [Shakerinava et al.,
// DPC3 2019]: a best-offset-style prefetcher that scores every candidate
// offset against recent access maps at multiple lookahead levels and
// prefetches with the best offset of each level, giving it an aggressive
// effective degree. Configuration follows the paper's Table 7 (128-entry
// access map table, 500-access update interval, degree 16).

const (
	mlopMaxOffset = 31
	mlopNumOff    = 2*mlopMaxOffset + 1 // offsets -31..31
)

// MLOPConfig tunes MLOP.
type MLOPConfig struct {
	// AMTSize is the number of pages tracked (power of two).
	AMTSize int
	// UpdateInterval is the number of trained accesses per scoring round.
	UpdateInterval int
	// Degree is the maximum offsets selected per round.
	Degree int
	// ScoreFrac is the fraction of the round's best score an offset needs
	// to be selected.
	ScoreFrac float64
}

// DefaultMLOPConfig returns the paper's configuration.
func DefaultMLOPConfig() MLOPConfig {
	return MLOPConfig{AMTSize: 128, UpdateInterval: 500, Degree: 8, ScoreFrac: 0.60}
}

type mlopAM struct {
	pageTag uint64
	bits    uint64 // accessed line offsets in the page
	valid   bool
}

// MLOP is the multi-lookahead offset prefetcher.
type MLOP struct {
	cfg     MLOPConfig
	amt     []mlopAM
	scores  [mlopNumOff]int
	chosen  []int
	trained int
}

// NewMLOP builds an MLOP instance.
func NewMLOP(cfg MLOPConfig) *MLOP {
	if cfg.AMTSize <= 0 || cfg.AMTSize&(cfg.AMTSize-1) != 0 {
		panic("prefetch: MLOP AMT size must be a power of two")
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = 500
	}
	return &MLOP{cfg: cfg, amt: make([]mlopAM, cfg.AMTSize)}
}

// Name implements Prefetcher.
func (m *MLOP) Name() string { return "mlop" }

// Offsets returns the currently selected prefetch offsets (for tests and
// introspection).
func (m *MLOP) Offsets() []int {
	out := make([]int, len(m.chosen))
	copy(out, m.chosen)
	return out
}

// Train implements Prefetcher.
func (m *MLOP) Train(a Access) []uint64 {
	page := mem.PageOfLine(a.Line)
	off := mem.LineOffsetOfLine(a.Line)
	e := &m.amt[page&uint64(m.cfg.AMTSize-1)]
	if !e.valid || e.pageTag != page {
		*e = mlopAM{pageTag: page, valid: true}
	}

	// Score: an offset d earns a point when the current access would have
	// been predicted by a previous access at (off - d) in the same page.
	// Dense maps (heavy irregular reuse) are excluded: they would credit
	// every offset indiscriminately.
	if bits.OnesCount64(e.bits) > 24 {
		e.bits |= 1 << uint(off)
		m.trained++
		if m.trained >= m.cfg.UpdateInterval {
			m.selectOffsets()
		}
		return m.emit(a)
	}
	for d := -mlopMaxOffset; d <= mlopMaxOffset; d++ {
		if d == 0 {
			continue
		}
		src := off - d
		if src < 0 || src >= mem.LinesPerPage {
			continue
		}
		if e.bits&(1<<uint(src)) != 0 {
			m.scores[d+mlopMaxOffset]++
		}
	}
	e.bits |= 1 << uint(off)

	m.trained++
	if m.trained >= m.cfg.UpdateInterval {
		m.selectOffsets()
	}
	return m.emit(a)
}

// emit issues the currently elected offsets for an access.
func (m *MLOP) emit(a Access) []uint64 {
	if len(m.chosen) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m.chosen))
	for _, d := range m.chosen {
		out = append(out, uint64(int64(a.Line)+int64(d)))
	}
	return clampToPage(a.Line, out)
}

// selectOffsets ends a scoring round: keep every offset whose score clears
// ScoreFrac of the round's best, up to Degree of them.
func (m *MLOP) selectOffsets() {
	best := 0
	for _, s := range m.scores {
		if s > best {
			best = s
		}
	}
	m.chosen = m.chosen[:0]
	// An offset must both be competitive with the round's best and predict
	// a meaningful fraction of all accesses; the floor keeps pattern-free
	// workloads (pointer chases) from electing noise offsets.
	floor := m.cfg.UpdateInterval / 5
	if best > floor {
		cut := int(float64(best) * m.cfg.ScoreFrac)
		if cut < floor {
			cut = floor
		}
		// Prefer nearer offsets first so the degree budget goes to timely
		// prefetches.
		for mag := 1; mag <= mlopMaxOffset && len(m.chosen) < m.cfg.Degree; mag++ {
			for _, d := range [2]int{mag, -mag} {
				if len(m.chosen) >= m.cfg.Degree {
					break
				}
				if m.scores[d+mlopMaxOffset] > cut {
					m.chosen = append(m.chosen, d)
				}
			}
		}
	}
	m.scores = [mlopNumOff]int{}
	m.trained = 0
	// Access maps are per-round snapshots: without ageing, long-lived dense
	// maps would credit every offset.
	for i := range m.amt {
		m.amt[i] = mlopAM{}
	}
}

// Fill implements Prefetcher.
func (m *MLOP) Fill(uint64) {}
