package prefetch

// FDP implements Feedback-Directed Prefetching [Srinath et al., HPCA 2007]
// as a wrapper: a separate control loop measures the wrapped prefetcher's
// accuracy and the system's bandwidth pressure, and throttles its degree by
// probabilistically dropping candidates. The paper's introduction calls
// this style out as "system awareness as an afterthought" — a bolt-on
// controller over a system-unaware algorithm — in contrast to Pythia's
// inherent reward-level feedback; this implementation exists to make that
// comparison concrete.

// FDPConfig tunes the throttling controller.
type FDPConfig struct {
	// Interval is the number of observed demands between control updates.
	Interval int
	// Window is the usefulness-tracking window size.
	Window int
	// Levels is the throttle ladder: the fraction of candidates allowed
	// through at each aggressiveness level.
	Levels []float64
	// HighAcc / LowAcc are the accuracy thresholds that move the ladder.
	HighAcc, LowAcc float64
	// HighBW is the bus utilization above which one extra level of
	// throttling is applied.
	HighBW float64
}

// DefaultFDPConfig returns a configuration following the published
// five-level aggressiveness ladder.
func DefaultFDPConfig() FDPConfig {
	return FDPConfig{
		Interval: 2048,
		Window:   1024,
		Levels:   []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		HighAcc:  0.60,
		LowAcc:   0.30,
		HighBW:   0.6,
	}
}

// FDP is the feedback-directed throttling wrapper.
type FDP struct {
	cfg    FDPConfig
	inner  Prefetcher
	sys    System
	window *recentSet
	level  int
	seen   int
	useful int
	issued int
	// lcg drives deterministic probabilistic dropping.
	lcg uint64
}

// NewFDP wraps inner with a feedback-directed throttle.
func NewFDP(cfg FDPConfig, inner Prefetcher, sys System) *FDP {
	if len(cfg.Levels) == 0 {
		cfg = DefaultFDPConfig()
	}
	if sys == nil {
		sys = NilSystem()
	}
	f := &FDP{
		cfg:   cfg,
		inner: inner,
		sys:   sys,
		level: len(cfg.Levels) - 1, // start fully aggressive, as published
		lcg:   88172645463325252,
	}
	f.window = newRecentSet(cfg.Window, nil)
	return f
}

// Name implements Prefetcher.
func (f *FDP) Name() string { return "fdp+" + f.inner.Name() }

// Level returns the current aggressiveness level (for tests).
func (f *FDP) Level() int { return f.level }

func (f *FDP) rand() float64 {
	f.lcg ^= f.lcg << 13
	f.lcg ^= f.lcg >> 7
	f.lcg ^= f.lcg << 17
	return float64(f.lcg>>11) / float64(1<<53)
}

// Train implements Prefetcher: delegates to the wrapped prefetcher, then
// throttles its output according to the control state.
func (f *FDP) Train(a Access) []uint64 {
	if f.window.demand(a.Line) {
		f.useful++
	}
	f.seen++
	if f.seen >= f.cfg.Interval {
		f.adapt()
	}

	cands := f.inner.Train(a)
	if len(cands) == 0 {
		return nil
	}
	allow := f.cfg.Levels[f.level]
	if f.sys.BandwidthUtil() >= f.cfg.HighBW && f.level > 0 {
		allow = f.cfg.Levels[f.level-1]
	}
	out := cands[:0]
	for _, c := range cands {
		if allow >= 1 || f.rand() < allow {
			out = append(out, c)
			f.window.add(c)
			f.issued++
		}
	}
	return out
}

// adapt moves the aggressiveness ladder from measured accuracy.
func (f *FDP) adapt() {
	if f.issued > 32 {
		acc := float64(f.useful) / float64(f.issued)
		switch {
		case acc >= f.cfg.HighAcc && f.level < len(f.cfg.Levels)-1:
			f.level++
		case acc <= f.cfg.LowAcc && f.level > 0:
			f.level--
		}
	}
	f.seen, f.useful, f.issued = 0, 0, 0
}

// Fill implements Prefetcher.
func (f *FDP) Fill(line uint64) { f.inner.Fill(line) }
