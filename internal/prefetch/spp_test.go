package prefetch

import (
	"testing"

	"pythia/internal/mem"
)

// pageSeq builds an access sequence walking fresh pages with a fixed
// in-page delta chain.
func pageSeq(pages int, startOff int, deltas []int) []uint64 {
	var lines []uint64
	for p := 0; p < pages; p++ {
		line := uint64(1000+p) * mem.LinesPerPage
		line += uint64(startOff)
		lines = append(lines, line)
		for _, d := range deltas {
			line = uint64(int64(line) + int64(d))
			lines = append(lines, line)
		}
	}
	return lines
}

func TestSPPLearnsDeltaChain(t *testing.T) {
	s := NewSPP(DefaultSPPConfig())
	lines := pageSeq(200, 0, []int{3, 3, 3, 3})
	issued := map[uint64]bool{}
	for _, l := range lines {
		for _, c := range s.Train(Access{PC: 1, Line: l}) {
			issued[c] = true
		}
	}
	if len(issued) == 0 {
		t.Fatal("SPP never prefetched a learnable +3 chain")
	}
	// Prefetched lines should be +3 successors of accessed lines.
	hits := 0
	accessed := map[uint64]bool{}
	for _, l := range lines {
		accessed[l] = true
	}
	for c := range issued {
		if accessed[c] {
			hits++
		}
	}
	// Lookahead legitimately overshoots the end of each chain, so accuracy
	// on a finite chain sits below 1 even for a perfect learner.
	if float64(hits)/float64(len(issued)) < 0.45 {
		t.Errorf("SPP accuracy %.2f on deterministic chain (%d/%d)",
			float64(hits)/float64(len(issued)), hits, len(issued))
	}
}

func TestSPPLookaheadDepth(t *testing.T) {
	s := NewSPP(DefaultSPPConfig())
	// Train heavily so confidence saturates, then a single access should
	// emit multiple lookahead steps.
	lines := pageSeq(400, 0, []int{1, 1, 1, 1, 1, 1})
	var lastBatch []uint64
	for _, l := range lines {
		if got := s.Train(Access{PC: 1, Line: l}); len(got) > 0 {
			lastBatch = got
		}
	}
	if len(lastBatch) < 2 {
		t.Errorf("lookahead depth %d, want >= 2 on a saturated +1 chain", len(lastBatch))
	}
}

func TestSPPStopsAtPageBoundary(t *testing.T) {
	s := NewSPP(DefaultSPPConfig())
	lines := pageSeq(300, mem.LinesPerPage-3, []int{1, 1})
	for _, l := range lines {
		for _, c := range s.Train(Access{PC: 1, Line: l}) {
			if !mem.SamePage(c, l) {
				t.Fatalf("SPP prefetched across the page: trigger %d cand %d", l, c)
			}
		}
	}
}

func TestSPPNoConfidenceNoPrefetch(t *testing.T) {
	s := NewSPP(DefaultSPPConfig())
	// Random in-page offsets: no delta should win confidence.
	rngLines := []uint64{}
	x := uint64(12345)
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		page := uint64(2000 + i%16)
		rngLines = append(rngLines, page*mem.LinesPerPage+(x>>55)%mem.LinesPerPage)
	}
	issued := 0
	for _, l := range rngLines {
		issued += len(s.Train(Access{PC: 1, Line: l}))
	}
	if issued > len(rngLines)/2 {
		t.Errorf("SPP issued %d prefetches on random offsets", issued)
	}
}

func TestSPPConfigValidation(t *testing.T) {
	for _, bad := range []SPPConfig{
		{STSize: 100, PTSize: 512},
		{STSize: 256, PTSize: 0},
	} {
		func() {
			defer func() { recover() }()
			NewSPP(bad)
			t.Errorf("config %+v should panic", bad)
		}()
	}
}

func TestPPFFiltersJunk(t *testing.T) {
	// Feed a mixed stream: learnable chain on PC 1, pure noise on PC 2.
	// After training, PPF should keep issuing on the chain and reject most
	// noise candidates relative to raw aggressive SPP.
	ppf := NewPPF(DefaultPPFConfig())
	raw := NewSPP(ppf.cfg.SPP)
	chain := pageSeq(400, 0, []int{2, 2, 2})
	ppfIssued, rawIssued := 0, 0
	for _, l := range chain {
		ppfIssued += len(ppf.Train(Access{PC: 1, Line: l}))
		rawIssued += len(raw.Train(Access{PC: 1, Line: l}))
	}
	if ppfIssued == 0 {
		t.Fatal("PPF suppressed a perfectly learnable chain")
	}
	if rawIssued == 0 {
		t.Fatal("test setup: raw SPP never fired")
	}
}

func TestPPFTrainsOnOutcomes(t *testing.T) {
	ppf := NewPPF(DefaultPPFConfig())
	// Issue candidates, never demand them: weights should drift negative
	// and issue rate should drop.
	early, late := 0, 0
	lines := pageSeq(600, 0, []int{5, 7, 5, 7}) // semi-regular
	for i, l := range lines {
		n := len(ppf.Train(Access{PC: 9, Line: l + uint64(i%3)})) // perturbed: candidates rarely demanded
		if i < len(lines)/4 {
			early += n
		}
		if i > 3*len(lines)/4 {
			late += n
		}
	}
	if early == 0 {
		t.Skip("filter never opened; nothing to compare")
	}
	if late > early*2 {
		t.Errorf("PPF issue rate grew despite useless prefetches: early=%d late=%d", early, late)
	}
}

func TestSPPFillNoOp(t *testing.T) {
	s := NewSPP(DefaultSPPConfig())
	s.Fill(123) // must not panic
	if s.Name() != "spp" {
		t.Errorf("Name() = %q", s.Name())
	}
}
