package prefetch

// recentSet is a fixed-capacity FIFO set of line addresses used by
// prefetchers that learn from their own usefulness (PPF, DSPatch, POWER7):
// issued prefetches enter the set; a later demand to a member counts as a
// useful prefetch; entries evicted un-demanded count as useless.
type recentSet struct {
	ring    []uint64
	present map[uint64]int // line -> count in ring
	pos     int
	// onEvict is called with the evicted line and whether it was demanded.
	onEvict func(line uint64, demanded bool)
	flags   []bool // demanded flag per slot
}

func newRecentSet(capacity int, onEvict func(line uint64, demanded bool)) *recentSet {
	return &recentSet{
		ring:    make([]uint64, capacity),
		flags:   make([]bool, capacity),
		present: make(map[uint64]int, capacity),
		onEvict: onEvict,
	}
}

// add inserts a prefetched line, evicting the oldest.
func (r *recentSet) add(line uint64) {
	old := r.ring[r.pos]
	if n, ok := r.present[old]; ok {
		if n <= 1 {
			delete(r.present, old)
		} else {
			r.present[old] = n - 1
		}
		if r.onEvict != nil {
			r.onEvict(old, r.flags[r.pos])
		}
	}
	r.ring[r.pos] = line
	r.flags[r.pos] = false
	r.present[line]++
	r.pos = (r.pos + 1) % len(r.ring)
}

// demand marks a demand to line; reports whether it was a tracked prefetch.
func (r *recentSet) demand(line uint64) bool {
	if _, ok := r.present[line]; !ok {
		return false
	}
	for i := range r.ring {
		if r.ring[i] == line && !r.flags[i] {
			r.flags[i] = true
			return true
		}
	}
	return false
}

// contains reports membership without marking.
func (r *recentSet) contains(line uint64) bool {
	_, ok := r.present[line]
	return ok
}
