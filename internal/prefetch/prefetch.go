// Package prefetch defines the hardware-prefetcher interface used by the
// cache hierarchy and implements the baseline prefetchers the paper compares
// Pythia against: PC-stride, streamer, next-line, SPP, PPF, Bingo, MLOP,
// DSPatch, IPCP, the contextual-bandit CP-HW, and the POWER7-style adaptive
// prefetcher. Pythia itself lives in internal/core and implements the same
// interface.
package prefetch

import "pythia/internal/mem"

// Access describes one demand access observed by a prefetcher at its cache
// level. Per the paper's methodology, prefetchers sit at the L2 and observe
// L1D misses.
type Access struct {
	// PC of the triggering demand.
	PC uint64
	// Line is the demanded cache line address.
	Line uint64
	// Cycle is the core cycle of the access.
	Cycle int64
	// Hit reports whether the access hit at the prefetcher's cache level.
	Hit bool
	// Store marks a write.
	Store bool
}

// System exposes the system-level feedback available to prefetchers.
// Pythia's reward scheme consumes the bandwidth signal; system-unaware
// baselines ignore it.
type System interface {
	// BandwidthUtil returns recent DRAM data-bus utilization in [0,1].
	BandwidthUtil() float64
}

// Prefetcher is the interface the cache hierarchy drives.
//
// Train observes a demand access and returns the line addresses to prefetch
// (possibly none). Fill notifies the prefetcher that one of its prefetches
// has been filled into the cache, which Pythia uses to set the EQ filled bit
// (timeliness classification, Algorithm 1 step 7).
type Prefetcher interface {
	Name() string
	Train(a Access) []uint64
	Fill(line uint64)
}

// nilSystem is used when no system feedback is wired up.
type nilSystem struct{}

func (nilSystem) BandwidthUtil() float64 { return 0 }

// NilSystem returns a System with no bandwidth pressure, for tests and
// standalone use.
func NilSystem() System { return nilSystem{} }

// None is the no-prefetching baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "nopref" }

// Train implements Prefetcher.
func (None) Train(Access) []uint64 { return nil }

// Fill implements Prefetcher.
func (None) Fill(uint64) {}

// Multi composes several prefetchers at the same level; every component
// observes every access and their candidates are concatenated (the paper's
// "hybrid" configurations of Fig. 9b/10b).
type Multi struct {
	name  string
	parts []Prefetcher
}

// NewMulti builds a hybrid from parts.
func NewMulti(name string, parts ...Prefetcher) *Multi {
	return &Multi{name: name, parts: parts}
}

// Name implements Prefetcher.
func (m *Multi) Name() string { return m.name }

// Train implements Prefetcher.
func (m *Multi) Train(a Access) []uint64 {
	var out []uint64
	for _, p := range m.parts {
		out = append(out, p.Train(a)...)
	}
	return out
}

// Fill implements Prefetcher.
func (m *Multi) Fill(line uint64) {
	for _, p := range m.parts {
		p.Fill(line)
	}
}

// clampToPage drops candidate lines that leave the triggering page; all
// post-L1 prefetchers in the paper prefetch within a physical page.
func clampToPage(trigger uint64, cands []uint64) []uint64 {
	out := cands[:0]
	for _, c := range cands {
		if mem.SamePage(trigger, c) {
			out = append(out, c)
		}
	}
	return out
}
