package prefetch

import (
	"testing"

	"pythia/internal/mem"
)

// regionSeq visits `rounds` fresh 2KB regions, touching the given offsets
// (relative to the region base) in order, with the trigger PC.
func regionSeq(p Prefetcher, pc uint64, rounds int, offs []int) map[uint64]bool {
	issued := map[uint64]bool{}
	for r := 0; r < rounds; r++ {
		base := uint64(5000+r) * bingoRegionLines
		for _, o := range offs {
			for _, c := range p.Train(Access{PC: pc, Line: base + uint64(o)}) {
				issued[c] = true
			}
		}
	}
	return issued
}

func TestBingoLearnsFootprint(t *testing.T) {
	b := NewBingo(DefaultBingoConfig())
	offs := []int{0, 3, 7, 11}
	issued := regionSeq(b, 0x77, 300, offs) // enough regions to cycle the AT and commit footprints
	if len(issued) == 0 {
		t.Fatal("Bingo never fired on a recurring footprint")
	}
	// Issued candidates must be footprint offsets of later regions.
	for c := range issued {
		off := int(c % bingoRegionLines)
		ok := false
		for _, o := range offs {
			if off == o {
				ok = true
			}
		}
		if !ok {
			t.Errorf("Bingo prefetched non-footprint offset %d", off)
		}
	}
}

func TestBingoPrefetchesWholeFootprintOnTrigger(t *testing.T) {
	b := NewBingo(DefaultBingoConfig())
	offs := []int{0, 5, 9}
	// Train on enough regions to cycle the accumulation table.
	regionSeq(b, 0x88, 300, offs)
	// A fresh region's trigger should predict the remaining offsets at once.
	base := uint64(999999) * bingoRegionLines
	cands := b.Train(Access{PC: 0x88, Line: base})
	if len(cands) < len(offs)-1 {
		t.Errorf("trigger predicted %d lines, want >= %d", len(cands), len(offs)-1)
	}
}

func TestBingoColdMissNoPrediction(t *testing.T) {
	b := NewBingo(DefaultBingoConfig())
	if cands := b.Train(Access{PC: 1, Line: 123456}); len(cands) != 0 {
		t.Errorf("cold trigger predicted %v", cands)
	}
}

func TestBingoUnionAccumulates(t *testing.T) {
	b := NewBingo(DefaultBingoConfig())
	// Alternate two footprint variants under one PC+offset event: the PHT
	// entry should converge to (a superset of) their union, so triggers
	// overpredict on the sparse variant — Bingo's coverage-first behavior.
	for r := 0; r < 300; r++ {
		base := uint64(7000+r) * bingoRegionLines
		offs := []int{0, 2, 4}
		if r%2 == 1 {
			offs = []int{0, 2, 4, 8, 12}
		}
		for _, o := range offs {
			b.Train(Access{PC: 0x99, Line: base + uint64(o)})
		}
	}
	base := uint64(888888) * bingoRegionLines
	cands := b.Train(Access{PC: 0x99, Line: base})
	if len(cands) < 4 {
		t.Errorf("union footprint predicted only %d lines", len(cands))
	}
}

func TestMLOPElectsStreamOffsets(t *testing.T) {
	m := NewMLOP(DefaultMLOPConfig())
	line := uint64(1 << 20)
	for i := 0; i < 3000; i++ {
		m.Train(Access{PC: 1, Line: line})
		line++
		if mem.LineOffsetOfLine(line) == 0 {
			line += 0 // page crossings happen naturally
		}
	}
	offs := m.Offsets()
	if len(offs) == 0 {
		t.Fatal("MLOP elected no offsets on a pure stream")
	}
	for _, d := range offs {
		if d <= 0 {
			t.Errorf("stream elected non-positive offset %d", d)
		}
	}
}

func TestMLOPRejectsRandom(t *testing.T) {
	m := NewMLOP(DefaultMLOPConfig())
	x := uint64(99)
	for i := 0; i < 3000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		m.Train(Access{PC: 1, Line: x >> 30})
	}
	if offs := m.Offsets(); len(offs) != 0 {
		t.Errorf("MLOP elected %v on random traffic", offs)
	}
}

func TestMLOPEmitsElectedOffsets(t *testing.T) {
	m := NewMLOP(DefaultMLOPConfig())
	line := uint64(1 << 21)
	var lastCands []uint64
	for i := 0; i < 2000; i++ {
		if c := m.Train(Access{PC: 1, Line: line}); len(c) > 0 {
			lastCands = c
		}
		line++
	}
	if len(lastCands) == 0 {
		t.Fatal("MLOP never emitted prefetches on a stream")
	}
}

func TestDSPatchBandwidthModulation(t *testing.T) {
	lowSys := fixedBW(0.1)
	highSys := fixedBW(0.9)
	train := func(sys System) int {
		d := NewDSPatch(DefaultDSPatchConfig(), sys)
		issued := 0
		// Footprints vary: CovP (union) grows beyond AccP (intersection).
		for r := 0; r < 300; r++ {
			base := uint64(3000+r) * dspatchRegionLines
			offs := []int{0, 1, 2}
			if r%2 == 0 {
				offs = []int{0, 1, 2, 5, 9, 13}
			}
			for _, o := range offs {
				issued += len(d.Train(Access{PC: 0x55, Line: base + uint64(o)}))
			}
		}
		return issued
	}
	low, high := train(lowSys), train(highSys)
	if low <= high {
		t.Errorf("DSPatch should prefetch more under low bandwidth: low=%d high=%d", low, high)
	}
}

type fixedBW float64

func (f fixedBW) BandwidthUtil() float64 { return float64(f) }

func TestIPCPConstantStride(t *testing.T) {
	p := NewIPCP(DefaultIPCPConfig())
	base := uint64(1 << 22)
	var issued []uint64
	for i := uint64(0); i < 12; i++ {
		issued = append(issued, p.Train(Access{PC: 0x10, Line: base + i*2})...)
	}
	if len(issued) == 0 {
		t.Fatal("IPCP CS class never fired")
	}
	for _, c := range issued {
		if (c-base)%2 != 0 {
			t.Errorf("CS prefetch %d off the stride grid", c)
		}
	}
}

func TestIPCPGlobalStream(t *testing.T) {
	p := NewIPCP(DefaultIPCPConfig())
	base := uint64(1 << 23)
	var issued int
	// Sequential lines from alternating PCs: no per-IP stride, but a global
	// stream.
	for i := uint64(0); i < 40; i++ {
		pc := uint64(0x100 + (i%2)*8)
		issued += len(p.Train(Access{PC: pc, Line: base + i}))
	}
	if issued == 0 {
		t.Error("IPCP GS class never fired on a global stream")
	}
}

func TestPower7AdaptsDepthDown(t *testing.T) {
	cfg := DefaultPower7Config()
	cfg.Interval = 200
	p := NewPower7(cfg)
	start := p.Depth()
	// Random traffic: prefetches are useless, depth must not grow.
	x := uint64(5)
	for i := 0; i < 4000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p.Train(Access{PC: 1, Line: x >> 30})
	}
	if p.Depth() > start {
		t.Errorf("depth grew from %d to %d on useless traffic", start, p.Depth())
	}
}

func TestPower7StreamsStillPrefetch(t *testing.T) {
	p := NewPower7(DefaultPower7Config())
	base := uint64(1 << 24)
	issued := 0
	for i := uint64(0); i < 200; i++ {
		issued += len(p.Train(Access{PC: 1, Line: base + i}))
	}
	if issued == 0 {
		t.Error("POWER7 never prefetched a stream")
	}
}
