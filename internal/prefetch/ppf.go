package prefetch

// PPF implements Perceptron-based Prefetch Filtering [Bhatia et al., ISCA
// 2019] on top of SPP: the underlying SPP runs with a lowered confidence
// threshold (more aggressive candidates) and a perceptron decides per
// candidate whether to issue it. The perceptron's weight tables are indexed
// by simple features of the triggering access and candidate; it trains
// online from prefetch outcomes tracked in a recent-prefetch window (the
// hardware uses its prefetch table + reject table for the same purpose).

const (
	ppfWeightMax   = 31
	ppfWeightMin   = -32
	ppfTableSize   = 1024
	ppfNumFeatures = 4
)

// PPFConfig tunes the filter.
type PPFConfig struct {
	// Threshold is the perceptron sum needed to issue a prefetch.
	Threshold int
	// Window is the outcome-tracking window size.
	Window int
	// SPP configures the underlying prefetcher; Threshold there is
	// typically lowered (candidates are filtered anyway).
	SPP SPPConfig
}

// DefaultPPFConfig returns the published configuration adapted to this
// implementation.
func DefaultPPFConfig() PPFConfig {
	spp := DefaultSPPConfig()
	spp.Threshold = 0.10
	return PPFConfig{Threshold: -2, Window: 1024, SPP: spp}
}

type ppfPending struct {
	features [ppfNumFeatures]int
}

// PPF is the filtered SPP prefetcher.
type PPF struct {
	cfg      PPFConfig
	spp      *SPP
	weights  [ppfNumFeatures][ppfTableSize]int8
	inFlight map[uint64]ppfPending
	window   *recentSet
}

// NewPPF builds a PPF instance.
func NewPPF(cfg PPFConfig) *PPF {
	p := &PPF{cfg: cfg, spp: NewSPP(cfg.SPP), inFlight: make(map[uint64]ppfPending)}
	p.window = newRecentSet(cfg.Window, p.onOutcome)
	return p
}

// Name implements Prefetcher.
func (p *PPF) Name() string { return "spp_ppf" }

func (p *PPF) features(a Access, cand uint64) [ppfNumFeatures]int {
	delta := int(int64(cand) - int64(a.Line))
	return [ppfNumFeatures]int{
		int(a.PC>>2) & (ppfTableSize - 1),
		int(a.PC>>2^uint64(delta+64)) & (ppfTableSize - 1),
		int(cand) & (ppfTableSize - 1),
		(delta + 512) & (ppfTableSize - 1),
	}
}

func (p *PPF) sum(f [ppfNumFeatures]int) int {
	s := 0
	for i, idx := range f {
		s += int(p.weights[i][idx])
	}
	return s
}

func (p *PPF) adjust(f [ppfNumFeatures]int, up bool) {
	for i, idx := range f {
		w := p.weights[i][idx]
		if up && w < ppfWeightMax {
			p.weights[i][idx] = w + 1
		}
		if !up && w > ppfWeightMin {
			p.weights[i][idx] = w - 1
		}
	}
}

// onOutcome trains the perceptron when a tracked prefetch ages out.
func (p *PPF) onOutcome(line uint64, demanded bool) {
	pend, ok := p.inFlight[line]
	if !ok {
		return
	}
	delete(p.inFlight, line)
	p.adjust(pend.features, demanded)
}

// Train implements Prefetcher.
func (p *PPF) Train(a Access) []uint64 {
	// Positive feedback: a demand to a recently prefetched line.
	if p.window.demand(a.Line) {
		if pend, ok := p.inFlight[a.Line]; ok {
			p.adjust(pend.features, true)
			delete(p.inFlight, a.Line)
		}
	}
	cands := p.spp.Train(a)
	out := cands[:0]
	for _, c := range cands {
		f := p.features(a, c)
		if p.sum(f) >= p.cfg.Threshold {
			out = append(out, c)
			p.inFlight[c] = ppfPending{features: f}
			p.window.add(c)
		}
	}
	return out
}

// Fill implements Prefetcher.
func (p *PPF) Fill(uint64) {}
