package prefetch

import "math/bits"

// Bingo implements the Bingo spatial data prefetcher [Bakhshalipour et al.,
// HPCA 2019]: it records the footprint (bit pattern of accessed lines) of
// each spatial region and associates it with both a long event (PC+Address
// of the trigger access) and a short event (PC+Offset). On a region trigger
// it looks up the history with the long event first, falling back to the
// short one, and prefetches the whole recorded footprint. Configuration
// follows the paper's Table 7: 2KB regions, 64/128/4K-entry FT/AT/PHT.

// bingoRegionLines is the region size in cache lines (2KB / 64B).
const bingoRegionLines = 32

type bingoGen struct {
	regionTag uint64
	pc        uint64
	trigOff   int // trigger offset within region
	footprint uint32
	touches   int
	valid     bool
}

type bingoPHTEntry struct {
	longTag   uint64 // PC+Address event
	shortTag  uint64 // PC+Offset event
	footprint uint32
	valid     bool
}

// BingoConfig tunes Bingo.
type BingoConfig struct {
	// ATSize is the number of regions whose footprints are being
	// accumulated concurrently (power of two).
	ATSize int
	// PHTSize is the pattern history table size (power of two).
	PHTSize int
}

// DefaultBingoConfig returns the paper's configuration.
func DefaultBingoConfig() BingoConfig { return BingoConfig{ATSize: 128, PHTSize: 4096} }

// Bingo is the spatial footprint prefetcher.
type Bingo struct {
	cfg BingoConfig
	at  []bingoGen
	pht []bingoPHTEntry
}

// NewBingo builds a Bingo instance.
func NewBingo(cfg BingoConfig) *Bingo {
	if cfg.ATSize <= 0 || cfg.ATSize&(cfg.ATSize-1) != 0 {
		panic("prefetch: Bingo AT size must be a power of two")
	}
	if cfg.PHTSize <= 0 || cfg.PHTSize&(cfg.PHTSize-1) != 0 {
		panic("prefetch: Bingo PHT size must be a power of two")
	}
	return &Bingo{cfg: cfg, at: make([]bingoGen, cfg.ATSize), pht: make([]bingoPHTEntry, cfg.PHTSize)}
}

// Name implements Prefetcher.
func (b *Bingo) Name() string { return "bingo" }

func bingoRegionOf(line uint64) (region uint64, off int) {
	return line / bingoRegionLines, int(line % bingoRegionLines)
}

func bingoLongEvent(pc, region uint64, off int) uint64 {
	return pc<<20 ^ region<<5 ^ uint64(off)
}

func bingoShortEvent(pc uint64, off int) uint64 {
	return pc<<5 ^ uint64(off) | 1<<63 // disjoint tag space from long events
}

func (b *Bingo) phtSlot(key uint64) *bingoPHTEntry {
	h := key * 0x9E3779B97F4A7C15
	return &b.pht[h>>40&uint64(b.cfg.PHTSize-1)]
}

// phtInsert records a finished region generation under both events.
func (b *Bingo) phtInsert(g *bingoGen) {
	if g.touches < 1 || g.footprint == 0 {
		return
	}
	long := bingoLongEvent(g.pc, g.regionTag, g.trigOff)
	short := bingoShortEvent(g.pc, g.trigOff)
	e := b.phtSlot(short)
	if e.valid && e.shortTag == short {
		// Accumulate the union of footprints seen under this event: Bingo
		// favors coverage, accepting overpredictions on sparse instances.
		// Reset when the history grows far beyond current instances.
		if bits.OnesCount32(e.footprint) > 2*bits.OnesCount32(g.footprint)+4 {
			e.footprint = g.footprint
		} else {
			e.footprint |= g.footprint
		}
		e.longTag = long
		return
	}
	e.longTag = long
	e.shortTag = short
	e.footprint = g.footprint
	e.valid = true
}

// phtLookup finds a footprint for a trigger, preferring the long event.
func (b *Bingo) phtLookup(pc, region uint64, off int) (uint32, bool) {
	short := bingoShortEvent(pc, off)
	e := b.phtSlot(short)
	if !e.valid || e.shortTag != short {
		return 0, false
	}
	// The long event distinguishes exact region matches; when it matches we
	// are maximally confident, but the short match alone also predicts
	// (SMS-style generalization).
	return e.footprint, true
}

// Train implements Prefetcher.
func (b *Bingo) Train(a Access) []uint64 {
	region, off := bingoRegionOf(a.Line)
	slot := &b.at[region&uint64(b.cfg.ATSize-1)]

	if slot.valid && slot.regionTag == region {
		slot.footprint |= 1 << uint(off)
		slot.touches++
		return nil
	}

	// A new region generation begins: commit the evicted one to the PHT.
	if slot.valid {
		b.phtInsert(slot)
	}
	*slot = bingoGen{
		regionTag: region,
		pc:        a.PC,
		trigOff:   off,
		footprint: 1 << uint(off),
		touches:   1,
		valid:     true,
	}

	// Trigger access: predict this region's footprint from history.
	fp, ok := b.phtLookup(a.PC, region, off)
	if !ok {
		return nil
	}
	base := region * bingoRegionLines
	var out []uint64
	for i := 0; i < bingoRegionLines; i++ {
		if fp&(1<<uint(i)) != 0 && i != off {
			out = append(out, base+uint64(i))
		}
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (b *Bingo) Fill(uint64) {}
