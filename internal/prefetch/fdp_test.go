package prefetch

import "testing"

func TestFDPThrottlesUselessPrefetcher(t *testing.T) {
	cfg := DefaultFDPConfig()
	cfg.Interval = 256
	// Wrap an always-wrong prefetcher: candidates are never demanded.
	f := NewFDP(cfg, NewNextLine(4), fixedBW(0.1))
	start := f.Level()
	x := uint64(3)
	for i := 0; i < 8000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		f.Train(Access{PC: 1, Line: x >> 30})
	}
	if f.Level() >= start {
		t.Errorf("level %d did not drop from %d on useless prefetches", f.Level(), start)
	}
}

func TestFDPKeepsAccuratePrefetcherAggressive(t *testing.T) {
	cfg := DefaultFDPConfig()
	cfg.Interval = 256
	f := NewFDP(cfg, NewNextLine(1), fixedBW(0.1))
	line := uint64(1 << 20)
	for i := 0; i < 8000; i++ {
		f.Train(Access{PC: 1, Line: line})
		line++ // next access demands the previous candidate: accuracy ~1
	}
	if f.Level() != len(cfg.Levels)-1 {
		t.Errorf("accurate stream throttled to level %d", f.Level())
	}
}

func TestFDPBandwidthAddsThrottle(t *testing.T) {
	cfg := DefaultFDPConfig()
	cfg.Levels = []float64{0.0, 1.0} // level 0 drops everything
	low := NewFDP(cfg, NewNextLine(4), fixedBW(0.1))
	high := NewFDP(cfg, NewNextLine(4), fixedBW(0.95))
	line := uint64(1 << 21)
	nLow, nHigh := 0, 0
	for i := 0; i < 1000; i++ {
		nLow += len(low.Train(Access{PC: 1, Line: line}))
		nHigh += len(high.Train(Access{PC: 1, Line: line}))
		line++
	}
	if nHigh >= nLow {
		t.Errorf("high bandwidth should throttle harder: low=%d high=%d", nLow, nHigh)
	}
}

func TestFDPDelegatesFill(t *testing.T) {
	inner := &trackFill{}
	f := NewFDP(DefaultFDPConfig(), inner, nil)
	f.Fill(42)
	if inner.got != 42 {
		t.Errorf("Fill not delegated: %d", inner.got)
	}
	if f.Name() != "fdp+track" {
		t.Errorf("Name() = %q", f.Name())
	}
}

type trackFill struct{ got uint64 }

func (t *trackFill) Name() string          { return "track" }
func (t *trackFill) Train(Access) []uint64 { return nil }
func (t *trackFill) Fill(line uint64)      { t.got = line }
