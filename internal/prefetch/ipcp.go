package prefetch

// IPCP implements the Instruction Pointer Classifier-based Prefetcher
// [Pakalapati & Panda, ISCA 2020], winner of DPC3: each load IP is
// classified as constant-stride (CS), complex-pattern (CPLX), or
// global-stream (GS) and prefetched with a class-specific engine.

// IPCPConfig tunes IPCP.
type IPCPConfig struct {
	// IPTableSize is the per-IP classifier table size (power of two).
	IPTableSize int
	// CSDegree is the constant-stride prefetch degree.
	CSDegree int
	// GSDepth is the stream depth when the global-stream class fires.
	GSDepth int
}

// DefaultIPCPConfig returns a DPC3-like configuration.
func DefaultIPCPConfig() IPCPConfig {
	return IPCPConfig{IPTableSize: 1024, CSDegree: 4, GSDepth: 6}
}

const (
	ipcpClassNone = iota
	ipcpClassCS
	ipcpClassCPLX
	ipcpClassGS
)

type ipcpEntry struct {
	tag      uint64
	lastLine uint64
	stride   int64
	conf     int8
	class    int8
	sig      uint16
	valid    bool
}

// IPCP is the IP-classifier prefetcher.
type IPCP struct {
	cfg  IPCPConfig
	ipt  []ipcpEntry
	cplx [4096]struct {
		delta int16
		conf  int8
	}
	// global stream detector
	gsLast uint64
	gsRun  int
	gsDir  int64
}

// NewIPCP builds an IPCP instance.
func NewIPCP(cfg IPCPConfig) *IPCP {
	if cfg.IPTableSize <= 0 || cfg.IPTableSize&(cfg.IPTableSize-1) != 0 {
		panic("prefetch: IPCP table size must be a power of two")
	}
	return &IPCP{cfg: cfg, ipt: make([]ipcpEntry, cfg.IPTableSize)}
}

// Name implements Prefetcher.
func (p *IPCP) Name() string { return "ipcp" }

// Train implements Prefetcher.
func (p *IPCP) Train(a Access) []uint64 {
	e := &p.ipt[(a.PC>>2)&uint64(p.cfg.IPTableSize-1)]
	if !e.valid || e.tag != a.PC {
		*e = ipcpEntry{tag: a.PC, lastLine: a.Line, valid: true}
		return nil
	}
	delta := int64(a.Line) - int64(e.lastLine)
	e.lastLine = a.Line

	// Global stream detection (any-IP monotonic run).
	gsDelta := int64(a.Line) - int64(p.gsLast)
	p.gsLast = a.Line
	if gsDelta == 1 || gsDelta == -1 {
		if p.gsDir == gsDelta {
			p.gsRun++
		} else {
			p.gsDir, p.gsRun = gsDelta, 1
		}
	} else if gsDelta != 0 {
		p.gsRun = 0
	}

	if delta == 0 {
		return nil
	}

	// Classify: constant stride first.
	if delta == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = delta
		}
	}

	// CPLX: delta signature -> next delta correlation.
	sigIdx := int(e.sig) & 4095
	c := &p.cplx[sigIdx]
	if int64(c.delta) == delta {
		if c.conf < 3 {
			c.conf++
		}
	} else if c.conf > 0 {
		c.conf--
	} else {
		c.delta = int16(delta)
		c.conf = 1
	}
	e.sig = uint16((int(e.sig)<<3 ^ int(delta&0x3f)) & 4095)

	switch {
	case e.conf >= 2:
		e.class = ipcpClassCS
	case p.gsRun >= 4:
		e.class = ipcpClassGS
	case c.conf >= 2:
		e.class = ipcpClassCPLX
	default:
		e.class = ipcpClassNone
	}

	var out []uint64
	switch e.class {
	case ipcpClassCS:
		next := a.Line
		for i := 0; i < p.cfg.CSDegree; i++ {
			next = uint64(int64(next) + e.stride)
			out = append(out, next)
		}
	case ipcpClassGS:
		for i := 1; i <= p.cfg.GSDepth; i++ {
			out = append(out, uint64(int64(a.Line)+int64(i)*p.gsDir))
		}
	case ipcpClassCPLX:
		// Walk the complex-delta chain a short distance.
		sig := e.sig
		line := a.Line
		for i := 0; i < 3; i++ {
			cc := p.cplx[int(sig)&4095]
			if cc.conf < 2 || cc.delta == 0 {
				break
			}
			line = uint64(int64(line) + int64(cc.delta))
			out = append(out, line)
			sig = uint16((int(sig)<<3 ^ int(int64(cc.delta)&0x3f)) & 4095)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return clampToPage(a.Line, out)
}

// Fill implements Prefetcher.
func (p *IPCP) Fill(uint64) {}
