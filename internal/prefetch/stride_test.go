package prefetch

import (
	"testing"

	"pythia/internal/mem"
)

// feed drives a prefetcher with a line sequence under one PC and collects
// all candidates.
func feed(p Prefetcher, pc uint64, lines []uint64) []uint64 {
	var out []uint64
	for i, l := range lines {
		out = append(out, p.Train(Access{PC: pc, Line: l, Cycle: int64(i)})...)
	}
	return out
}

func TestStrideDetectsConstantStride(t *testing.T) {
	s := NewStride(256, 2)
	base := uint64(1 << 20)
	var lines []uint64
	for i := uint64(0); i < 10; i++ {
		lines = append(lines, base+i*3)
	}
	cands := feed(s, 0x400, lines)
	if len(cands) == 0 {
		t.Fatal("no prefetches for a constant stride")
	}
	// Candidates must continue the stride.
	last := lines[len(lines)-1]
	found := false
	for _, c := range cands {
		if c == last+3 || c == last+6 {
			found = true
		}
	}
	if !found {
		t.Errorf("candidates %v do not extend stride 3 from %d", cands, last)
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	s := NewStride(256, 2)
	lines := []uint64{100, 900, 300, 777, 50, 1234, 42, 999}
	if cands := feed(s, 0x400, lines); len(cands) != 0 {
		t.Errorf("random sequence produced prefetches: %v", cands)
	}
}

func TestStrideSeparatesPCs(t *testing.T) {
	s := NewStride(256, 1)
	// Two PCs with different strides interleaved; both should be detected.
	var got2, got5 bool
	for i := uint64(0); i < 12; i++ {
		for _, c := range s.Train(Access{PC: 0x1000, Line: 1<<20 + i*2}) { // slots differ: (pc>>2)&mask
			if c == 1<<20+i*2+2 {
				got2 = true
			}
		}
		for _, c := range s.Train(Access{PC: 0x2004, Line: 1<<21 + i*5}) {
			if c == 1<<21+i*5+5 {
				got5 = true
			}
		}
	}
	if !got2 || !got5 {
		t.Errorf("per-PC strides not both detected: +2=%v +5=%v", got2, got5)
	}
}

func TestStrideStaysInPage(t *testing.T) {
	s := NewStride(256, 4)
	// Stride that runs off the page end: candidates must be clamped.
	base := uint64(1<<20) + mem.LinesPerPage - 4
	var lines []uint64
	for i := uint64(0); i < 6; i++ {
		lines = append(lines, base+i)
	}
	for _, c := range feed(s, 0x400, lines) {
		if !mem.SamePage(c, lines[len(lines)-1]) && !mem.SamePage(c, lines[0]) {
			// candidate must share a page with its trigger
			t.Errorf("candidate %d escaped the page", c)
		}
	}
}

func TestStrideBadTableSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-power-of-two table")
		}
	}()
	NewStride(100, 2)
}

func TestNextLine(t *testing.T) {
	n := NewNextLine(2)
	cands := n.Train(Access{Line: 1000})
	if len(cands) != 2 || cands[0] != 1001 || cands[1] != 1002 {
		t.Errorf("candidates %v, want [1001 1002]", cands)
	}
	if n.Name() == "" {
		t.Error("empty name")
	}
	// Page end: nothing beyond the boundary.
	lastLine := uint64(mem.LinesPerPage - 1)
	if cands := n.Train(Access{Line: lastLine}); len(cands) != 0 {
		t.Errorf("page-end next-line emitted %v", cands)
	}
}

func TestStreamerForward(t *testing.T) {
	s := NewStreamer(64, 4)
	base := uint64(1 << 20)
	var all []uint64
	for i := uint64(0); i < 8; i++ {
		all = append(all, s.Train(Access{PC: 1, Line: base + i})...)
	}
	if len(all) == 0 {
		t.Fatal("no stream prefetches")
	}
	for _, c := range all {
		if c <= base {
			t.Errorf("forward stream prefetched backwards: %d", c)
		}
	}
}

func TestStreamerBackward(t *testing.T) {
	s := NewStreamer(64, 4)
	base := uint64(1<<20) + 32
	var all []uint64
	for i := uint64(0); i < 8; i++ {
		all = append(all, s.Train(Access{PC: 1, Line: base - i})...)
	}
	if len(all) == 0 {
		t.Fatal("no backward stream prefetches")
	}
	for _, c := range all {
		if c >= base {
			t.Errorf("backward stream prefetched forwards: %d", c)
		}
	}
}

func TestStreamerDepthControl(t *testing.T) {
	s := NewStreamer(64, 8)
	if s.Depth() != 8 {
		t.Fatalf("Depth() = %d", s.Depth())
	}
	s.SetDepth(0)
	base := uint64(1 << 20)
	var all []uint64
	for i := uint64(0); i < 8; i++ {
		all = append(all, s.Train(Access{PC: 1, Line: base + i})...)
	}
	if len(all) != 0 {
		t.Errorf("depth 0 should disable prefetching, got %v", all)
	}
	s.SetDepth(-5)
	if s.Depth() != 0 {
		t.Errorf("negative depth should clamp to 0, got %d", s.Depth())
	}
}

func TestMultiComposition(t *testing.T) {
	m := NewMulti("hybrid", NewNextLine(1), NewNextLine(2))
	cands := m.Train(Access{Line: 500})
	if len(cands) != 3 {
		t.Errorf("hybrid emitted %d candidates, want 3", len(cands))
	}
	if m.Name() != "hybrid" {
		t.Errorf("Name() = %q", m.Name())
	}
	m.Fill(501) // must not panic
}

func TestNonePrefetcher(t *testing.T) {
	var n None
	if got := n.Train(Access{Line: 1}); got != nil {
		t.Errorf("None emitted %v", got)
	}
	n.Fill(1)
	if n.Name() != "nopref" {
		t.Errorf("Name() = %q", n.Name())
	}
}

func TestRecentSet(t *testing.T) {
	var evicted []uint64
	var demanded []bool
	r := newRecentSet(4, func(line uint64, d bool) {
		evicted = append(evicted, line)
		demanded = append(demanded, d)
	})
	for i := uint64(1); i <= 4; i++ {
		r.add(i)
	}
	if !r.contains(1) {
		t.Fatal("line 1 should be tracked")
	}
	if !r.demand(2) {
		t.Fatal("demand to tracked line should report true")
	}
	if r.demand(99) {
		t.Fatal("unknown line should report false")
	}
	// Push two more: lines 1 and 2 age out.
	r.add(5)
	r.add(6)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evictions %v", evicted)
	}
	if demanded[0] || !demanded[1] {
		t.Errorf("demanded flags %v, want [false true]", demanded)
	}
}
