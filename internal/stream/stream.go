// Package stream delivers trace records to simulations in bounded memory.
//
// The seed architecture materialized every trace as an in-memory []Record
// before a simulation could start, which capped horizons at a few million
// records per core. This package decouples trace production from
// consumption (the vhive-invitro synthesizer split, applied to memory
// traces): a Source produces restartable trace.Readers on demand, and each
// reader pumps records through a bounded ring of reusable column chunks
// (trace.Chunk — SoA parallel slices) filled by a producer goroutine, so
// generation or file decode overlaps simulation and peak resident trace
// memory is capped at a handful of chunks regardless of trace length.
// Readers implement both the record-at-a-time trace.Reader face and the
// batched trace.ChunkReader fast path the fused simulation kernel
// consumes (DESIGN.md "The chunk-column contract").
//
// Two backends exist:
//
//   - GenSource replays the workload's deterministic generator on every
//     Open/Reset (a fresh Spec per pass, since actors carry state).
//   - FileSource streams the on-disk binary trace format incrementally,
//     resetting by reopening — cheap multi-core replay without re-running
//     the generator.
//
// Cache ties them together: a content-addressed on-disk trace cache
// (keyed by workload name, seed, length and generator version) with
// singleflight-deduplicated population, so repeated experiments and
// parallel workers share one generation pass and then stream from disk.
package stream

import (
	"io"

	"pythia/internal/trace"
)

// DefaultChunk is the default chunk size in records (~768 KiB of records
// per chunk at 24 B/record).
const DefaultChunk = 1 << 15

// DefaultDepth is the default chunk-ring depth: the producer may run at
// most this many chunks ahead of the consumer. Peak resident memory per
// reader is (depth+2) chunks — one being filled, the ring, one being
// drained.
const DefaultDepth = 2

// Reader is a restartable record stream that owns resources: a producer
// goroutine and possibly an open file. Callers must Close it when the
// simulation is done (Close is idempotent); cpu.System.Close does this for
// every core reader.
//
// Delivery can fail mid-stream (a cache file deleted or corrupted under a
// running simulation, a reset that cannot reopen its pass). Such failures
// surface through the read path, never as panics: Next returns ok == false
// and Err reports the sticky first error, distinguishing a failure from a
// genuine end of trace (Err == nil). Consumers must check Err before
// treating ok == false as EOF — the cpu driver does, and aborts the
// simulation with the error instead of silently truncating.
type Reader interface {
	trace.Reader
	io.Closer
	// Err returns the first delivery error, or nil if the stream has only
	// ever ended cleanly. It is sticky: once non-nil, Next keeps returning
	// false and Reset is a no-op.
	Err() error
}

// Source produces fresh Readers over one trace. A Source is cheap and
// stateless; all per-pass state lives in the Reader, so any number of
// cores can Open the same Source concurrently.
type Source interface {
	// Name identifies the underlying trace.
	Name() string
	// Open returns a new Reader positioned at the first record.
	Open() (Reader, error)
}

// SliceSource adapts an already-materialized trace to the Source
// interface, for callers that mix small in-memory traces with streamed
// ones.
type SliceSource struct {
	T *trace.Trace
}

// Name implements Source.
func (s *SliceSource) Name() string { return s.T.Name }

// Open implements Source.
func (s *SliceSource) Open() (Reader, error) {
	return nopCloserReader{trace.NewSliceReader(s.T.Records)}, nil
}

type nopCloserReader struct{ *trace.SliceReader }

func (nopCloserReader) Close() error { return nil }

func (nopCloserReader) Err() error { return nil }

func chunkOr(n int) int {
	if n <= 0 {
		return DefaultChunk
	}
	return n
}

func depthOr(n int) int {
	if n <= 0 {
		return DefaultDepth
	}
	return n
}
