package stream

import (
	"fmt"
	"io"
	"os"
	"sync"

	"pythia/internal/fault"
	"pythia/internal/trace"
)

// FPDecode is the failpoint inside the trace decode loop; arming it
// simulates a file corrupting under a running simulation. Decode
// failures are permanent by classification: the same file will fail the
// same way, so retrying the job cannot help.
const FPDecode = "stream.decode"

// FileSource streams a trace file written in the binary trace format
// (trace.Encoder). Decoding is incremental through the chunk pipeline, so
// opening a multi-gigabyte trace costs a header read; Reset reopens the
// file, which makes multi-core replay cheap compared to re-running a
// generator. A FileSource may be Opened concurrently (each reader owns its
// own file descriptor).
type FileSource struct {
	Path string
	// Chunk is records per pipeline chunk (0 = DefaultChunk).
	Chunk int
	// Depth is the chunk-ring depth (0 = DefaultDepth).
	Depth int

	nameOnce sync.Once
	name     string
}

// Name implements Source. It returns the trace name from the file header,
// falling back to the path when the header is unreadable.
func (s *FileSource) Name() string {
	s.nameOnce.Do(func() {
		s.name = s.Path
		f, err := os.Open(s.Path)
		if err != nil {
			return
		}
		defer f.Close()
		if d, err := trace.NewDecoder(f); err == nil {
			s.name = d.Name()
		}
	})
	return s.name
}

// Open implements Source.
func (s *FileSource) Open() (Reader, error) {
	// Validate eagerly so a missing or corrupt file fails at Open, not
	// inside the producer.
	it, cl, err := s.openPass()
	if err != nil {
		return nil, err
	}
	first := true
	return newChunkedReader(func() (trace.Iter, io.Closer, error) {
		if first {
			first = false
			return it, cl, nil
		}
		return s.openPass()
	}, s.Chunk, s.Depth)
}

func (s *FileSource) openPass() (trace.Iter, io.Closer, error) {
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, nil, err
	}
	d, err := trace.NewDecoder(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("stream: %s: %w", s.Path, err)
	}
	return &fileIter{d: d, path: s.Path}, f, nil
}

// fileIter adapts a Decoder to trace.Iter. A decode error mid-stream means
// the file changed or corrupted under a running simulation, whose results
// would silently be garbage — so the error is recorded and surfaced
// through the reader's Err path (the driver aborts the run) rather than
// truncating the stream or panicking.
type fileIter struct {
	d    *trace.Decoder
	path string
	err  error
}

// Next implements trace.Iter.
func (it *fileIter) Next() (trace.Record, bool) {
	if it.err != nil {
		return trace.Record{}, false
	}
	if ferr := fault.Hit(FPDecode); ferr != nil {
		it.err = fmt.Errorf("stream: decoding %s: %w", it.path, ferr)
		return trace.Record{}, false
	}
	rec, err := it.d.Next()
	if err == io.EOF {
		return trace.Record{}, false
	}
	if err != nil {
		it.err = fmt.Errorf("stream: decoding %s: %w", it.path, err)
		return trace.Record{}, false
	}
	return rec, true
}

// FillChunk implements trace.ChunkFiller: records decode straight onto
// the chunk's columns (Decoder.DecodeInto), never materializing a Record
// between disk and ring. The FPDecode failpoint is still consulted per
// record — fault specs count hits in records, and a "file corrupted
// mid-stream" must be able to land mid-chunk.
func (it *fileIter) FillChunk(c *trace.Chunk, max int) int {
	if it.err != nil {
		return 0
	}
	n := 0
	for n < max {
		if ferr := fault.Hit(FPDecode); ferr != nil {
			it.err = fmt.Errorf("stream: decoding %s: %w", it.path, ferr)
			break
		}
		err := it.d.DecodeInto(c)
		if err == io.EOF {
			break
		}
		if err != nil {
			it.err = fmt.Errorf("stream: decoding %s: %w", it.path, err)
			break
		}
		n++
	}
	return n
}

// Err reports the sticky decode error; the chunk pipeline's producer
// forwards it to the consumer side.
func (it *fileIter) Err() error { return it.err }
