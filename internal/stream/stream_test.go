package stream

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"pythia/internal/trace"
)

// bgCtx is the context for tests that don't exercise cancellation.
var bgCtx = context.Background()

func testWorkload(t testing.TB) trace.Workload {
	t.Helper()
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("registry workload missing")
	}
	return w
}

// drain collects up to limit records from r (limit <= 0 means all).
func drain(r trace.Reader, limit int) []trace.Record {
	var out []trace.Record
	for limit <= 0 || len(out) < limit {
		rec, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

func mustEqual(t *testing.T, got, want []trace.Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestGenSourceMatchesGenerate is the cornerstone equivalence: streaming
// delivery yields exactly the record sequence the materializing path
// produces, across Open, mid-stream Reset and post-EOF Reset — which is
// why experiment tables are byte-identical on either path.
func TestGenSourceMatchesGenerate(t *testing.T) {
	w := testWorkload(t)
	const n = 100_000
	want := w.Generate(n).Records

	src := &GenSource{W: w, N: n, Chunk: 4096}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	mustEqual(t, drain(r, 0), want, "first pass")
	if _, ok := r.Next(); ok {
		t.Fatal("Next after EOF returned a record")
	}
	r.Reset()
	mustEqual(t, drain(r, 0), want, "post-EOF reset pass")

	// Mid-stream reset must restart from the first record.
	r.Reset()
	drain(r, 1234)
	r.Reset()
	mustEqual(t, drain(r, 0), want, "mid-stream reset pass")
}

func TestFileSourceMatchesGenerate(t *testing.T) {
	w := testWorkload(t)
	const n = 50_000
	want := w.Generate(n).Records

	cache := NewCache(t.TempDir())
	src, err := cache.Source(bgCtx, w, n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != w.Name {
		t.Errorf("source name %q, want %q", src.Name(), w.Name)
	}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustEqual(t, drain(r, 0), want, "file pass")
	r.Reset()
	drain(r, 777)
	r.Reset()
	mustEqual(t, drain(r, 0), want, "file reset pass")
}

func TestFileSourceOpenErrors(t *testing.T) {
	if _, err := (&FileSource{Path: filepath.Join(t.TempDir(), "missing.pytr")}).Open(); err == nil {
		t.Error("Open of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.pytr")
	if err := os.WriteFile(bad, []byte("NOTATRACE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (&FileSource{Path: bad}).Open(); err == nil {
		t.Error("Open of a corrupt file succeeded")
	}
}

// TestCacheSingleflight races many workers at one cache entry: exactly one
// generation pass must happen and every caller must end up streaming the
// same valid file.
func TestCacheSingleflight(t *testing.T) {
	w := testWorkload(t)
	cache := NewCache(t.TempDir())
	const n = 20_000
	paths := make([]string, 16)
	var wg sync.WaitGroup
	for i := range paths {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := cache.Ensure(bgCtx, w, n)
			if err != nil {
				t.Error(err)
				return
			}
			paths[i] = p
		}(i)
	}
	wg.Wait()
	for _, p := range paths[1:] {
		if p != paths[0] {
			t.Fatalf("divergent cache paths %q vs %q", p, paths[0])
		}
	}
	// Exactly one file (no leftover temp files from racing writers).
	entries, err := os.ReadDir(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache dir holds %d entries, want 1", len(entries))
	}
}

// TestCacheRepopulatesInvalid ensures a corrupt cache entry is regenerated
// rather than streamed.
func TestCacheRepopulatesInvalid(t *testing.T) {
	w := testWorkload(t)
	cache := NewCache(t.TempDir())
	path, err := cache.Ensure(bgCtx, w, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Ensure(bgCtx, w, 5000); err != nil {
		t.Fatal(err)
	}
	src, err := cache.Source(bgCtx, w, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustEqual(t, drain(r, 0), w.Generate(5000).Records, "repopulated")
}

// TestCacheServesFixedWorkloadsFromMemory: file-backed workloads must not
// round-trip through the disk cache (their key has no content identity, so
// a regenerated source file with the same name and length could be served
// stale); the cache hands back their resident records directly.
func TestCacheServesFixedWorkloadsFromMemory(t *testing.T) {
	tr := testWorkload(t).Generate(1000)
	fixed := trace.Fixed(tr)
	cache := NewCache(t.TempDir())
	src, err := cache.Source(bgCtx, fixed, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*SliceSource); !ok {
		t.Fatalf("fixed workload served via %T, want *SliceSource", src)
	}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustEqual(t, drain(r, 0), tr.Records, "fixed pass")
	if entries, _ := os.ReadDir(cache.Dir()); len(entries) != 0 {
		t.Errorf("fixed workload wrote %d cache entries", len(entries))
	}
	if _, err := cache.Ensure(bgCtx, fixed, 500); err == nil {
		t.Error("Ensure accepted a fixed workload")
	}
}

// TestCacheKeysDistinguishLengths ensures different trace lengths land on
// different entries.
func TestCacheKeysDistinguishLengths(t *testing.T) {
	w := testWorkload(t)
	cache := NewCache(t.TempDir())
	p1, err := cache.Ensure(bgCtx, w, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cache.Ensure(bgCtx, w, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("1000- and 2000-record traces share a cache entry")
	}
}

// TestStreamingBoundedAllocation is the acceptance gate for the streaming
// path: delivering a trace that would materialize to ~48 MB must allocate
// only the chunk ring plus generator state — no full-trace []Record ever
// exists.
func TestStreamingBoundedAllocation(t *testing.T) {
	w := testWorkload(t)
	const n = 2_000_000 // 48 MB if materialized at 24 B/record
	src := &GenSource{W: w, N: n}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	var count int
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	r.Close()
	runtime.ReadMemStats(&after)

	if count != n {
		t.Fatalf("streamed %d records, want %d", count, n)
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	full := uint64(n) * 24
	if allocated > full/4 {
		t.Errorf("streaming pass allocated %d bytes total (full trace is %d); chunk recycling is broken", allocated, full)
	}
}

// TestReaderCloseReleasesProducer verifies Close (and abandoning a reader
// mid-stream) terminates the producer goroutine.
func TestReaderCloseReleasesProducer(t *testing.T) {
	w := testWorkload(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		src := &GenSource{W: w, N: 1_000_000, Chunk: 1024}
		r, err := src.Open()
		if err != nil {
			t.Fatal(err)
		}
		drain(r, 100) // leave the producer blocked mid-stream
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal("second Close errored:", err)
		}
		r.Reset() // no-op after Close
		if _, ok := r.Next(); ok {
			t.Fatal("Next after Close returned a record")
		}
	}
	// Producers exit asynchronously after Close; give them a beat.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("%d goroutines alive, started with %d: producer leak", got, base)
	}
}

func TestSliceSource(t *testing.T) {
	tr := testWorkload(t).Generate(1000)
	src := &SliceSource{T: tr}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mustEqual(t, drain(r, 0), tr.Records, "slice pass")
	r.Reset()
	mustEqual(t, drain(r, 0), tr.Records, "slice reset")
}

func TestMaterialize(t *testing.T) {
	w := testWorkload(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.pytr")
	recs, instrs, err := Materialize(bgCtx, path, w, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if recs != 10_000 || instrs <= int64(recs) {
		t.Fatalf("wrote %d records / %d instructions", recs, instrs)
	}
	want := w.Generate(10_000)
	fr, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, fr.Trace().Records, want.Records, "materialized file")
	if fr.Trace().Name != w.Name || fr.Trace().Suite != w.Suite {
		t.Errorf("identity %q/%q, want %q/%q", fr.Trace().Name, fr.Trace().Suite, w.Name, w.Suite)
	}

	// An uncreatable path errors and leaves nothing behind.
	badPath := filepath.Join(dir, "no-such-dir", "out.pytr")
	if _, _, err := Materialize(bgCtx, badPath, w, 100); err == nil {
		t.Error("Materialize into a missing directory succeeded")
	}
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Error("partial output left behind")
	}
}

// TestFileReaderSurfacesMidStreamCorruption: truncating a trace file under
// an open reader (the header stays intact, the body dies mid-record) must
// end the stream with Next == false and a sticky non-nil Err — never a
// panic, never a silent truncation that looks like EOF.
func TestFileReaderSurfacesMidStreamCorruption(t *testing.T) {
	w := testWorkload(t)
	const n = 20_000
	cache := NewCache(t.TempDir())
	path, err := cache.Ensure(bgCtx, w, n)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header plus a prefix of the body; the decoder hits
	// unexpected EOF before reaching the declared record count.
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	src := &FileSource{Path: path, Chunk: 512}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err) // header is intact, Open must succeed
	}
	defer r.Close()
	got := drain(r, 0)
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("drained %d records from a half-truncated %d-record trace", len(got), n)
	}
	if r.Err() == nil {
		t.Fatal("reader reports clean EOF on a corrupted file")
	}
	// The error is sticky: further reads and resets change nothing.
	r.Reset()
	if _, ok := r.Next(); ok {
		t.Error("Next delivered a record after a sticky delivery error")
	}
	if r.Err() == nil {
		t.Error("Err cleared by Reset")
	}
}

// TestFileReaderSurfacesResetFailure: deleting the backing file mid-run
// makes the next Reset (reopen) fail; the failure lands in Err and Next
// returns false, instead of the old panic.
func TestFileReaderSurfacesResetFailure(t *testing.T) {
	w := testWorkload(t)
	const n = 5_000
	cache := NewCache(t.TempDir())
	path, err := cache.Ensure(bgCtx, w, n)
	if err != nil {
		t.Fatal(err)
	}
	src := &FileSource{Path: path, Chunk: 512}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drain(r, 0); len(got) != n {
		t.Fatalf("first pass drained %d records, want %d", len(got), n)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if _, ok := r.Next(); ok {
		t.Fatal("Next delivered a record after a failed Reset")
	}
	if r.Err() == nil {
		t.Fatal("failed Reset left Err nil")
	}
}

// TestCleanEOFHasNilErr pins the other half of the contract: a stream
// that ends normally reports Err == nil, so consumers can distinguish
// EOF from failure.
func TestCleanEOFHasNilErr(t *testing.T) {
	w := testWorkload(t)
	src := &GenSource{W: w, N: 1000}
	r, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	drain(r, 0)
	if r.Err() != nil {
		t.Fatalf("clean stream reports Err = %v", r.Err())
	}
}
