package stream

import (
	"fmt"
	"io"

	"pythia/internal/obs"
	"pythia/internal/trace"
)

// Pipeline metrics, shared across every reader in the process: ring
// occupancy says whether producers are keeping ahead of the simulators;
// the stall counters attribute any gap (producer stalls = simulation is
// the bottleneck and the ring is full; consumer stalls = trace delivery
// is the bottleneck and the ring ran dry).
var (
	obsChunks = obs.GetCounter("pythia_stream_chunks_total",
		"Record chunks delivered to consumers.", nil)
	obsRing = obs.GetGauge("pythia_stream_ring_occupancy",
		"Chunks currently queued in pipeline rings, all readers combined.", nil)
	obsProdStalls = obs.GetCounter("pythia_stream_producer_stalls_total",
		"Producer blocked on a full ring (consumer is the bottleneck).", nil)
	obsConsStalls = obs.GetCounter("pythia_stream_consumer_stalls_total",
		"Consumer blocked on an empty ring (trace delivery is the bottleneck).", nil)
)

// chunkedReader is the pipelined core of the package: a producer goroutine
// pulls records from a one-pass iterator and hands them to the consumer in
// column chunks (trace.Chunk — parallel PC/Addr/NonMem/Store slices)
// through a bounded ring, recycling chunk buffers through a free list so
// steady-state streaming allocates nothing. Producers that implement
// trace.ChunkFiller (the generator, the file decoder) append straight onto
// the columns; others are drained record-at-a-time into the columns.
//
// Memory bound: at most depth+2 chunk buffers ever exist per reader — one
// in the producer's hands, up to depth queued, one being drained by the
// consumer — regardless of trace length.
//
// Consumers have two faces over the same stream: Next (trace.Reader, the
// record-at-a-time compatibility path) and NextChunk (trace.ChunkReader,
// the batched fast path the fused simulation kernel uses). They can be
// mixed freely; NextChunk first hands out whatever Next left unconsumed.
//
// Producer failures (a decode error on a file that changed under a running
// simulation, a reset that cannot reopen its pass) are carried through the
// pipe and surface on the consumer side as Next() == false with a sticky
// Err(), never as a panic: the simulation driver owns the decision of what
// an unrecoverable trace means for the run.
type chunkedReader struct {
	// open starts a fresh pass over the records; the returned closer (may
	// be nil) releases pass-scoped resources (an open file) when the
	// producer exits.
	open  func() (trace.Iter, io.Closer, error)
	chunk int
	depth int

	free chan *trace.Chunk // recycled chunk buffers; nil entry = allocate
	p    *pipe             // current producer generation, nil after EOF+Close

	cur    *trace.Chunk // chunk being drained
	pos    int
	err    error // sticky first delivery error
	closed bool
}

// pipe is one producer generation; Reset tears the old one down and starts
// a new one.
type pipe struct {
	ch   chan *trace.Chunk
	stop chan struct{}
	done chan struct{}
	// err is the producer's terminal error, written before ch is closed
	// (the close is the synchronization point, so the consumer may read it
	// after observing the closed channel).
	err error
}

func newChunkedReader(open func() (trace.Iter, io.Closer, error), chunk, depth int) (*chunkedReader, error) {
	c := &chunkedReader{open: open, chunk: chunkOr(chunk), depth: depthOr(depth)}
	c.free = make(chan *trace.Chunk, c.depth+2)
	for i := 0; i < cap(c.free); i++ {
		c.free <- nil
	}
	if err := c.start(); err != nil {
		return nil, err
	}
	return c, nil
}

// start opens a fresh pass and launches its producer.
func (c *chunkedReader) start() error {
	it, cl, err := c.open()
	if err != nil {
		return err
	}
	p := &pipe{
		ch:   make(chan *trace.Chunk, c.depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.p = p
	go c.produce(p, it, cl)
	return nil
}

// produce fills chunks from it and sends them until EOF, a delivery error,
// or stop. Every buffer it takes from the free list goes back — either via
// the channel to the consumer or directly on the stop path — so the buffer
// population stays constant across any number of resets. An iterator error
// lands in p.err before the channel closes.
func (c *chunkedReader) produce(p *pipe, it trace.Iter, cl io.Closer) {
	defer close(p.done)
	defer close(p.ch)
	if cl != nil {
		defer cl.Close()
	}
	for {
		var buf *trace.Chunk
		select {
		case buf = <-c.free:
		case <-p.stop:
			return
		}
		if buf == nil {
			buf = trace.NewChunk(c.chunk)
		}
		buf.Reset()
		trace.FillChunk(it, buf, c.chunk)
		ended := buf.Len() < c.chunk
		if buf.Len() == 0 {
			c.free <- buf
			p.err = iterErr(it)
			return
		}
		select {
		case p.ch <- buf:
			obsRing.Add(1)
		default:
			// Ring full: the consumer is the bottleneck right now. Count the
			// stall, then block until there is room (or the pass stops).
			obsProdStalls.Inc()
			select {
			case p.ch <- buf:
				obsRing.Add(1)
			case <-p.stop:
				c.free <- buf
				return
			}
		}
		if ended {
			p.err = iterErr(it)
			return
		}
	}
}

// iterErr extracts the terminal error from iterators that can fail
// (fileIter); generator-backed iterators cannot and report nil.
func iterErr(it trace.Iter) error {
	if e, ok := it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// recv pulls the next chunk from the ring, recycling the drained one. It
// returns nil at end of pass (setting the sticky error on failures).
func (c *chunkedReader) recv() *trace.Chunk {
	if c.err != nil || c.p == nil {
		return nil
	}
	if c.cur != nil {
		c.free <- c.cur
		c.cur, c.pos = nil, 0
	}
	var buf *trace.Chunk
	var ok bool
	select {
	case buf, ok = <-c.p.ch:
	default:
		// Ring empty: trace delivery is the bottleneck right now. Count the
		// stall, then block until the producer catches up.
		obsConsStalls.Inc()
		buf, ok = <-c.p.ch
	}
	if !ok {
		// Producer finished; distinguish clean EOF from a delivery failure.
		if c.p.err != nil {
			c.err = c.p.err
		}
		return nil
	}
	obsRing.Add(-1)
	obsChunks.Inc()
	return buf
}

// Next implements trace.Reader.
func (c *chunkedReader) Next() (trace.Record, bool) {
	if c.cur != nil && c.pos < c.cur.Len() {
		r := c.cur.At(c.pos)
		c.pos++
		return r, true
	}
	buf := c.recv()
	if buf == nil {
		return trace.Record{}, false
	}
	c.cur, c.pos = buf, 1
	return buf.At(0), true
}

// NextChunk implements trace.ChunkReader: the batched fast path. The
// returned column view is valid until the next NextChunk/Next/Reset/Close
// call. If the record-at-a-time path consumed part of the current chunk,
// the unconsumed tail is returned first, so mixing the two faces never
// skips records.
func (c *chunkedReader) NextChunk() (trace.Chunk, bool) {
	if c.cur != nil && c.pos < c.cur.Len() {
		t := c.cur.Tail(c.pos)
		c.pos = c.cur.Len()
		return t, true
	}
	buf := c.recv()
	if buf == nil {
		return trace.Chunk{}, false
	}
	c.cur, c.pos = buf, buf.Len()
	return *buf, true
}

// Err implements Reader: the sticky first delivery error, nil on clean
// streams.
func (c *chunkedReader) Err() error { return c.err }

// Reset implements trace.Reader: it stops the current pass and starts a
// fresh one from the first record. The multi-core driver calls this to
// replay traces for cores that finish early. Reset on a closed or failed
// reader is a no-op; a failure to reopen the underlying pass (e.g. a cache
// file deleted mid-simulation) is recorded in Err and subsequent Next
// calls return false, so the driver observes the failure on its next read
// instead of a panic.
func (c *chunkedReader) Reset() {
	if c.closed || c.err != nil {
		return
	}
	c.stopPipe()
	if err := c.start(); err != nil {
		c.err = fmt.Errorf("stream: reset: %w", err)
	}
}

// Close implements io.Closer; it terminates the producer and releases its
// resources. Idempotent.
func (c *chunkedReader) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.stopPipe()
	return nil
}

// stopPipe tears down the current producer generation, reclaiming every
// chunk buffer back into the free list.
func (c *chunkedReader) stopPipe() {
	if c.p == nil {
		return
	}
	close(c.p.stop)
	// The producer may be blocked sending; drain until it closes the
	// channel, recycling in-flight chunks.
	for buf := range c.p.ch {
		c.free <- buf
		obsRing.Add(-1)
	}
	<-c.p.done
	c.p = nil
	if c.cur != nil {
		c.free <- c.cur
		c.cur, c.pos = nil, 0
	}
}
