package stream

import (
	"io"

	"pythia/internal/trace"
)

// GenSource streams a workload's deterministic generator: each Open (and
// each Reset of an open reader) replays the generator from a fresh Spec,
// producing exactly the record sequence Workload.Generate(N) would
// materialize — without ever holding more than the chunk ring in memory.
// Generation runs in the reader's producer goroutine, overlapping the
// simulation that consumes it.
type GenSource struct {
	W trace.Workload
	// N is the trace length in records (Workload.Generate's n).
	N int
	// Chunk is records per pipeline chunk (0 = DefaultChunk).
	Chunk int
	// Depth is the chunk-ring depth (0 = DefaultDepth).
	Depth int
}

// Name implements Source.
func (s *GenSource) Name() string { return s.W.Name }

// Open implements Source.
func (s *GenSource) Open() (Reader, error) {
	return newChunkedReader(func() (trace.Iter, io.Closer, error) {
		return s.W.Iter(s.N), nil, nil
	}, s.Chunk, s.Depth)
}
