package stream

import (
	"math/rand"
	"path/filepath"
	"testing"

	"pythia/internal/trace"
)

// drainChunks collects every record delivered through the batched face.
func drainChunks(r trace.ChunkReader) []trace.Record {
	var out []trace.Record
	for {
		ch, ok := r.NextChunk()
		if !ok {
			return out
		}
		for i := 0; i < ch.Len(); i++ {
			out = append(out, ch.At(i))
		}
	}
}

// TestNextChunkMatchesNext: both backends deliver the same record
// sequence through NextChunk as through Next, with a chunk size that
// forces multiple chunks and a partial tail.
func TestNextChunkMatchesNext(t *testing.T) {
	w := testWorkload(t)
	const n = 10_000
	want := w.Generate(n).Records

	gen := &GenSource{W: w, N: n, Chunk: 1024}
	r, err := gen.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cr, ok := r.(trace.ChunkReader)
	if !ok {
		t.Fatal("stream reader does not implement trace.ChunkReader")
	}
	mustEqual(t, drainChunks(cr), want, "GenSource chunks")

	path := filepath.Join(t.TempDir(), "t.pytr")
	if _, _, err := Materialize(t.Context(), path, w, n); err != nil {
		t.Fatal(err)
	}
	fs := &FileSource{Path: path, Chunk: 1024}
	fr, err := fs.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	mustEqual(t, drainChunks(fr.(trace.ChunkReader)), want, "FileSource chunks")
}

// TestMixedFacesNeverSkip: alternating Next and NextChunk arbitrarily
// yields the full sequence exactly once — NextChunk returns the
// unconsumed tail of a partially-drained chunk before pulling a new one.
func TestMixedFacesNeverSkip(t *testing.T) {
	w := testWorkload(t)
	const n = 8_000
	want := w.Generate(n).Records

	r, err := (&GenSource{W: w, N: n, Chunk: 512}).Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cr := r.(trace.ChunkReader)

	rng := rand.New(rand.NewSource(3))
	var got []trace.Record
	for {
		if rng.Intn(3) > 0 {
			rec, ok := cr.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		} else {
			ch, ok := cr.NextChunk()
			if !ok {
				break
			}
			for i := 0; i < ch.Len(); i++ {
				got = append(got, ch.At(i))
			}
		}
	}
	mustEqual(t, got, want, "mixed faces")
	if r.Err() != nil {
		t.Fatalf("clean mixed drain left Err = %v", r.Err())
	}
}

// TestResetMidChunkRestartsChunks: a Reset with a chunk partially
// consumed (through either face) restarts the pass from record zero on
// the batched face too.
func TestResetMidChunkRestartsChunks(t *testing.T) {
	w := testWorkload(t)
	const n = 5_000
	want := w.Generate(n).Records

	r, err := (&GenSource{W: w, N: n, Chunk: 512}).Open()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cr := r.(trace.ChunkReader)

	// Consume 100 records via Next (mid-chunk), then Reset.
	mustEqual(t, drain(r, 100), want[:100], "pre-reset prefix")
	r.Reset()
	mustEqual(t, drainChunks(cr), want, "post-reset chunk drain")

	// Consume one full chunk plus a partial tail via NextChunk, then Reset.
	r.Reset()
	if ch, ok := cr.NextChunk(); !ok || ch.Len() == 0 {
		t.Fatal("first chunk missing after reset")
	}
	if _, ok := cr.Next(); !ok {
		t.Fatal("record after first chunk missing")
	}
	r.Reset()
	mustEqual(t, drainChunks(cr), want, "second post-reset drain")
}
