package stream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pythia/internal/flight"
	"pythia/internal/fsutil"
	"pythia/internal/obs"
	"pythia/internal/trace"
)

// Process-wide registry counters, shared by every Cache instance. The
// trace cache reports alongside the results/policy stores under the same
// pythia_store_* families so /healthz and /metrics enumerate all three
// content-addressed stores uniformly.
var (
	obsHits   = obs.GetCounter("pythia_store_hits_total", "Store lookups served from disk.", obs.L("store", "trace"))
	obsMisses = obs.GetCounter("pythia_store_misses_total", "Store lookups that found no valid entry.", obs.L("store", "trace"))
	obsWrites = obs.GetCounter("pythia_store_writes_total", "Store entries successfully persisted.", obs.L("store", "trace"))
)

// Cache is a content-addressed on-disk trace cache: files are keyed by
// Workload.Key (name, seed, length, generator version), so every process
// and every PR that shares a cache directory reuses the same generation
// pass, and any change to generator output lands on fresh file names.
//
// Population is deduplicated through a singleflight: when N workers race
// to simulate the same workload, exactly one generates and encodes the
// trace while the rest wait, then everyone streams from disk. Writers go
// through a unique temp file plus atomic rename, so concurrent processes
// are safe too (both write, either rename wins, contents are identical).
type Cache struct {
	dir string

	flight flight.Group[struct{}]

	sweepOnce sync.Once

	hits, misses, writes atomic.Int64
}

// NewCache returns a cache rooted at dir (created on first population).
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

// DefaultDir returns the cache directory used when none is configured: the
// PYTHIA_TRACE_CACHE environment variable, or pythia-trace-cache under the
// OS temp directory.
func DefaultDir() string {
	if dir := os.Getenv("PYTHIA_TRACE_CACHE"); dir != "" {
		return dir
	}
	return filepath.Join(os.TempDir(), "pythia-trace-cache")
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Hits returns the number of Ensure calls served by an existing file.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Ensure calls that found no valid entry.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Writes returns the number of trace files successfully populated.
func (c *Cache) Writes() int64 { return c.writes.Load() }

// hit/miss/wrote bump the per-instance atomic and the shared registry
// counter together so /metrics and the instance views cannot drift.
func (c *Cache) hit()   { c.hits.Add(1); obsHits.Inc() }
func (c *Cache) miss()  { c.misses.Add(1); obsMisses.Inc() }
func (c *Cache) wrote() { c.writes.Add(1); obsWrites.Inc() }

// Sweep reclaims temp files orphaned by crashed processes now, instead
// of waiting for the first population (long-lived services sweep at
// startup so a crash mid-write never leaves litter across restarts).
// The sweep runs at most once per Cache.
func (c *Cache) Sweep() {
	c.sweepOnce.Do(func() { fsutil.SweepStaleTemps(c.dir) })
}

// path maps a workload identity to its cache file.
func (c *Cache) path(w trace.Workload, n int) string {
	sum := sha256.Sum256([]byte(w.Key(n)))
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s.pytr", fsutil.Sanitize(w.Name), hex.EncodeToString(sum[:8])))
}

// Source ensures the workload's trace is on disk (generating it exactly
// once across concurrent callers) and returns a streaming FileSource over
// it; ctx bounds the generation pass. chunk is the pipeline chunk size in
// records (0 = DefaultChunk). File-backed (fixed) workloads are served
// straight from their resident records instead: they are already
// materialized, and their identity key carries no content hash, so
// persisting them could go stale.
func (c *Cache) Source(ctx context.Context, w trace.Workload, n, chunk int) (Source, error) {
	if ft := w.FixedTrace(); ft != nil {
		return &SliceSource{T: ft}, nil
	}
	path, err := c.Ensure(ctx, w, n)
	if err != nil {
		return nil, err
	}
	return &FileSource{Path: path, Chunk: chunk}, nil
}

// Ensure populates the cache entry for (w, n) if needed and returns its
// path. Concurrent calls for the same entry share one generation pass
// (a flight.Group singleflight); a canceled ctx aborts the pass without
// leaving a partial file. Fixed workloads are rejected: their cache key
// has no content identity (see Source).
func (c *Cache) Ensure(ctx context.Context, w trace.Workload, n int) (string, error) {
	if w.FixedTrace() != nil {
		return "", fmt.Errorf("stream: fixed workload %s is not disk-cacheable", w.Name)
	}
	path := c.path(w, n)
	if c.valid(path, w, n) {
		c.hit()
		return path, nil
	}
	c.miss()
	_, _, err := c.flight.Do(path, func() (struct{}, error) {
		// Re-check under the flight: another process (or an earlier flight
		// that completed between our check and joining) may have populated
		// it.
		if c.valid(path, w, n) {
			c.hit()
			return struct{}{}, nil
		}
		return struct{}{}, c.populate(ctx, path, w, n)
	})
	return path, err
}

// valid reports whether path holds a decodable trace matching the
// workload identity. Only the header is read; the body is trusted because
// files land via atomic rename of fully-written, synced temp files.
func (c *Cache) valid(path string, w trace.Workload, n int) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	d, err := trace.NewDecoder(f)
	if err != nil {
		return false
	}
	return d.Name() == w.Name && d.Count() == int64(w.NumRecords(n))
}

// populate generates the trace into a unique temp file and atomically
// renames it into place (fsutil.WriteAtomic). No error path leaves a
// partial file behind (cache_fault_test.go injects faults to hold this);
// temp files orphaned by a crashed process are reclaimed by an age-gated
// sweep on first population.
func (c *Cache) populate(ctx context.Context, path string, w trace.Workload, n int) error {
	c.sweepOnce.Do(func() { fsutil.SweepStaleTemps(c.dir) })
	err := fsutil.WriteAtomic(c.dir, path, func(tmp *os.File) error {
		_, _, werr := encodeWorkload(ctx, tmp, w, n)
		return werr
	})
	if err != nil {
		return fmt.Errorf("stream: cache populate: %w", err)
	}
	c.wrote()
	return nil
}

// encodeWorkload streams n records of w into wr through the incremental
// encoder, one column chunk at a time: the generator fills a reused
// trace.Chunk directly and the encoder writes straight off the columns,
// so no []Record is ever materialized between the two. The context is
// checked between chunks so a canceled generation pass aborts promptly.
func encodeWorkload(ctx context.Context, wr *os.File, w trace.Workload, n int) (records int, instructions int64, err error) {
	count := w.NumRecords(n)
	e, err := trace.NewEncoder(wr, w.Name, w.Suite, count)
	if err != nil {
		return 0, 0, err
	}
	it := w.Iter(n)
	buf := trace.NewChunk(DefaultChunk)
	for {
		if cerr := ctx.Err(); cerr != nil {
			return records, instructions, cerr
		}
		buf.Reset()
		if trace.FillChunk(it, buf, DefaultChunk) == 0 {
			break
		}
		if err := e.EncodeChunk(buf); err != nil {
			return records, instructions, err
		}
		records += buf.Len()
		instructions += buf.Instructions()
	}
	return records, instructions, e.Close()
}

// Materialize streams n records of w to path in the binary trace format,
// generating incrementally so the trace is never resident in memory; ctx
// aborts a long write. On any error (including cancellation) the partial
// output file is removed. It returns the record and instruction counts
// written.
func Materialize(ctx context.Context, path string, w trace.Workload, n int) (records int, instructions int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	records, instructions, err = encodeWorkload(ctx, f, w, n)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, 0, err
	}
	return records, instructions, nil
}
