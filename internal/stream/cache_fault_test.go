package stream

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pythia/internal/fault"
	"pythia/internal/fsutil"
	"pythia/internal/trace"
)

// TestPopulateFailureLeavesNoPartialFiles is the trace-cache half of the
// temp-file audit: a population pass that dies after encoding must report
// the error and leave the cache directory completely empty — no partial
// entry, no orphaned temp file — and the entry must populate cleanly once
// the fault clears.
func TestPopulateFailureLeavesNoPartialFiles(t *testing.T) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	dir := t.TempDir()
	c := NewCache(dir)
	boom := errors.New("injected disk failure")
	disable := fault.Enable(fsutil.FPWriteAtomic, fault.Spec{Err: boom})
	defer disable()

	if _, err := c.Ensure(context.Background(), w, 2000); !errors.Is(err, boom) {
		t.Fatalf("Ensure error = %v, want injected failure", err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		t.Errorf("file left behind after injected failure: %s", e.Name())
	}

	disable()
	path, err := c.Ensure(context.Background(), w, 2000)
	if err != nil {
		t.Fatalf("Ensure after fault cleared: %v", err)
	}
	if !c.valid(path, w, 2000) {
		t.Error("recovered entry is not valid")
	}
}

// TestDecodeFaultSurfacesAsStickyError arms the decode failpoint and
// holds the package's error contract: a mid-stream decode failure
// surfaces as Next() == false with a sticky Err() on the consumer side,
// never as a panic or a silently truncated trace.
func TestDecodeFaultSurfacesAsStickyError(t *testing.T) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	dir := t.TempDir()
	c := NewCache(dir)
	path, err := c.Ensure(context.Background(), w, 2000)
	if err != nil {
		t.Fatal(err)
	}

	defer fault.Enable(FPDecode, fault.Spec{Skip: 100})()
	r, err := (&FileSource{Path: path}).Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	reads := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		reads++
	}
	if err := r.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Err = %v, want injected decode fault", err)
	}
	if reads == 0 || reads >= w.NumRecords(2000) {
		t.Fatalf("consumer read %d records before the fault, want a mid-stream cut", reads)
	}
}

func TestCacheSweepReclaimsOnlyStaleTemps(t *testing.T) {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	dir := t.TempDir()
	stale := filepath.Join(dir, "old.pytr.tmp123")
	fresh := filepath.Join(dir, "new.pytr.tmp456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	// First population triggers the sweep.
	c := NewCache(dir)
	if _, err := c.Ensure(context.Background(), w, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a live writer) was reclaimed")
	}
	ents, _ := os.ReadDir(dir)
	var entries int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".pytr") {
			entries++
		}
	}
	if entries != 1 {
		t.Errorf("cache holds %d entries, want 1", entries)
	}
}
