package fleet

// Table-driven tests for the KPA-style scaling policy. Decide is
// deterministic given (signals, clock), so each case is a scripted
// sequence of observations at explicit clock offsets.

import (
	"testing"
	"time"
)

type scaleStep struct {
	at          time.Duration // clock offset from the sequence start
	sig         Signals
	wantDesired int
	wantDir     string
}

func runSteps(t *testing.T, cfg AutoscalerConfig, steps []scaleStep) {
	t.Helper()
	a := NewAutoscaler(cfg)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, st := range steps {
		got := a.Decide(st.sig, base.Add(st.at))
		if got.Desired != st.wantDesired || got.Direction != st.wantDir {
			t.Fatalf("step %d (t+%v, %+v): got {%d %q}, want {%d %q}",
				i, st.at, st.sig, got.Desired, got.Direction, st.wantDesired, st.wantDir)
		}
	}
}

func TestAutoscalerRampOnQueueDepth(t *testing.T) {
	cfg := AutoscalerConfig{Min: 0, Max: 4, TargetConcurrency: 1, ScaleDownDelay: 15 * time.Second}
	runSteps(t, cfg, []scaleStep{
		// Work arrives on an empty fleet: scale up immediately.
		{0, Signals{Queued: 1}, 1, "up"},
		// The spawn is still cold-starting: hold, don't pile on.
		{time.Second, Signals{Queued: 1, Starting: 1}, 1, "hold"},
		// Worker ready, job claimed; supply matches demand.
		{2 * time.Second, Signals{InFlight: 1, Ready: 1}, 1, "hold"},
		// Burst: five more queued. Demand 6, clamped to Max 4.
		{3 * time.Second, Signals{Queued: 5, InFlight: 1, Ready: 1}, 4, "up"},
		// Again: new spawns cold-starting gates further ups.
		{4 * time.Second, Signals{Queued: 5, InFlight: 1, Ready: 1, Starting: 3}, 4, "hold"},
		{6 * time.Second, Signals{Queued: 2, InFlight: 4, Ready: 4}, 4, "hold"},
	})
}

func TestAutoscalerScaleToZero(t *testing.T) {
	cfg := AutoscalerConfig{Min: 0, Max: 4, TargetConcurrency: 1, ScaleDownDelay: 15 * time.Second}
	runSteps(t, cfg, []scaleStep{
		{0, Signals{InFlight: 2, Ready: 2}, 2, "hold"},
		// Demand gone: the low-demand window opens but nothing shrinks yet.
		{time.Second, Signals{Ready: 2}, 2, "hold"},
		{10 * time.Second, Signals{Ready: 2}, 2, "hold"},
		// One second short of the delay: still holding.
		{15*time.Second + 999*time.Millisecond, Signals{Ready: 2}, 2, "hold"},
		// Window satisfied (opened at t+1s): all the way to zero.
		{16*time.Second + 100*time.Millisecond, Signals{Ready: 2}, 0, "down"},
		// Idle fleet stays at zero...
		{20 * time.Second, Signals{}, 0, "hold"},
		// ...and the next job pays one cold start, immediately.
		{30 * time.Second, Signals{Queued: 1}, 1, "up"},
	})
}

func TestAutoscalerLowWindowResetsOnDemand(t *testing.T) {
	cfg := AutoscalerConfig{Min: 0, Max: 4, TargetConcurrency: 1, ScaleDownDelay: 10 * time.Second}
	runSteps(t, cfg, []scaleStep{
		{0, Signals{Ready: 2}, 2, "hold"}, // low window opens
		// Demand returns before the delay elapses: window must reset.
		{5 * time.Second, Signals{Queued: 1, InFlight: 1, Ready: 2}, 2, "hold"},
		{8 * time.Second, Signals{Ready: 2}, 2, "hold"}, // window reopens here
		// 10s after the ORIGINAL low start but only 9s after the reset —
		// a scaler that never reset would shrink now.
		{10 * time.Second, Signals{Ready: 2}, 2, "hold"},
		{18*time.Second + 100*time.Millisecond, Signals{Ready: 2}, 0, "down"},
	})
}

func TestAutoscalerMinKeepsWarmPool(t *testing.T) {
	cfg := AutoscalerConfig{Min: 1, Max: 4, TargetConcurrency: 1, ScaleDownDelay: time.Second}
	runSteps(t, cfg, []scaleStep{
		// Empty fleet, no demand: Min still wants one warm worker.
		{0, Signals{}, 1, "up"},
		{time.Second, Signals{Ready: 1}, 1, "hold"},
		// Shrink from 3 stops at the floor, not zero.
		{2 * time.Second, Signals{Ready: 3}, 3, "hold"},
		{4 * time.Second, Signals{Ready: 3}, 1, "down"},
	})
}

func TestAutoscalerTargetConcurrency(t *testing.T) {
	cfg := AutoscalerConfig{Min: 0, Max: 8, TargetConcurrency: 2, ScaleDownDelay: 15 * time.Second}
	runSteps(t, cfg, []scaleStep{
		// Demand 5 at 2 jobs per worker: ceil(5/2) = 3.
		{0, Signals{Queued: 4, InFlight: 1}, 3, "up"},
		{time.Second, Signals{Queued: 2, InFlight: 4, Ready: 3}, 3, "hold"},
	})
}

func TestAutoscalerDefaults(t *testing.T) {
	a := NewAutoscaler(AutoscalerConfig{})
	if a.cfg.TargetConcurrency != 1 || a.cfg.ScaleDownDelay != 15*time.Second || a.cfg.Max != 1 {
		t.Fatalf("defaults not applied: %+v", a.cfg)
	}
	// Max is lifted to Min so the config can't deadlock the fleet at a
	// size it is forbidden to reach.
	a = NewAutoscaler(AutoscalerConfig{Min: 3, Max: 1})
	if a.cfg.Max != 3 {
		t.Fatalf("Max %d not lifted to Min 3", a.cfg.Max)
	}
}
