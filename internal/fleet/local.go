package fleet

import (
	"context"
	"log/slog"
	"net/http"
	"os/exec"
	"time"

	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// LocalOptions parameterizes a local cluster: one stateless frontend
// (serve in Dispatch mode) plus a coordinator autoscaling worker
// processes over a shared journal.
type LocalOptions struct {
	Store    *results.Store
	Policies *policy.Store
	// JournalDir is the shared coordination substrate (required).
	JournalDir string
	// QueueDepth bounds the fleet-wide open-job backlog at admission.
	QueueDepth int

	// WorkerCommand builds one worker process's command (required) —
	// typically the calling binary re-exec'd in its worker mode.
	WorkerCommand func() *exec.Cmd

	// Min, Max, TargetConcurrency, ScaleDownDelay: see AutoscalerConfig.
	Min, Max          int
	TargetConcurrency int
	ScaleDownDelay    time.Duration
	// LeaseTTL is the frontend's claim TTL for cancellation claims and
	// the default lease horizon; workers bring their own.
	LeaseTTL time.Duration

	Logger *slog.Logger
}

// Local is a running local cluster.
type Local struct {
	Server *serve.Server
	Coord  *Coordinator
}

// StartLocal boots the frontend and the coordinator. The returned
// Local's Handler serves the full v1 API (fleet status included);
// Shutdown stops admission, the coordinator, and the workers.
func StartLocal(opt LocalOptions) (*Local, error) {
	coord, err := Start(Config{
		JournalDir:        opt.JournalDir,
		WorkerCommand:     opt.WorkerCommand,
		Min:               opt.Min,
		Max:               opt.Max,
		TargetConcurrency: opt.TargetConcurrency,
		ScaleDownDelay:    opt.ScaleDownDelay,
		Logger:            opt.Logger,
	})
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(serve.Config{
		Store:       opt.Store,
		Policies:    opt.Policies,
		QueueDepth:  opt.QueueDepth,
		JournalDir:  opt.JournalDir,
		LeaseTTL:    opt.LeaseTTL,
		Dispatch:    true,
		FleetStatus: coord.Status,
		Logger:      opt.Logger,
	})
	if err != nil {
		coord.Close()
		return nil, err
	}
	return &Local{Server: srv, Coord: coord}, nil
}

// Handler returns the frontend's HTTP routes.
func (l *Local) Handler() http.Handler { return l.Server.Handler() }

// Shutdown winds the cluster down: frontend admission first (no new
// jobs), then the coordinator and its workers (gracefully — SIGTERM'd
// workers release claims, so journaled jobs survive for the next boot).
func (l *Local) Shutdown(ctx context.Context) {
	l.Server.Shutdown(ctx)
	l.Coord.Close()
}
