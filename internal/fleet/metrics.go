package fleet

import "pythia/internal/obs"

// Fleet metrics. Counters are process-wide and cumulative; the gauges
// that track a live Coordinator are func-backed and registered per
// instance (replace-on-reregister, like serve's).
var (
	mRequeues = obs.GetCounter("pythia_fleet_requeues_total",
		"Jobs requeued by reaping a dead worker's expired claim.", nil)
	mColdStarts = obs.GetCounter("pythia_fleet_cold_starts_total",
		"Worker processes spawned (scale-up and crash respawn).", nil)
	mColdStartSeconds = obs.GetGauge("pythia_fleet_cold_start_seconds",
		"Most recent worker spawn-to-first-heartbeat latency.", nil)
)

// mScaleDecisions counts non-hold autoscaler decisions by direction.
func mScaleDecisions(direction string) *obs.Counter {
	return obs.GetCounter("pythia_fleet_scale_decisions_total",
		"Autoscaler decisions that changed the fleet size, by direction.",
		obs.L("direction", direction))
}

// registerMetrics wires this coordinator's live state into the default
// registry.
func (c *Coordinator) registerMetrics() {
	obs.RegisterGaugeFunc("pythia_fleet_workers_desired",
		"Worker count the autoscaler currently wants.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.desired)
		})
	obs.RegisterGaugeFunc("pythia_fleet_workers",
		"Live workers by state.", obs.L("state", "ready"),
		func() float64 { r, _ := c.sup.counts(); return float64(r) })
	obs.RegisterGaugeFunc("pythia_fleet_workers",
		"Live workers by state.", obs.L("state", "starting"),
		func() float64 { _, st := c.sup.counts(); return float64(st) })
	obs.RegisterGaugeFunc("pythia_fleet_queue_depth",
		"Claimable (unclaimed, non-terminal) journal records.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.queued)
		})
	obs.RegisterGaugeFunc("pythia_fleet_inflight",
		"Claimed, unfinished jobs across the fleet.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.inflight)
		})
}
