package fleet

import (
	"fmt"
	"log/slog"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// supervisor owns the worker processes: spawn, readiness bookkeeping,
// graceful stop (SIGTERM, then SIGKILL after a grace window), and
// sweeping the corpses. It knows nothing about scaling policy or the
// journal — the coordinator decides, the supervisor executes.
type supervisor struct {
	newCmd func() *exec.Cmd
	grace  time.Duration
	log    *slog.Logger

	mu    sync.Mutex
	procs map[int]*workerProc
}

// workerProc tracks one spawned worker process.
type workerProc struct {
	pid       int
	cmd       *exec.Cmd
	spawnedAt time.Time
	// owner is the worker's lease-owner identity, learned from its first
	// heartbeat; ready flips true at the same moment.
	owner string
	ready bool
	// stopping marks a process the supervisor already sent SIGTERM.
	stopping bool
	// exited closes when cmd.Wait returns.
	exited chan struct{}
}

func newSupervisor(newCmd func() *exec.Cmd, grace time.Duration, log *slog.Logger) *supervisor {
	return &supervisor{newCmd: newCmd, grace: grace, log: log, procs: make(map[int]*workerProc)}
}

// spawn starts one worker process.
func (s *supervisor) spawn() error {
	cmd := s.newCmd()
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("fleet: spawn worker: %w", err)
	}
	p := &workerProc{
		pid:       cmd.Process.Pid,
		cmd:       cmd,
		spawnedAt: time.Now().UTC(),
		exited:    make(chan struct{}),
	}
	go func() {
		cmd.Wait()
		close(p.exited)
	}()
	s.mu.Lock()
	s.procs[p.pid] = p
	s.mu.Unlock()
	s.log.Info("worker spawned", "pid", p.pid)
	return nil
}

// markReady records that a heartbeat for pid appeared; returns the
// spawn-to-ready latency on the first call for that pid.
func (s *supervisor) markReady(pid int, owner string) (coldStart time.Duration, first bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[pid]
	if !ok || p.ready {
		return 0, false
	}
	p.ready = true
	p.owner = owner
	return time.Now().UTC().Sub(p.spawnedAt), true
}

// counts reports live supply: ready (heartbeat seen) and starting
// (spawned, no heartbeat yet). Stopping and exited processes count as
// neither.
func (s *supervisor) counts() (ready, starting int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.procs {
		if p.stopping || exited(p) {
			continue
		}
		if p.ready {
			ready++
		} else {
			starting++
		}
	}
	return ready, starting
}

// live reports the pids and owners of non-stopping, non-exited workers.
func (s *supervisor) live() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.procs))
	for pid, p := range s.procs {
		if !p.stopping && !exited(p) {
			out[pid] = p.owner
		}
	}
	return out
}

// sweep removes exited processes from the table and returns them —
// the coordinator retires their heartbeat documents and treats
// not-asked-to-stop exits as crashes to respawn over.
func (s *supervisor) sweep() (crashed, stopped []*workerProc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for pid, p := range s.procs {
		if !exited(p) {
			continue
		}
		delete(s.procs, pid)
		if p.stopping {
			stopped = append(stopped, p)
		} else {
			crashed = append(crashed, p)
		}
	}
	return crashed, stopped
}

// stop gracefully stops one worker: SIGTERM now (the worker finishes or
// releases its claim and drains out), SIGKILL if it lingers past the
// grace window. Runs the escalation asynchronously — the coordinator's
// loop must not block on a slow exit.
func (s *supervisor) stop(pid int) {
	s.mu.Lock()
	p, ok := s.procs[pid]
	if !ok || p.stopping {
		s.mu.Unlock()
		return
	}
	p.stopping = true
	s.mu.Unlock()
	s.log.Info("worker stopping", "pid", pid)
	p.cmd.Process.Signal(syscall.SIGTERM)
	go func() {
		select {
		case <-p.exited:
		case <-time.After(s.grace):
			s.log.Warn("worker ignored SIGTERM, killing", "pid", pid)
			p.cmd.Process.Kill()
			<-p.exited
		}
	}()
}

// stopAll stops every worker and waits for the corpses (bounded by the
// per-process grace window plus slack).
func (s *supervisor) stopAll() {
	s.mu.Lock()
	procs := make([]*workerProc, 0, len(s.procs))
	for _, p := range s.procs {
		procs = append(procs, p)
	}
	s.mu.Unlock()
	for _, p := range procs {
		s.stop(p.pid)
	}
	deadline := time.After(s.grace + 5*time.Second)
	for _, p := range procs {
		select {
		case <-p.exited:
		case <-deadline:
			p.cmd.Process.Kill()
		}
	}
}

func exited(p *workerProc) bool {
	select {
	case <-p.exited:
		return true
	default:
		return false
	}
}
