package fleet_test

// End-to-end chaos for the fleet: a real coordinator autoscales real
// worker processes (this test binary re-exec'd), one of them is
// SIGKILLed mid-simulation, and the fleet must requeue the orphaned job
// to a survivor with no store corruption and no duplicate simulation.
// The worker body is TestFleetWorkerProcess, gated on an environment
// variable so normal `go test` runs skip it instantly.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pythia/internal/api"
	"pythia/internal/fleet"
	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// chaosScale is big enough that the kill reliably lands mid-simulation
// and parametric so every process resolves it without a shared table.
const chaosScale = "custom:warmup=100000,sim=8000000,tracelen=100000,wps=1,mixes=1"

// TestFleetWorkerProcess is the worker process body, not a test in its
// own right: it drains the shared journal until killed or SIGTERMed.
func TestFleetWorkerProcess(t *testing.T) {
	if os.Getenv("PYTHIA_FLEET_WORKER") != "1" {
		t.Skip("fleet worker body; run via TestFleetSIGKILLRecovery")
	}
	root := os.Getenv("PYTHIA_FLEET_ROOT")
	if root == "" {
		t.Fatal("PYTHIA_FLEET_ROOT not set")
	}
	harness.SetTraceCacheDir(filepath.Join(root, "trace"))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	_, err := serve.RunWorker(ctx, serve.WorkerConfig{
		Store:      results.Open(filepath.Join(root, "results")),
		JournalDir: filepath.Join(root, "journal"),
		// Short lease so the coordinator notices the corpse in seconds,
		// not the production 30s.
		LeaseTTL:          2 * time.Second,
		ProgressInterval:  50 * time.Millisecond,
		PollInterval:      50 * time.Millisecond,
		HeartbeatInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func startChaosCluster(t *testing.T, root string) (*fleet.Local, *httptest.Server) {
	t.Helper()
	logPath := filepath.Join(root, "workers.log")
	cluster, err := fleet.StartLocal(fleet.LocalOptions{
		Store:      results.Open(filepath.Join(root, "results")),
		JournalDir: filepath.Join(root, "journal"),
		QueueDepth: 8,
		WorkerCommand: func() *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=^TestFleetWorkerProcess$", "-test.v")
			cmd.Env = append(os.Environ(), "PYTHIA_FLEET_WORKER=1", "PYTHIA_FLEET_ROOT="+root)
			if f, err := os.OpenFile(logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644); err == nil {
				cmd.Stdout, cmd.Stderr = f, f
			}
			return cmd
		},
		// A fixed pool of two: the point here is failover, not scaling
		// (the autoscaler has its own table tests).
		Min: 2, Max: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		cluster.Shutdown(ctx)
	})
	ts := httptest.NewServer(cluster.Handler())
	t.Cleanup(ts.Close)
	return cluster, ts
}

func postFleetRun(t *testing.T, base, experiment, scale string) string {
	t.Helper()
	body := fmt.Sprintf(`{"experiment":%q,"scale":%q}`, experiment, scale)
	resp, err := http.Post(base+"/api/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST run = %d", resp.StatusCode)
	}
	return out.Job.ID
}

func getFleetJob(t *testing.T, base, id string) serve.JobView {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Job
}

func waitFleetTerminal(t *testing.T, base, id string, deadline time.Duration) serve.JobView {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		j := getFleetJob(t, base, id)
		switch j.Status {
		case serve.StatusDone, serve.StatusError, serve.StatusCanceled:
			return j
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never turned terminal within %v", id, deadline)
	return serve.JobView{}
}

// auditResultFiles asserts every persisted store file is whole, parseable
// JSON — the no-corruption half of the chaos contract.
func auditResultFiles(t *testing.T, dir string) {
	t.Helper()
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") || strings.Contains(path, ".tmp") {
			return nil
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("unreadable store file %s: %v", path, err)
			return nil
		}
		var v any
		if err := json.Unmarshal(buf, &v); err != nil {
			t.Errorf("corrupt store file %s: %v", path, err)
		}
		return nil
	})
}

func TestFleetSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	root := t.TempDir()
	for _, d := range []string{"journal", "results", "trace"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	cluster, ts := startChaosCluster(t, root)

	jobID := postFleetRun(t, ts.URL, "fig7", chaosScale)

	// Wait for a worker to claim the job, then let the simulation get
	// deep enough that the kill lands mid-flight.
	var victim int
	deadline := time.Now().Add(60 * time.Second)
	for victim == 0 && time.Now().Before(deadline) {
		for _, w := range cluster.Coord.Status().Workers {
			if w.State == "busy" && w.Job == jobID {
				victim = w.PID
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if victim == 0 {
		t.Fatalf("no worker ever claimed %s; worker log:\n%s", jobID, readLog(root))
	}
	time.Sleep(500 * time.Millisecond)

	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker %d: %v", victim, err)
	}

	// Whatever the kill interrupted, nothing persisted may be corrupt.
	auditResultFiles(t, filepath.Join(root, "results"))

	// The coordinator must reap the dead worker's claim and a survivor
	// (or respawn) must run the job to completion.
	done := waitFleetTerminal(t, ts.URL, jobID, 4*time.Minute)
	if done.Status != serve.StatusDone {
		t.Fatalf("orphaned job ended %q (%s); worker log:\n%s", done.Status, done.Error, readLog(root))
	}
	if done.Sims == 0 {
		t.Error("recovered job reports zero simulations")
	}
	if done.Worker == "" {
		t.Error("finished job records no owner")
	}
	auditResultFiles(t, filepath.Join(root, "results"))

	st := cluster.Coord.Status()
	if st.Requeues < 1 {
		t.Errorf("coordinator reports %d requeues, want >= 1", st.Requeues)
	}
	if st.ColdStarts < 2 {
		t.Errorf("coordinator reports %d cold starts, want >= 2 (initial pool)", st.ColdStarts)
	}

	// No duplicate simulation: a repeat of the same spec must be a pure
	// store hit, executed by a worker as zero simulations. (SimCount is
	// per-process, so the proof rides the job's own sims counter.)
	repeat := postFleetRun(t, ts.URL, "fig7", chaosScale)
	redone := waitFleetTerminal(t, ts.URL, repeat, time.Minute)
	if redone.Status != serve.StatusDone {
		t.Fatalf("repeat job ended %q (%s)", redone.Status, redone.Error)
	}
	if redone.Sims != 0 {
		t.Errorf("repeat of a completed spec executed %d simulations, want 0", redone.Sims)
	}

	// The fleet status endpoint agrees with the coordinator.
	fs, err := api.NewClient(ts.URL).Fleet(context.Background())
	if err != nil {
		t.Fatalf("GET /api/v1/fleet: %v", err)
	}
	if fs.Requeues != st.Requeues || fs.Desired != 2 {
		t.Errorf("fleet endpoint %+v disagrees with coordinator %+v", fs, st)
	}
}

func readLog(root string) string {
	buf, _ := os.ReadFile(filepath.Join(root, "workers.log"))
	return string(buf)
}
