// Package fleet runs a local cluster of pythia-serve worker processes:
// a supervisor that spawns and stops them, a KPA-style autoscaler that
// sizes the tier from queue depth and in-flight concurrency, and a
// coordinator that ties both to the shared job journal (reaping expired
// claims, sweeping dead workers, serving the /api/v1/fleet view). All
// coordination rides the journal's claim/lease substrate — there is no
// worker wire protocol to version or secure.
package fleet

import "time"

// AutoscalerConfig parameterizes the scaling policy.
type AutoscalerConfig struct {
	// Min and Max bound the worker count. Min 0 enables scale-to-zero:
	// an idle fleet costs nothing but the cold start when work returns.
	Min, Max int
	// TargetConcurrency is the per-worker load the fleet sizes for, in
	// jobs (queued + in-flight) per worker — the knob Knative's KPA calls
	// by the same name. The default is 1: a worker saturates the machine
	// with one simulation job, so piling more onto it buys queueing, not
	// throughput.
	TargetConcurrency int
	// ScaleDownDelay is how long demand must stay below the current size
	// before workers are stopped; the default is 15s. Scale-up has no
	// delay — queued work is paying for every second of hesitation — but
	// shrinking fast flaps: the fleet would kill workers in the gap
	// between two bursts and eat a cold start on the next.
	ScaleDownDelay time.Duration
}

// Signals is one observation of the fleet, the autoscaler's input.
type Signals struct {
	// Queued and InFlight measure demand: claimable journal records and
	// claimed-but-unfinished jobs.
	Queued   int
	InFlight int
	// Ready and Starting measure supply: live heartbeating workers and
	// spawned-but-not-yet-heartbeating ones (cold starts in progress).
	Ready    int
	Starting int
}

// Decision is the autoscaler's output for one observation.
type Decision struct {
	// Desired is the worker count the supervisor should reconcile to.
	Desired int
	// Direction is "up", "down" or "hold" — the label on the scale
	// decisions metric, and what tests assert on.
	Direction string
}

// Autoscaler sizes the worker tier. Decide is deterministic given the
// observation and the wall clock, which is what makes the policy
// table-testable; the only state between calls is the low-demand window
// used to debounce scale-down.
type Autoscaler struct {
	cfg AutoscalerConfig
	// lowSince is when demand first dropped below the current size (zero
	// while demand holds the fleet at or above it).
	lowSince time.Time
}

// NewAutoscaler applies defaults: TargetConcurrency 1, ScaleDownDelay
// 15s, Max at least Min (and at least 1).
func NewAutoscaler(cfg AutoscalerConfig) *Autoscaler {
	if cfg.TargetConcurrency <= 0 {
		cfg.TargetConcurrency = 1
	}
	if cfg.ScaleDownDelay <= 0 {
		cfg.ScaleDownDelay = 15 * time.Second
	}
	if cfg.Min < 0 {
		cfg.Min = 0
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Max == 0 {
		cfg.Max = 1
	}
	return &Autoscaler{cfg: cfg}
}

// Decide maps one observation to the desired worker count.
//
//   - Demand is ceil((queued+inflight)/target), clamped to [Min, Max].
//   - Scale-up is immediate — except while a previous spawn is still
//     cold-starting (Starting > 0): a burst would otherwise overshoot,
//     spawning a worker per tick until the first one's heartbeat lands.
//   - Scale-down (including to zero when Min is 0) fires only after
//     demand has stayed low for ScaleDownDelay.
func (a *Autoscaler) Decide(sig Signals, now time.Time) Decision {
	demand := sig.Queued + sig.InFlight
	desired := (demand + a.cfg.TargetConcurrency - 1) / a.cfg.TargetConcurrency
	if desired < a.cfg.Min {
		desired = a.cfg.Min
	}
	if desired > a.cfg.Max {
		desired = a.cfg.Max
	}
	current := sig.Ready + sig.Starting

	switch {
	case desired > current:
		a.lowSince = time.Time{}
		if sig.Starting > 0 {
			// Cold-start debounce: let the in-flight spawns land before
			// judging whether more are needed.
			return Decision{Desired: current, Direction: "hold"}
		}
		return Decision{Desired: desired, Direction: "up"}
	case desired < current:
		if a.lowSince.IsZero() {
			a.lowSince = now
		}
		if now.Sub(a.lowSince) < a.cfg.ScaleDownDelay {
			return Decision{Desired: current, Direction: "hold"}
		}
		a.lowSince = time.Time{}
		return Decision{Desired: desired, Direction: "down"}
	default:
		a.lowSince = time.Time{}
		return Decision{Desired: current, Direction: "hold"}
	}
}
