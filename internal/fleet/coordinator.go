package fleet

import (
	"fmt"
	"log/slog"
	"os/exec"
	"sync"
	"time"

	"pythia/internal/api"
	"pythia/internal/obs"
	"pythia/internal/serve"
)

// Config parameterizes a Coordinator.
type Config struct {
	// JournalDir is the shared journal directory (required) — the same
	// one the frontend admits into and workers drain.
	JournalDir string
	// WorkerCommand builds the command for one worker process (required);
	// typically the serving binary re-exec'd with -worker flags. Each
	// call must return a fresh *exec.Cmd.
	WorkerCommand func() *exec.Cmd

	// Min, Max, TargetConcurrency and ScaleDownDelay parameterize the
	// autoscaler (see AutoscalerConfig).
	Min, Max          int
	TargetConcurrency int
	ScaleDownDelay    time.Duration

	// PollInterval is the coordinator's control-loop cadence; the default
	// is 500ms.
	PollInterval time.Duration
	// StopGrace is how long a SIGTERM'd worker gets before SIGKILL; the
	// default is 10s.
	StopGrace time.Duration
	// StaleAfter is how old a worker heartbeat may grow before the worker
	// counts as dead; the default is 5s (five worker heartbeat intervals).
	StaleAfter time.Duration
	// ClaimGrace is the expiry slack for claims whose lease never got
	// written (killed mid-claim); the default is 5s.
	ClaimGrace time.Duration

	Logger *slog.Logger
}

// Coordinator runs the fleet control loop: reap expired claims so
// orphaned jobs requeue, track worker liveness and cold starts, and
// reconcile the process count to the autoscaler's decision. It is the
// fleet's single reaper — see the claim-protocol notes in
// serve/claims.go for why reaping must not be replicated per worker.
type Coordinator struct {
	cfg    Config
	fj     *serve.FleetJournal
	scaler *Autoscaler
	sup    *supervisor
	log    *slog.Logger

	done chan struct{}
	wg   sync.WaitGroup

	// mu guards the Status snapshot fields below, written by the loop and
	// read by the /api/v1/fleet handler.
	mu            sync.Mutex
	desired       int
	queued        int
	inflight      int
	coldStarts    int64
	lastColdStart time.Duration
	requeues      int64
	workers       []api.FleetWorker
}

// Start opens the journal, registers metrics, and launches the control
// loop. The fleet starts at Min workers (the first loop tick spawns
// them); Close stops the loop and the workers.
func Start(cfg Config) (*Coordinator, error) {
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("fleet: Config.JournalDir is required")
	}
	if cfg.WorkerCommand == nil {
		return nil, fmt.Errorf("fleet: Config.WorkerCommand is required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.StopGrace <= 0 {
		cfg.StopGrace = 10 * time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 5 * time.Second
	}
	if cfg.ClaimGrace <= 0 {
		cfg.ClaimGrace = 5 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	fj, err := serve.OpenFleetJournal(cfg.JournalDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg: cfg,
		fj:  fj,
		scaler: NewAutoscaler(AutoscalerConfig{
			Min: cfg.Min, Max: cfg.Max,
			TargetConcurrency: cfg.TargetConcurrency,
			ScaleDownDelay:    cfg.ScaleDownDelay,
		}),
		sup:  newSupervisor(cfg.WorkerCommand, cfg.StopGrace, log),
		log:  log,
		done: make(chan struct{}),
	}
	c.registerMetrics()
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Close stops the control loop, then the workers (gracefully: SIGTERM
// first, so in-flight jobs release their claims for a future fleet).
func (c *Coordinator) Close() {
	close(c.done)
	c.wg.Wait()
	c.sup.stopAll()
}

// Status snapshots the fleet for GET /api/v1/fleet.
func (c *Coordinator) Status() api.FleetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	ready, starting := c.sup.counts()
	st := api.FleetStatus{
		Desired:              c.desired,
		Ready:                ready,
		Starting:             starting,
		Queued:               c.queued,
		InFlight:             c.inflight,
		ColdStarts:           c.coldStarts,
		LastColdStartSeconds: c.lastColdStart.Seconds(),
		Requeues:             c.requeues,
		Workers:              append([]api.FleetWorker(nil), c.workers...),
	}
	return st
}

// loop is the control loop: observe, reap, sweep, decide, reconcile.
func (c *Coordinator) loop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.PollInterval)
	defer tick.Stop()
	c.step() // size the fleet immediately; Min workers shouldn't wait a tick
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.step()
		}
	}
}

// step runs one control-loop iteration.
func (c *Coordinator) step() {
	now := time.Now().UTC()

	// Requeue orphaned work first: a reaped claim turns its job claimable
	// before this tick's demand is measured, so the autoscaler sees it.
	if reaped := c.fj.ReapExpired(c.cfg.ClaimGrace); len(reaped) > 0 {
		mRequeues.Add(int64(len(reaped)))
		c.mu.Lock()
		c.requeues += int64(len(reaped))
		c.mu.Unlock()
		c.log.Warn("expired claims reaped, jobs requeued", "jobs", reaped)
	}

	// Match heartbeats to supervised processes: a first heartbeat flips
	// its process ready and measures the cold start.
	hbs := c.fj.Workers()
	livePids := c.sup.live()
	byPid := make(map[int]serve.WorkerInfo, len(hbs))
	for _, hb := range hbs {
		byPid[hb.PID] = hb
		if _, supervised := livePids[hb.PID]; !supervised {
			continue
		}
		if cold, first := c.sup.markReady(hb.PID, hb.Owner); first {
			mColdStarts.Inc()
			mColdStartSeconds.Set(cold.Seconds())
			c.mu.Lock()
			c.coldStarts++
			c.lastColdStart = cold
			c.mu.Unlock()
			c.log.Info("worker ready", "pid", hb.PID, "owner", hb.Owner,
				"cold_start_ms", cold.Milliseconds())
		}
	}

	// Sweep corpses and their heartbeat litter. A crashed worker (exited
	// without being asked) is just logged — reconciliation below respawns
	// it, and the claim reaper already rescued its job.
	crashed, stopped := c.sup.sweep()
	for _, p := range crashed {
		c.log.Warn("worker died unexpectedly", "pid", p.pid, "owner", p.owner)
		if p.owner != "" {
			c.fj.RemoveWorker(p.owner)
		}
	}
	for _, p := range stopped {
		if p.owner != "" {
			c.fj.RemoveWorker(p.owner)
		}
	}
	// Heartbeats nobody supervises (a previous coordinator's workers, or
	// a SIGKILLed process swept before its document) age out here.
	livePids = c.sup.live()
	for _, hb := range hbs {
		if _, supervised := livePids[hb.PID]; supervised {
			continue
		}
		if now.Sub(hb.UpdatedAt) > c.cfg.StaleAfter {
			c.fj.RemoveWorker(hb.Owner)
		}
	}

	// Observe demand and decide.
	queued, inflight := c.fj.Backlog()
	ready, starting := c.sup.counts()
	dec := c.scaler.Decide(Signals{Queued: queued, InFlight: inflight, Ready: ready, Starting: starting}, now)
	current := ready + starting
	if dec.Direction != "hold" {
		mScaleDecisions(dec.Direction).Inc()
		c.log.Info("scale decision", "direction", dec.Direction, "desired", dec.Desired,
			"current", current, "queued", queued, "inflight", inflight)
	}

	// Reconcile supply to the decision.
	for i := current; i < dec.Desired; i++ {
		if err := c.sup.spawn(); err != nil {
			c.log.Error("worker spawn failed", "error", err.Error())
			break
		}
	}
	if dec.Desired < current {
		c.stopWorkers(current-dec.Desired, byPid)
	}

	// Publish the status snapshot.
	c.mu.Lock()
	c.desired = dec.Desired
	c.queued = queued
	c.inflight = inflight
	c.workers = c.workersView(byPid, now)
	c.mu.Unlock()
}

// stopWorkers stops n workers, preferring idle ones — stopping a busy
// worker cancels its job back into the queue (safe, but wasted work).
func (c *Coordinator) stopWorkers(n int, byPid map[int]serve.WorkerInfo) {
	type cand struct {
		pid  int
		busy bool
	}
	var cands []cand
	for pid := range c.sup.live() {
		hb, ok := byPid[pid]
		cands = append(cands, cand{pid: pid, busy: ok && hb.State == "busy"})
	}
	for pass := 0; pass < 2 && n > 0; pass++ {
		for _, cd := range cands {
			if n == 0 {
				break
			}
			if (pass == 0) == cd.busy {
				continue // first pass: idle only; second: whoever is left
			}
			c.sup.stop(cd.pid)
			n--
		}
	}
}

// workersView renders the per-worker roster for Status.
func (c *Coordinator) workersView(byPid map[int]serve.WorkerInfo, now time.Time) []api.FleetWorker {
	var out []api.FleetWorker
	for pid, owner := range c.sup.live() {
		hb, ok := byPid[pid]
		switch {
		case !ok:
			out = append(out, api.FleetWorker{PID: pid, State: "starting"})
		default:
			state := hb.State
			if now.Sub(hb.UpdatedAt) > c.cfg.StaleAfter {
				state = "stale"
			}
			if owner == "" {
				owner = hb.Owner
			}
			out = append(out, api.FleetWorker{
				Owner: owner, PID: pid, State: state, Job: hb.Job,
				Jobs: hb.Jobs, Sims: hb.Sims,
				UptimeSeconds: now.Sub(hb.StartedAt).Seconds(),
			})
		}
	}
	return out
}
