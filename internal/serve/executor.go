package serve

// executor is the job-execution engine, extracted from Server so two
// roles can drive it: the in-process executor goroutine of a standalone
// Server (the single-process mode that predates the fleet), and the
// worker-process loop in worker.go, which drains claims from a shared
// journal. The execution semantics — store-first GetOrCompute, jittered
// transient retries under the attempt budget, breaker feedback,
// delivery-beats-persistence — are identical in both roles; only how a
// job arrives (queue channel vs. journal claim) differs.

import (
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"pythia/internal/fault"
	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/results"
)

type executor struct {
	store    *results.Store
	policies *policy.Store
	// storeBrk and polBrk are the per-store circuit breakers guarding
	// result and policy persistence respectively.
	storeBrk *breaker
	polBrk   *breaker
	// journal is nil when journaling is disabled.
	journal *journal

	leaseTTL         time.Duration
	maxAttempts      int
	retryBase        time.Duration
	progressInterval time.Duration

	// owner is the claim-owner identity when this executor runs inside a
	// fleet worker ("" in the single-process role). With an owner set,
	// the heartbeat also renews the job's claim file — and cancels the
	// run if the claim was lost (lease reaped, job requeued elsewhere)
	// or a frontend left a cancel marker.
	owner string

	log *slog.Logger
}

// execute routes a job to its kind's runner and logs its terminal
// outcome — the one log line per job worth grepping for.
func (e *executor) execute(j *job) {
	e.log.Info("job dispatched", "job", j.id, "kind", j.kind, "scale", j.scaleName)
	if j.kind == KindTrain {
		e.runTrainJob(j)
	} else {
		e.runJob(j)
	}
	v := j.view()
	e.log.Info("job finished", "job", j.id, "kind", j.kind, "status", v.Status,
		"cached", v.Cached, "sims", v.Sims, "attempts", v.Attempts, "error", v.Error)
}

// runJob executes one experiment, consulting the store first. Transient
// failures (store writes, I/O pressure — see fault.IsTransient) retry
// with jittered exponential backoff under the job's attempt budget;
// each attempt's persist outcome feeds the result store's circuit
// breaker. Retrying the whole GetOrCompute is nearly free on the
// compute side: the harness memoizes finished runs in memory even when
// persists fail, so a retry re-renders the table without re-simulating.
func (e *executor) runJob(j *job) {
	// A job canceled while queued (DELETE, or an aborted shutdown) is
	// already terminal — or about to be; don't touch the store for it.
	if j.ctx.Err() != nil {
		j.finish(nil, false, 0, j.ctx.Err())
		return
	}
	startSims := harness.SimCount()
	stopSampler := e.startSampler(j, startSims)

	key := harness.ExperimentKey(j.expID, j.scale)
	var payload harness.ExperimentPayload
	var hit bool
	var err error
	for {
		payload = harness.ExperimentPayload{}
		j.beginAttempt(e.leaseTTL)
		hit, err = e.store.GetOrCompute(key, &payload, func() (any, error) {
			return e.computeExperiment(j, startSims)
		})
		delivered := payload.Table != nil
		e.recordPersist(e.storeBrk, hit, delivered, err)
		if !e.retry(j, err) {
			break
		}
	}
	stopSampler()

	executed := harness.SimCount() - startSims
	// GetOrCompute reports a non-nil error alongside a delivered payload
	// when only the persist failed ("delivery beats persistence"); the
	// computed table must still reach the client — an unwritable store
	// degrades to "no reuse", never to a failed run.
	if err != nil && payload.Table == nil {
		j.finish(nil, false, executed, err)
		return
	}
	j.finish(&payload, hit, executed, nil)
}

// runTrainJob executes one policy-training job: the policy store is
// consulted first (through the same GetOrTrain path every caller shares),
// so a repeat request for an already-trained policy is a store hit with
// zero simulations — the job's sims counter proves it to clients, exactly
// as experiment jobs prove result-store reuse.
func (e *executor) runTrainJob(j *job) {
	if j.ctx.Err() != nil {
		j.finish(nil, false, 0, j.ctx.Err())
		return
	}
	startSims := harness.SimCount()
	stopSampler := e.startSampler(j, startSims)

	var env policy.Envelope
	var hit bool
	var err error
	for {
		j.beginAttempt(e.leaseTTL)
		env, hit, err = e.trainPolicy(j)
		e.recordPersist(e.polBrk, hit, env.ID != "", err)
		if !e.retry(j, err) {
			break
		}
	}
	stopSampler()

	executed := harness.SimCount() - startSims
	// Like experiment jobs, delivery beats persistence: a policy that
	// trained but failed to land on disk still reaches the client.
	if err != nil && env.ID == "" {
		j.finishPolicy(nil, false, executed, err)
		return
	}
	meta := env.Meta
	j.finishPolicy(&meta, hit, executed, nil)
}

// recordPersist feeds one attempt's persist outcome into a store's
// breaker. Only outcomes that say something about the store count: a
// delivered-but-unpersisted artifact is a persist failure, an actual
// write is a success, and a store hit (or a compute failure, or a
// read-only store) says nothing.
func (e *executor) recordPersist(b *breaker, hit, delivered bool, err error) {
	switch {
	case err != nil && delivered:
		b.recordFailure(err)
	case err == nil && !hit:
		b.recordSuccess()
	}
}

// retry decides whether err warrants another attempt: transient
// classification only (fault.IsTransient), within the attempt budget,
// and never once the job's context is done. It sleeps the jittered
// backoff before reporting true.
func (e *executor) retry(j *job, err error) bool {
	if err == nil || j.ctx.Err() != nil || !fault.IsTransient(err) {
		return false
	}
	j.mu.Lock()
	attempt := j.attempts
	j.mu.Unlock()
	if attempt >= e.maxAttempts {
		return false
	}
	wait := backoff(e.retryBase, attempt)
	e.log.Warn("transient failure, retrying", "job", j.id, "attempt", attempt,
		"backoff_ms", wait.Milliseconds(), "error", err.Error())
	j.retrying(err, wait)
	select {
	case <-time.After(wait):
	case <-j.ctx.Done():
		return false
	}
	return true
}

// backoff is full-jittered exponential backoff: a uniform draw from
// (0, base·2^(attempt-1)], capped at 5s — the de-correlated shape that
// keeps retry herds from re-colliding.
func backoff(base time.Duration, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	span := base << (attempt - 1)
	if lim := 5 * time.Second; span > lim {
		span = lim
	}
	return time.Duration(rand.Int63n(int64(span))) + 1
}

// startSampler launches the progress sampler for a running job and
// returns a function that stops it and waits for it to exit. The sampler
// reads the process-wide simulation counter: with one job executing at a
// time per process, every simulation between job start and finish
// belongs to this job, so the delta is exact.
//
// The sampler is also the lease heartbeat: each tick renews the running
// job's journaled lease, so the lease lapses exactly when the process
// stops making progress observations (crash, hang, SIGKILL). In the
// worker role (owner set) the heartbeat additionally renews the claim
// file — aborting the run if the claim was lost — and honors cancel
// markers left by a frontend, since contexts don't cross processes.
func (e *executor) startSampler(j *job, startSims int64) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(e.progressInterval)
		defer tick.Stop()
		j.progress(0)
		lastRenew := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				j.progress(harness.SimCount() - startSims)
				if e.journal == nil {
					continue
				}
				if e.owner != "" && e.journal.cancelRequested(j.id) {
					e.log.Info("cancel marker honored", "job", j.id)
					j.markUserCanceled()
					j.cancel()
				}
				// Renewing on every tick would write the journal far more
				// often than durability needs; a third of the TTL keeps two
				// renewals of slack before a lease could falsely lapse.
				if time.Since(lastRenew) >= e.leaseTTL/3 {
					if e.owner != "" {
						if err := e.journal.renewClaim(j.id, e.owner, e.leaseTTL); err != nil {
							// The claim is gone or owned elsewhere: this worker
							// lost the lease (reaped after a stall). Abort the
							// run rather than split-brain with the new owner;
							// the finish path must not journal over theirs.
							e.log.Warn("lease lost, aborting run", "job", j.id, "error", err.Error())
							j.orphan()
							j.cancel()
							return
						}
					}
					j.renewLease(e.leaseTTL)
					lastRenew = time.Now()
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// trainPolicy runs the training itself under the job's context; the
// recover mirrors computeExperiment's last line of defense.
func (e *executor) trainPolicy(j *job) (env policy.Envelope, hit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("training %s on %s panicked: %v", j.train.Config.Name, j.train.Workload.Name, r)
		}
	}()
	return harness.TrainPolicyIn(j.ctx, e.policies, j.train)
}

// computeExperiment runs the experiment itself under the job's context.
// The harness reports failures (bad specs, corrupted trace-cache files,
// cancellation) as error values; the recover is a last line of defense
// against latent panics in model code, so no single request can take down
// the service either way.
func (e *executor) computeExperiment(j *job, startSims int64) (payload any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment %s panicked: %v", j.expID, r)
		}
	}()
	exp, ok := harness.ExperimentByID(j.expID)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", j.expID)
	}
	start := time.Now()
	table, err := exp.Run(j.ctx, j.scale)
	if err != nil {
		return nil, err
	}
	// The computed payload goes to the store the moment this returns.
	j.tl.Mark("persisting", time.Now().UTC())
	return harness.ExperimentPayload{
		ID:      exp.ID,
		Title:   exp.Title,
		Scale:   j.scaleName,
		Table:   table,
		Sims:    harness.SimCount() - startSims,
		Seconds: time.Since(start).Seconds(),
	}, nil
}
