package serve_test

// The in-process half of the chaos suite: named failpoints
// (internal/fault) are armed at every layer the serving path crosses —
// result-store writes, policy-store writes, trace decoding, the journal,
// and the admission window between journal write and queue insert — and
// the tests assert the ISSUE-6 invariants: jobs converge to done or
// permanently-failed, no store file is ever corrupt or partial, and
// /healthz reports degradation truthfully. The process-crash half
// (SIGKILL) lives in chaos_proc_test.go.

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pythia/internal/fault"
	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
	"pythia/internal/stream"
)

// auditStoreFiles fails the test if any .json file in dir is not valid
// JSON — the "no corrupt or partial store files, ever" invariant.
// Leftover .tmp files are legal (the stale-temp sweep reclaims them);
// half-written JSON is not.
func auditStoreFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return // store never created: trivially clean
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("unreadable store file %s: %v", e.Name(), err)
			continue
		}
		if !json.Valid(buf) {
			t.Errorf("corrupt store file %s (%d bytes)", e.Name(), len(buf))
		}
	}
}

// health fetches /healthz as a generic map.
func health(t *testing.T, base string) map[string]any {
	t.Helper()
	var h map[string]any
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	return h
}

// sseTypes collects the event types of a finished job's SSE stream.
func sseTypes(t *testing.T, base, id string) []string {
	t.Helper()
	var types []string
	for _, ev := range readSSE(t, base, id) {
		types = append(types, ev.Type)
	}
	return types
}

// TestChaosTransientStoreFaultRetries: a store write that fails once
// with a transient error is retried with backoff, and the job still
// succeeds — attempt two persists the result (the harness's in-memory
// memoization makes the re-compute free).
func TestChaosTransientStoreFaultRetries(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	storeDir := t.TempDir()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(storeDir),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		MaxAttempts:      3,
		RetryBase:        2 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	fault.Enable(results.FPWrite, fault.Spec{
		Err:   fault.Transient(errors.New("injected store outage")),
		Count: 1,
	})
	retriesBefore := metricValue("pythia_serve_retries_total", nil)
	job, code := postRun(t, ts, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	done := waitDone(t, ts, job.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("job ended %q (%s), want done despite transient store fault", done.Status, done.Error)
	}
	if done.Attempts != 2 {
		t.Errorf("job took %d attempts, want 2 (one fault, one clean retry)", done.Attempts)
	}
	if d := metricValue("pythia_serve_retries_total", nil) - retriesBefore; d < 1 {
		t.Errorf("pythia_serve_retries_total moved by %v, want >= 1", d)
	}
	if got := fault.Trips(results.FPWrite); got != 1 {
		t.Errorf("failpoint tripped %d times, want 1", got)
	}
	// The retry was announced over SSE, and the result did land on disk.
	types := sseTypes(t, ts, job.ID)
	if !slicesContains(types, "retry") {
		t.Errorf("SSE stream %v carries no retry event", types)
	}
	var payload harness.ExperimentPayload
	if !results.Open(storeDir).Get(harness.ExperimentKey("fig14", tinyScale), &payload) {
		t.Error("result not persisted after the retry succeeded")
	}
	auditStoreFiles(t, storeDir)
	if h := health(t, ts); h["ok"] != true {
		t.Errorf("healthz not ok after recovered fault: %v", h)
	}
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestChaosBreakerOpensAndRecovers: a persistently failing store opens
// the circuit breaker; /healthz reports degraded; launches that need a
// write are shed with 503 + Retry-After while store-hit launches and
// direct result reads still succeed; once the fault clears and the
// cooldown elapses, a probe job closes the breaker.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	storeDir := t.TempDir()
	cooldown := 1500 * time.Millisecond
	srv, err := serve.New(serve.Config{
		Store:            results.Open(storeDir),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		MaxAttempts:      2,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	// Seed the store while healthy so degraded mode has a hit to serve.
	seeded, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST seed = %d", code)
	}
	if done := waitDone(t, ts, seeded.ID); done.Status != serve.StatusDone {
		t.Fatalf("seed job ended %q (%s)", done.Status, done.Error)
	}

	// Persistent store failure: the next job burns its attempt budget
	// (threshold-many consecutive persist failures) and opens the breaker
	// — but the client still gets its table (delivery beats persistence).
	fault.Enable(results.FPWrite, fault.Spec{Err: fault.Transient(errors.New("injected persistent outage"))})
	broken, code := postRun(t, ts, "table4", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if done := waitDone(t, ts, broken.ID); done.Status != serve.StatusDone || done.Result == nil {
		t.Fatalf("persist-failed job ended %q (result %v), want done with a delivered table", done.Status, done.Result != nil)
	}
	opened := time.Now()

	h := health(t, ts)
	if h["ok"] != false || h["degraded"] != true {
		t.Fatalf("healthz after breaker opened: ok=%v degraded=%v, want false/true", h["ok"], h["degraded"])
	}

	// A launch that needs a fresh simulation is shed with Retry-After...
	body := strings.NewReader(`{"experiment": "table7", "scale": "tiny"}`)
	resp, err := http.Post(ts+"/api/v1/runs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 carries no Retry-After header")
	}

	// ...but a store hit is still admitted and served, and the direct
	// read path works: degraded is read-only, not down.
	hit, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("store-hit POST while degraded = %d, want 202", code)
	}
	if done := waitDone(t, ts, hit.ID); done.Status != serve.StatusDone || !done.Cached {
		t.Fatalf("store-hit job while degraded: status %q cached %v", done.Status, done.Cached)
	}
	if code := getJSON(t, ts+"/api/v1/results/table2?scale=tiny", nil); code != http.StatusOK {
		t.Errorf("GET stored result while degraded = %d", code)
	}

	// Fault clears, cooldown elapses: the next write-needing launch is
	// the half-open probe; its successful persist closes the breaker.
	fault.Disable(results.FPWrite)
	time.Sleep(cooldown - time.Since(opened) + 100*time.Millisecond)
	probe, code := postRun(t, ts, "table7", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("probe POST after cooldown = %d, want 202", code)
	}
	if done := waitDone(t, ts, probe.ID); done.Status != serve.StatusDone {
		t.Fatalf("probe job ended %q (%s)", done.Status, done.Error)
	}
	h = health(t, ts)
	if h["ok"] != true || h["degraded"] != false {
		t.Errorf("healthz after recovery: ok=%v degraded=%v, want true/false", h["ok"], h["degraded"])
	}
	auditStoreFiles(t, storeDir)
}

// TestChaosPolicyBreakerShedsTraining: the policy store has its own
// breaker; persistent policy-write failures shed new training jobs with
// Retry-After while experiment jobs are unaffected.
func TestChaosPolicyBreakerShedsTraining(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		Policies:         policy.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		MaxAttempts:      2,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	fault.Enable(policy.FPWrite, fault.Spec{Err: fault.Transient(errors.New("injected policy outage"))})
	launch := func() (serve.JobView, *http.Response) {
		body := strings.NewReader(`{"train": {"workload": "459.GemsFDTD-100B", "config": "pythia"}, "scale": "tiny"}`)
		resp, err := http.Post(ts+"/api/v1/runs", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Job serve.JobView `json:"job"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		return out.Job, resp
	}
	job, resp := launch()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST train = %d", resp.StatusCode)
	}
	// The trained policy is still delivered; the persist failures open
	// the policy breaker.
	if done := waitDone(t, ts, job.ID); done.Status != serve.StatusDone || done.Policy == nil {
		t.Fatalf("train job under policy faults ended %q (policy %v)", done.Status, done.Policy != nil)
	}
	if _, resp := launch(); resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("train POST with open policy breaker = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Experiment jobs ride an independent breaker: unaffected.
	exp, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("experiment POST with open policy breaker = %d", code)
	}
	if done := waitDone(t, ts, exp.ID); done.Status != serve.StatusDone {
		t.Fatalf("experiment job ended %q (%s)", done.Status, done.Error)
	}
}

// TestChaosDecodeFaultFailsPermanently: an injected trace-decode fault
// is a permanent failure — the job errors on its first attempt (no
// retry: the same file would fail the same way), the service stays
// healthy, and no partial store file appears.
func TestChaosDecodeFaultFailsPermanently(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	harness.SetTraceCacheDir(t.TempDir())
	defer harness.SetTraceCacheDir("")
	storeDir := t.TempDir()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(storeDir),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		MaxAttempts:      3,
		RetryBase:        time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tinystream": tinyStreamScale, "tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	// Skip a few hundred records so the cut lands mid-stream, then
	// corrupt every decode.
	disable := fault.Enable(stream.FPDecode, fault.Spec{Skip: 500})
	job, code := postRun(t, ts, "fig14", "tinystream")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	done := waitDone(t, ts, job.ID)
	if done.Status != serve.StatusError {
		t.Fatalf("decode-fault job ended %q, want error", done.Status)
	}
	if done.Attempts != 1 {
		t.Errorf("permanent failure took %d attempts, want 1 (no retry)", done.Attempts)
	}
	if types := sseTypes(t, ts, job.ID); slicesContains(types, "retry") {
		t.Errorf("permanent failure produced a retry event: %v", types)
	}
	disable()

	auditStoreFiles(t, storeDir)
	if h := health(t, ts); h["ok"] != true {
		t.Errorf("healthz after permanent job failure: %v", h)
	}
	next, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST after failure = %d", code)
	}
	if done := waitDone(t, ts, next.ID); done.Status != serve.StatusDone {
		t.Fatalf("job after failure ended %q (%s)", done.Status, done.Error)
	}
}

// TestChaosAdmitCrashRecovered drives the widest at-least-once window:
// the server "crashes" (injected panic) after journaling an admission
// but before the queue insert. The client gets an error, yet the job is
// journaled — a rebuilt server over the same journal requeues and
// completes it.
func TestChaosAdmitCrashRecovered(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	journalDir := t.TempDir()
	storeDir := t.TempDir()
	mk := func() *serve.Server {
		srv, err := serve.New(serve.Config{
			Store:            results.Open(storeDir),
			QueueDepth:       4,
			ProgressInterval: 10 * time.Millisecond,
			JournalDir:       journalDir,
			ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srvA := mk()
	// net/http recovers handler panics; silence its log of the injected one.
	tsA := httptest.NewUnstartedServer(srvA.Handler())
	tsA.Config.ErrorLog = log.New(io.Discard, "", 0)
	tsA.Start()

	fault.Enable(serve.FPAdmitCrash, fault.Spec{Mode: fault.ModePanic})
	body := strings.NewReader(`{"experiment": "table4", "scale": "tiny"}`)
	if resp, err := http.Post(tsA.URL+"/api/v1/runs", "application/json", body); err == nil {
		// The handler died mid-admission; any response is server-side noise.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	fault.Disable(serve.FPAdmitCrash)
	tsA.Close()
	srvA.Close()

	// The crash window left a journaled-but-unqueued job behind.
	ents, err := os.ReadDir(journalDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no journal record survived the admission crash (err %v)", err)
	}

	recoveredBefore := metricValue("pythia_serve_journal_recovered_total", nil)
	requeuesBefore := metricValue("pythia_serve_requeues_total", nil)
	srvB := mk()
	tsB := newHTTPServer(t, srvB)
	if d := metricValue("pythia_serve_journal_recovered_total", nil) - recoveredBefore; d < 1 {
		t.Errorf("pythia_serve_journal_recovered_total moved by %v, want >= 1", d)
	}
	if d := metricValue("pythia_serve_requeues_total", nil) - requeuesBefore; d < 1 {
		t.Errorf("pythia_serve_requeues_total moved by %v, want >= 1", d)
	}
	var list struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	getJSON(t, tsB+"/api/v1/runs", &list)
	if len(list.Jobs) != 1 {
		t.Fatalf("recovered server lists %d jobs, want 1", len(list.Jobs))
	}
	ghost := list.Jobs[0]
	if !ghost.Recovered {
		t.Error("requeued job not marked recovered")
	}
	if done := waitDone(t, tsB, ghost.ID); done.Status != serve.StatusDone {
		t.Fatalf("recovered ghost job ended %q (%s), want done", done.Status, done.Error)
	}
	auditStoreFiles(t, storeDir)
}

// TestChaosJournalWriteFaultIsBestEffort: journal-write failures never
// fail jobs — the job completes, durability is what degrades, and
// /healthz counts the lost writes.
func TestChaosJournalWriteFaultIsBestEffort(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       t.TempDir(),
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	fault.Enable(serve.FPJournalWrite, fault.Spec{Err: fault.Transient(errors.New("injected journal outage"))})
	job, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if done := waitDone(t, ts, job.ID); done.Status != serve.StatusDone {
		t.Fatalf("job under journal faults ended %q (%s), want done", done.Status, done.Error)
	}
	h := health(t, ts)
	jn, ok := h["journal"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no journal section: %v", h)
	}
	if n, _ := jn["write_errors"].(float64); n == 0 {
		t.Error("journal write failures not counted in /healthz")
	}
}
