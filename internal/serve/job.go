package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"pythia/internal/api"
	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
)

// Job kinds and statuses are defined by the wire contract in
// internal/api; serve re-exports them so internal code (and the journal,
// which persists status strings) reads naturally. Both kinds flow
// through the same queue, executor and SSE machinery.
const (
	KindExperiment = api.KindExperiment
	KindTrain      = api.KindTrain

	StatusQueued   = api.StatusQueued
	StatusRunning  = api.StatusRunning
	StatusDone     = api.StatusDone
	StatusError    = api.StatusError
	StatusCanceled = api.StatusCanceled
)

// terminalStatus reports whether s is a terminal job status.
func terminalStatus(s string) bool { return api.TerminalStatus(s) }

// Event is one server-sent event: a type tag plus a JSON payload.
type Event = api.Event

// job is one queued experiment run. All mutable state is behind mu; the
// executor writes, HTTP handlers read, SSE subscribers receive a replay of
// every event published so far followed by live events, so a subscriber
// that arrives after completion still sees the full history.
//
// Each job owns a context derived from the server's base context; cancel
// (DELETE /api/v1/runs/{id}) aborts an in-flight simulation at the next chunk
// boundary and turns a queued job into a no-op. Server shutdown cancels
// the base context, which reaches every job the same way.
type job struct {
	id        string
	kind      string
	expID     string
	title     string
	scaleName string
	scale     harness.Scale
	// train is the training spec of a KindTrain job.
	train harness.TrainSpec

	ctx    context.Context
	cancel context.CancelFunc

	// tl is the job's stage timeline (accepted→queued→leased→streaming→
	// simulating→persisting→terminal). It also rides ctx, so the harness
	// marks the stages it owns; JobView surfaces the snapshot.
	tl *obs.Timeline

	// jl is the server's journal (nil = journaling disabled); set before
	// the job is visible to any other goroutine. State transitions under
	// mu write through to it, so per-job journal writes are serialized.
	jl *journal
	// recovered marks a job rebuilt from the journal after a restart.
	recovered bool

	mu       sync.Mutex
	status   string
	errMsg   string
	cached   bool
	sims     int64
	attempts int
	// owner is the lease-owner identity of the process executing the job
	// (set by the worker loop before execution; empty for the in-process
	// executor and for queued jobs). Journaled so fleet frontends can
	// report which worker holds each job.
	owner string
	// leaseUntil is the running job's heartbeat-renewed lease expiry.
	leaseUntil time.Time
	// userCanceled distinguishes DELETE (a terminal decision, journaled)
	// from shutdown-driven cancellation (the journal keeps the job's
	// pre-cancel state so a restart requeues it).
	userCanceled bool
	// orphaned marks a worker-side job whose claim was lost; see orphan.
	orphaned bool
	created  time.Time
	started  time.Time
	finished time.Time
	result   *harness.ExperimentPayload
	// policyMeta is a finished training job's artifact descriptor.
	policyMeta *policy.Meta

	events []Event
	subs   map[chan Event]struct{}
	closed bool
}

// JobView is the JSON representation of a job exposed by the API — an
// alias for api.Job, the single source of truth for the v1 wire format
// (golden-pinned in internal/api).
type JobView = api.Job

func newJob(base context.Context, id string, exp harness.Experiment, scaleName string, sc harness.Scale) *job {
	j := blankJob(base, id, KindExperiment, scaleName, sc)
	j.expID = exp.ID
	j.title = exp.Title
	j.publish("status", j.viewLocked())
	return j
}

func newTrainJob(base context.Context, id string, ts harness.TrainSpec, scaleName string, sc harness.Scale) *job {
	j := blankJob(base, id, KindTrain, scaleName, sc)
	j.train = ts
	j.title = "Train policy: " + ts.Config.Name + " on " + ts.Workload.Name
	j.publish("status", j.viewLocked())
	return j
}

func blankJob(base context.Context, id, kind, scaleName string, sc harness.Scale) *job {
	now := time.Now().UTC()
	tl := obs.NewTimeline("accepted", now)
	tl.Mark("queued", now)
	ctx, cancel := context.WithCancel(obs.WithTimeline(base, tl))
	return &job{
		id:        id,
		kind:      kind,
		scaleName: scaleName,
		scale:     sc,
		ctx:       ctx,
		cancel:    cancel,
		tl:        tl,
		status:    StatusQueued,
		created:   now,
		subs:      make(map[chan Event]struct{}),
	}
}

// terminal reports whether the job has reached done, error or canceled.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status)
}

// view snapshots the job for JSON rendering.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *job) viewLocked() JobView {
	v := JobView{
		ID:         j.id,
		Kind:       j.kind,
		Experiment: j.expID,
		Title:      j.title,
		Scale:      j.scaleName,
		Status:     j.status,
		Error:      j.errMsg,
		Cached:     j.cached,
		Sims:       j.sims,
		Attempts:   j.attempts,
		Recovered:  j.recovered,
		Worker:     j.owner,
		CreatedAt:  j.created,
		Result:     j.result,
		Policy:     j.policyMeta,
	}
	if j.kind == KindTrain {
		v.Workload = j.train.Workload.Name
		v.Config = j.train.Config.Name
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.result != nil && j.result.Table != nil {
		v.Rendered = j.result.Table.Render()
	}
	until := time.Now().UTC()
	if !j.finished.IsZero() {
		until = j.finished
	}
	v.Timeline = j.tl.Snapshot(until)
	return v
}

// publish appends an event to the history and fans it out to live
// subscribers. Callers must hold mu (newJob's construction-time call is
// safe: no other goroutine can see the job yet).
func (j *job) publish(typ string, payload any) {
	buf, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := Event{Type: typ, Data: buf}
	// Coalesce consecutive progress events in the history: live
	// subscribers already received each one, and replaying every sample of
	// a long run would bloat the history (and server memory) for no
	// information — only the latest progress figure matters to a late
	// subscriber.
	if typ == "progress" && len(j.events) > 0 && j.events[len(j.events)-1].Type == "progress" {
		j.events[len(j.events)-1] = ev
	} else {
		j.events = append(j.events, ev)
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// A subscriber that cannot keep up misses intermediate progress
			// events; the SSE handler synthesizes the terminal event from
			// the job's final state if it was dropped here, so nothing
			// essential is lost.
		}
	}
}

// beginAttempt transitions the job to running (announced once, on the
// first attempt), counts the attempt, and takes a lease of ttl — all
// journaled. A job that already turned terminal stays terminal: a
// DELETE can finish a queued job between the executor popping it and
// reaching here, and running must not overwrite (or be published after)
// that terminal state.
func (j *job) beginAttempt(ttl time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.attempts++
	now := time.Now().UTC()
	if j.attempts == 1 {
		mQueueWait.Observe(now.Sub(j.created).Seconds())
	}
	// Barrier, not Mark: each attempt opens a fresh dedup window, so a
	// retried job's timeline shows every leased→streaming→… sequence.
	j.tl.Barrier("leased", now)
	j.leaseUntil = now.Add(ttl)
	if j.status != StatusRunning {
		j.status = StatusRunning
		j.started = time.Now().UTC()
		j.publish("status", j.viewLocked())
	}
	j.journalLocked(j.jl)
}

// renewLease is the heartbeat: the progress sampler pushes the running
// job's lease expiry out every interval, so only a process that stopped
// sampling (crashed, hung, killed) ever lets it lapse.
func (j *job) renewLease(ttl time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return
	}
	j.leaseUntil = time.Now().UTC().Add(ttl)
	j.journalLocked(j.jl)
}

// retrying announces a transient failure and the backoff before the
// next attempt (a "retry" SSE event; bounded by the attempt budget, so
// no coalescing is needed).
func (j *job) retrying(err error, wait time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	mRetries.Inc()
	j.publish("retry", map[string]any{
		"id":         j.id,
		"attempt":    j.attempts,
		"error":      err.Error(),
		"backoff_ms": wait.Milliseconds(),
	})
}

// requeued journals the job's (re-)queued state; the recovery requeue
// paths call it so the journal reflects that the job is waiting again.
func (j *job) requeued() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.journalLocked(j.jl)
}

// markUserCanceled records that a cancellation was an explicit client
// decision (DELETE), making the resulting terminal state durable; see
// the userCanceled field.
func (j *job) markUserCanceled() {
	j.mu.Lock()
	j.userCanceled = true
	j.mu.Unlock()
}

// orphan marks a job whose lease was lost to another owner (the claim
// was reaped and possibly re-claimed elsewhere). Detaching the journal
// makes the eventual local terminal state memory-only, so this process
// can never overwrite the new owner's record; the worker loop also skips
// releasing a claim it no longer holds.
func (j *job) orphan() {
	j.mu.Lock()
	j.jl = nil
	j.orphaned = true
	j.mu.Unlock()
}

// lostLease reports whether orphan was called.
func (j *job) lostLease() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.orphaned
}

// progress announces how many simulations the job has executed so far
// (dropped once the job is terminal, so no event trails the terminal one
// in the history).
func (j *job) progress(sims int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.sims = sims
	j.publish("progress", map[string]any{"id": j.id, "sims": sims})
}

// finish records the terminal state, announces it, and closes every
// subscriber channel (their signal to end the SSE stream). A context
// cancellation error lands the job in canceled, not error: being stopped
// on request is a normal lifecycle outcome, not a failure. Finishing twice
// is a no-op (a canceled queued job may be finished by both the DELETE
// handler and the executor's drain).
func (j *job) finish(res *harness.ExperimentPayload, cached bool, sims int64, err error) {
	j.finishWith(func() { j.result = res }, cached, sims, err)
}

// finishPolicy is finish for training jobs: the artifact is a policy
// descriptor rather than a rendered table.
func (j *job) finishPolicy(meta *policy.Meta, cached bool, sims int64, err error) {
	j.finishWith(func() { j.policyMeta = meta }, cached, sims, err)
}

// finishWith records the terminal state (setResult installs the
// kind-specific artifact on success) under mu.
func (j *job) finishWith(setResult func(), cached bool, sims int64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.finished = time.Now().UTC()
	j.cached = cached
	j.sims = sims
	mSSESubs.Add(-float64(len(j.subs)))
	switch {
	case err == nil:
		j.status = StatusDone
		setResult()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCanceled
		j.errMsg = err.Error()
	default:
		j.status = StatusError
		j.errMsg = err.Error()
	}
	j.tl.Barrier(j.status, j.finished)
	jobsFinished(j.status).Inc()
	if !j.started.IsZero() {
		jobDuration(j.kind).Observe(j.finished.Sub(j.started).Seconds())
	}
	// Journal the terminal state — except for cancellations the client
	// did not ask for (shutdown, an aborted drain): those keep their
	// last journaled state so a restart requeues the job instead of
	// losing it. That asymmetry is what makes the queue durable across
	// SIGTERM, not just SIGKILL.
	if j.status != StatusCanceled || j.userCanceled {
		j.journalLocked(j.jl)
	}
	j.publish(j.status, j.viewLocked())
	j.closed = true
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	// The job context is done with: release its resources (also unparks
	// any AfterFunc the harness registered for it).
	j.cancel()
}

// syncRunning applies a worker-written running record to a job the
// frontend is tracking in dispatch mode: the status flip is announced
// once, progress rides the record's sims counter, and the executing
// worker's identity becomes visible. The journal is NOT written back —
// the worker owns the record while it holds the claim; the frontend is
// a reader here.
func (j *job) syncRunning(rec jobRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.attempts = rec.Attempts
	j.owner = rec.Owner
	j.leaseUntil = rec.LeaseUntil
	if j.status != StatusRunning {
		j.status = StatusRunning
		j.started = rec.UpdatedAt
		if j.started.IsZero() {
			j.started = time.Now().UTC()
		}
		mQueueWait.Observe(j.started.Sub(j.created).Seconds())
		j.tl.Barrier("leased", j.started)
		j.publish("status", j.viewLocked())
	}
	if rec.Sims != j.sims {
		j.sims = rec.Sims
		j.publish("progress", map[string]any{"id": j.id, "sims": rec.Sims})
	}
}

// adoptTerminal applies a worker-written terminal record: the frontend's
// tracked job reaches the same terminal state the worker journaled, with
// the artifact (res or pm) fetched from the shared stores by the caller.
// Like finishWith it is idempotent and closes every subscriber stream;
// unlike finishWith it does not journal — the record on disk already is
// the terminal state.
func (j *job) adoptTerminal(rec jobRecord, res *harness.ExperimentPayload, pm *policy.Meta) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return
	}
	j.finished = time.Now().UTC()
	if !rec.UpdatedAt.IsZero() {
		j.finished = rec.UpdatedAt
	}
	j.status = rec.Status
	j.errMsg = rec.Error
	j.cached = rec.Cached
	j.sims = rec.Sims
	j.attempts = rec.Attempts
	j.owner = rec.Owner
	j.result = res
	j.policyMeta = pm
	mSSESubs.Add(-float64(len(j.subs)))
	j.tl.Barrier(j.status, j.finished)
	jobsFinished(j.status).Inc()
	if !j.started.IsZero() {
		jobDuration(j.kind).Observe(j.finished.Sub(j.started).Seconds())
	}
	j.publish(j.status, j.viewLocked())
	j.closed = true
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	j.cancel()
}

// subscribe returns the event history so far plus a channel of subsequent
// events; the channel is closed when the job reaches a terminal state.
// The caller must call the returned cancel function when done.
func (j *job) subscribe() (replay []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch := make(chan Event, 16)
	if j.closed {
		close(ch)
		return replay, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	mSSESubs.Add(1)
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
			mSSESubs.Add(-1)
		}
	}
}
