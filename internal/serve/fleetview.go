package serve

// FleetJournal is the read/admin façade the fleet coordinator uses over
// a shared journal directory: backlog counts for the autoscaler, worker
// heartbeats for liveness and occupancy, and expired-claim reaping. All
// journal file-format knowledge stays in this package — fleet imports
// serve, never the reverse.

import (
	"time"
)

// FleetJournal exposes the coordinator-facing slice of a journal.
type FleetJournal struct {
	jl *journal
}

// OpenFleetJournal opens dir for fleet coordination (creating it if
// needed, like the frontend and workers do).
func OpenFleetJournal(dir string) (*FleetJournal, error) {
	jl, err := openJournal(dir)
	if err != nil {
		return nil, err
	}
	return &FleetJournal{jl: jl}, nil
}

// Backlog counts the autoscaler's demand signals in one scan: queued is
// non-terminal records with no claim (work a new worker could start this
// instant), inflight is non-terminal records currently claimed.
func (f *FleetJournal) Backlog() (queued, inflight int) {
	for _, rec := range f.jl.load() {
		if terminalStatus(rec.Status) {
			continue
		}
		if _, claimed := f.jl.claimState(rec.ID); claimed {
			inflight++
		} else {
			queued++
		}
	}
	return queued, inflight
}

// WorkerInfo is one worker process's heartbeat as the coordinator sees
// it (the exported view of the on-disk document).
type WorkerInfo struct {
	Owner string
	PID   int
	// State is "idle" or "busy"; Job is the claimed job while busy.
	State string
	Job   string
	// Jobs and Sims are cumulative completed-job/executed-simulation
	// counters.
	Jobs int64
	Sims int64

	StartedAt time.Time
	UpdatedAt time.Time
}

// Workers lists every worker heartbeat on disk, dead or alive — the
// caller judges staleness against UpdatedAt.
func (f *FleetJournal) Workers() []WorkerInfo {
	states := f.jl.loadWorkers()
	out := make([]WorkerInfo, 0, len(states))
	for _, w := range states {
		out = append(out, WorkerInfo(w))
	}
	return out
}

// RemoveWorker retires a dead worker's heartbeat document.
func (f *FleetJournal) RemoveWorker(owner string) {
	f.jl.removeWorker(owner)
}

// ReapExpired removes claims whose lease lapsed, requeueing their jobs
// (a non-terminal record without a claim is claimable again); it returns
// the affected job IDs. The coordinator is the fleet's single reaper —
// see the claim-protocol notes in claims.go.
func (f *FleetJournal) ReapExpired(grace time.Duration) []string {
	return f.jl.reapExpiredClaims(grace)
}
