package serve

// Multi-worker journal contention: several workers drain one journal
// concurrently (run under -race in CI). The claim protocol must hand
// each job to exactly one worker — proven by attempt counts, by the
// global simulation counter, and by a second pass over identical specs
// costing zero simulations (the content-addressed store would not dedupe
// a job that ran twice under different owners into extra work, but a
// duplicated *first* pass would inflate the sim delta).

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
)

func seedQueuedJobs(jl *journal, firstID, n int) {
	now := time.Now().UTC()
	for i := 0; i < n; i++ {
		// Unique parametric scales: distinct store fingerprints, no
		// ExtraScales table to ship to the workers.
		scale := fmt.Sprintf("custom:warmup=100,sim=%d,tracelen=1000,wps=1,mixes=1", 2000+i)
		jl.put(jobRecord{
			ID: fmt.Sprintf("job-%d", firstID+i), Kind: KindExperiment,
			Experiment: "fig14", Scale: scale,
			Status: StatusQueued, CreatedAt: now,
		})
	}
}

func drainWithWorkers(t *testing.T, jl *journal, store *results.Store, workers int) int64 {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := RunWorker(ctx, WorkerConfig{
				Store:             store,
				JournalDir:        jl.dir,
				Label:             fmt.Sprintf("w%d", i),
				PollInterval:      5 * time.Millisecond,
				HeartbeatInterval: 50 * time.Millisecond,
				ProgressInterval:  20 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			completed.Add(n)
		}(i)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		done := true
		for _, rec := range jl.load() {
			if !terminalStatus(rec.Status) {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	return completed.Load()
}

func TestMultiWorkerJournalContention(t *testing.T) {
	jl := testJournal(t)
	store := results.Open(t.TempDir())
	const jobs, workers = 6, 3

	seedQueuedJobs(jl, 1, jobs)
	startSims := harness.SimCount()
	completed := drainWithWorkers(t, jl, store, workers)
	firstPassSims := harness.SimCount() - startSims

	if completed != jobs {
		t.Errorf("workers report %d completed jobs, want %d (duplicate or lost execution)", completed, jobs)
	}
	recs := jl.load()
	if len(recs) != jobs {
		t.Fatalf("journal holds %d records, want %d", len(recs), jobs)
	}
	owners := map[string]bool{}
	for _, rec := range recs {
		if rec.Status != StatusDone {
			t.Errorf("%s ended %q (%s), want done", rec.ID, rec.Status, rec.Error)
		}
		if rec.Attempts != 1 {
			t.Errorf("%s has %d attempts, want exactly 1 (claim protocol leaked an execution)", rec.ID, rec.Attempts)
		}
		if rec.Sims == 0 {
			t.Errorf("%s reports zero simulations", rec.ID)
		}
		if rec.Owner == "" {
			t.Errorf("%s has no owner recorded", rec.ID)
		} else {
			owners[rec.Owner] = true
		}
	}
	if len(owners) < 2 {
		t.Logf("note: all %d jobs landed on %d worker(s) — legal, but the race got no exercise", jobs, len(owners))
	}
	if firstPassSims == 0 {
		t.Fatal("first pass executed zero simulations")
	}

	// Second pass: identical specs under fresh IDs must be pure store
	// hits — zero new simulations proves the first pass both persisted
	// everything and never ran a job twice under racing owners (a
	// double-run would have shown up as extra sims above the single-run
	// cost, which the repeat pass pins down).
	seedQueuedJobs(jl, jobs+1, jobs)
	startSims = harness.SimCount()
	if completed := drainWithWorkers(t, jl, store, workers); completed != jobs {
		t.Errorf("second pass completed %d jobs, want %d", completed, jobs)
	}
	if d := harness.SimCount() - startSims; d != 0 {
		t.Errorf("second pass over cached specs executed %d simulations, want 0", d)
	}
	for _, rec := range jl.load() {
		if jobIDNum(rec.ID) > jobs && !rec.Cached {
			t.Errorf("%s not marked cached on the repeat pass", rec.ID)
		}
	}
}
