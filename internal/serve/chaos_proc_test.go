package serve_test

// The process-crash half of the chaos suite: a real worker process is
// SIGKILLed mid-job — no deferred cleanup, no graceful drain — and a
// successor process over the same journal and store directories must
// requeue the orphaned job and run it to completion, with every store
// file intact throughout.
//
// The worker is this very test binary re-exec'ed with -test.run pinned
// to TestChaosChildServer and PYTHIA_CHAOS_CHILD=1 in the environment;
// without that variable the child test is an instant skip, so normal
// `go test` runs never start a server by accident.

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// chaosRoot is the directory layout shared between parent and child:
// journal/, results/, trace/ and the addr file the child publishes its
// listen address through.
func chaosAddrFile(root string) string { return filepath.Join(root, "addr") }

// TestChaosChildServer is the worker process body, not a test in its
// own right. It serves until killed.
func TestChaosChildServer(t *testing.T) {
	if os.Getenv("PYTHIA_CHAOS_CHILD") != "1" {
		t.Skip("chaos worker body; run via TestChaosWorkerSIGKILLRecovery")
	}
	root := os.Getenv("PYTHIA_CHAOS_ROOT")
	if root == "" {
		t.Fatal("PYTHIA_CHAOS_ROOT not set")
	}
	harness.SetTraceCacheDir(filepath.Join(root, "trace"))

	// Big enough that the parent reliably kills the worker mid-run, small
	// enough that the successor finishes in seconds.
	chaosScale := harness.Scale{
		Warmup: 100_000, Sim: 8_000_000, TraceLen: 100_000,
		WorkloadsPerSuite: 1, HeteroMixes: 1,
	}
	srv, err := serve.New(serve.Config{
		Store:            results.Open(filepath.Join(root, "results")),
		QueueDepth:       4,
		ProgressInterval: 25 * time.Millisecond,
		JournalDir:       filepath.Join(root, "journal"),
		LeaseTTL:         time.Second,
		ExtraScales:      map[string]harness.Scale{"chaos": chaosScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically: write-then-rename so the parent
	// never reads a half-written file.
	tmp := chaosAddrFile(root) + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, chaosAddrFile(root)); err != nil {
		t.Fatal(err)
	}
	// Serve until the parent kills the process.
	http.Serve(ln, srv.Handler())
}

// spawnChaosWorker starts a worker process over root and waits for it
// to publish its address.
func spawnChaosWorker(t *testing.T, root string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosChildServer$", "-test.v")
	cmd.Env = append(os.Environ(), "PYTHIA_CHAOS_CHILD=1", "PYTHIA_CHAOS_ROOT="+root)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if buf, err := os.ReadFile(chaosAddrFile(root)); err == nil && len(buf) > 0 {
			return cmd, string(buf), &out
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker never published an address; output:\n%s", out.String())
	return nil, "", nil
}

// TestChaosWorkerSIGKILLRecovery: SIGKILL a worker mid-simulation, then
// prove (a) the store holds no corrupt or partial files, and (b) a
// successor over the same journal requeues the orphaned job and runs it
// to completion.
func TestChaosWorkerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	root := t.TempDir()
	for _, d := range []string{"journal", "results", "trace"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}

	worker1, base1, out1 := spawnChaosWorker(t, root)
	job, code := postRun(t, base1, "fig7", "chaos")
	if code != http.StatusAccepted {
		t.Fatalf("POST to worker = %d; worker output:\n%s", code, out1.String())
	}
	waitRunning(t, base1, job.ID)
	// Let the lease renew at least once and the simulation get deep
	// enough that the kill lands mid-flight.
	time.Sleep(500 * time.Millisecond)

	if err := worker1.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}
	worker1.Wait()

	// Invariant: whatever the kill interrupted, no store file is corrupt
	// or partial (temp litter is fine; half-written JSON is not).
	auditStoreFiles(t, filepath.Join(root, "results"))

	// The successor must find the orphan in the journal and finish it.
	if err := os.Remove(chaosAddrFile(root)); err != nil {
		t.Fatal(err)
	}
	_, base2, out2 := spawnChaosWorker(t, root)

	var got struct {
		Job serve.JobView `json:"job"`
	}
	if code := getJSON(t, base2+"/api/v1/runs/"+job.ID, &got); code != http.StatusOK {
		t.Fatalf("successor does not list the orphaned job %s (= %d); output:\n%s",
			job.ID, code, out2.String())
	}
	if !got.Job.Recovered {
		t.Error("orphaned job not marked recovered on the successor")
	}

	done := waitSuccessorDone(t, base2, job.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("recovered job ended %q (%s); worker output:\n%s", done.Status, done.Error, out2.String())
	}
	if done.Result == nil {
		t.Error("recovered job delivered no result")
	}
	if done.Sims == 0 {
		t.Error("recovered job reports zero simulations (nothing was persisted before the kill)")
	}
	auditStoreFiles(t, filepath.Join(root, "results"))

	var h map[string]any
	if code := getJSON(t, base2+"/healthz", &h); code != http.StatusOK || h["ok"] != true {
		t.Errorf("successor unhealthy after recovery: %d %v", code, h)
	}
	jn, _ := h["journal"].(map[string]any)
	if n, _ := jn["recovered"].(float64); n < 1 {
		t.Errorf("successor healthz reports %v recovered jobs, want >= 1", jn["recovered"])
	}
}

// waitSuccessorDone is waitDone with a longer deadline: the successor
// may wait out the dead worker's lease before re-running a multi-second
// simulation from scratch.
func waitSuccessorDone(t *testing.T, base, id string) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(4 * time.Minute)
	for time.Now().Before(deadline) {
		var out struct {
			Job serve.JobView `json:"job"`
		}
		if code := getJSON(t, base+"/api/v1/runs/"+id, &out); code != http.StatusOK {
			t.Fatalf("GET run %s = %d", id, code)
		}
		switch out.Job.Status {
		case serve.StatusDone, serve.StatusError, serve.StatusCanceled:
			return out.Job
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("recovered job %s never finished", id)
	return serve.JobView{}
}
