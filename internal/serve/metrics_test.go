package serve_test

// Telemetry-layer tests: /metrics serves valid Prometheus text covering
// every serve-side family, counters move when jobs run, and the per-job
// stage timeline lands in both job-status JSON and the terminal SSE
// event. Counters on the default registry are process-cumulative (other
// tests in this package bump them too), so every assertion is a delta
// around the work this test performs.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// metricValue reads one metric from the default registry; absent metrics
// read as 0 (a delta against "not yet created" starts at zero).
func metricValue(name string, labels obs.Labels) float64 {
	v, _ := obs.Default().Value(name, labels)
	return v
}

// scrapeMetrics fetches /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestMetricsEndpoint: after a real job runs, /metrics exposes the whole
// observability surface — queue gauges, terminal-state and latency
// families, per-store hit/miss counters, simulation throughput, and
// per-route request counts — and the families the job exercised moved.
func TestMetricsEndpoint(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 8)

	doneBefore := metricValue("pythia_serve_jobs_total", obs.L("status", "done"))
	simsBefore := metricValue("pythia_sims_total", nil)
	missBefore := metricValue("pythia_store_misses_total", obs.L("store", "results"))

	job, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if done := waitDone(t, ts.URL, job.ID); done.Status != serve.StatusDone {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}

	if d := metricValue("pythia_serve_jobs_total", obs.L("status", "done")) - doneBefore; d < 1 {
		t.Errorf("jobs_total{status=done} moved by %v, want >= 1", d)
	}
	if d := metricValue("pythia_sims_total", nil) - simsBefore; d < 1 {
		t.Errorf("sims_total moved by %v, want >= 1", d)
	}
	if d := metricValue("pythia_store_misses_total", obs.L("store", "results")) - missBefore; d < 1 {
		t.Errorf("store_misses_total{store=results} moved by %v, want >= 1", d)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"pythia_serve_queue_depth",
		"pythia_serve_queue_capacity",
		`pythia_serve_jobs_total{status="done"}`,
		"pythia_serve_job_duration_seconds_bucket",
		"pythia_serve_queue_wait_seconds_bucket",
		`pythia_store_hits_total{store="results"}`,
		`pythia_store_misses_total{store="results"}`,
		`pythia_store_entries{store="results"}`,
		`pythia_serve_breaker_open{store="results"}`,
		"pythia_sims_total",
		"pythia_sim_instructions_total",
		`pythia_http_requests_total{route="POST /api/v1/runs"}`,
		"# TYPE pythia_serve_job_duration_seconds histogram",
		"# HELP pythia_serve_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobTimeline: a fresh job's status JSON carries the full stage
// sequence accepted -> queued -> leased -> streaming -> simulating ->
// persisting -> done with non-negative durations, the terminal SSE event
// carries the same timeline, and a cached repeat of the job skips the
// simulation stages.
func TestJobTimeline(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 8)

	job, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	done := waitDone(t, ts.URL, job.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("job ended %q (%s)", done.Status, done.Error)
	}

	var stages []string
	for _, sv := range done.Timeline {
		stages = append(stages, sv.Stage)
		if sv.DurationSeconds < 0 {
			t.Errorf("stage %q has negative duration %v", sv.Stage, sv.DurationSeconds)
		}
		if sv.At.IsZero() {
			t.Errorf("stage %q has zero timestamp", sv.Stage)
		}
	}
	want := []string{"accepted", "queued", "leased", "streaming", "simulating", "persisting", "done"}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("fresh-job timeline = %v, want %v", stages, want)
	}

	// The terminal SSE event carries the same timeline (the stream is the
	// push-side mirror of the status JSON).
	evs := readSSE(t, ts.URL, job.ID)
	if len(evs) == 0 {
		t.Fatal("no SSE events")
	}
	last := evs[len(evs)-1]
	var term serve.JobView
	if err := json.Unmarshal(last.Data, &term); err != nil {
		t.Fatalf("terminal event decode: %v", err)
	}
	if len(term.Timeline) != len(want) {
		t.Errorf("terminal SSE timeline has %d stages, want %d (%v)",
			len(term.Timeline), len(want), term.Timeline)
	}

	// A cached repeat never reaches the harness: no streaming/simulating.
	repeat, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("repeat POST = %d", code)
	}
	rdone := waitDone(t, ts.URL, repeat.ID)
	if rdone.Status != serve.StatusDone || !rdone.Cached {
		t.Fatalf("repeat job: status %q cached %v", rdone.Status, rdone.Cached)
	}
	for _, sv := range rdone.Timeline {
		if sv.Stage == "streaming" || sv.Stage == "simulating" {
			t.Errorf("cached job timeline contains %q: %v", sv.Stage, rdone.Timeline)
		}
	}
}
