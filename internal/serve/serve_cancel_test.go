package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

// newHTTPServer mounts an already-configured Server on a test listener
// and returns its base URL (newTestServer builds the Server too; tests
// that need custom scales build their own).
func newHTTPServer(t *testing.T, srv *serve.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}

// tinyStreamScale mirrors tinyScale but delivers traces through the
// streaming pipeline, so a corrupted trace-cache file is actually read
// mid-run.
var tinyStreamScale = harness.Scale{
	Warmup: 50_000, Sim: 200_000, TraceLen: 40_000,
	WorkloadsPerSuite: 1, HeteroMixes: 1, StreamChunk: 1024,
}

func cancelRun(t *testing.T, base, id string) (serve.JobView, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/api/v1/runs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Job, resp.StatusCode
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		var out struct {
			Job serve.JobView `json:"job"`
		}
		getJSON(t, base+"/api/v1/runs/"+id, &out)
		if out.Job.Status != serve.StatusQueued {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestServeSurvivesTraceCacheCorruption is the panic-crash regression
// test: a trace-cache file that corrupts before a streaming run reads it
// used to panic the producer goroutine and kill the whole process. Now
// the decode error flows stream → cpu → harness → serve as a value: only
// that job fails (terminal "error" SSE event with a useful message),
// /healthz stays OK, and the next job runs normally.
func TestServeSurvivesTraceCacheCorruption(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	cacheDir := t.TempDir()
	harness.SetTraceCacheDir(cacheDir)
	defer harness.SetTraceCacheDir("")

	// Populate the cache entry fig14's workload will stream, then truncate
	// its body. The header survives, so the file passes open-time
	// validation and dies mid-decode — the worst-case corruption.
	w, ok := trace.ByName("CC-100B")
	if !ok {
		t.Fatal("missing workload")
	}
	path, err := stream.NewCache(cacheDir).Ensure(context.Background(), w, tinyStreamScale.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header plus a few hundred records: far fewer than the
	// simulation consumes, so the decoder is guaranteed to hit the cut.
	if err := os.WriteFile(path, buf[:512], 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tinystream": tinyStreamScale, "tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	job, code := postRun(t, ts, "fig14", "tinystream")
	if code != http.StatusAccepted {
		t.Fatalf("POST run = %d", code)
	}
	done := waitDone(t, ts, job.ID)
	if done.Status != serve.StatusError {
		t.Fatalf("corrupted-trace job ended %q (error %q), want %q", done.Status, done.Error, serve.StatusError)
	}
	if done.Error == "" {
		t.Fatal("failed job carries no error message")
	}

	// The SSE stream of the failed job ends with a terminal error event.
	evs := readSSE(t, ts, job.ID)
	if lastType(evs) != serve.StatusError {
		t.Errorf("SSE stream of failed job ends with %q", lastType(evs))
	}

	// The process is alive and healthy, and the next job succeeds.
	if code := getJSON(t, ts+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after job failure = %d", code)
	}
	job2, code := postRun(t, ts, "table4", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST after failure = %d", code)
	}
	if done2 := waitDone(t, ts, job2.ID); done2.Status != serve.StatusDone {
		t.Fatalf("job after failure ended %q (%s)", done2.Status, done2.Error)
	}
}

// TestServeCancelRunningJob: DELETE on an in-flight long run ends it with
// a terminal "canceled" SSE event promptly, and the freed executor runs
// the next job.
func TestServeCancelRunningJob(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale, "verylong": veryLongScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	job, code := postRun(t, ts, "fig7", "verylong")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitRunning(t, ts, job.ID)

	start := time.Now()
	if _, code := cancelRun(t, ts, job.ID); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	done := waitDone(t, ts, job.ID)
	if done.Status != serve.StatusCanceled {
		t.Fatalf("canceled job ended %q (error %q)", done.Status, done.Error)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	evs := readSSE(t, ts, job.ID)
	if lastType(evs) != serve.StatusCanceled {
		t.Errorf("SSE stream ends with %q, want canceled", lastType(evs))
	}

	// Canceling a terminal job is a conflict, not a crash.
	if _, code := cancelRun(t, ts, job.ID); code != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409", code)
	}

	// The executor slot is free: a fresh job completes.
	job2, code := postRun(t, ts, "table2", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST after cancel = %d", code)
	}
	if done2 := waitDone(t, ts, job2.ID); done2.Status != serve.StatusDone {
		t.Fatalf("job after cancel ended %q (%s)", done2.Status, done2.Error)
	}
}

// veryLongScale keeps a run in flight long enough to cancel it reliably
// while still being CPU-cheap per chunk boundary.
var veryLongScale = harness.Scale{
	Warmup: 100_000, Sim: 2_000_000_000, TraceLen: 100_000,
	WorkloadsPerSuite: 1, HeteroMixes: 1,
}

// TestServeCancelQueuedJob: DELETE on a job still waiting in the queue
// makes it terminal immediately; the executor later discards it without
// running any simulation.
func TestServeCancelQueuedJob(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale, "verylong": veryLongScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	blocker, code := postRun(t, ts, "fig7", "verylong")
	if code != http.StatusAccepted {
		t.Fatalf("POST blocker = %d", code)
	}
	waitRunning(t, ts, blocker.ID)
	queued, code := postRun(t, ts, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST queued = %d", code)
	}

	v, code := cancelRun(t, ts, queued.ID)
	if code != http.StatusOK {
		t.Fatalf("DELETE queued = %d", code)
	}
	if v.Status != serve.StatusCanceled {
		t.Fatalf("queued job after DELETE = %q, want canceled immediately", v.Status)
	}
	if v.Sims != 0 {
		t.Errorf("canceled queued job reports %d sims", v.Sims)
	}

	// Unblock the executor and confirm it survives draining the canceled
	// job.
	cancelRun(t, ts, blocker.ID)
	waitDone(t, ts, blocker.ID)
	if code := getJSON(t, ts+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}

// TestServeShutdownDrainsQueue: Shutdown with budget left runs every
// queued job to completion and rejects new launches with 503.
func TestServeShutdownDrainsQueue(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       8,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	// table* experiments are simulation-free, so the drain is fast.
	var ids []string
	for _, exp := range []string{"table2", "table4", "table7"} {
		job, code := postRun(t, ts, exp, "tiny")
		if code != http.StatusAccepted {
			t.Fatalf("POST %s = %d", exp, code)
		}
		ids = append(ids, job.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv.Shutdown(ctx)

	for _, id := range ids {
		var out struct {
			Job serve.JobView `json:"job"`
		}
		getJSON(t, ts+"/api/v1/runs/"+id, &out)
		if out.Job.Status != serve.StatusDone {
			t.Errorf("job %s ended %q after graceful shutdown, want done", id, out.Job.Status)
		}
	}
	if _, code := postRun(t, ts, "table2", "tiny"); code != http.StatusServiceUnavailable {
		t.Errorf("launch after shutdown = %d, want 503", code)
	}
}
