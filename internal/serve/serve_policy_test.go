package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// newPolicyServer builds a test server with both stores configured.
func newPolicyServer(t *testing.T, store *results.Store, pols *policy.Store) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Store:            store,
		Policies:         pols,
		QueueDepth:       16,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postTrain(t *testing.T, base, workload, config, scale string) (serve.JobView, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"scale": scale,
		"train": map[string]string{"workload": workload, "config": config},
	})
	resp, err := http.Post(base+"/api/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return out.Job, resp.StatusCode
}

// TestServeTrainEndToEnd is the policy-lifecycle acceptance test over
// HTTP: a POST-ed training job flows through the queue and SSE machinery,
// lands a policy in the store, the policy is listable and its snapshot
// downloadable — and a repeat training request (after the in-memory
// caches are wiped and the service rebuilt over the same directories) is
// a policy-store hit that performs zero simulations.
func TestServeTrainEndToEnd(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	resDir, polDir := t.TempDir(), t.TempDir()
	_, ts := newPolicyServer(t, results.Open(resDir), policy.Open(polDir))

	job, code := postTrain(t, ts.URL, "459.GemsFDTD-100B", "pythia", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST train = %d", code)
	}
	if job.Kind != serve.KindTrain || job.Workload != "459.GemsFDTD-100B" || job.Config != "pythia" {
		t.Fatalf("train job view wrong: %+v", job)
	}

	// The SSE stream carries the full lifecycle and the terminal event
	// includes the policy artifact.
	evs := readSSE(t, ts.URL, job.ID)
	var final serve.JobView
	for _, ev := range evs {
		if ev.Type == serve.StatusDone || ev.Type == serve.StatusError {
			json.Unmarshal(ev.Data, &final)
		}
	}
	if final.Status != serve.StatusDone {
		t.Fatalf("train job finished %q (error %q)", final.Status, final.Error)
	}
	if final.Cached {
		t.Error("first training claims a store hit")
	}
	if final.Sims != 1 {
		t.Errorf("training executed %d sims, want 1", final.Sims)
	}
	if final.Policy == nil || final.Policy.ID == "" {
		t.Fatal("finished training job carries no policy")
	}
	polID := final.Policy.ID

	// The policy is listable and fetchable.
	var listing struct {
		Policies []policy.Meta `json:"policies"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/policies", &listing); code != http.StatusOK {
		t.Fatalf("GET policies = %d", code)
	}
	if len(listing.Policies) != 1 || listing.Policies[0].ID != polID {
		t.Fatalf("policy listing wrong: %+v", listing.Policies)
	}
	var one struct {
		Policy policy.Meta `json:"policy"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/policies/"+polID, &one); code != http.StatusOK {
		t.Fatalf("GET policy = %d", code)
	}
	if one.Policy.TrainedOn.Workload != "459.GemsFDTD-100B" {
		t.Errorf("policy provenance wrong: %+v", one.Policy.TrainedOn)
	}

	// The snapshot downloads as the raw PYQV01 stream.
	resp, err := http.Get(ts.URL + "/api/v1/policies/" + polID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("snapshot download = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if len(snap) != one.Policy.SnapshotBytes || string(snap[:6]) != "PYQV01" {
		t.Fatalf("snapshot payload wrong: %d bytes, magic %q", len(snap), snap[:6])
	}

	// Restart in miniature: wipe in-memory caches, rebuild over the same
	// directories. The repeat training request must be a policy-store hit
	// with zero additional simulation work.
	harness.ResetCaches()
	_, ts2 := newPolicyServer(t, results.Open(resDir), policy.Open(polDir))
	before := harness.SimCount()
	job2, code := postTrain(t, ts2.URL, "459.GemsFDTD-100B", "pythia", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("repeat POST train = %d", code)
	}
	done := waitDone(t, ts2.URL, job2.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("repeat train finished %q (error %q)", done.Status, done.Error)
	}
	if !done.Cached {
		t.Error("repeat training was not served from the policy store")
	}
	if done.Sims != 0 {
		t.Errorf("repeat training reports %d simulations, want 0", done.Sims)
	}
	if delta := harness.SimCount() - before; delta != 0 {
		t.Errorf("repeat training executed %d simulations, want 0", delta)
	}
	if done.Policy == nil || done.Policy.ID != polID {
		t.Errorf("repeat training returned a different policy: %+v", done.Policy)
	}
}

func TestServeTrainRejectsBadRequests(t *testing.T) {
	_, ts := newPolicyServer(t, results.Open(t.TempDir()), policy.Open(t.TempDir()))
	if _, code := postTrain(t, ts.URL, "no-such-trace", "pythia", "tiny"); code != http.StatusNotFound {
		t.Errorf("unknown workload accepted: %d", code)
	}
	if _, code := postTrain(t, ts.URL, "459.GemsFDTD-100B", "no-such-config", "tiny"); code != http.StatusBadRequest {
		t.Errorf("unknown config accepted: %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/policies/pol-absent", nil); code != http.StatusNotFound {
		t.Errorf("absent policy fetch = %d", code)
	}
	// An empty store lists as an empty array, not an error.
	var listing struct {
		Policies []policy.Meta `json:"policies"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/policies", &listing); code != http.StatusOK || listing.Policies == nil {
		t.Errorf("empty listing = %d %v", code, listing.Policies)
	}
}

// TestServeWithoutPolicyStore: a server configured without a policy store
// keeps its experiment surface and answers the policy surface with 503.
func TestServeWithoutPolicyStore(t *testing.T) {
	_, ts := newTestServer(t, results.Open(t.TempDir()), 4)
	if code := getJSON(t, ts.URL+"/api/v1/policies", nil); code != http.StatusServiceUnavailable {
		t.Errorf("policies without store = %d, want 503", code)
	}
	if _, code := postTrain(t, ts.URL, "459.GemsFDTD-100B", "pythia", "tiny"); code != http.StatusServiceUnavailable {
		t.Errorf("train without store = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}
