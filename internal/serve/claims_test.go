package serve

// Unit tests for the multi-process claim protocol: O_CREATE|O_EXCL
// mutual exclusion, owner-verified renewal (the recycled-PID defense),
// expiry/reaping, cancel markers, and worker heartbeat documents.

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

func testJournal(t *testing.T) *journal {
	t.Helper()
	jl, err := openJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

func TestClaimMutualExclusion(t *testing.T) {
	jl := testJournal(t)
	a, b := NewOwnerID("a"), NewOwnerID("b")

	if !jl.claim("job-1", a, time.Minute) {
		t.Fatal("first claim refused")
	}
	if jl.claim("job-1", b, time.Minute) {
		t.Fatal("second claimant also won — mutual exclusion broken")
	}
	// A release by a non-owner must be a no-op.
	jl.releaseClaim("job-1", b)
	if c, ok := jl.claimState("job-1"); !ok || c.Owner != a {
		t.Fatalf("non-owner release removed the claim (state %+v, ok %v)", c, ok)
	}
	// The owner's release frees the job for the next claimant.
	jl.releaseClaim("job-1", a)
	if _, ok := jl.claimState("job-1"); ok {
		t.Fatal("owner release left the claim in place")
	}
	if !jl.claim("job-1", b, time.Minute) {
		t.Fatal("claim refused after release")
	}
}

// TestRenewRejectsRecycledPID is the recycled-PID regression test: two
// owner strings sharing a PID but minted with different process nonces
// must not be able to renew each other's leases. Before owner IDs
// carried the start-time nonce, a fresh process that happened to receive
// a dead worker's PID could silently extend — steal — its lease.
func TestRenewRejectsRecycledPID(t *testing.T) {
	jl := testJournal(t)
	deadWorker := fmt.Sprintf("pid%d-%016x", os.Getpid(), uint64(0xAAAA))
	imposter := fmt.Sprintf("pid%d-%016x", os.Getpid(), uint64(0xBBBB)) // same PID, new process

	if !jl.claim("job-1", deadWorker, time.Minute) {
		t.Fatal("claim refused")
	}
	if err := jl.renewClaim("job-1", imposter, time.Minute); err == nil {
		t.Fatal("a different process with a recycled PID renewed a lease it never acquired")
	}
	if err := jl.renewClaim("job-1", deadWorker, time.Minute); err != nil {
		t.Fatalf("the true owner could not renew: %v", err)
	}
}

func TestRenewAfterReapFails(t *testing.T) {
	jl := testJournal(t)
	owner := NewOwnerID("w")
	if !jl.claim("job-1", owner, time.Millisecond) {
		t.Fatal("claim refused")
	}
	time.Sleep(5 * time.Millisecond)
	reaped := jl.reapExpiredClaims(0)
	if len(reaped) != 1 || reaped[0] != "job-1" {
		t.Fatalf("reapExpiredClaims = %v, want [job-1]", reaped)
	}
	// The old owner must learn it lost the job, not resurrect the claim.
	if err := jl.renewClaim("job-1", owner, time.Minute); err == nil {
		t.Fatal("renew succeeded on a reaped claim")
	}
	if _, ok := jl.claimState("job-1"); ok {
		t.Fatal("failed renew recreated the claim file")
	}
}

func TestReapSparesLiveAndGracedClaims(t *testing.T) {
	jl := testJournal(t)
	if !jl.claim("job-live", NewOwnerID("w"), time.Hour) {
		t.Fatal("claim refused")
	}
	// An empty claim file models a claimant killed between the O_EXCL
	// create and the body write: no lease inside, so expiry falls back to
	// mtime + grace.
	if err := os.MkdirAll(jl.claimsDir(), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jl.claimPath("job-halfwritten"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	if reaped := jl.reapExpiredClaims(time.Hour); len(reaped) != 0 {
		t.Fatalf("reaped live/graced claims: %v", reaped)
	}
	time.Sleep(5 * time.Millisecond)
	reaped := jl.reapExpiredClaims(time.Millisecond)
	if len(reaped) != 1 || reaped[0] != "job-halfwritten" {
		t.Fatalf("reap with lapsed grace = %v, want [job-halfwritten]", reaped)
	}
}

func TestCancelMarkers(t *testing.T) {
	jl := testJournal(t)
	if jl.cancelRequested("job-1") {
		t.Fatal("cancel requested before any marker")
	}
	if err := jl.markCancel("job-1"); err != nil {
		t.Fatal(err)
	}
	if !jl.cancelRequested("job-1") {
		t.Fatal("marker not visible")
	}
	jl.clearCancel("job-1")
	if jl.cancelRequested("job-1") {
		t.Fatal("marker survived clearCancel")
	}
}

func TestRemoveCleansClaimAndCancelLitter(t *testing.T) {
	jl := testJournal(t)
	jl.put(jobRecord{ID: "job-1", Kind: KindExperiment, Experiment: "fig14", Scale: "tiny", Status: StatusQueued, CreatedAt: time.Now().UTC()})
	jl.claim("job-1", NewOwnerID("w"), time.Minute)
	jl.markCancel("job-1")

	jl.remove("job-1")
	if _, ok := jl.get("job-1"); ok {
		t.Fatal("record survived remove")
	}
	if _, ok := jl.claimState("job-1"); ok {
		t.Fatal("claim survived remove")
	}
	if jl.cancelRequested("job-1") {
		t.Fatal("cancel marker survived remove")
	}
}

func TestNewOwnerIDShape(t *testing.T) {
	plain := NewOwnerID("")
	want := fmt.Sprintf("pid%d-%016x", os.Getpid(), processNonce)
	if plain != want {
		t.Fatalf("NewOwnerID(\"\") = %q, want %q", plain, want)
	}
	labeled := NewOwnerID("w1")
	if !strings.HasPrefix(labeled, want+"-") {
		t.Fatalf("labeled owner %q does not extend the process identity %q", labeled, want)
	}
	if NewOwnerID("w1") != labeled {
		t.Fatal("owner IDs are not stable within a process")
	}
}

func TestWorkerHeartbeatRoundtrip(t *testing.T) {
	jl := testJournal(t)
	owner := NewOwnerID("hb")
	jl.putWorker(workerState{Owner: owner, PID: os.Getpid(), State: "busy", Job: "job-9", Jobs: 3, Sims: 1200, StartedAt: time.Now().UTC()})

	ws := jl.loadWorkers()
	if len(ws) != 1 {
		t.Fatalf("loadWorkers = %d entries, want 1", len(ws))
	}
	w := ws[0]
	if w.Owner != owner || w.State != "busy" || w.Job != "job-9" || w.Jobs != 3 || w.Sims != 1200 {
		t.Fatalf("heartbeat did not round-trip: %+v", w)
	}
	if w.UpdatedAt.IsZero() {
		t.Fatal("putWorker did not stamp UpdatedAt")
	}
	jl.removeWorker(owner)
	if got := jl.loadWorkers(); len(got) != 0 {
		t.Fatalf("heartbeat survived removeWorker: %+v", got)
	}
}

func TestFleetJournalBacklog(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	jl.put(jobRecord{ID: "job-1", Kind: KindExperiment, Experiment: "fig14", Scale: "tiny", Status: StatusQueued, CreatedAt: now})
	jl.put(jobRecord{ID: "job-2", Kind: KindExperiment, Experiment: "fig14", Scale: "tiny", Status: StatusRunning, CreatedAt: now})
	jl.put(jobRecord{ID: "job-3", Kind: KindExperiment, Experiment: "fig14", Scale: "tiny", Status: StatusDone, CreatedAt: now})
	jl.claim("job-2", NewOwnerID("w"), time.Minute)

	fj, err := OpenFleetJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	queued, inflight := fj.Backlog()
	if queued != 1 || inflight != 1 {
		t.Fatalf("Backlog = (%d queued, %d inflight), want (1, 1)", queued, inflight)
	}
}
