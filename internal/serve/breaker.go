package serve

import (
	"sync"
	"time"

	"pythia/internal/api"
	"pythia/internal/obs"
)

// breaker is a per-store circuit breaker: consecutive persist failures
// past a threshold open it, flipping the server into degraded read-only
// mode for that store — admissions that would need a fresh write are
// shed with 503 + Retry-After while store hits keep flowing. After a
// cooldown the breaker lets work through again (logically half-open);
// the next persist outcome either closes it or restarts the cooldown.
//
// There is no explicit half-open state to get stuck in: "open with an
// elapsed cooldown" admits probes, and only a recorded success closes
// the breaker. With a single executor at most one probe runs at a time
// anyway.
type breaker struct {
	name      string
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	fails    int // consecutive failures
	isOpen   bool
	openedAt time.Time
	lastErr  string
	trips    int64 // times the breaker opened
}

func newBreaker(name string, threshold int, cooldown time.Duration) *breaker {
	return &breaker{name: name, threshold: threshold, cooldown: cooldown}
}

// register exposes the breaker's state on the default registry
// (func-backed, so a newer Server's breakers replace an older one's).
func (b *breaker) register() {
	lbl := obs.L("store", b.name)
	obs.RegisterGaugeFunc("pythia_serve_breaker_open",
		"1 while the store's circuit breaker is open (degraded read-only).", lbl,
		func() float64 {
			if b.open() {
				return 1
			}
			return 0
		})
	obs.RegisterCounterFunc("pythia_serve_breaker_trips_total",
		"Times the store's circuit breaker opened.", lbl,
		func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(b.trips)
		})
}

// recordFailure counts a persist failure; reaching the threshold opens
// the breaker, and failures while open push the cooldown out (the store
// is demonstrably still sick).
func (b *breaker) recordFailure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if err != nil {
		b.lastErr = err.Error()
	}
	if !b.isOpen && b.fails >= b.threshold {
		b.isOpen = true
		b.trips++
	}
	if b.isOpen {
		b.openedAt = time.Now()
	}
}

// recordSuccess closes the breaker: one healthy persist proves the
// store recovered.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.isOpen = false
	b.lastErr = ""
}

// allow reports whether work that needs a store write may be admitted:
// always when closed, and again once the cooldown has elapsed (the
// half-open probe window).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.isOpen || time.Since(b.openedAt) >= b.cooldown
}

// open reports whether the breaker is open (the store is degraded).
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.isOpen
}

// retryAfter is the whole-second hint for the Retry-After header: the
// remaining cooldown, at least one second.
func (b *breaker) retryAfter() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.isOpen {
		return 1
	}
	rem := b.cooldown - time.Since(b.openedAt)
	secs := int((rem + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// view snapshots the breaker for /healthz.
func (b *breaker) view() api.BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := "closed"
	if b.isOpen {
		state = "open"
		if time.Since(b.openedAt) >= b.cooldown {
			state = "half-open"
		}
	}
	return api.BreakerState{
		State:               state,
		ConsecutiveFailures: b.fails,
		Trips:               b.trips,
		LastError:           b.lastErr,
	}
}
