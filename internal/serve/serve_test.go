package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pythia/internal/api"
	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// tinyScale keeps service tests fast; registered with the server under
// the name "tiny".
var tinyScale = harness.Scale{Warmup: 50_000, Sim: 200_000, TraceLen: 40_000, WorkloadsPerSuite: 1, HeteroMixes: 1}

// slowScale is big enough that a job visibly occupies the executor while
// the queue-rejection test piles more jobs behind it.
var slowScale = harness.Scale{Warmup: 100_000, Sim: 3_000_000, TraceLen: 100_000, WorkloadsPerSuite: 1, HeteroMixes: 1}

func newTestServer(t *testing.T, store *results.Store, queueDepth int) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Store:            store,
		QueueDepth:       queueDepth,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale, "slow": slowScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// apiClient returns a no-retry typed client for a test server: sheds
// and rejections must surface to the assertion, not be retried away.
func apiClient(base string) *api.Client {
	return api.NewClient(base, api.WithRetries(0))
}

func postRun(t *testing.T, base, exp, scale string) (serve.JobView, int) {
	t.Helper()
	j, err := apiClient(base).Launch(context.Background(), api.LaunchRequest{Experiment: exp, Scale: scale})
	if err != nil {
		var ae *api.Error
		if errors.As(err, &ae) {
			return serve.JobView{}, ae.HTTPStatus
		}
		t.Fatal(err)
	}
	return j, http.StatusAccepted
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// readSSE consumes a job's event stream to completion via the typed
// client's SSE subscription and returns the events in order.
func readSSE(t *testing.T, base, id string) []serve.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var evs []serve.Event
	if _, err := apiClient(base).Events(ctx, id, func(ev serve.Event) {
		evs = append(evs, ev)
	}); err != nil {
		t.Fatalf("events stream for %s: %v", id, err)
	}
	return evs
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) serve.JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	j, err := apiClient(base).Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("job %s never finished: %v", id, err)
	}
	return j
}

// TestServeEndToEnd is the acceptance test: an experiment launched over
// HTTP streams progress, returns results, and an identical repeat request
// — after the in-memory caches are wiped and the service is rebuilt over
// the same store directory — is served from the persistent store with
// zero additional simulation work, verified by the run counter.
func TestServeEndToEnd(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	dir := t.TempDir()
	_, ts := newTestServer(t, results.Open(dir), 16)

	// The service knows the paper's experiments.
	var list struct {
		Experiments []struct {
			ID       string `json:"id"`
			Extended bool   `json:"extended"`
		} `json:"experiments"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/experiments", &list); code != http.StatusOK {
		t.Fatalf("GET experiments = %d", code)
	}
	ids := map[string]bool{}
	for _, e := range list.Experiments {
		ids[e.ID] = true
	}
	if !ids["fig14"] || !ids["scorecard"] {
		t.Fatalf("experiment listing incomplete: %v", ids)
	}

	// Launch, then follow the SSE stream to completion.
	job, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST run = %d", code)
	}
	evs := readSSE(t, ts.URL, job.ID)
	var sawQueued, sawRunning, sawProgress bool
	var final serve.JobView
	for _, ev := range evs {
		switch ev.Type {
		case "status":
			var v serve.JobView
			json.Unmarshal(ev.Data, &v)
			sawQueued = sawQueued || v.Status == serve.StatusQueued
			sawRunning = sawRunning || v.Status == serve.StatusRunning
		case "progress":
			sawProgress = true
		case serve.StatusDone, serve.StatusError:
			json.Unmarshal(ev.Data, &final)
		}
	}
	if !sawQueued || !sawRunning || !sawProgress {
		t.Errorf("SSE stream missing lifecycle events: queued=%v running=%v progress=%v", sawQueued, sawRunning, sawProgress)
	}
	if final.Status != serve.StatusDone {
		t.Fatalf("job finished %q (error %q)", final.Status, final.Error)
	}
	if final.Cached {
		t.Error("first run claims a store hit")
	}
	if final.Sims == 0 {
		t.Error("first run reports zero simulations")
	}
	if final.Result == nil || final.Result.Table == nil || len(final.Result.Table.Rows) == 0 {
		t.Fatal("first run returned no table")
	}
	firstRendered := final.Rendered

	// The stored result is directly fetchable.
	var fetched struct {
		Rendered string `json:"rendered"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/results/fig14?scale=tiny", &fetched); code != http.StatusOK {
		t.Fatalf("GET stored result = %d", code)
	}
	if fetched.Rendered != firstRendered {
		t.Error("stored result differs from the job's result")
	}

	// Wipe every in-memory cache and rebuild the service over the same
	// store directory: a process restart in miniature. The repeat request
	// must be a store hit with zero additional simulation work.
	harness.ResetCaches()
	_, ts2 := newTestServer(t, results.Open(dir), 16)
	before := harness.SimCount()
	job2, code := postRun(t, ts2.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("repeat POST run = %d", code)
	}
	done := waitDone(t, ts2.URL, job2.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("repeat job finished %q (error %q)", done.Status, done.Error)
	}
	if !done.Cached {
		t.Error("repeat run was not served from the store")
	}
	if done.Sims != 0 {
		t.Errorf("repeat run reports %d simulations, want 0", done.Sims)
	}
	if delta := harness.SimCount() - before; delta != 0 {
		t.Errorf("repeat run executed %d simulations, want 0", delta)
	}
	if done.Rendered != firstRendered {
		t.Error("repeat run's table differs from the original")
	}

	// A late SSE subscriber to the finished job still sees full history.
	evs2 := readSSE(t, ts2.URL, job2.ID)
	if len(evs2) == 0 || evs2[len(evs2)-1].Type != serve.StatusDone {
		t.Errorf("late subscriber got %d events, final %q", len(evs2), lastType(evs2))
	}
}

func lastType(evs []serve.Event) string {
	if len(evs) == 0 {
		return ""
	}
	return evs[len(evs)-1].Type
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, results.Open(t.TempDir()), 4)
	if _, code := postRun(t, ts.URL, "fig999", "tiny"); code != http.StatusNotFound {
		t.Errorf("unknown experiment accepted: %d", code)
	}
	if _, code := postRun(t, ts.URL, "fig14", "galactic"); code != http.StatusBadRequest {
		t.Errorf("unknown scale accepted: %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/runs/job-42", nil); code != http.StatusNotFound {
		t.Errorf("unknown job fetch = %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/results/fig14?scale=tiny", nil); code != http.StatusNotFound {
		t.Errorf("unpopulated result fetch = %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}

// TestServeBoundedQueue: with the executor pinned by a slow job and a
// queue of depth 1, a third launch must be rejected with 503 instead of
// queueing unboundedly.
func TestServeBoundedQueue(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 1)

	running, code := postRun(t, ts.URL, "fig7", "slow")
	if code != http.StatusAccepted {
		t.Fatalf("POST slow run = %d", code)
	}
	// Wait for the executor to pick it up so the queue is empty.
	deadline := time.Now().Add(time.Minute)
	for {
		var out struct {
			Job serve.JobView `json:"job"`
		}
		getJSON(t, ts.URL+"/api/v1/runs/"+running.ID, &out)
		if out.Job.Status != serve.StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, code := postRun(t, ts.URL, "fig14", "tiny"); code != http.StatusAccepted {
		t.Fatalf("second run not queued: %d", code)
	}
	body, _ := json.Marshal(api.LaunchRequest{Experiment: "fig1", Scale: "tiny"})
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var envelope api.ErrorResponse
	json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("third run got %d, want 503 queue-full", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 503 carries no Retry-After header")
	}
	if envelope.Error.Code != api.CodeQueueFull || !envelope.Error.Retryable {
		t.Errorf("queue-full envelope = %+v, want retryable %s", envelope.Error, api.CodeQueueFull)
	}

	var listing struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/runs", &listing)
	if len(listing.Jobs) != 2 {
		t.Errorf("job listing has %d entries, want 2 (rejected job must not register)", len(listing.Jobs))
	}

	// Let both admitted jobs finish so Close doesn't strand them mid-run.
	waitDone(t, ts.URL, listing.Jobs[0].ID)
	waitDone(t, ts.URL, listing.Jobs[1].ID)
}

// TestServeJobHistoryBounded: finished jobs beyond the history cap are
// evicted at admission, so server memory does not grow with lifetime
// request count. Queued/running jobs are never evicted, and evicted
// results stay fetchable from the store.
func TestServeJobHistoryBounded(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	store := results.Open(t.TempDir())
	srv, err := serve.New(serve.Config{
		Store:            store,
		QueueDepth:       16,
		JobHistory:       2,
		ProgressInterval: 10 * time.Millisecond,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// table* experiments are simulation-free, so each completes quickly.
	for _, exp := range []string{"table2", "table4", "table7", "table8", "table2"} {
		job, code := postRun(t, ts.URL, exp, "tiny")
		if code != http.StatusAccepted {
			t.Fatalf("POST %s = %d", exp, code)
		}
		waitDone(t, ts.URL, job.ID)
	}

	var listing struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/runs", &listing)
	// Each admission prunes before the new job finishes, so at most
	// JobHistory finished jobs plus the latest one are retained.
	if len(listing.Jobs) > 3 {
		t.Errorf("history retains %d jobs with cap 2", len(listing.Jobs))
	}
	// The earliest job was evicted, but its result survives in the store.
	if code := getJSON(t, ts.URL+"/api/v1/runs/job-1", nil); code != http.StatusNotFound {
		t.Errorf("evicted job still listed: %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/results/table2?scale=tiny", nil); code != http.StatusOK {
		t.Errorf("evicted job's stored result not fetchable: %d", code)
	}
}

// TestServeSurvivesJobLifecycle: the service stays healthy and keeps
// accepting requests after jobs complete (simulation-free experiments
// exercise the instant-completion path).
func TestServeSurvivesJobLifecycle(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 4)
	job, code := postRun(t, ts.URL, "table4", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	done := waitDone(t, ts.URL, job.ID)
	if done.Status != serve.StatusDone {
		t.Fatalf("table4 job = %q (%s)", done.Status, done.Error)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("service unhealthy after job: %d", code)
	}
}
