package serve

import (
	"pythia/internal/obs"
)

// Process-wide serve metrics, shared by every Server instance in the
// process (tests build many; counters are cumulative and asserted by
// delta). Func-backed per-instance gauges are registered in New via
// registerMetrics — replace-on-reregister semantics keep them reading
// the live instance.
var (
	mQueueWait = obs.GetHistogram("pythia_serve_queue_wait_seconds",
		"Time from job admission to first lease (queue wait).", obs.LatencyBuckets, nil)
	mRetries = obs.GetCounter("pythia_serve_retries_total",
		"Transient-failure retry attempts across all jobs.", nil)
	mRequeues = obs.GetCounter("pythia_serve_requeues_total",
		"Jobs re-enqueued from the journal (startup recovery and lease takeover).", nil)
	mRecovered = obs.GetCounter("pythia_serve_journal_recovered_total",
		"Jobs rebuilt from the journal at startup.", nil)
	mSSESubs = obs.GetGauge("pythia_serve_sse_subscribers",
		"Live SSE event-stream subscribers.", nil)
)

// jobsFinished counts terminal job states, labeled by status
// (done/error/canceled).
func jobsFinished(status string) *obs.Counter {
	return obs.GetCounter("pythia_serve_jobs_total",
		"Jobs reaching a terminal state, by status.", obs.L("status", status))
}

// jobDuration is the run-duration distribution (first lease to terminal),
// labeled by job kind.
func jobDuration(kind string) *obs.Histogram {
	return obs.GetHistogram("pythia_serve_job_duration_seconds",
		"Job run duration from first lease to terminal state.", obs.LatencyBuckets, obs.L("kind", kind))
}

// shedCounter counts 503-shed launches, labeled by why.
func shedCounter(reason string) *obs.Counter {
	return obs.GetCounter("pythia_serve_shed_total",
		"Launch requests shed with 503, by reason.", obs.L("reason", reason))
}

// routeCounter is the per-route request counter the route() helper bumps.
func routeCounter(pattern string) *obs.Counter {
	return obs.GetCounter("pythia_http_requests_total",
		"HTTP requests handled, by route pattern.", obs.L("route", pattern))
}

// registerMetrics wires this server's live state into the default
// registry as func-backed metrics. Called once from New; re-registration
// by a newer Server instance replaces the callbacks, so tests that build
// servers back-to-back always scrape the current one.
func (s *Server) registerMetrics() {
	obs.RegisterGaugeFunc("pythia_serve_queue_depth",
		"Jobs admitted and waiting to execute.", nil,
		func() float64 { return float64(len(s.queue)) })
	obs.RegisterGaugeFunc("pythia_serve_queue_capacity",
		"Job queue capacity (recovered backlog included).", nil,
		func() float64 { return float64(cap(s.queue)) })
	obs.RegisterGaugeFunc("pythia_serve_jobs_tracked",
		"Jobs currently registered (queued, running, and retained history).", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	obs.RegisterGaugeFunc("pythia_store_entries",
		"Entries currently on disk.", obs.L("store", "results"),
		func() float64 { return float64(s.store.Len()) })
	if p := s.cfg.Policies; p != nil {
		obs.RegisterGaugeFunc("pythia_store_entries",
			"Entries currently on disk.", obs.L("store", "policies"),
			func() float64 { return float64(p.Len()) })
	}
	s.storeBrk.register()
	s.polBrk.register()
	if s.journal != nil {
		jl := s.journal
		obs.RegisterCounterFunc("pythia_serve_journal_write_errors_total",
			"Journal writes that failed (job state may lag on disk).", nil,
			func() float64 { return float64(jl.writeErrs.Load()) })
	}
}
