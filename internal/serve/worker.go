package serve

// The fleet worker role: a thin process loop that drains jobs from a
// shared journal directory through the same execution engine the
// standalone server uses (executor.go). Workers hold no HTTP surface
// and no queue — the journal IS the queue: a non-terminal record with
// no claim file is claimable, the O_CREATE|O_EXCL claim is the
// arbitration, and every state transition lands in the record where the
// fleet frontend's watcher picks it up. pythia-serve -worker runs this
// loop; the fleet coordinator spawns and scales such processes.

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/results"
)

// WorkerConfig parameterizes a fleet worker process.
type WorkerConfig struct {
	// Store is the shared result store (required); Policies the shared
	// policy store (optional, like Config.Policies).
	Store    *results.Store
	Policies *policy.Store
	// JournalDir is the shared journal directory (required) — the same
	// one the fleet frontend admits into.
	JournalDir string

	// LeaseTTL, MaxAttempts, RetryBase and ProgressInterval mirror the
	// Config fields of the same names (same defaults).
	LeaseTTL         time.Duration
	MaxAttempts      int
	RetryBase        time.Duration
	ProgressInterval time.Duration
	// PollInterval is how long an idle worker sleeps between journal
	// scans; the default is 100ms.
	PollInterval time.Duration
	// HeartbeatInterval is how often the worker's liveness document is
	// rewritten (a background goroutine, so long jobs don't starve it);
	// the default is 1s. The coordinator treats a heartbeat older than a
	// few of these as a dead worker.
	HeartbeatInterval time.Duration
	// ExtraScales must match the frontend's table for its journaled jobs
	// to resolve here. Parametric "custom:..." scales resolve in any
	// process and need no entry.
	ExtraScales map[string]harness.Scale
	// BreakerThreshold and BreakerCooldown parameterize this worker's
	// store breakers (per-process: a worker with a sick local disk
	// degrades alone).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Label distinguishes multiple workers minted in one process (tests);
	// usually empty.
	Label string

	Logger *slog.Logger
}

// worker is the running state of one RunWorker invocation.
type worker struct {
	cfg     WorkerConfig
	jl      *journal
	exec    *executor
	owner   string
	ctx     context.Context
	log     *slog.Logger
	started time.Time

	// mu guards the heartbeat document's mutable fields: the loop writes
	// them at state transitions while the background heartbeat goroutine
	// reads them every tick (so a worker deep in a long job still proves
	// liveness).
	mu    sync.Mutex
	state string
	job   string
	// jobs and sims accumulate into the heartbeat file.
	jobs int64
	sims int64
}

// RunWorker drains jobs from the shared journal until ctx is canceled:
// scan for a claimable record, win its claim, execute it through the
// shared engine, journal the terminal state, release the claim. Returns
// the number of jobs it completed. Cancellation is graceful by
// construction: the in-flight job's context is a child of ctx, so a
// SIGTERM-driven cancel finishes it "canceled" without journaling over
// its requeue-able state, releases the claim, and lets a surviving
// worker pick the job up.
func RunWorker(ctx context.Context, cfg WorkerConfig) (int64, error) {
	if cfg.Store == nil {
		return 0, fmt.Errorf("serve: WorkerConfig.Store is required")
	}
	if cfg.JournalDir == "" {
		return 0, fmt.Errorf("serve: WorkerConfig.JournalDir is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = 250 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}

	jl, err := openJournal(cfg.JournalDir)
	if err != nil {
		return 0, err
	}
	owner := NewOwnerID(cfg.Label)
	w := &worker{
		cfg:   cfg,
		jl:    jl,
		owner: owner,
		ctx:   ctx,
		log:   log.With("worker", owner),
		exec: &executor{
			store:            cfg.Store,
			policies:         cfg.Policies,
			storeBrk:         newBreaker("results", cfg.BreakerThreshold, cfg.BreakerCooldown),
			polBrk:           newBreaker("policies", cfg.BreakerThreshold, cfg.BreakerCooldown),
			journal:          jl,
			leaseTTL:         cfg.LeaseTTL,
			maxAttempts:      cfg.MaxAttempts,
			retryBase:        cfg.RetryBase,
			progressInterval: cfg.ProgressInterval,
			owner:            owner,
			log:              log.With("worker", owner),
		},
		started: time.Now().UTC(),
	}
	w.log.Info("worker up", "journal", cfg.JournalDir, "pid", os.Getpid())
	w.setState("idle", "")
	defer jl.removeWorker(owner) // graceful exit retires the heartbeat; a SIGKILL leaves it for the coordinator to sweep

	// The heartbeat goroutine keeps liveness fresh even while the loop is
	// buried in a multi-minute job — a stale heartbeat means this process
	// is truly gone (or wedged solid), not merely busy.
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		tick := time.NewTicker(cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
				w.heartbeat()
			}
		}
	}()
	return w.run()
}

// run is the scan-claim-execute loop.
func (w *worker) run() (int64, error) {
	for {
		if w.ctx.Err() != nil {
			w.mu.Lock()
			jobs := w.jobs
			w.mu.Unlock()
			w.log.Info("worker draining out", "jobs", jobs)
			return jobs, nil
		}
		if !w.drainOne() {
			select {
			case <-w.ctx.Done():
			case <-time.After(w.cfg.PollInterval):
			}
		}
	}
}

// drainOne scans the journal for one claimable job, executes it, and
// reports whether it found any. Records are visited in job-ID order so
// the fleet approximates the frontend's FIFO admission order.
func (w *worker) drainOne() bool {
	for _, rec := range w.jl.load() {
		if terminalStatus(rec.Status) {
			continue
		}
		if _, claimed := w.jl.claimState(rec.ID); claimed {
			continue
		}
		if !w.jl.claim(rec.ID, w.owner, w.cfg.LeaseTTL) {
			continue // lost the race for this one; try the next
		}
		w.runClaimed(rec)
		return true
	}
	return false
}

// runClaimed executes one job this worker just claimed.
func (w *worker) runClaimed(rec jobRecord) {
	// A cancel marker may have landed while the job sat queued (the
	// frontend lost the claim race to nobody — the marker is its fallback
	// signal); honor it before spending any work.
	if w.jl.cancelRequested(rec.ID) {
		w.finishCanceled(rec)
		w.jl.releaseClaim(rec.ID, w.owner)
		return
	}
	// The attempt budget is fleet-wide, carried by the record: a job that
	// kills every worker that touches it (crash loop) gets abandoned here
	// on its way into yet another execution, exactly like single-process
	// recovery abandons it at startup.
	if rec.Attempts >= w.cfg.MaxAttempts {
		w.abandon(rec)
		w.jl.releaseClaim(rec.ID, w.owner)
		return
	}

	j, err := w.rebuild(rec)
	if err != nil {
		w.log.Warn("unrecoverable job spec", "job", rec.ID, "error", err.Error())
		j.finish(nil, false, 0, fmt.Errorf("unrecoverable job spec: %w", err))
		w.jl.releaseClaim(rec.ID, w.owner)
		return
	}
	w.setState("busy", rec.ID)
	startSims := harness.SimCount()
	w.exec.execute(j)
	executed := harness.SimCount() - startSims

	if j.lostLease() {
		// The claim was reaped mid-run and may belong to a new owner now;
		// this worker must not touch it (or the record) further.
		w.log.Warn("job orphaned mid-run", "job", rec.ID)
		w.bumpCounters(0, executed)
		w.setState("idle", "")
		return
	}
	if v := j.view(); v.Status == StatusCanceled && !w.canceledByUser(j) {
		// Shutdown-driven cancel: the record keeps its pre-cancel state
		// (finishWith skipped the journal write), so releasing the claim
		// requeues the job for a surviving worker.
		w.log.Info("job released for requeue (worker draining)", "job", rec.ID)
		w.bumpCounters(0, executed)
	} else {
		w.bumpCounters(1, executed)
	}
	w.jl.releaseClaim(rec.ID, w.owner)
	w.setState("idle", "")
}

// bumpCounters folds one execution's outcome into the heartbeat totals.
func (w *worker) bumpCounters(jobs, sims int64) {
	w.mu.Lock()
	w.jobs += jobs
	w.sims += sims
	w.mu.Unlock()
}

// canceledByUser reports whether the job's cancellation was a client
// decision (cancel marker honored) rather than worker shutdown.
func (w *worker) canceledByUser(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCanceled
}

// finishCanceled writes the terminal canceled record for a job whose
// cancel marker arrived before execution.
func (w *worker) finishCanceled(rec jobRecord) {
	j, _ := w.rebuild(rec)
	j.markUserCanceled()
	j.cancel()
	j.finish(nil, false, 0, context.Canceled)
	w.jl.clearCancel(rec.ID)
	w.log.Info("queued job canceled by marker", "job", rec.ID)
}

// abandon writes the terminal error record for a job that burned its
// fleet-wide attempt budget.
func (w *worker) abandon(rec jobRecord) {
	j, _ := w.rebuild(rec)
	j.finish(nil, false, 0,
		fmt.Errorf("abandoned after %d attempts (crash loop): %s", rec.Attempts, rec.Error))
	w.log.Warn("job abandoned (attempt budget)", "job", rec.ID, "attempts", rec.Attempts)
}

// rebuild reconstructs an executable job from its journal record — the
// worker-side mirror of Server.rebuildJob, resolving through the same
// tables. Even on error a placeholder job is returned so the caller can
// journal a terminal state.
func (w *worker) rebuild(rec jobRecord) (*job, error) {
	b := &jobBuilder{base: w.ctx, extraScales: w.cfg.ExtraScales}
	j, err := b.build(rec)
	j.jl = w.jl
	j.attempts = rec.Attempts
	j.created = rec.CreatedAt
	j.owner = w.owner
	return j, err
}

// setState records a state transition and lands it immediately (the
// background ticker would get there within a heartbeat anyway; writing
// now keeps the coordinator's occupancy view prompt).
func (w *worker) setState(state, jobID string) {
	w.mu.Lock()
	w.state = state
	w.job = jobID
	w.mu.Unlock()
	w.heartbeat()
}

// heartbeat lands this worker's liveness/occupancy document.
func (w *worker) heartbeat() {
	w.mu.Lock()
	doc := workerState{
		Owner:     w.owner,
		PID:       os.Getpid(),
		State:     w.state,
		Job:       w.job,
		Jobs:      w.jobs,
		Sims:      w.sims,
		StartedAt: w.started,
	}
	w.mu.Unlock()
	w.jl.putWorker(doc)
}
