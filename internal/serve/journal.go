package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pythia/internal/fault"
	"pythia/internal/fsutil"
)

// FPJournalWrite is the failpoint at the head of every journal write;
// chaos tests arm it to prove the journal degrades to best-effort (jobs
// still execute, durability is lost, /healthz counts the failures)
// rather than failing admissions.
const FPJournalWrite = "serve.journal-write"

// FPAdmitCrash sits between the admission journal write and the queue
// insert — the widest at-least-once window. A crash there leaves a
// journaled job that was never queued; recovery must requeue it even
// though the client saw an error (the store's content addressing makes
// the re-execution idempotent).
const FPAdmitCrash = "serve.admit-crash"

// jobRecord is the on-disk journal document for one job: the spec
// (enough to rebuild the job after a restart) plus its latest state
// transition. One file per job, landed via fsutil.WriteAtomic, so a
// crash never leaves a half-written record — the previous state simply
// survives.
type jobRecord struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Experiment identifies an experiment job's target.
	Experiment string `json:"experiment,omitempty"`
	// Workload and Config identify a train job's target.
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	// Scale is the scale *name*; recovery resolves it through the same
	// ExtraScales table as admission, so custom scales survive restarts
	// as long as the server is rebuilt with the same configuration.
	Scale string `json:"scale"`

	Status string `json:"status"`
	// Attempts counts times the job entered execution (dispatches, plus
	// in-process transient retries); recovery refuses jobs that already
	// burned through the attempt budget, so a job that crashes the
	// server cannot crash-loop it forever.
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// LeaseUntil is the running job's lease expiry, heartbeat-renewed by
	// the progress sampler. Recovery requeues a running job only once
	// its lease has expired: a still-live lease may belong to another
	// process sharing the journal directory.
	LeaseUntil time.Time `json:"lease_until,omitempty"`
	// Owner identifies the process executing the job (PID + start-time
	// nonce; see NewOwnerID). Fleet frontends surface it as the job's
	// worker; it is informational — mutual exclusion lives in the claim
	// file, whose owner must match for lease renewal.
	Owner string `json:"owner,omitempty"`
	// Sims and Cached mirror the job's progress/outcome so a stateless
	// frontend can proxy status from the record alone; PolicyID names a
	// finished training job's artifact in the policy store.
	Sims     int64  `json:"sims,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	PolicyID string `json:"policy_id,omitempty"`

	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
}

// journal persists job records, one file per job, in a directory swept
// for stale temps at open. All writes are best-effort: losing a journal
// write loses durability for that transition, never the job itself —
// writeErrs counts the losses for /healthz.
type journal struct {
	dir       string
	writeErrs atomic.Int64
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	fsutil.SweepStaleTemps(dir)
	return &journal{dir: dir}, nil
}

func (l *journal) path(id string) string {
	return filepath.Join(l.dir, fsutil.Sanitize(id)+".json")
}

// put lands a record on disk (best-effort; see journal doc).
func (l *journal) put(rec jobRecord) {
	rec.UpdatedAt = time.Now().UTC()
	err := fault.Hit(FPJournalWrite)
	if err == nil {
		err = fsutil.WriteAtomic(l.dir, l.path(rec.ID), func(tmp *os.File) error {
			buf, merr := json.MarshalIndent(&rec, "", "  ")
			if merr != nil {
				return merr
			}
			buf = append(buf, '\n')
			_, werr := tmp.Write(buf)
			return fault.Transient(werr)
		})
	}
	if err != nil {
		l.writeErrs.Add(1)
	}
}

// remove deletes a job's record (evicted from history, or terminal at
// recovery time), along with any claim or cancel litter it left.
func (l *journal) remove(id string) {
	os.Remove(l.path(id))
	os.Remove(l.claimPath(id))
	l.clearCancel(id)
}

// get reads one job's record (the fleet frontend's status-proxy read).
func (l *journal) get(id string) (jobRecord, bool) {
	buf, err := os.ReadFile(l.path(id))
	if err != nil {
		return jobRecord{}, false
	}
	var rec jobRecord
	if err := json.Unmarshal(buf, &rec); err != nil || rec.ID == "" {
		return jobRecord{}, false
	}
	return rec, true
}

// load reads every parseable record, in job-ID order. Unreadable files
// are skipped, not errors: the journal is an optimization over losing
// all state, and a corrupt record (which WriteAtomic makes near
// impossible) must not take the server down with it.
func (l *journal) load() []jobRecord {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	var recs []jobRecord
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(l.dir, name))
		if err != nil {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(buf, &rec); err != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return jobIDNum(recs[i].ID) < jobIDNum(recs[j].ID) })
	return recs
}

// jobIDNum extracts the numeric suffix of a "job-N" ID (0 when the ID
// does not match, which sorts unknown IDs first and never collides with
// minted ones: nextID resumes past the maximum).
func jobIDNum(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

// record snapshots a job into its journal document. Callers must hold
// j.mu (or own the job exclusively, as construction does).
func (j *job) recordLocked() jobRecord {
	rec := jobRecord{
		ID:         j.id,
		Kind:       j.kind,
		Experiment: j.expID,
		Scale:      j.scaleName,
		Status:     j.status,
		Attempts:   j.attempts,
		Error:      j.errMsg,
		LeaseUntil: j.leaseUntil,
		Owner:      j.owner,
		Sims:       j.sims,
		Cached:     j.cached,
		CreatedAt:  j.created,
	}
	if j.kind == KindTrain {
		rec.Workload = j.train.Workload.Name
		rec.Config = j.train.Config.Name
	}
	if j.policyMeta != nil {
		rec.PolicyID = j.policyMeta.ID
	}
	return rec
}

// journalLocked writes the job's current state to jl (nil = journaling
// disabled). Callers must hold j.mu; per-job writes are therefore
// serialized, so a heartbeat can never overwrite a terminal record.
func (j *job) journalLocked(jl *journal) {
	if jl == nil {
		return
	}
	jl.put(j.recordLocked())
}
