package serve_test

// Journal-recovery properties: recovery is idempotent (restarting twice
// from the same journal snapshot converges to the same jobs and never
// re-simulates persisted work), expired leases are taken over while
// live ones are respected, and user-visible job state round-trips the
// restart.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"pythia/internal/fault"
	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

// ghostQueue journals an admission on srv's journal without ever
// inserting it into the queue, by crashing the handler (injected panic)
// inside the admission window. This is the adversarial interleaving the
// journal exists for.
func ghostQueue(t *testing.T, base, exp string) {
	t.Helper()
	fault.Enable(serve.FPAdmitCrash, fault.Spec{Mode: fault.ModePanic, Count: 1})
	defer fault.Disable(serve.FPAdmitCrash)
	body := strings.NewReader(fmt.Sprintf(`{"experiment": %q, "scale": "tiny"}`, exp))
	if resp, err := http.Post(base+"/api/v1/runs", "application/json", body); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// quietHTTPServer is newHTTPServer minus the panic log noise (injected
// admission crashes are recovered and logged by net/http).
func quietHTTPServer(t *testing.T, srv *serve.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ErrorLog = log.New(io.Discard, "", 0)
	ts.Start()
	return ts
}

// copyDir clones the journal directory — a filesystem snapshot of the
// moment of the crash, replayable as many times as the test likes.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		buf, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverAndDrain rebuilds a server over journalDir+storeDir, waits for
// every recovered job to reach a terminal state, and returns the sorted
// recovered job IDs and the simulation count consumed.
func recoverAndDrain(t *testing.T, journalDir string, store *results.Store) ([]string, int64) {
	t.Helper()
	harness.ResetCaches() // force recovery to prove itself against disk, not memory
	before := harness.SimCount()
	srv, err := serve.New(serve.Config{
		Store:            store,
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       journalDir,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var list struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	getJSON(t, ts.URL+"/api/v1/runs", &list)
	var ids []string
	for _, j := range list.Jobs {
		if !j.Recovered {
			t.Errorf("job %s on a freshly recovered server not marked recovered", j.ID)
		}
		ids = append(ids, j.ID)
		if done := waitDone(t, ts.URL, j.ID); done.Status != serve.StatusDone {
			t.Errorf("recovered job %s ended %q (%s)", j.ID, done.Status, done.Error)
		}
	}
	sort.Strings(ids)
	return ids, harness.SimCount() - before
}

// TestJournalRecoveryIdempotent: after a crash that strands journaled
// jobs, restarting from the journal — twice, from identical snapshots —
// recovers the same job set both times, converges to the same terminal
// state, and performs zero duplicate simulations for work whose result
// already landed in the content-addressed store.
func TestJournalRecoveryIdempotent(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	defer fault.Reset()
	journalDir := t.TempDir()
	storeDir := t.TempDir()

	// A first life: one experiment runs to completion (simulations happen,
	// result persists), then two admissions crash inside the journal→queue
	// window, then the process dies.
	srvA, err := serve.New(serve.Config{
		Store:            results.Open(storeDir),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       journalDir,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := quietHTTPServer(t, srvA)
	job, code := postRun(t, tsA.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if done := waitDone(t, tsA.URL, job.ID); done.Status != serve.StatusDone || done.Sims == 0 {
		t.Fatalf("first-life job: status %q, %d sims", done.Status, done.Sims)
	}
	ghostQueue(t, tsA.URL, "fig14")  // same work as the persisted result
	ghostQueue(t, tsA.URL, "table2") // distinct, never-run work
	tsA.Close()
	srvA.Close()

	snapshot := copyDir(t, journalDir)

	// Second life, over the original journal: both ghosts recover; the
	// fig14 ghost is a pure store hit (zero simulations), and table2 is
	// simulation-free by construction — so the total must be zero.
	idsB, simsB := recoverAndDrain(t, journalDir, results.Open(storeDir))
	if len(idsB) != 2 {
		t.Fatalf("second life recovered %v, want the 2 ghost jobs", idsB)
	}
	if simsB != 0 {
		t.Errorf("second life re-simulated: %d sims, want 0 (store idempotency)", simsB)
	}

	// Third life, over the pristine snapshot of the same crash: identical
	// job set, identical outcome, still zero duplicate work.
	idsC, simsC := recoverAndDrain(t, snapshot, results.Open(storeDir))
	if fmt.Sprint(idsB) != fmt.Sprint(idsC) {
		t.Errorf("replayed recovery diverged: %v vs %v", idsB, idsC)
	}
	if simsC != 0 {
		t.Errorf("replayed recovery re-simulated: %d sims, want 0", simsC)
	}

	// Recovery reclaims terminal records: the journals now describe only
	// jobs that finished during the lives above, as terminal states.
	for _, dir := range []string{journalDir, snapshot} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			var rec struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			}
			if err := json.Unmarshal(buf, &rec); err != nil {
				t.Errorf("corrupt journal record %s after recovery", e.Name())
				continue
			}
			if rec.Status != serve.StatusDone {
				t.Errorf("journal record %s left in state %q after drain", rec.ID, rec.Status)
			}
		}
	}
}

// TestJournalLeaseTakeover: a journaled running job with a still-live
// lease is not stolen at startup — the reaper waits for the lease to
// expire, then requeues it. (A live lease may belong to another process
// sharing the journal directory.)
func TestJournalLeaseTakeover(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	journalDir := t.TempDir()
	lease := 1500 * time.Millisecond

	rec := map[string]any{
		"id":          "job-7",
		"kind":        serve.KindExperiment,
		"experiment":  "table2",
		"scale":       "tiny",
		"status":      serve.StatusRunning,
		"attempts":    1,
		"lease_until": time.Now().Add(lease).UTC().Format(time.RFC3339Nano),
		"created_at":  time.Now().UTC().Format(time.RFC3339Nano),
		"updated_at":  time.Now().UTC().Format(time.RFC3339Nano),
	}
	buf, _ := json.Marshal(rec)
	if err := os.WriteFile(filepath.Join(journalDir, "job-7.json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       journalDir,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	// While the foreign lease is live, the job is registered but parked.
	time.Sleep(200 * time.Millisecond)
	var out struct {
		Job serve.JobView `json:"job"`
	}
	if code := getJSON(t, ts+"/api/v1/runs/job-7", &out); code != http.StatusOK {
		t.Fatalf("recovered job not listed: %d", code)
	}
	if out.Job.Status != serve.StatusQueued {
		t.Fatalf("job with a live lease is %q %v into a %v lease, want queued",
			out.Job.Status, time.Since(start), lease)
	}

	// After expiry the reaper requeues it and it runs to completion.
	done := waitDone(t, ts, "job-7")
	if done.Status != serve.StatusDone {
		t.Fatalf("taken-over job ended %q (%s)", done.Status, done.Error)
	}
	if !done.Recovered {
		t.Error("taken-over job not marked recovered")
	}
	if took := time.Since(start); took < lease-300*time.Millisecond {
		t.Errorf("job finished %v after startup, inside the foreign %v lease", took, lease)
	}
	// nextID resumed past the recovered ID: no collision with new jobs.
	fresh, code := postRun(t, ts, "table4", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("POST after takeover = %d", code)
	}
	if serveJobIDLE(fresh.ID, "job-7") {
		t.Errorf("fresh job ID %q collides with recovered job-7", fresh.ID)
	}
}

// serveJobIDLE reports a <= b for job-N IDs.
func serveJobIDLE(a, b string) bool {
	num := func(id string) int {
		var n int
		fmt.Sscanf(id, "job-%d", &n)
		return n
	}
	return num(a) <= num(b)
}

// TestJournalAbandonsCrashLoopers: a journaled job that already burned
// through the attempt budget is not requeued — it surfaces as a
// permanently failed job instead of crash-looping the server forever.
func TestJournalAbandonsCrashLoopers(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	journalDir := t.TempDir()
	rec := map[string]any{
		"id":          "job-3",
		"kind":        serve.KindExperiment,
		"experiment":  "fig14",
		"scale":       "tiny",
		"status":      serve.StatusRunning,
		"attempts":    3,
		"lease_until": time.Now().Add(-time.Minute).UTC().Format(time.RFC3339Nano),
		"created_at":  time.Now().UTC().Format(time.RFC3339Nano),
	}
	buf, _ := json.Marshal(rec)
	if err := os.WriteFile(filepath.Join(journalDir, "job-3.json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       journalDir,
		MaxAttempts:      3,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	done := waitDone(t, ts, "job-3")
	if done.Status != serve.StatusError {
		t.Fatalf("crash-looping job recovered as %q, want error", done.Status)
	}
	if !strings.Contains(done.Error, "crash loop") {
		t.Errorf("abandonment reason not surfaced: %q", done.Error)
	}
	// Zero simulations were spent on it.
	if done.Sims != 0 {
		t.Errorf("abandoned job still ran %d sims", done.Sims)
	}
}

// TestJournalUnresolvableSpecFailsVisibly: a journal record whose spec
// no longer resolves (a custom scale not re-registered after restart)
// becomes a visible failed job, not a silent drop or a crash.
func TestJournalUnresolvableSpecFailsVisibly(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	journalDir := t.TempDir()
	rec := map[string]any{
		"id":         "job-2",
		"kind":       serve.KindExperiment,
		"experiment": "fig14",
		"scale":      "bespoke", // was an ExtraScale in the previous life
		"status":     serve.StatusQueued,
		"attempts":   0,
		"created_at": time.Now().UTC().Format(time.RFC3339Nano),
	}
	buf, _ := json.Marshal(rec)
	if err := os.WriteFile(filepath.Join(journalDir, "job-2.json"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Store:            results.Open(t.TempDir()),
		QueueDepth:       4,
		ProgressInterval: 10 * time.Millisecond,
		JournalDir:       journalDir,
		ExtraScales:      map[string]harness.Scale{"tiny": tinyScale}, // no "bespoke"
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	done := waitDone(t, ts, "job-2")
	if done.Status != serve.StatusError {
		t.Fatalf("unresolvable job recovered as %q, want error", done.Status)
	}
	if done.Error == "" {
		t.Error("unresolvable job carries no error message")
	}
}
