package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pythia/internal/api"
	"pythia/internal/harness"
	"pythia/internal/results"
)

// fetch returns status, headers and decoded error envelope (if any) for
// a raw request against the test server — wire-level on purpose: these
// tests pin the HTTP contract the typed client builds on.
func fetch(t *testing.T, method, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	return resp, buf
}

// TestEveryShedPathSetsRetryAfter is the regression test for the "all
// 503s carry Retry-After + a retryable envelope" guarantee. Historically
// only some shed paths set the header (queue-full and breaker-degraded
// did, shutdown-drain and missing-subsystem didn't); writeError now
// enforces it centrally, and this test locks each path in.
func TestEveryShedPathSetsRetryAfter(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()

	assert503 := func(t *testing.T, resp *http.Response, body []byte, wantCode string) {
		t.Helper()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s 503 carries no Retry-After header", wantCode)
		}
		var env api.ErrorResponse
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("503 body is not an error envelope: %v (%s)", err, body)
		}
		if env.Error.Code != wantCode {
			t.Errorf("error code = %q, want %q", env.Error.Code, wantCode)
		}
		if !env.Error.Retryable {
			t.Errorf("%s envelope not marked retryable", wantCode)
		}
		if env.Error.RetryAfterSec < 1 {
			t.Errorf("%s envelope retry_after_sec = %d, want >= 1", wantCode, env.Error.RetryAfterSec)
		}
	}

	t.Run("unavailable_no_policy_store", func(t *testing.T) {
		_, ts := newTestServer(t, results.Open(t.TempDir()), 4)
		resp, body := fetch(t, http.MethodGet, ts.URL+api.Prefix+"/policies", nil)
		assert503(t, resp, body, api.CodeUnavailable)
	})

	t.Run("shutting_down", func(t *testing.T) {
		srv, ts := newTestServer(t, results.Open(t.TempDir()), 4)
		// Park a slow job on the executor so the drain lingers with
		// closing=true, then observe the launch shed during it.
		blocker, code := postRun(t, ts.URL, "fig7", "slow")
		if code != http.StatusAccepted {
			t.Fatalf("blocker not accepted: %d", code)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		deadline := time.Now().Add(30 * time.Second)
		var resp *http.Response
		var body []byte
		for {
			launch, _ := json.Marshal(api.LaunchRequest{Experiment: "fig14", Scale: "tiny"})
			resp, body = fetch(t, http.MethodPost, ts.URL+api.Prefix+"/runs", bytes.NewReader(launch))
			if resp.StatusCode == http.StatusServiceUnavailable {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("launch never shed during drain (last status %d)", resp.StatusCode)
			}
			time.Sleep(5 * time.Millisecond)
		}
		assert503(t, resp, body, api.CodeShuttingDown)
		waitDone(t, ts.URL, blocker.ID)
		<-done
	})

	t.Run("queue_full", func(t *testing.T) {
		// The shutting_down subtest just ran the same slow experiment; wipe
		// the in-process caches so the blocker actually occupies the
		// executor instead of finishing instantly from memory.
		harness.ResetCaches()
		_, ts := newTestServer(t, results.Open(t.TempDir()), 1)
		if _, code := postRun(t, ts.URL, "fig7", "slow"); code != http.StatusAccepted {
			t.Fatal("blocker not accepted")
		}
		// Fill the queue, then overflow it; the running blocker may pop the
		// first queued job at any moment, so keep launching until a 503.
		deadline := time.Now().Add(30 * time.Second)
		for {
			launch, _ := json.Marshal(api.LaunchRequest{Experiment: "fig14", Scale: "tiny"})
			resp, body := fetch(t, http.MethodPost, ts.URL+api.Prefix+"/runs", bytes.NewReader(launch))
			if resp.StatusCode == http.StatusServiceUnavailable {
				assert503(t, resp, body, api.CodeQueueFull)
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("queue never overflowed")
			}
		}
	})
}

// TestLegacyAliasesAreGone: the unversioned /api/... aliases finished
// their one-release deprecation window and must now 404 — no handler,
// no Deprecation header, nothing. A client still on them gets an
// unambiguous break, not a silently unversioned contract.
func TestLegacyAliasesAreGone(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 4)

	job, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("launch = %d", code)
	}
	waitDone(t, ts.URL, job.ID)

	for _, path := range []string{"/experiments", "/runs", "/runs/" + job.ID, "/results/fig14?scale=tiny", "/policies"} {
		v1, _ := fetch(t, http.MethodGet, ts.URL+api.Prefix+path, nil)
		if v1.StatusCode == http.StatusNotFound {
			t.Fatalf("%s: canonical v1 route 404s", path)
		}
		legacy, _ := fetch(t, http.MethodGet, ts.URL+"/api"+path, nil)
		if legacy.StatusCode != http.StatusNotFound {
			t.Errorf("%s: legacy alias answered %d, want 404", path, legacy.StatusCode)
		}
		if legacy.Header.Get("Deprecation") != "" {
			t.Errorf("%s: removed alias still advertises Deprecation", path)
		}
	}

	// Legacy launch is gone too.
	launch, _ := json.Marshal(api.LaunchRequest{Experiment: "fig14", Scale: "tiny"})
	resp, _ := fetch(t, http.MethodPost, ts.URL+"/api/runs", bytes.NewReader(launch))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("legacy launch answered %d, want 404", resp.StatusCode)
	}
}

// TestCancelConflictUsesEnvelope: canceling a terminal job answers 409
// with the unified error envelope, not the legacy {"job": ...} body.
func TestCancelConflictUsesEnvelope(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	_, ts := newTestServer(t, results.Open(t.TempDir()), 4)

	job, code := postRun(t, ts.URL, "fig14", "tiny")
	if code != http.StatusAccepted {
		t.Fatalf("launch = %d", code)
	}
	waitDone(t, ts.URL, job.ID)

	_, err := apiClient(ts.URL).Cancel(context.Background(), job.ID)
	ae, ok := err.(*api.Error)
	if !ok {
		t.Fatalf("cancel of terminal job: want *api.Error, got %v", err)
	}
	if ae.Code != api.CodeConflict || ae.HTTPStatus != http.StatusConflict {
		t.Errorf("got code=%s status=%d, want conflict/409", ae.Code, ae.HTTPStatus)
	}
}
