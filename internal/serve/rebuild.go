package serve

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/harness"
	"pythia/internal/trace"
)

// jobBuilder reconstructs executable jobs from journal records through
// the same resolve tables admission uses. Both recovery paths share it:
// a restarting server rebuilding its backlog, and a fleet worker
// materializing a claimed record into something it can execute.
type jobBuilder struct {
	base        context.Context
	extraScales map[string]harness.Scale
}

// build reconstructs rec. Even on error a placeholder job is returned
// (never nil) so callers can register and fail it visibly rather than
// silently dropping a journaled job.
func (b *jobBuilder) build(rec jobRecord) (*job, error) {
	sc, err := b.resolveScale(scaleArg(rec.Scale))
	if err != nil {
		return b.placeholder(rec), err
	}
	if rec.Kind == KindTrain {
		wl, ok := trace.ByName(rec.Workload)
		if !ok {
			return b.placeholder(rec), fmt.Errorf("unknown workload %q", rec.Workload)
		}
		pcfg, err := harness.PythiaConfigByName(rec.Config)
		if err != nil {
			return b.placeholder(rec), err
		}
		ts := harness.TrainSpec{Workload: wl, CacheCfg: cache.DefaultConfig(1), Scale: sc, Config: pcfg}
		return newTrainJob(b.base, rec.ID, ts, rec.Scale, sc), nil
	}
	exp, ok := harness.ExperimentByID(rec.Experiment)
	if !ok {
		return b.placeholder(rec), fmt.Errorf("unknown experiment %q", rec.Experiment)
	}
	return newJob(b.base, rec.ID, exp, rec.Scale, sc), nil
}

// resolveScale maps a scale name through the extra-scales table, then
// the harness presets (which include parametric "custom:..." names).
func (b *jobBuilder) resolveScale(name string) (harness.Scale, error) {
	if sc, ok := b.extraScales[name]; ok {
		return sc, nil
	}
	return harness.ScaleByName(name)
}

// scaleArg maps the journaled scale name back to a resolveScale
// argument ("default" was minted by admission from the empty name).
func scaleArg(name string) string {
	if name == "default" {
		return ""
	}
	return name
}

// placeholder is a journaled job whose spec no longer resolves: it
// exists to be registered and failed visibly, not silently dropped.
func (b *jobBuilder) placeholder(rec jobRecord) *job {
	j := blankJob(b.base, rec.ID, rec.Kind, rec.Scale, harness.Scale{})
	j.expID = rec.Experiment
	j.title = "(recovered)"
	return j
}
