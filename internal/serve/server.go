// Package serve exposes the experiment harness as a long-lived HTTP
// service: the first step from batch reproduction toward a system that
// serves results to many concurrent consumers.
//
// Architecture: requests land in a bounded job queue; a single executor
// goroutine drains it, running one experiment at a time. Each experiment
// internally fans its simulations out over the harness worker pool
// (harness.SetWorkers), so the machine stays fully utilized while queue
// depth — not goroutine count — bounds admitted work. Every completed
// experiment is persisted in a results.Store; a repeat request (same
// experiment, same scale, same generator version) is served from the
// store with zero additional simulation work, observable through the
// job's sims counter. Progress streams to clients over SSE with full
// event replay, so late subscribers see the whole history.
//
// Policy-training jobs flow through the same queue, executor and SSE
// machinery: a POST with a "train" body trains a Pythia policy and
// persists it in the policy.Store, a repeat training request is a store
// hit with zero simulations (same sims-counter proof), and stored
// policies are listable and downloadable under /api/v1/policies.
//
// Failure and cancellation are first-class: the harness returns errors as
// values (a corrupted trace-cache file fails only the job that touched
// it, with a terminal "error" SSE event, while the service keeps serving),
// every job carries a context that DELETE /api/v1/runs/{id} cancels (terminal
// "canceled" event, in-flight simulations abort at the next chunk
// boundary and release their worker slots), and Shutdown drains the queue
// before stopping.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pythia/internal/api"
	"pythia/internal/cache"
	"pythia/internal/fault"
	"pythia/internal/harness"
	"pythia/internal/obs"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the persistent result store (required).
	Store *results.Store
	// Policies is the trained-policy store backing the policy lifecycle
	// endpoints (/api/v1/policies, POST-able training jobs). Optional: when
	// nil those endpoints answer 503 and everything else works unchanged.
	Policies *policy.Store
	// QueueDepth bounds the number of jobs waiting to execute (admitted
	// but unstarted); the default is 16. A full queue rejects launches
	// with 503 rather than queueing unboundedly.
	QueueDepth int
	// ProgressInterval is how often a running job samples the simulation
	// counter into an SSE progress event; the default is 250ms.
	ProgressInterval time.Duration
	// JobHistory bounds how many finished jobs are retained for listing
	// and late fetches (the default is 256). Queued and running jobs are
	// never evicted; beyond the cap, the oldest finished jobs are dropped
	// at admission time, so server memory is bounded by admitted + capped
	// work, not by lifetime request count. Stored results are unaffected
	// — evicted tables remain fetchable via /api/v1/results.
	JobHistory int
	// ExtraScales registers additional named scales beyond the harness
	// presets (tests register tiny ones; deployments can pin custom
	// horizons).
	ExtraScales map[string]harness.Scale

	// JournalDir enables the durable job journal: every accepted job is
	// persisted there (spec + state transitions), and New recovers
	// non-terminal jobs from it — queued jobs requeue immediately,
	// running jobs requeue once their lease expires. Empty disables
	// journaling (jobs live only in process memory, the pre-journal
	// behavior). Custom scales in ExtraScales must be re-registered for
	// their journaled jobs to be recoverable.
	JournalDir string
	// LeaseTTL is how long a running job's lease lasts between
	// heartbeats (renewed by the progress sampler); the default is 30s.
	// A crashed server stops renewing, and recovery requeues the job
	// once the lease lapses.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times a job may enter execution —
	// transient-failure retries and crash-recovery dispatches both
	// count — before it fails permanently; the default is 3.
	MaxAttempts int
	// RetryBase is the first retry backoff; attempt n waits up to
	// RetryBase·2^(n-1), full-jittered, capped at 5s. Default 100ms.
	RetryBase time.Duration
	// BreakerThreshold is how many consecutive persist failures open a
	// store's circuit breaker (degraded read-only mode); default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds write-needing
	// work before letting a probe through; default 15s.
	BreakerCooldown time.Duration

	// Dispatch turns the server into a stateless fleet frontend: admitted
	// jobs are journaled but never executed in-process — worker processes
	// (serve.RunWorker over the same JournalDir) claim and execute them,
	// and a watcher goroutine proxies status, progress and terminal
	// events back from the journal and the shared stores. Requires
	// JournalDir. Cancellation crosses the process boundary through
	// claim acquisition (queued jobs) or cancel markers (claimed jobs).
	Dispatch bool

	// FleetStatus, when set, backs GET /api/v1/fleet: the serving layer
	// stays ignorant of the fleet coordinator (fleet imports serve, never
	// the reverse); cmd wiring hands the coordinator's Status here.
	FleetStatus func() api.FleetStatus

	// Logger receives structured job-lifecycle logs (admission, dispatch,
	// retries, terminal states, recovery) with job IDs on every record.
	// Nil discards them — tests and embedders that don't care stay quiet.
	Logger *slog.Logger
}

// Server is the pythia-serve HTTP service.
type Server struct {
	cfg   Config
	store *results.Store
	queue chan *job
	wg    sync.WaitGroup

	// baseCtx parents every job context; baseCancel is the hard-stop
	// lever (Close, or Shutdown past its deadline).
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// drain tells the executor to exit once the queue is empty; closing
	// is the shutdown signal.
	drain     chan struct{}
	drainOnce sync.Once
	closing   atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int64

	// journal is the durable job log (nil when Config.JournalDir is
	// empty); recovered counts the jobs it requeued at startup.
	journal   *journal
	recovered int

	// storeBrk and polBrk are the per-store circuit breakers guarding
	// result and policy persistence respectively (shared with exec).
	storeBrk *breaker
	polBrk   *breaker

	// exec is the job-execution engine the executor goroutine drains the
	// queue into; in dispatch mode it is never used (workers execute).
	exec *executor

	// frontOwner is this frontend's lease-owner identity, used in
	// dispatch mode to claim queued jobs for prompt cancellation.
	frontOwner string

	log *slog.Logger

	started time.Time
}

// New builds a Server and starts its executor. Callers own the HTTP
// listener (mount Handler) and must stop the server with Shutdown (drain)
// or Close (abort) to stop the executor.
//
// With Config.JournalDir set, New first recovers the journal: jobs that
// were queued (or running with an expired lease) when the previous
// process died are rebuilt and requeued ahead of new admissions, and
// running jobs whose lease is still live are taken over once it lapses.
// Re-execution is at-least-once but idempotent — results and policies
// are content-addressed and singleflight-guarded, so a recovered job
// that already persisted its result is a store hit with zero new
// simulations.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = 250 * time.Millisecond
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 256
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	if cfg.Dispatch && cfg.JournalDir == "" {
		return nil, fmt.Errorf("serve: Dispatch mode requires Config.JournalDir (the journal is the frontend-worker coordination substrate)")
	}
	s := &Server{
		cfg:        cfg,
		store:      cfg.Store,
		drain:      make(chan struct{}),
		jobs:       make(map[string]*job),
		storeBrk:   newBreaker("results", cfg.BreakerThreshold, cfg.BreakerCooldown),
		polBrk:     newBreaker("policies", cfg.BreakerThreshold, cfg.BreakerCooldown),
		frontOwner: NewOwnerID("front"),
		log:        log,
		started:    time.Now().UTC(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	// A crash mid-WriteAtomic must not leave temp litter across
	// restarts: sweep all three stores now, not on their first write.
	s.store.Sweep()
	if cfg.Policies != nil {
		cfg.Policies.Sweep()
	}
	harness.SweepTraceCache()

	var jl *journal
	if cfg.JournalDir != "" {
		var err error
		if jl, err = openJournal(cfg.JournalDir); err != nil {
			return nil, err
		}
		s.journal = jl
	}
	s.exec = &executor{
		store:            cfg.Store,
		policies:         cfg.Policies,
		storeBrk:         s.storeBrk,
		polBrk:           s.polBrk,
		journal:          s.journal,
		leaseTTL:         cfg.LeaseTTL,
		maxAttempts:      cfg.MaxAttempts,
		retryBase:        cfg.RetryBase,
		progressInterval: cfg.ProgressInterval,
		log:              log,
	}

	if cfg.Dispatch {
		// Fleet frontend: re-track every journaled job (the watcher syncs
		// each to its record's real state on the first tick — workers may
		// have kept executing while no frontend was up) and proxy instead
		// of executing.
		s.recoverDispatch(jl.load())
		s.queue = make(chan *job, cfg.QueueDepth)
		if s.recovered > 0 {
			mRecovered.Add(int64(s.recovered))
			s.log.Info("journal re-tracked", "jobs", s.recovered)
		}
		s.registerMetrics()
		s.wg.Add(1)
		go s.watcher()
		return s, nil
	}

	var requeue, pending []*job
	if s.journal != nil {
		requeue, pending = s.recover(jl.load())
	}
	// The recovered backlog rides ahead of the configured depth so a
	// full journal can never deadlock startup; the extra capacity drains
	// as the backlog executes.
	s.queue = make(chan *job, cfg.QueueDepth+len(requeue)+len(pending))
	for _, j := range requeue {
		j.requeued() // re-land as queued before it can run
		mRequeues.Inc()
		s.queue <- j
	}
	if s.recovered > 0 {
		mRecovered.Add(int64(s.recovered))
		s.log.Info("journal recovery complete",
			"recovered", s.recovered, "requeued", len(requeue), "pending_leases", len(pending))
	}
	if len(pending) > 0 {
		s.wg.Add(1)
		go s.reaper(pending)
	}
	s.registerMetrics()
	s.wg.Add(1)
	go s.executor()
	return s, nil
}

// recoverDispatch re-tracks journaled jobs on a fleet frontend restart:
// nothing is requeued or executed here — workers own execution — the
// frontend only rebuilds its in-memory views (terminal history included;
// the watcher adopts each record's real state, fetching artifacts from
// the shared stores, on its first tick).
func (s *Server) recoverDispatch(recs []jobRecord) {
	for _, rec := range recs {
		if n := jobIDNum(rec.ID); n > s.nextID {
			s.nextID = n
		}
		j, err := s.rebuildJob(rec)
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		s.recovered++
		if err != nil {
			j.finish(nil, false, 0, fmt.Errorf("unrecoverable job spec: %w", err))
		}
	}
}

// watcher is the dispatch-mode proxy loop: every ProgressInterval it
// reads the journal record of each tracked non-terminal job and mirrors
// worker-side transitions into the in-memory job (status flip, progress
// samples, terminal adoption with the artifact fetched from the shared
// store) — so the HTTP surface, SSE streams included, behaves
// identically whether the job ran in-process or on a fleet worker.
func (s *Server) watcher() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ProgressInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.drain:
			return
		case <-s.baseCtx.Done():
			return
		case <-tick.C:
			s.syncTrackedJobs()
		}
	}
}

// syncTrackedJobs applies one round of journal reads to every tracked
// non-terminal job.
func (s *Server) syncTrackedJobs() {
	s.mu.Lock()
	open := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; !j.terminal() {
			open = append(open, j)
		}
	}
	s.mu.Unlock()
	for _, j := range open {
		rec, ok := s.journal.get(j.id)
		if !ok {
			continue
		}
		switch {
		case terminalStatus(rec.Status):
			s.adoptTerminalRecord(j, rec)
		case rec.Status == StatusRunning:
			j.syncRunning(rec)
		}
	}
}

// adoptTerminalRecord finishes a tracked job from its worker-written
// terminal record, fetching the artifact from the shared stores.
func (s *Server) adoptTerminalRecord(j *job, rec jobRecord) {
	var res *harness.ExperimentPayload
	var pm *policy.Meta
	if rec.Status == StatusDone {
		if rec.Kind == KindTrain {
			if s.cfg.Policies != nil && rec.PolicyID != "" {
				if env, ok := s.cfg.Policies.Get(rec.PolicyID); ok {
					meta := env.Meta
					pm = &meta
				}
			}
		} else {
			var payload harness.ExperimentPayload
			if s.store.Get(harness.ExperimentKey(j.expID, j.scale), &payload) {
				res = &payload
			}
		}
	}
	j.adoptTerminal(rec, res, pm)
	s.journal.clearCancel(j.id)
	s.log.Info("job finished on worker", "job", j.id, "status", rec.Status,
		"worker", rec.Owner, "sims", rec.Sims, "attempts", rec.Attempts)
}

// recover rebuilds journaled jobs after a restart: terminal records are
// reclaimed, queued ones (and expired-lease running ones) are returned
// for immediate requeue, and running jobs whose lease is still live are
// returned as pending for the reaper to take over at expiry (a live
// lease may belong to another process sharing the journal). Jobs whose
// spec no longer resolves, or that already burned the attempt budget
// (a crash loop), are registered permanently failed instead of
// requeued.
func (s *Server) recover(recs []jobRecord) (requeue, pending []*job) {
	now := time.Now().UTC()
	for _, rec := range recs {
		if n := jobIDNum(rec.ID); n > s.nextID {
			s.nextID = n
		}
		if terminalStatus(rec.Status) {
			s.journal.remove(rec.ID)
			continue
		}
		j, err := s.rebuildJob(rec)
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		s.recovered++
		switch {
		case err != nil:
			j.finish(nil, false, 0, fmt.Errorf("unrecoverable job spec: %w", err))
		case rec.Attempts >= s.cfg.MaxAttempts:
			j.finish(nil, false, 0, fmt.Errorf("abandoned after %d attempts (crash loop): %s", rec.Attempts, rec.Error))
		case rec.Status == StatusRunning && rec.LeaseUntil.After(now):
			pending = append(pending, j)
		default:
			requeue = append(requeue, j)
		}
	}
	return requeue, pending
}

// rebuildJob reconstructs a job from its journal record, resolving the
// spec through the same tables admission used (jobBuilder, shared with
// the worker role), then carries the record's durable state onto it.
func (s *Server) rebuildJob(rec jobRecord) (*job, error) {
	b := &jobBuilder{base: s.baseCtx, extraScales: s.cfg.ExtraScales}
	j, err := b.build(rec)
	s.adoptRecovered(j, rec)
	return j, err
}

// adoptRecovered carries durable state from the record onto a rebuilt
// job. The job is not yet visible to other goroutines.
func (s *Server) adoptRecovered(j *job, rec jobRecord) {
	j.jl = s.journal
	j.recovered = true
	j.attempts = rec.Attempts
	j.leaseUntil = rec.LeaseUntil // the reaper waits this out before requeueing
	j.created = rec.CreatedAt
	j.status = StatusQueued
	j.publish("status", j.viewLocked())
}

// reaper waits out the live leases of running jobs recovered from the
// journal and requeues each as its lease expires; pending jobs stay
// visible as queued in the listing meanwhile. The enqueue blocks if the
// queue is momentarily full — the reaper, unlike admission, may wait.
func (s *Server) reaper(pending []*job) {
	defer s.wg.Done()
	sort.Slice(pending, func(i, j int) bool {
		return pending[i].leaseUntil.Before(pending[j].leaseUntil)
	})
	for _, j := range pending {
		wait := time.Until(j.leaseUntil)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-s.baseCtx.Done():
				return
			}
		}
		j.requeued() // journal the takeover point
		mRequeues.Inc()
		s.log.Info("lease expired, job requeued", "job", j.id)
		select {
		case s.queue <- j:
		case <-s.baseCtx.Done():
			return
		}
	}
}

// Shutdown gracefully stops the server: admission closes immediately
// (launches get 503), then the executor drains every queued job to
// completion before exiting. If ctx expires first, the drain turns into
// an abort — the base context is canceled, so the in-flight job ends
// "canceled" at its next chunk boundary and the remaining queued jobs
// are marked canceled as the executor pops them. Shutdown returns when
// the executor has exited; it is idempotent and safe to race with Close.
func (s *Server) Shutdown(ctx context.Context) {
	// The closing transition is taken under s.mu — the same lock admission
	// holds across its check-and-enqueue — so after this critical section
	// no launch can observe closing == false and enqueue later.
	s.mu.Lock()
	s.closing.Store(true)
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drain) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	// A launch that won the race (enqueued before the closing transition
	// above) may still have slipped its job in after the executor drained
	// and exited; finish any leftovers here — every admitted job is
	// guaranteed a terminal event, shutdown or not.
	for {
		select {
		case j := <-s.queue:
			j.finish(nil, false, 0, context.Canceled)
		default:
			return
		}
	}
}

// Close stops the server without draining: every job still queued or
// running is canceled. Equivalent to Shutdown with an already-expired
// context.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
}

// Recovered reports how many jobs were rebuilt from the journal at
// startup (0 without a journal).
func (s *Server) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// resolveScale maps a scale name through ExtraScales, then the harness
// presets. An empty name means the harness default.
func (s *Server) resolveScale(name string) (harness.Scale, error) {
	if sc, ok := s.cfg.ExtraScales[name]; ok {
		return sc, nil
	}
	return harness.ScaleByName(name)
}

// --- Executor ---

// executor drains the queue into the execution engine (executor.go) —
// the single-process role's job loop. Fleet workers drain the shared
// journal through the same engine instead; see worker.go.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.exec.execute(j)
		case <-s.drain:
			// Shutdown: finish whatever is queued (each job still honors
			// its own context, so an aborted shutdown cancels them), then
			// exit.
			for {
				select {
				case j := <-s.queue:
					s.exec.execute(j)
				default:
					return
				}
			}
		}
	}
}

// --- HTTP API ---

// Handler returns the service's HTTP routes. API resources live under
// api.Prefix ("/api/v1") only — the unversioned legacy "/api" aliases
// served their one deprecation window and are gone (requests there get
// 404; DESIGN.md "API v1"). /healthz and /metrics are operational
// endpoints, not API resources, and stay unversioned. Every route goes
// through route(), which pairs the registration with a per-route
// request counter — ci.sh gates direct mux.HandleFunc calls so a new
// endpoint cannot ship unmetered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{http.MethodGet, "/experiments", s.handleExperiments},
		{http.MethodGet, "/runs", s.handleListRuns},
		{http.MethodPost, "/runs", s.handleLaunch},
		{http.MethodGet, "/runs/{id}", s.handleGetRun},
		{http.MethodDelete, "/runs/{id}", s.handleCancelRun},
		{http.MethodGet, "/runs/{id}/events", s.handleEvents},
		{http.MethodGet, "/results/{exp}", s.handleResult},
		{http.MethodGet, "/policies", s.handlePolicies},
		{http.MethodGet, "/policies/{id}", s.handlePolicy},
		{http.MethodGet, "/policies/{id}/snapshot", s.handlePolicySnapshot},
		{http.MethodGet, "/fleet", s.handleFleet},
	}
	for _, rt := range routes {
		s.route(mux, rt.method+" "+api.Prefix+rt.path, rt.h)
	}
	s.route(mux, "GET /healthz", s.handleHealth)
	s.route(mux, "GET /metrics", obs.Default().Handler().ServeHTTP)
	return mux
}

// handleFleet is GET /api/v1/fleet: the fleet coordinator's view of the
// worker tier (desired/ready counts, per-worker state and throughput,
// autoscaler signals). Without a coordinator wired in (standalone
// serve), the endpoint answers 503 — the fleet resource doesn't exist
// here, and clients can tell that apart from an empty fleet.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.FleetStatus == nil {
		writeError(w, api.Errorf(api.CodeUnavailable, "no fleet coordinator configured (standalone server)"))
		return
	}
	writeJSON(w, http.StatusOK, api.FleetResponse{Fleet: s.cfg.FleetStatus()})
}

// route registers pattern with a request counter wrapped around the
// handler. The ci.sh route-metrics gate requires all registrations to go
// through here (the one direct call below is the allow-listed wrapper).
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	c := routeCounter(pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) { // route-metrics-allow
		c.Inc()
		h(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the unified v1 error envelope ({"error": {...}}) for
// every non-2xx response. The HTTP status derives from the error code.
// Any 503 — queue full, degraded store, shutdown, missing subsystem —
// is forced Retryable with a Retry-After header of at least one second,
// so every shed path gives clients an honest backoff hint by
// construction rather than by each call site remembering to.
func writeError(w http.ResponseWriter, e api.Error) {
	status := api.StatusFor(e.Code)
	if status == http.StatusServiceUnavailable {
		e.Retryable = true
		if e.RetryAfterSec < 1 {
			e.RetryAfterSec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSec))
	}
	writeJSON(w, status, api.ErrorResponse{Error: e})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []api.ExperimentInfo
	for _, e := range harness.Experiments() {
		out = append(out, api.ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	for _, e := range harness.ExtendedExperiments() {
		out = append(out, api.ExperimentInfo{ID: e.ID, Title: e.Title, Extended: true})
	}
	writeJSON(w, http.StatusOK, api.ExperimentsResponse{Experiments: out})
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		shedCounter("closing").Inc()
		writeError(w, api.Errorf(api.CodeShuttingDown, "server is shutting down"))
		return
	}
	// The POST body is the shared api.LaunchRequest DTO: an experiment
	// render or, with Train set, a policy-training job.
	var req api.LaunchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	sc, err := s.resolveScale(req.Scale)
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = "default"
	}

	var exp harness.Experiment
	var train harness.TrainSpec
	if req.Train != nil {
		if s.cfg.Policies == nil {
			writeError(w, api.Errorf(api.CodeUnavailable, "no policy store configured"))
			return
		}
		wl, ok := trace.ByName(req.Train.Workload)
		if !ok {
			writeError(w, api.Errorf(api.CodeNotFound, "unknown workload %q", req.Train.Workload))
			return
		}
		cfgName := req.Train.Config
		if cfgName == "" {
			cfgName = "pythia"
		}
		cfg, err := harness.PythiaConfigByName(cfgName)
		if err != nil {
			writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
			return
		}
		train = harness.TrainSpec{Workload: wl, CacheCfg: cache.DefaultConfig(1), Scale: sc, Config: cfg}
		// Degraded mode: an open policy breaker sheds training work (every
		// training job needs a store write to be useful).
		if !s.polBrk.allow() {
			shedDegraded(w, s.polBrk, "policy store")
			return
		}
	} else {
		var ok bool
		exp, ok = harness.ExperimentByID(req.Experiment)
		if !ok {
			writeError(w, api.Errorf(api.CodeNotFound, "unknown experiment %q", req.Experiment))
			return
		}
		// Degraded mode: with the result-store breaker open, only requests
		// the store can already answer are admitted — a store hit needs no
		// write, so degraded is read-only, not down.
		if !s.store.Has(harness.ExperimentKey(exp.ID, sc)) && !s.storeBrk.allow() {
			shedDegraded(w, s.storeBrk, "result store")
			return
		}
	}

	// Mint the ID under mu, but journal the admission outside it: the
	// journal write (and the crash failpoint after it) must not poison
	// the server lock if it dies.
	s.mu.Lock()
	// Re-check closing under mu: Shutdown takes the same lock for its
	// closing transition, so a launch past this point is guaranteed to be
	// swept (or executed) by shutdown's drain rather than stranded.
	if s.closing.Load() {
		s.mu.Unlock()
		shedCounter("closing").Inc()
		writeError(w, api.Errorf(api.CodeShuttingDown, "server is shutting down"))
		return
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()

	var j *job
	if req.Train != nil {
		j = newTrainJob(s.baseCtx, id, train, scaleName, sc)
	} else {
		j = newJob(s.baseCtx, id, exp, scaleName, sc)
	}
	j.jl = s.journal
	// Journal before enqueue: a crash in the window between the two (the
	// FPAdmitCrash failpoint) leaves a journaled job that never reached
	// the queue — recovery requeues it, which is the at-least-once side
	// of the durability contract (content-addressed stores make the
	// possible re-execution idempotent).
	j.requeued()
	if err := fault.Hit(FPAdmitCrash); err != nil {
		if s.journal != nil {
			s.journal.remove(id)
		}
		j.cancel()
		writeError(w, api.Errorf(api.CodeInternal, "admission failed: %v", err))
		return
	}

	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		if s.journal != nil {
			s.journal.remove(id)
		}
		j.cancel()
		shedCounter("closing").Inc()
		writeError(w, api.Errorf(api.CodeShuttingDown, "server is shutting down"))
		return
	}
	if s.cfg.Dispatch {
		// Fleet frontend: the journal record written above IS the enqueue —
		// workers scan for claimable records; nothing enters the in-process
		// queue. The admission bound is the count of tracked non-terminal
		// jobs (the fleet-wide backlog), playing the role queue capacity
		// plays in the single-process path.
		if s.backlogLocked() >= s.cfg.QueueDepth {
			s.mu.Unlock()
			if s.journal != nil {
				s.journal.remove(id)
			}
			j.cancel()
			shedCounter("queue_full").Inc()
			s.log.Warn("launch shed: fleet backlog full", "depth", s.cfg.QueueDepth)
			writeError(w, api.Error{
				Code:          api.CodeQueueFull,
				Message:       fmt.Sprintf("fleet backlog full (%d jobs open)", s.cfg.QueueDepth),
				RetryAfterSec: 1,
			})
			return
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.pruneLocked()
		s.mu.Unlock()
	} else {
		// The enqueue attempt is non-blocking, so holding mu across it keeps
		// admission atomic: a job is registered iff it made it into the queue.
		select {
		case s.queue <- j:
			s.jobs[id] = j
			s.order = append(s.order, id)
			s.pruneLocked()
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			// The rejected job was never admitted: drop its journal record and
			// release its context registration on baseCtx so retry storms
			// against a full queue don't accumulate canceled children.
			if s.journal != nil {
				s.journal.remove(id)
			}
			j.cancel()
			shedCounter("queue_full").Inc()
			s.log.Warn("launch shed: queue full", "depth", s.cfg.QueueDepth)
			writeError(w, api.Error{
				Code:          api.CodeQueueFull,
				Message:       fmt.Sprintf("job queue full (%d queued)", s.cfg.QueueDepth),
				RetryAfterSec: 1,
			})
			return
		}
	}
	s.log.Info("job admitted", "job", id, "kind", j.kind,
		"experiment", j.expID, "scale", scaleName)
	writeJSON(w, http.StatusAccepted, api.JobResponse{Job: j.view()})
}

// backlogLocked counts tracked non-terminal jobs — the fleet frontend's
// admission bound. Callers hold s.mu.
func (s *Server) backlogLocked() int {
	n := 0
	for _, j := range s.jobs {
		if !j.terminal() {
			n++
		}
	}
	return n
}

// shedDegraded answers a launch that needs a degraded store: 503 with a
// Retry-After hint derived from the breaker's remaining cooldown, so
// well-behaved clients back off instead of hammering a sick disk.
func shedDegraded(w http.ResponseWriter, b *breaker, what string) {
	shedCounter("degraded_" + b.name).Inc()
	writeError(w, api.Error{
		Code: api.CodeDegraded,
		Message: fmt.Sprintf(
			"%s is degraded (circuit breaker open); only stored results are being served", what),
		RetryAfterSec: b.retryAfter(),
	})
}

// pruneLocked evicts the oldest finished jobs past the history cap.
// Callers hold s.mu.
func (s *Server) pruneLocked() {
	finished := 0
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			finished++
		}
	}
	if finished <= s.cfg.JobHistory {
		return
	}
	drop := finished - s.cfg.JobHistory
	kept := s.order[:0]
	for _, id := range s.order {
		if drop > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			if s.journal != nil {
				s.journal.remove(id)
			}
			drop--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, api.JobsResponse{Jobs: views})
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, api.JobResponse{Job: j.view()})
}

// handleCancelRun is DELETE /api/v1/runs/{id}: cancel a queued or running
// job. A queued job turns terminal immediately; a running one has its
// context canceled, which the harness observes at the next chunk boundary
// — either way the job's SSE stream ends with a terminal "canceled"
// event. Canceling an already-terminal job is a no-op (its final state is
// returned unchanged, with 409 to signal nothing was canceled).
func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	if j.terminal() {
		writeError(w, api.Errorf(api.CodeConflict,
			"job %q is already %s; nothing to cancel", j.id, j.view().Status))
		return
	}
	if s.cfg.Dispatch {
		s.cancelDispatched(j)
		writeJSON(w, http.StatusOK, api.JobResponse{Job: j.view()})
		return
	}
	// A DELETE is an explicit client decision: the terminal state it
	// causes is journaled, unlike shutdown-driven cancellation (which
	// leaves the journal requeue-able).
	j.markUserCanceled()
	// Cancel the context first so a job mid-transition (popped from the
	// queue but not yet running) still observes it; then, if the executor
	// hasn't picked the job up, finish it here for a prompt terminal event
	// (finish is idempotent, so racing the executor's own finish is safe).
	j.cancel()
	if v := j.view(); v.Status == StatusQueued {
		j.finish(nil, false, 0, context.Canceled)
	}
	writeJSON(w, http.StatusOK, api.JobResponse{Job: j.view()})
}

// cancelDispatched cancels a job whose execution lives (or will live) in
// a worker process. Contexts don't cross process boundaries, so the
// cancellation races through the claim protocol instead: the frontend
// tries to claim the job itself — winning means no worker has it (still
// queued fleet-wide), and the job turns terminal right here, the claim
// making that decision visible to every scanning worker before the
// journal write lands. Losing means some worker owns it: a cancel
// marker asks that worker to abort at its next heartbeat, and the
// watcher adopts the resulting terminal record.
func (s *Server) cancelDispatched(j *job) {
	j.markUserCanceled()
	if s.journal.claim(j.id, s.frontOwner, s.cfg.LeaseTTL) {
		j.cancel()
		j.finish(nil, false, 0, context.Canceled)
		s.journal.releaseClaim(j.id, s.frontOwner)
		s.log.Info("queued job canceled", "job", j.id)
		return
	}
	if err := s.journal.markCancel(j.id); err != nil {
		s.log.Warn("cancel marker write failed", "job", j.id, "error", err.Error())
	}
	s.log.Info("cancel requested from worker", "job", j.id)
}

// handleEvents streams a job's progress as server-sent events: the full
// history replays first, then live events until the job reaches a
// terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.Errorf(api.CodeInternal, "streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.subscribe()
	defer cancel()
	sawTerminal := false
	emit := func(ev Event) {
		if terminalStatus(ev.Type) {
			sawTerminal = true
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
	}
	for _, ev := range replay {
		emit(ev)
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				// Channel closed: the job is terminal. A subscriber that
				// fell behind may have had the terminal event dropped from
				// its buffer (publish never blocks the executor), so
				// synthesize it from the job's final state before ending
				// the stream — every client is guaranteed a terminal event.
				if !sawTerminal {
					if v := j.view(); terminalStatus(v.Status) {
						buf, err := json.Marshal(v)
						if err == nil {
							emit(Event{Type: v.Status, Data: buf})
							flusher.Flush()
						}
					}
				}
				return
			}
			emit(ev)
			flusher.Flush()
		}
	}
}

// handleResult serves a stored experiment result directly, without
// creating a job: the read path for consumers that only want cached
// tables (regenerating EXPERIMENTS.md, dashboards).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	expID := r.PathValue("exp")
	if _, ok := harness.ExperimentByID(expID); !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown experiment %q", expID))
		return
	}
	sc, err := s.resolveScale(r.URL.Query().Get("scale"))
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	var payload harness.ExperimentPayload
	if !s.store.Get(harness.ExperimentKey(expID, sc), &payload) {
		writeError(w, api.Errorf(api.CodeNotFound, "no stored result for %s at this scale (launch a run first)", expID))
		return
	}
	writeJSON(w, http.StatusOK, api.ResultResponse{Result: payload, Rendered: payload.Table.Render()})
}

// --- Policy lifecycle endpoints ---

// policyStore returns the configured policy store or answers 503.
func (s *Server) policyStore(w http.ResponseWriter) (*policy.Store, bool) {
	if s.cfg.Policies == nil {
		writeError(w, api.Errorf(api.CodeUnavailable, "no policy store configured"))
		return nil, false
	}
	return s.cfg.Policies, true
}

// handlePolicies lists the metadata of every stored policy (newest
// first); snapshots are not shipped — fetch one via its /snapshot path.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	st, ok := s.policyStore(w)
	if !ok {
		return
	}
	metas := st.List()
	if metas == nil {
		metas = []policy.Meta{}
	}
	writeJSON(w, http.StatusOK, api.PoliciesResponse{Policies: metas})
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	st, ok := s.policyStore(w)
	if !ok {
		return
	}
	env, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown policy %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, api.PolicyResponse{Policy: env.Meta})
}

// handlePolicySnapshot downloads a policy's raw PYQV01 snapshot bytes —
// the "ship the learned tables to another machine" path.
func (s *Server) handlePolicySnapshot(w http.ResponseWriter, r *http.Request) {
	st, ok := s.policyStore(w)
	if !ok {
		return
	}
	env, ok := st.Get(r.PathValue("id"))
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "unknown policy %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", env.ID+".pyqv"))
	w.WriteHeader(http.StatusOK)
	w.Write(env.Snapshot)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	// The health report is truthful about degradation: an open breaker
	// flips ok to false and names itself, so fleet probes (and humans)
	// see "degraded read-only", not a lying green light. The endpoint
	// still answers 200 — the process is alive and serving store hits.
	degraded := s.storeBrk.open() || s.polBrk.open()
	health := api.Health{
		OK:            !degraded,
		Degraded:      degraded,
		Breakers:      map[string]api.BreakerState{"results": s.storeBrk.view(), "policies": s.polBrk.view()},
		UptimeSeconds: time.Since(s.started).Seconds(),
		Jobs:          jobs,
		QueueDepth:    s.cfg.QueueDepth,
		Queued:        len(s.queue),
		Closing:       s.closing.Load(),
		Sims:          harness.SimCount(),
		Workers:       harness.Workers(),
		Stores:        s.storesHealth(),
	}
	if s.journal != nil {
		health.Journal = &api.JournalHealth{
			Dir:         s.journal.dir,
			Recovered:   s.recovered,
			WriteErrors: s.journal.writeErrs.Load(),
		}
	}
	writeJSON(w, http.StatusOK, health)
}

// storesHealth derives the per-store health section from the metrics
// registry instead of hand-calling each store's counters: any store that
// registers pythia_store_* series (results, policies, the trace cache —
// and whatever comes next) appears here automatically, so a new store
// can't silently go unreported. Directories are annotated for the
// instances this server owns.
func (s *Server) storesHealth() map[string]api.StoreHealth {
	stores := map[string]api.StoreHealth{}
	for _, f := range obs.Default().Gather() {
		var set func(*api.StoreHealth, int64)
		switch f.Name {
		case "pythia_store_hits_total":
			set = func(h *api.StoreHealth, v int64) { h.Hits = v }
		case "pythia_store_misses_total":
			set = func(h *api.StoreHealth, v int64) { h.Misses = v }
		case "pythia_store_writes_total":
			set = func(h *api.StoreHealth, v int64) { h.Writes = v }
		case "pythia_store_entries":
			set = func(h *api.StoreHealth, v int64) { h.Entries = v }
		default:
			continue
		}
		for _, m := range f.Metrics {
			name := m.Labels.Get("store")
			if name == "" {
				continue
			}
			ent := stores[name]
			set(&ent, int64(m.Value))
			stores[name] = ent
		}
	}
	if ent, ok := stores["results"]; ok {
		ent.Dir = s.store.Dir()
		stores["results"] = ent
	}
	if p := s.cfg.Policies; p != nil {
		if ent, ok := stores["policies"]; ok {
			ent.Dir = p.Dir()
			stores["policies"] = ent
		}
	}
	return stores
}

// Scales lists the scale names this server accepts (presets plus extras),
// for documentation endpoints and CLIs.
func (s *Server) Scales() []string {
	names := []string{"quick", "default", "full", "long"}
	for n := range s.cfg.ExtraScales {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
