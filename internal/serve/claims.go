package serve

// Multi-process coordination over the job journal. A fleet of worker
// processes shares one journal directory; mutual exclusion comes from
// claim files created with O_CREATE|O_EXCL — the one primitive POSIX
// rename-based stores don't give us — so exactly one worker wins each
// job no matter how many scan concurrently. Everything else (job
// records, worker heartbeats, cancel markers) is atomic-rename JSON in
// the established store idiom.
//
// Layout under the journal dir:
//
//	<id>.json          job record (journal.go)
//	claims/<id>.claim  live execution claim: {owner, lease_until}
//	workers/<owner>.json worker heartbeat: state, throughput counters
//	cancels/<id>       cancel marker: a user canceled a claimed job
//
// Ownership identity is PID plus a per-process start nonce. The nonce
// matters: PIDs recycle, and a lease protocol keyed on bare PID would
// let a new process that happens to receive a dead worker's PID renew —
// in effect steal — a lease it never acquired. renewClaim therefore
// verifies the full owner string before rewriting the claim.

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pythia/internal/fsutil"
)

// processNonce is this process's start-time nonce: minted once at init,
// distinct across processes even when PIDs recycle. Crypto randomness is
// overkill for uniqueness but free at 8 bytes per process lifetime.
var processNonce = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the start time; the combination with PID still
		// distinguishes any two processes that do not start in the same
		// nanosecond with the same recycled PID.
		return uint64(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint64(b[:])
}()

// NewOwnerID mints a lease-owner identity for this process: PID plus the
// process start nonce. Multiple owners minted in one process (tests,
// in-process worker pools) get a distinguishing suffix.
func NewOwnerID(label string) string {
	id := fmt.Sprintf("pid%d-%016x", os.Getpid(), processNonce)
	if label != "" {
		id += "-" + fsutil.Sanitize(label)
	}
	return id
}

// claimRecord is the on-disk claim document.
type claimRecord struct {
	ID         string    `json:"id"`
	Owner      string    `json:"owner"`
	LeaseUntil time.Time `json:"lease_until"`
	ClaimedAt  time.Time `json:"claimed_at"`
}

func (l *journal) claimsDir() string  { return filepath.Join(l.dir, "claims") }
func (l *journal) workersDir() string { return filepath.Join(l.dir, "workers") }
func (l *journal) cancelsDir() string { return filepath.Join(l.dir, "cancels") }

func (l *journal) claimPath(id string) string {
	return filepath.Join(l.claimsDir(), fsutil.Sanitize(id)+".claim")
}

// claim attempts to acquire the execution claim for a job. The
// O_CREATE|O_EXCL create is the atomic arbitration point: among any
// number of concurrent claimants exactly one creates the file. The
// winner's identity and lease land in the file body afterwards — a
// reader that sees an empty claim treats it as live (the winner is
// mid-write), which errs on the side of not double-executing.
func (l *journal) claim(id, owner string, ttl time.Duration) bool {
	if err := os.MkdirAll(l.claimsDir(), 0o755); err != nil {
		return false
	}
	f, err := os.OpenFile(l.claimPath(id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	now := time.Now().UTC()
	buf, _ := json.Marshal(claimRecord{ID: id, Owner: owner, LeaseUntil: now.Add(ttl), ClaimedAt: now})
	f.Write(buf)
	f.Close()
	return true
}

// renewClaim extends the lease on a held claim. It re-reads the claim
// first and refuses unless the recorded owner matches exactly — the
// recycled-PID defense: a process that did not mint this owner string
// cannot extend (or resurrect) the lease, and an owner whose claim was
// reaped learns it lost the job instead of silently recreating the
// claim under a requeued record.
func (l *journal) renewClaim(id, owner string, ttl time.Duration) error {
	cur, ok := l.claimState(id)
	if !ok {
		return fmt.Errorf("claim for %s is gone (lease reaped)", id)
	}
	if cur.Owner != owner {
		return fmt.Errorf("claim for %s is owned by %s, not %s", id, cur.Owner, owner)
	}
	cur.LeaseUntil = time.Now().UTC().Add(ttl)
	return fsutil.WriteAtomic(l.claimsDir(), l.claimPath(id), func(tmp *os.File) error {
		buf, err := json.Marshal(cur)
		if err != nil {
			return err
		}
		_, werr := tmp.Write(buf)
		return werr
	})
}

// releaseClaim drops a held claim after verifying ownership; releasing a
// claim someone else now holds is a no-op.
func (l *journal) releaseClaim(id, owner string) {
	if cur, ok := l.claimState(id); !ok || cur.Owner != owner {
		return
	}
	os.Remove(l.claimPath(id))
}

// claimState reads a job's claim. ok reports whether a claim file
// exists; an unparseable or half-written body reads as a live claim
// owned by nobody the caller knows (empty Owner, zero LeaseUntil is
// treated as live by claimExpired's grace below).
func (l *journal) claimState(id string) (claimRecord, bool) {
	buf, err := os.ReadFile(l.claimPath(id))
	if err != nil {
		return claimRecord{}, false
	}
	var c claimRecord
	json.Unmarshal(buf, &c)
	c.ID = id
	return c, true
}

// claimExpired reports whether a claim's lease has lapsed. A zero
// LeaseUntil (claim body not yet written, or unparseable) gets a TTL of
// grace from the file's mtime before it counts as expired.
func (l *journal) claimExpired(c claimRecord, grace time.Duration, now time.Time) bool {
	if !c.LeaseUntil.IsZero() {
		return now.After(c.LeaseUntil)
	}
	st, err := os.Stat(l.claimPath(c.ID))
	if err != nil {
		return false
	}
	return now.After(st.ModTime().Add(grace))
}

// liveClaims lists every claim on disk.
func (l *journal) liveClaims() []claimRecord {
	ents, err := os.ReadDir(l.claimsDir())
	if err != nil {
		return nil
	}
	var out []claimRecord
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".claim") {
			continue
		}
		id := strings.TrimSuffix(name, ".claim")
		if c, ok := l.claimState(id); ok {
			out = append(out, c)
		}
	}
	return out
}

// reapExpiredClaims removes claims whose lease has lapsed and returns
// the affected job IDs. Removing the claim is the whole requeue: a
// non-terminal record with no claim is claimable, so the next worker
// scan picks the job up. Only the fleet coordinator calls this —
// a single reaper keeps the check-then-remove window away from the
// many-workers path (a live owner that was wrongly reaped discovers it
// at its next renewClaim and abandons the run instead of split-braining).
func (l *journal) reapExpiredClaims(grace time.Duration) []string {
	now := time.Now().UTC()
	var reaped []string
	for _, c := range l.liveClaims() {
		if !l.claimExpired(c, grace, now) {
			continue
		}
		if err := os.Remove(l.claimPath(c.ID)); err == nil {
			reaped = append(reaped, c.ID)
		}
	}
	return reaped
}

// --- Cancel markers ---

// markCancel requests cancellation of a job some worker currently owns:
// the marker file is the frontend-to-worker signal (checked on every
// heartbeat), since job contexts do not cross process boundaries.
func (l *journal) markCancel(id string) error {
	if err := os.MkdirAll(l.cancelsDir(), 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(l.cancelsDir(), fsutil.Sanitize(id)), nil, 0o644)
}

// cancelRequested reports whether a cancel marker exists for the job.
func (l *journal) cancelRequested(id string) bool {
	_, err := os.Stat(filepath.Join(l.cancelsDir(), fsutil.Sanitize(id)))
	return err == nil
}

// clearCancel removes a consumed (or obsolete) cancel marker.
func (l *journal) clearCancel(id string) {
	os.Remove(filepath.Join(l.cancelsDir(), fsutil.Sanitize(id)))
}

// --- Worker heartbeats ---

// workerState is a worker process's heartbeat document: liveness (the
// coordinator treats a stale UpdatedAt as dead), current occupancy (the
// autoscaler's in-flight signal), and cumulative throughput counters
// (per-worker jobs/sims for /api/v1/fleet and /metrics).
type workerState struct {
	Owner string `json:"owner"`
	PID   int    `json:"pid"`
	// State is "idle" or "busy"; Job is the claimed job while busy.
	State string `json:"state"`
	Job   string `json:"job,omitempty"`
	// Jobs and Sims count completed jobs and executed simulations.
	Jobs int64 `json:"jobs"`
	Sims int64 `json:"sims"`

	StartedAt time.Time `json:"started_at"`
	UpdatedAt time.Time `json:"updated_at"`
}

func (l *journal) workerPath(owner string) string {
	return filepath.Join(l.workersDir(), fsutil.Sanitize(owner)+".json")
}

// putWorker lands a worker heartbeat (best-effort, like every journal
// write: a lost heartbeat costs liveness slack, never correctness).
func (l *journal) putWorker(w workerState) {
	if err := os.MkdirAll(l.workersDir(), 0o755); err != nil {
		l.writeErrs.Add(1)
		return
	}
	w.UpdatedAt = time.Now().UTC()
	err := fsutil.WriteAtomic(l.workersDir(), l.workerPath(w.Owner), func(tmp *os.File) error {
		buf, merr := json.Marshal(&w)
		if merr != nil {
			return merr
		}
		_, werr := tmp.Write(buf)
		return werr
	})
	if err != nil {
		l.writeErrs.Add(1)
	}
}

// removeWorker retires a worker's heartbeat file (graceful exit, or the
// coordinator sweeping a dead worker).
func (l *journal) removeWorker(owner string) {
	os.Remove(l.workerPath(owner))
}

// loadWorkers reads every parseable worker heartbeat.
func (l *journal) loadWorkers() []workerState {
	ents, err := os.ReadDir(l.workersDir())
	if err != nil {
		return nil
	}
	var out []workerState
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".tmp") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(l.workersDir(), name))
		if err != nil {
			continue
		}
		var w workerState
		if err := json.Unmarshal(buf, &w); err != nil || w.Owner == "" {
			continue
		}
		out = append(out, w)
	}
	return out
}
