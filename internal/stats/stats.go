// Package stats provides the metric computations the paper's evaluation
// uses — speedup, prefetch coverage and overprediction (Appendix A.6) — and
// small aggregation helpers (geometric mean, CSV rendering).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs; zero/negative entries are
// clamped to a small positive value to keep the aggregate defined.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two samples). Experiment cells report it alongside the mean so per-trial
// dispersion is never collapsed into a bare point estimate.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	idx := p / 100 * float64(len(ys)-1)
	lo := int(idx)
	hi := lo + 1
	if hi >= len(ys) {
		return ys[len(ys)-1]
	}
	frac := idx - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Coverage computes prefetch coverage per the artifact's formula:
// (LLC_load_miss_nopref − LLC_load_miss_X) / LLC_load_miss_nopref.
func Coverage(baseLoadMiss, withLoadMiss int64) float64 {
	if baseLoadMiss <= 0 {
		return 0
	}
	return float64(baseLoadMiss-withLoadMiss) / float64(baseLoadMiss)
}

// Overprediction computes the artifact's overprediction metric:
// (LLC_read_miss_X − LLC_read_miss_nopref) / LLC_read_miss_nopref, where
// read misses count demand and prefetch reads to main memory.
func Overprediction(baseReadMiss, withReadMiss int64) float64 {
	if baseReadMiss <= 0 {
		return 0
	}
	return float64(withReadMiss-baseReadMiss) / float64(baseReadMiss)
}

// Table is a simple named grid used by every experiment to report results
// in the paper's row/series structure.
type Table struct {
	// Title identifies the experiment ("Fig. 9a ...").
	Title  string
	Header []string
	Rows   [][]string
	// Notes holds free-form commentary appended after the grid.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row where float cells are formatted with %.3f.
func (t *Table) AddRowf(label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.3f", v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c)
			} else {
				fmt.Fprintf(&b, "  %*s", w, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (the artifact's rollup
// format).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(t.Header)
	for _, r := range t.Rows {
		write(r)
	}
	return b.String()
}
