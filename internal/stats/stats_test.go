package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("Geomean(1,1,1) = %v", g)
	}
	// Non-positive entries are clamped rather than producing NaN.
	if g := Geomean([]float64{0, 4}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("Geomean with zero = %v", g)
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if x > 0.01 && x < 100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		g := Geomean(clean)
		min, max := clean[0], clean[0]
		for _, x := range clean {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestStddev(t *testing.T) {
	if s := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(s-2.138) > 0.001 {
		t.Errorf("Stddev = %v", s)
	}
	if s := Stddev([]float64{3, 3, 3}); s != 0 {
		t.Errorf("Stddev of constants = %v", s)
	}
	// Fewer than two samples have no dispersion estimate.
	if Stddev(nil) != 0 || Stddev([]float64{5}) != 0 {
		t.Error("Stddev of <2 samples should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Interpolation between points.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestCoverage(t *testing.T) {
	if c := Coverage(100, 30); c != 0.7 {
		t.Errorf("Coverage = %v", c)
	}
	if c := Coverage(0, 30); c != 0 {
		t.Errorf("Coverage with zero base = %v", c)
	}
	if c := Coverage(100, 120); c != -0.2 {
		t.Errorf("negative coverage = %v", c)
	}
}

func TestOverprediction(t *testing.T) {
	if o := Overprediction(100, 150); o != 0.5 {
		t.Errorf("Overprediction = %v", o)
	}
	if o := Overprediction(0, 150); o != 0 {
		t.Errorf("Overprediction with zero base = %v", o)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddRowf("y", 2.5)
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Render()
	for _, want := range []string{"== T ==", "a", "bb", "x", "2.500", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("v,1", `he said "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"v,1"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"he said ""hi"""`) {
		t.Errorf("quotes not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %s", csv)
	}
}
