package cpu

import (
	"context"
	"fmt"
)

// This file is the record-at-a-time compatibility path: the simulation
// kernel as it existed before the fused chunk kernel (core.go stepChunk),
// preserved as the reference implementation. Tests and the kernel
// microbench run it via SystemConfig.RecordShim to pin the batched path's
// bit-identity and to measure the fusion speedup against a live baseline.
// It is the only non-test code in this package allowed to call a reader's
// record-at-a-time Next (ci.sh enforces that with a grep gate).

// step consumes one trace record, advancing the core's local clock. A
// reader that stops delivering because of an error (not EOF) aborts the
// step: the record sequence can no longer be trusted, so the simulation
// must fail rather than silently truncate or replay early.
func (c *Core) step() error {
	rec, ok := c.reader.Next()
	if !ok {
		if err := readerErr(c.reader); err != nil {
			return fmt.Errorf("cpu: core %d: trace delivery: %w", c.id, err)
		}
		c.reader.Reset()
		c.replays++
		rec, ok = c.reader.Next()
		if !ok {
			if err := readerErr(c.reader); err != nil {
				return fmt.Errorf("cpu: core %d: trace replay: %w", c.id, err)
			}
			// Empty trace: spin the clock forward so the driver terminates.
			c.cycle += 1000
			return nil
		}
	}
	c.records++

	// Issue the non-memory instructions plus the memory op at Width/cycle.
	n := int(rec.NonMem) + 1
	c.instret += int64(n)
	for n > 0 {
		if c.issueRem == 0 {
			c.cycle++
			c.issueRem = c.cfg.Width
		}
		take := n
		if take > c.issueRem {
			take = c.issueRem
		}
		c.issueRem -= take
		n -= take
	}

	// Retire completed loads.
	for c.inflight.n > 0 && c.inflight.front().complete <= c.cycle {
		c.inflight.pop()
	}
	// ROB limit: the core cannot run more than ROB instructions past the
	// oldest incomplete load.
	for c.inflight.n > 0 && c.instret-c.inflight.front().idx >= int64(c.cfg.ROB) {
		c.waitOldest()
	}
	// LQ limit.
	for c.inflight.n >= c.cfg.LQ {
		c.waitOldest()
	}

	done := c.hier.Access(c.id, rec.PC, rec.Addr+c.addrOffset, rec.Store, c.cycle)
	if !rec.Store && done > c.cycle {
		c.inflight.push(inflightLoad{idx: c.instret, complete: done})
	}
	return nil
}

// waitOldest advances the clock to the oldest in-flight load's completion.
func (c *Core) waitOldest() {
	if c.inflight.n == 0 {
		return
	}
	f := c.inflight.front()
	if f.complete > c.cycle {
		c.cycle = f.complete
		c.issueRem = c.cfg.Width
	}
	c.inflight.pop()
}

// cancelCheckSteps is how many shim driver steps elapse between context
// checks on the record-at-a-time path. Each step retires at least one
// instruction (typically several), so cancellation lands within a few
// thousand simulated records without putting a channel poll on the
// per-record loop. The fused path does not use this: it polls once per
// batch, at chunk boundaries (see Run in core.go).
const cancelCheckSteps = 1 << 12

// runShim is the record-at-a-time driver: Run as it existed before chunk
// fusion, selected by SystemConfig.RecordShim. Its observable behavior —
// every simulation statistic, bit for bit — must match the fused driver;
// batch_test.go holds the two against each other.
func (s *System) runShim(ctx context.Context) error {
	done := ctx.Done()
	steps := 0
	canceled := func() error {
		steps++
		if steps&(cancelCheckSteps-1) == 0 && done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		return nil
	}

	// Warmup: run each core in lockstep until it retires the warmup count.
	for {
		c := s.nextCore(func(c *Core) bool { return c.instret < s.cfg.WarmupInstructions })
		if c == nil {
			break
		}
		if err := c.step(); err != nil {
			return err
		}
		if err := canceled(); err != nil {
			return err
		}
	}

	// Measurement boundary.
	s.Hier.ResetStats()
	for _, c := range s.Cores {
		c.measuring = true
		c.startCycle = c.cycle
		c.startInstret = c.instret
	}

	// Measurement: every core keeps executing (replaying its trace) until
	// all cores have retired SimInstructions, so shared-resource contention
	// persists for stragglers, as in the paper. Each core's statistics are
	// snapshotted at the instant it crosses the finish line.
	unfinished := len(s.Cores)
	for unfinished > 0 {
		c := s.nextCore(func(*Core) bool { return true })
		if err := c.step(); err != nil {
			return err
		}
		if err := canceled(); err != nil {
			return err
		}
		if !c.finished && c.instret-c.startInstret >= s.cfg.SimInstructions {
			c.finished = true
			c.finalCycle = c.cycle
			c.doneInstret = c.instret - c.startInstret
			c.statsSnap = s.Hier.CoreStats(c.id)
			unfinished--
		}
	}
	s.Hier.Flush()
	return nil
}
