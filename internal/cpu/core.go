// Package cpu implements the trace-driven core timing model and the
// multi-core simulation driver, mirroring the paper's methodology (§5):
// 4-wide out-of-order cores with a 256-entry ROB and 72-entry load queue,
// per-workload warmup then measurement, and trace replay for cores that
// finish early in multi-programmed runs.
package cpu

import (
	"context"
	"fmt"
	"io"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// CoreConfig sets the core timing parameters (Table 5 defaults).
type CoreConfig struct {
	// Width is the issue/retire width in instructions per cycle.
	Width int
	// ROB is the reorder-buffer size in instructions.
	ROB int
	// LQ is the load-queue size: the bound on in-flight loads.
	LQ int
}

// DefaultCoreConfig returns the paper's Skylake-like core.
func DefaultCoreConfig() CoreConfig { return CoreConfig{Width: 4, ROB: 256, LQ: 72} }

type inflightLoad struct {
	idx      int64 // instruction index at issue
	complete int64
}

// Core executes one trace stream against the shared hierarchy.
type Core struct {
	id     int
	cfg    CoreConfig
	reader trace.Reader
	hier   *cache.Hierarchy

	cycle    int64
	instret  int64
	issueRem int            // leftover issue slots in the current cycle
	inflight []inflightLoad // FIFO of outstanding loads
	replays  int

	// measurement window
	measuring    bool
	startCycle   int64
	startInstret int64
	doneInstret  int64 // target measured instructions
	finalCycle   int64
	finished     bool
	statsSnap    cache.CoreStats

	// addrOffset separates per-core address spaces in multi-programmed runs.
	addrOffset uint64
}

// Cycle returns the core's local clock.
func (c *Core) Cycle() int64 { return c.cycle }

// Finished reports whether the core has retired its measured instructions.
func (c *Core) Finished() bool { return c.finished }

// IPC returns measured instructions per cycle; valid once finished.
func (c *Core) IPC() float64 {
	cycles := c.finalCycle - c.startCycle
	if cycles <= 0 {
		return 0
	}
	return float64(c.doneInstret) / float64(cycles)
}

// MeasuredInstructions returns the instruction count of the measurement
// window.
func (c *Core) MeasuredInstructions() int64 { return c.doneInstret }

// MeasuredCycles returns the cycle count of the measurement window; for
// still-running cores it reflects progress so far.
func (c *Core) MeasuredCycles() int64 {
	if c.finished {
		return c.finalCycle - c.startCycle
	}
	return c.cycle - c.startCycle
}

// Replays returns how many times the core wrapped its trace.
func (c *Core) Replays() int { return c.replays }

// Retired returns the total instructions the core has retired, warmup and
// replays included — the raw work the kernel performed, as opposed to
// MeasuredInstructions' measurement window. Throughput metrics
// (simulated-instructions/sec) are computed from this.
func (c *Core) Retired() int64 { return c.instret }

// readerErr surfaces a delivery failure from readers that can fail
// mid-stream (streaming readers implement Err, per stream.Reader); plain
// in-memory readers cannot fail and report nil.
func readerErr(r trace.Reader) error {
	if e, ok := r.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// step consumes one trace record, advancing the core's local clock. A
// reader that stops delivering because of an error (not EOF) aborts the
// step: the record sequence can no longer be trusted, so the simulation
// must fail rather than silently truncate or replay early.
func (c *Core) step() error {
	rec, ok := c.reader.Next()
	if !ok {
		if err := readerErr(c.reader); err != nil {
			return fmt.Errorf("cpu: core %d: trace delivery: %w", c.id, err)
		}
		c.reader.Reset()
		c.replays++
		rec, ok = c.reader.Next()
		if !ok {
			if err := readerErr(c.reader); err != nil {
				return fmt.Errorf("cpu: core %d: trace replay: %w", c.id, err)
			}
			// Empty trace: spin the clock forward so the driver terminates.
			c.cycle += 1000
			return nil
		}
	}

	// Issue the non-memory instructions plus the memory op at Width/cycle.
	n := int(rec.NonMem) + 1
	c.instret += int64(n)
	for n > 0 {
		if c.issueRem == 0 {
			c.cycle++
			c.issueRem = c.cfg.Width
		}
		take := n
		if take > c.issueRem {
			take = c.issueRem
		}
		c.issueRem -= take
		n -= take
	}

	// Retire completed loads.
	for len(c.inflight) > 0 && c.inflight[0].complete <= c.cycle {
		c.inflight = c.inflight[1:]
	}
	// ROB limit: the core cannot run more than ROB instructions past the
	// oldest incomplete load.
	for len(c.inflight) > 0 && c.instret-c.inflight[0].idx >= int64(c.cfg.ROB) {
		c.waitOldest()
	}
	// LQ limit.
	for len(c.inflight) >= c.cfg.LQ {
		c.waitOldest()
	}

	done := c.hier.Access(c.id, rec.PC, rec.Addr+c.addrOffset, rec.Store, c.cycle)
	if !rec.Store && done > c.cycle {
		c.inflight = append(c.inflight, inflightLoad{idx: c.instret, complete: done})
	}
	return nil
}

// waitOldest advances the clock to the oldest in-flight load's completion.
func (c *Core) waitOldest() {
	if len(c.inflight) == 0 {
		return
	}
	if c.inflight[0].complete > c.cycle {
		c.cycle = c.inflight[0].complete
		c.issueRem = c.cfg.Width
	}
	c.inflight = c.inflight[1:]
}

// System drives one or more cores against a shared hierarchy.
type System struct {
	Cores []*Core
	Hier  *cache.Hierarchy
	cfg   SystemConfig
}

// SystemConfig controls a simulation run.
type SystemConfig struct {
	Core CoreConfig
	// WarmupInstructions per core before measurement starts.
	WarmupInstructions int64
	// SimInstructions measured per core.
	SimInstructions int64
}

// DefaultSystemConfig returns the simulation lengths used by the harness:
// scaled-down versions of the paper's 100M warmup / 500M measure.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Core:               DefaultCoreConfig(),
		WarmupInstructions: 2_000_000,
		SimInstructions:    10_000_000,
	}
}

// NewSystem builds cores over readers (one per core) and the hierarchy.
func NewSystem(cfg SystemConfig, hier *cache.Hierarchy, readers []trace.Reader) (*System, error) {
	if len(readers) != hier.Config().Cores {
		return nil, fmt.Errorf("cpu: %d readers for %d cores", len(readers), hier.Config().Cores)
	}
	if cfg.Core.Width <= 0 || cfg.Core.ROB <= 0 || cfg.Core.LQ <= 0 {
		return nil, fmt.Errorf("cpu: invalid core config %+v", cfg.Core)
	}
	s := &System{Hier: hier, cfg: cfg}
	for i, r := range readers {
		s.Cores = append(s.Cores, &Core{
			id:         i,
			cfg:        cfg.Core,
			reader:     r,
			hier:       hier,
			addrOffset: uint64(i) << 56,
		})
	}
	return s, nil
}

// cancelCheckSteps is how many driver steps elapse between context
// checks. Each step retires at least one instruction (typically several),
// and the default streaming chunk is 1<<15 records, so cancellation is
// observed well within one chunk boundary — milliseconds of simulation —
// without putting a channel poll on the per-record hot path.
const cancelCheckSteps = 1 << 12

// Run executes warmup then measurement. Warmup trains caches and
// prefetchers without counting statistics; measurement runs until every
// core retires SimInstructions, replaying traces as needed.
//
// Errors are values here, not panics: a trace-delivery failure on any core
// aborts the run with that core's error, and a canceled ctx aborts it with
// ctx.Err() at the next check boundary. Either way the System is left in
// an undefined simulation state and must only be Closed, never re-Run.
func (s *System) Run(ctx context.Context) error {
	done := ctx.Done()
	steps := 0
	canceled := func() error {
		steps++
		if steps&(cancelCheckSteps-1) == 0 && done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		return nil
	}

	// Warmup: run each core in lockstep until it retires the warmup count.
	for {
		c := s.nextCore(func(c *Core) bool { return c.instret < s.cfg.WarmupInstructions })
		if c == nil {
			break
		}
		if err := c.step(); err != nil {
			return err
		}
		if err := canceled(); err != nil {
			return err
		}
	}

	// Measurement boundary.
	s.Hier.ResetStats()
	for _, c := range s.Cores {
		c.measuring = true
		c.startCycle = c.cycle
		c.startInstret = c.instret
	}

	// Measurement: every core keeps executing (replaying its trace) until
	// all cores have retired SimInstructions, so shared-resource contention
	// persists for stragglers, as in the paper. Each core's statistics are
	// snapshotted at the instant it crosses the finish line.
	unfinished := len(s.Cores)
	for unfinished > 0 {
		c := s.nextCore(func(*Core) bool { return true })
		if err := c.step(); err != nil {
			return err
		}
		if err := canceled(); err != nil {
			return err
		}
		if !c.finished && c.instret-c.startInstret >= s.cfg.SimInstructions {
			c.finished = true
			c.finalCycle = c.cycle
			c.doneInstret = c.instret - c.startInstret
			c.statsSnap = s.Hier.CoreStats(c.id)
			unfinished--
		}
	}
	s.Hier.Flush()
	return nil
}

// Stats returns a core's memory statistics captured when it finished its
// measurement window.
func (c *Core) Stats() cache.CoreStats { return c.statsSnap }

// Close releases per-core trace readers that own external resources:
// streaming readers (internal/stream) hold a producer goroutine and
// possibly an open file until closed. Readers that are plain in-memory
// iterators are unaffected. Close is safe to call after Run and more than
// once; the first reader error is returned.
func (s *System) Close() error {
	var first error
	for _, c := range s.Cores {
		if cl, ok := c.reader.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// nextCore returns the eligible core with the smallest local clock, or nil
// when none is eligible. Advancing the globally-oldest core keeps shared
// resources (LLC, DRAM) ordered across cores.
func (s *System) nextCore(eligible func(*Core) bool) *Core {
	var best *Core
	for _, c := range s.Cores {
		if !eligible(c) {
			continue
		}
		if best == nil || c.cycle < best.cycle {
			best = c
		}
	}
	return best
}
