// Package cpu implements the trace-driven core timing model and the
// multi-core simulation driver, mirroring the paper's methodology (§5):
// 4-wide out-of-order cores with a 256-entry ROB and 72-entry load queue,
// per-workload warmup then measurement, and trace replay for cores that
// finish early in multi-programmed runs.
//
// The hot loop is batched: cores consume records as column chunks
// (trace.Chunk) through the trace.ChunkReader fast path and fuse a whole
// batch per driver step (stepChunk), keeping clock and retirement state
// in registers instead of paying an interface call per record. The
// record-at-a-time path survives as a compatibility shim (shim.go) whose
// results the batched kernel must match bit for bit — batch_test.go pins
// that across chunk-boundary edge cases, replays and multi-core runs.
package cpu

import (
	"context"
	"fmt"
	"io"
	"math"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// CoreConfig sets the core timing parameters (Table 5 defaults).
type CoreConfig struct {
	// Width is the issue/retire width in instructions per cycle.
	Width int
	// ROB is the reorder-buffer size in instructions.
	ROB int
	// LQ is the load-queue size: the bound on in-flight loads.
	LQ int
}

// DefaultCoreConfig returns the paper's Skylake-like core.
func DefaultCoreConfig() CoreConfig { return CoreConfig{Width: 4, ROB: 256, LQ: 72} }

type inflightLoad struct {
	idx      int64 // instruction index at issue
	complete int64
}

// loadRing is a fixed-capacity FIFO of in-flight loads. The LQ limit
// guarantees occupancy never exceeds cfg.LQ, so the buffer is sized once
// at LQ entries and never grows; head pops are O(1) index moves. (The
// previous []inflightLoad head-pop reslice pinned the backing array and
// re-grew it on every wrap of the append cursor.)
type loadRing struct {
	buf  []inflightLoad
	head int
	n    int
}

func newLoadRing(capacity int) loadRing { return loadRing{buf: make([]inflightLoad, capacity)} }

// front returns the oldest in-flight load; valid only when n > 0.
func (r *loadRing) front() inflightLoad { return r.buf[r.head] }

func (r *loadRing) pop() {
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}

func (r *loadRing) push(v inflightLoad) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

// Core executes one trace stream against the shared hierarchy.
type Core struct {
	id     int
	cfg    CoreConfig
	reader trace.Reader      // the caller's reader: Close target, shim path
	cr     trace.ChunkReader // batched fast path (reader itself, or an adapter)
	hier   *cache.Hierarchy

	cycle    int64
	instret  int64
	records  int64
	issueRem int      // leftover issue slots in the current cycle
	inflight loadRing // FIFO of outstanding loads, capacity LQ
	replays  int

	// cur/pos is the column batch being consumed by the fused kernel.
	cur trace.Chunk
	pos int

	// measurement window
	measuring    bool
	startCycle   int64
	startInstret int64
	doneInstret  int64 // target measured instructions
	finalCycle   int64
	finished     bool
	statsSnap    cache.CoreStats

	// addrOffset separates per-core address spaces in multi-programmed runs.
	addrOffset uint64
}

// Cycle returns the core's local clock.
func (c *Core) Cycle() int64 { return c.cycle }

// Finished reports whether the core has retired its measured instructions.
func (c *Core) Finished() bool { return c.finished }

// IPC returns measured instructions per cycle; valid once finished.
func (c *Core) IPC() float64 {
	cycles := c.finalCycle - c.startCycle
	if cycles <= 0 {
		return 0
	}
	return float64(c.doneInstret) / float64(cycles)
}

// MeasuredInstructions returns the instruction count of the measurement
// window.
func (c *Core) MeasuredInstructions() int64 { return c.doneInstret }

// MeasuredCycles returns the cycle count of the measurement window; for
// still-running cores it reflects progress so far.
func (c *Core) MeasuredCycles() int64 {
	if c.finished {
		return c.finalCycle - c.startCycle
	}
	return c.cycle - c.startCycle
}

// Replays returns how many times the core wrapped its trace.
func (c *Core) Replays() int { return c.replays }

// Retired returns the total instructions the core has retired, warmup and
// replays included — the raw work the kernel performed, as opposed to
// MeasuredInstructions' measurement window. Throughput metrics
// (simulated-instructions/sec) are computed from this.
func (c *Core) Retired() int64 { return c.instret }

// Records returns the total trace records the core has consumed, warmup
// and replays included; with Retired it gives the kernel microbenches
// both records/sec and instructions/sec.
func (c *Core) Records() int64 { return c.records }

// readerErr surfaces a delivery failure from readers that can fail
// mid-stream (streaming readers implement Err, per stream.Reader); plain
// in-memory readers cannot fail and report nil.
func readerErr(r trace.Reader) error {
	if e, ok := r.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// nextBatch pulls the next column batch from the fast-path reader,
// replaying the trace once on a clean EOF (the paper's methodology for
// cores that finish early). Returning with an empty cur means the trace
// itself is empty; the caller spins the clock, as the shim does. A
// delivery failure aborts: the record sequence can no longer be trusted,
// so the simulation must fail rather than silently truncate or replay.
func (c *Core) nextBatch() error {
	ch, ok := c.cr.NextChunk()
	if !ok {
		if err := readerErr(c.reader); err != nil {
			return fmt.Errorf("cpu: core %d: trace delivery: %w", c.id, err)
		}
		c.cr.Reset()
		c.replays++
		ch, ok = c.cr.NextChunk()
		if !ok {
			if err := readerErr(c.reader); err != nil {
				return fmt.Errorf("cpu: core %d: trace replay: %w", c.id, err)
			}
			c.cur, c.pos = trace.Chunk{}, 0
			return nil
		}
	}
	c.cur, c.pos = ch, 0
	return nil
}

// stepChunk is the fused hot loop: it advances the core through the
// current column batch until the batch is exhausted, retired instructions
// reach instrLimit, or the local clock passes cycleCap (the scheduling
// bound capFor computes). Per record it performs exactly the arithmetic
// of the record-at-a-time shim — issue-width clocking (in closed form),
// load retirement, ROB/LQ stalls, one hierarchy access — in the same
// order, so the two paths are bit-identical (batch_test.go). The fusion
// wins come from keeping clock state in locals, indexing dense columns
// instead of an interface call per record, and O(1) ring pops.
func (c *Core) stepChunk(instrLimit, cycleCap int64) error {
	if c.pos >= c.cur.Len() {
		if err := c.nextBatch(); err != nil {
			return err
		}
		if c.cur.Len() == 0 {
			// Empty trace: spin the clock forward so the driver terminates,
			// one spin per driver step, exactly as the shim's step() does.
			c.cycle += 1000
			return nil
		}
	}

	var (
		cycle    = c.cycle
		instret  = c.instret
		issueRem = c.issueRem
		width    = c.cfg.Width
		rob      = int64(c.cfg.ROB)
		lq       = c.cfg.LQ
		hier     = c.hier
		id       = c.id
		addrOff  = c.addrOffset
	)
	// The refill division runs once per record on the issue-clock critical
	// path; for power-of-two widths (the Table 5 core is 4-wide) a shift
	// computes the identical quotient.
	widthShift := -1
	if width&(width-1) == 0 {
		for s := 0; s < 32; s++ {
			if 1<<s == width {
				widthShift = s
				break
			}
		}
	}
	// The load ring runs on locals too; ringLen never changes, so the wrap
	// arithmetic compiles to straight-line code.
	buf := c.inflight.buf
	head, m := c.inflight.head, c.inflight.n
	ringLen := len(buf)

	pcs := c.cur.PC
	n := len(pcs)
	// Columns are equal-length by the Chunk invariant; reslicing to n lets
	// the compiler drop the per-record bounds checks.
	addrs := c.cur.Addr[:n]
	gaps := c.cur.NonMem[:n]
	stores := c.cur.Store[:n]
	i := c.pos
	for i < n && instret < instrLimit && cycle <= cycleCap {
		// Issue the non-memory instructions plus the memory op at
		// Width/cycle. This is the closed form of the shim's refill loop:
		// identical integer sequence, no iteration (TestIssueClockClosedForm).
		k := int(gaps[i]) + 1
		instret += int64(k)
		if k <= issueRem {
			issueRem -= k
		} else {
			k -= issueRem
			var refills int
			if widthShift >= 0 {
				refills = (k + width - 1) >> widthShift
			} else {
				refills = (k + width - 1) / width
			}
			cycle += int64(refills)
			issueRem = refills*width - k
		}

		// Retire completed loads.
		for m > 0 && buf[head].complete <= cycle {
			head++
			if head == ringLen {
				head = 0
			}
			m--
		}
		// ROB limit: the core cannot run more than ROB instructions past
		// the oldest incomplete load. LQ limit follows. Both wait on the
		// oldest load exactly as the shim's waitOldest does.
		for (m > 0 && instret-buf[head].idx >= rob) || m >= lq {
			if f := buf[head]; f.complete > cycle {
				cycle = f.complete
				issueRem = width
			}
			head++
			if head == ringLen {
				head = 0
			}
			m--
		}

		done := hier.Access(id, pcs[i], addrs[i]+addrOff, stores[i], cycle)
		if !stores[i] && done > cycle {
			j := head + m
			if j >= ringLen {
				j -= ringLen
			}
			buf[j] = inflightLoad{idx: instret, complete: done}
			m++
		}
		i++
	}
	c.inflight.head, c.inflight.n = head, m
	c.records += int64(i - c.pos)
	c.cycle, c.instret, c.issueRem, c.pos = cycle, instret, issueRem, i
	return nil
}

// System drives one or more cores against a shared hierarchy.
type System struct {
	Cores []*Core
	Hier  *cache.Hierarchy
	cfg   SystemConfig
}

// SystemConfig controls a simulation run.
type SystemConfig struct {
	Core CoreConfig
	// WarmupInstructions per core before measurement starts.
	WarmupInstructions int64
	// SimInstructions measured per core.
	SimInstructions int64
	// Chunk sizes the column batches used to adapt record-at-a-time
	// readers to the fused kernel (0 = trace.DefaultBatch). Readers with a
	// native batch path (internal/stream) deliver their own chunk size.
	// Batch size never affects simulation results — only delivery
	// granularity — which batch_test.go pins down to chunk±1 edge cases.
	Chunk int
	// RecordShim forces the record-at-a-time compatibility path (shim.go)
	// instead of the fused chunk kernel. It exists so tests and tools can
	// compare the two paths; results are bit-identical either way.
	RecordShim bool
}

// DefaultSystemConfig returns the simulation lengths used by the harness:
// scaled-down versions of the paper's 100M warmup / 500M measure.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Core:               DefaultCoreConfig(),
		WarmupInstructions: 2_000_000,
		SimInstructions:    10_000_000,
	}
}

// NewSystem builds cores over readers (one per core) and the hierarchy.
// Readers that implement trace.ChunkReader (streaming readers) feed the
// fused kernel directly; any other reader is adapted through a column
// batcher, so every core runs the same hot loop.
func NewSystem(cfg SystemConfig, hier *cache.Hierarchy, readers []trace.Reader) (*System, error) {
	if len(readers) != hier.Config().Cores {
		return nil, fmt.Errorf("cpu: %d readers for %d cores", len(readers), hier.Config().Cores)
	}
	if cfg.Core.Width <= 0 || cfg.Core.ROB <= 0 || cfg.Core.LQ <= 0 {
		return nil, fmt.Errorf("cpu: invalid core config %+v", cfg.Core)
	}
	s := &System{Hier: hier, cfg: cfg}
	for i, r := range readers {
		cr, ok := r.(trace.ChunkReader)
		if !ok {
			cr = trace.NewChunkingReader(r, cfg.Chunk)
		} else if b, ok := cr.(interface{ SetBatch(int) }); ok && cfg.Chunk > 0 {
			// Native chunk readers with an adjustable view size (SliceReader)
			// honor the configured granularity; streaming readers size their
			// own chunks.
			b.SetBatch(cfg.Chunk)
		}
		s.Cores = append(s.Cores, &Core{
			id:         i,
			cfg:        cfg.Core,
			reader:     r,
			cr:         cr,
			hier:       hier,
			inflight:   newLoadRing(cfg.Core.LQ),
			addrOffset: uint64(i) << 56,
		})
	}
	return s, nil
}

// Run executes warmup then measurement. Warmup trains caches and
// prefetchers without counting statistics; measurement runs until every
// core retires SimInstructions, replaying traces as needed.
//
// Errors are values here, not panics: a trace-delivery failure on any core
// aborts the run with that core's error, and a canceled ctx aborts it at
// the next batch boundary with ctx.Err(). Either way the System is left in
// an undefined simulation state and must only be Closed, never re-Run.
//
// Cancellation granularity: the driver polls the context once per fused
// batch, so a single-core run observes cancellation at chunk boundaries
// (milliseconds of simulation at the default chunk size) and multi-core
// runs at scheduling-quantum boundaries, which are at most one chunk.
func (s *System) Run(ctx context.Context) error {
	if s.cfg.RecordShim {
		return s.runShim(ctx)
	}
	done := ctx.Done()
	poll := func() error {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		return nil
	}

	// Warmup: advance each core in lockstep until it retires the warmup
	// count. stepChunk stops on its own at the instruction limit, so a
	// core never overshoots farther than the shim would (one record).
	warm := func(c *Core) bool { return c.instret < s.cfg.WarmupInstructions }
	for {
		c := s.nextCore(warm)
		if c == nil {
			break
		}
		if err := c.stepChunk(s.cfg.WarmupInstructions, s.capFor(c, warm)); err != nil {
			return err
		}
		if err := poll(); err != nil {
			return err
		}
	}

	// Measurement boundary.
	s.Hier.ResetStats()
	for _, c := range s.Cores {
		c.measuring = true
		c.startCycle = c.cycle
		c.startInstret = c.instret
	}

	// Measurement: every core keeps executing (replaying its trace) until
	// all cores have retired SimInstructions, so shared-resource contention
	// persists for stragglers, as in the paper. Each core's statistics are
	// snapshotted at the instant it crosses the finish line: stepChunk
	// returns exactly at the crossing record, so the snapshot sees the same
	// cycle and hierarchy state the record-at-a-time path would.
	all := func(*Core) bool { return true }
	unfinished := len(s.Cores)
	for unfinished > 0 {
		c := s.nextCore(all)
		limit := int64(math.MaxInt64)
		if !c.finished {
			limit = c.startInstret + s.cfg.SimInstructions
		}
		if err := c.stepChunk(limit, s.capFor(c, all)); err != nil {
			return err
		}
		if err := poll(); err != nil {
			return err
		}
		if !c.finished && c.instret-c.startInstret >= s.cfg.SimInstructions {
			c.finished = true
			c.finalCycle = c.cycle
			c.doneInstret = c.instret - c.startInstret
			c.statsSnap = s.Hier.CoreStats(c.id)
			unfinished--
		}
	}
	s.Hier.Flush()
	return nil
}

// capFor bounds how far core c may advance before the scheduler must
// re-evaluate. nextCore picks the lowest-indexed core among those with the
// minimum clock; c keeps that property exactly while its clock stays
// strictly below every lower-indexed eligible core and at or below every
// higher-indexed one. Within the bound, c can burn through a whole batch
// without consulting the others — which is what makes chunk fusion legal
// in multi-programmed runs: the cross-core record interleaving is
// identical to stepping one record at a time (TestBatchedMatchesShimMultiCore).
// Only c's own clock moves while it runs, so the bound stays valid for the
// whole batch. With a single core the bound is +inf and the kernel runs
// full chunks.
func (s *System) capFor(c *Core, eligible func(*Core) bool) int64 {
	bound := int64(math.MaxInt64)
	for _, o := range s.Cores {
		if o == c || !eligible(o) {
			continue
		}
		b := o.cycle
		if o.id < c.id {
			b--
		}
		if b < bound {
			bound = b
		}
	}
	return bound
}

// Stats returns a core's memory statistics captured when it finished its
// measurement window.
func (c *Core) Stats() cache.CoreStats { return c.statsSnap }

// Close releases per-core trace readers that own external resources:
// streaming readers (internal/stream) hold a producer goroutine and
// possibly an open file until closed. Readers that are plain in-memory
// iterators are unaffected. Close is safe to call after Run and more than
// once; the first reader error is returned.
func (s *System) Close() error {
	var first error
	for _, c := range s.Cores {
		if cl, ok := c.reader.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// nextCore returns the eligible core with the smallest local clock, or nil
// when none is eligible. Advancing the globally-oldest core keeps shared
// resources (LLC, DRAM) ordered across cores.
func (s *System) nextCore(eligible func(*Core) bool) *Core {
	var best *Core
	for _, c := range s.Cores {
		if !eligible(c) {
			continue
		}
		if best == nil || c.cycle < best.cycle {
			best = c
		}
	}
	return best
}
