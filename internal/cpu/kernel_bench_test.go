// Kernel throughput benchmarks: the fused SoA chunk loop against the
// record-at-a-time shim over three synthetic profiles — mixed (misses
// exercise the hierarchy), hot (L1-resident, probe-bound) and comp
// (compute-dense, issue-arithmetic-bound). Wall-clock comparisons on
// shared hardware need interleaved best-of-N runs; see PERF.md
// "Batched SoA kernel" for methodology and recorded numbers.
package cpu

import (
	"context"
	"math/rand"
	"testing"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// hotTrace: L1-resident lines, small non-memory gaps — kernel-bound.
func hotTrace(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     uint64(0x400 + rng.Intn(8)*4),
			Addr:   uint64(rng.Intn(256))*64 + 1<<20, // 16KB working set: L1-resident
			NonMem: uint16(rng.Intn(9)),
			Store:  rng.Intn(8) == 0,
		}
	}
	return recs
}

func benchKernel(b *testing.B, shim bool, recs []trace.Record) {
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		cfg := SystemConfig{Core: DefaultCoreConfig(), WarmupInstructions: 1_000_000, SimInstructions: 8_000_000, RecordShim: shim}
		sys, err := NewSystem(cfg, hier, []trace.Reader{trace.NewSliceReader(recs)})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		instr = sys.Cores[0].Retired()
	}
	b.SetBytes(instr) // MB/s column reads as simulated instructions per microsecond
}

func BenchmarkKernelFusedMixed(b *testing.B) { benchKernel(b, false, mixedTrace(1_000_000, 42)) }
func BenchmarkKernelShimMixed(b *testing.B)  { benchKernel(b, true, mixedTrace(1_000_000, 42)) }
func BenchmarkKernelFusedHot(b *testing.B)   { benchKernel(b, false, hotTrace(1_000_000, 42)) }
func BenchmarkKernelShimHot(b *testing.B)    { benchKernel(b, true, hotTrace(1_000_000, 42)) }
func BenchmarkKernelFusedComp(b *testing.B)  { benchKernel(b, false, computeTrace(1_000_000)) }
func BenchmarkKernelShimComp(b *testing.B)   { benchKernel(b, true, computeTrace(1_000_000)) }
