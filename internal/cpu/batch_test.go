package cpu

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// This file pins the fused chunk kernel (core.go stepChunk) to the
// record-at-a-time shim (shim.go): same traces, same config, every
// observable bit-identical — per-core clocks, retirement, measurement
// windows, snapshotted cache statistics and the shared DRAM model.
// Coverage deliberately straddles chunk boundaries (lengths chunk-1,
// chunk, chunk+1), replays, multi-programmed interleaving and arbitrary
// batch sizes, because those are exactly the places where fusion could
// legally reorder arithmetic if the cycle-cap scheduling were wrong.

// mixedTrace returns a deterministic blend of hot-line hits, strided and
// random misses, stores, and variable non-memory gaps — adversarial for
// the issue clock, the load queue and the retirement loops at once.
func mixedTrace(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		r := trace.Record{PC: uint64(0x400 + rng.Intn(8)*4), NonMem: uint16(rng.Intn(9))}
		switch rng.Intn(4) {
		case 0: // hot line, L1-resident
			r.Addr = 1 << 20
		case 1: // strided misses
			r.Addr = uint64(i)*64 + 1<<30
		case 2: // page-local churn
			r.Addr = uint64(rng.Intn(64))*64 + 1<<25
		default: // scattered pages
			r.Addr = uint64(rng.Intn(1<<18)) * 4096
		}
		r.Store = rng.Intn(8) == 0
		recs[i] = r
	}
	return recs
}

// runBoth executes the same simulation twice — once forced onto the
// record-at-a-time shim, once on the fused kernel — and returns both
// systems for comparison.
func runBoth(t *testing.T, cfg SystemConfig, cores int, recs ...[]trace.Record) (shim, fused *System) {
	t.Helper()
	shimCfg := cfg
	shimCfg.RecordShim = true
	shim = newSystem(t, shimCfg, cores, recs...)
	mustRun(t, shim)
	fused = newSystem(t, cfg, cores, recs...)
	mustRun(t, fused)
	return shim, fused
}

// ringRecords returns the logical front-to-back contents of a load ring.
func ringRecords(r *loadRing) []inflightLoad {
	out := make([]inflightLoad, 0, r.n)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	return out
}

// requireIdentical compares every observable of two finished systems bit
// for bit.
func requireIdentical(t *testing.T, want, got *System) {
	t.Helper()
	for i := range want.Cores {
		a, b := want.Cores[i], got.Cores[i]
		if a.cycle != b.cycle || a.instret != b.instret || a.issueRem != b.issueRem ||
			a.replays != b.replays || a.records != b.records || a.finished != b.finished ||
			a.startCycle != b.startCycle || a.startInstret != b.startInstret ||
			a.finalCycle != b.finalCycle || a.doneInstret != b.doneInstret {
			t.Fatalf("core %d state diverged:\n want cycle=%d instret=%d issueRem=%d replays=%d records=%d final=%d\n got  cycle=%d instret=%d issueRem=%d replays=%d records=%d final=%d",
				i, a.cycle, a.instret, a.issueRem, a.replays, a.records, a.finalCycle,
				b.cycle, b.instret, b.issueRem, b.replays, b.records, b.finalCycle)
		}
		if !reflect.DeepEqual(ringRecords(&a.inflight), ringRecords(&b.inflight)) {
			t.Fatalf("core %d in-flight loads diverged:\n want %v\n got  %v",
				i, ringRecords(&a.inflight), ringRecords(&b.inflight))
		}
		if !reflect.DeepEqual(a.Stats(), b.Stats()) {
			t.Fatalf("core %d stats diverged:\n want %+v\n got  %+v", i, a.Stats(), b.Stats())
		}
		if a.IPC() != b.IPC() {
			t.Fatalf("core %d IPC diverged: %v vs %v", i, a.IPC(), b.IPC())
		}
	}
	if !reflect.DeepEqual(want.Hier.DRAM().Stats(), got.Hier.DRAM().Stats()) {
		t.Fatalf("DRAM stats diverged:\n want %+v\n got  %+v",
			want.Hier.DRAM().Stats(), got.Hier.DRAM().Stats())
	}
	if !reflect.DeepEqual(want.Hier.DRAM().Buckets(), got.Hier.DRAM().Buckets()) {
		t.Fatal("DRAM bandwidth buckets diverged")
	}
}

// TestBatchedMatchesShimAtChunkEdges sweeps trace lengths around the
// batch size — 1, chunk-1, chunk, chunk+1, and a multi-chunk length with
// a partial tail. Every length is short enough to force replays, so the
// Reset path lands at every possible offset within a batch.
func TestBatchedMatchesShimAtChunkEdges(t *testing.T) {
	const chunk = 256
	cfg := smallConfig()
	cfg.Chunk = chunk
	cfg.WarmupInstructions = 2_000
	cfg.SimInstructions = 20_000
	for _, n := range []int{1, chunk - 1, chunk, chunk + 1, 3*chunk + 17} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			shim, fused := runBoth(t, cfg, 1, mixedTrace(n, int64(n)))
			requireIdentical(t, shim, fused)
			if fused.Cores[0].Replays() == 0 {
				t.Error("trace was meant to replay mid-run; lengths need shrinking")
			}
		})
	}
}

// TestBatchedMatchesShimMultiCore holds the fused kernel to the shim's
// per-record core interleaving: heterogeneous trace lengths and speeds
// against a shared LLC and DRAM, where any deviation in scheduling order
// shifts contention and shows up in the stats.
func TestBatchedMatchesShimMultiCore(t *testing.T) {
	cfg := smallConfig()
	cfg.Chunk = 512
	cfg.WarmupInstructions = 2_000
	cfg.SimInstructions = 30_000
	for _, cores := range []int{2, 4} {
		t.Run(fmt.Sprint(cores), func(t *testing.T) {
			traces := make([][]trace.Record, cores)
			for i := range traces {
				traces[i] = mixedTrace(5_000+i*777, int64(100+i))
			}
			shim, fused := runBoth(t, cfg, cores, traces...)
			requireIdentical(t, shim, fused)
		})
	}
}

// TestBatchedChunkSizeInvariance: batch size is delivery granularity, not
// semantics — any chunk size must produce the same bits.
func TestBatchedChunkSizeInvariance(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupInstructions = 2_000
	cfg.SimInstructions = 20_000
	recs := mixedTrace(4_096, 9)
	base := newSystem(t, cfg, 1, recs) // default batch
	mustRun(t, base)
	for _, chunk := range []int{1, 3, 64, 1_000, 1 << 15} {
		c := cfg
		c.Chunk = chunk
		sys := newSystem(t, c, 1, recs)
		mustRun(t, sys)
		requireIdentical(t, base, sys)
	}
}

// TestEmptyTraceStepEquivalence: an empty trace spins the clock forward
// 1000 cycles per driver step on both paths, bumping the replay counter
// identically.
func TestEmptyTraceStepEquivalence(t *testing.T) {
	a := newSystem(t, smallConfig(), 1, []trace.Record{}).Cores[0]
	b := newSystem(t, smallConfig(), 1, []trace.Record{}).Cores[0]
	for i := 0; i < 3; i++ {
		if err := a.step(); err != nil {
			t.Fatal(err)
		}
		if err := b.stepChunk(math.MaxInt64, math.MaxInt64); err != nil {
			t.Fatal(err)
		}
	}
	if a.cycle != b.cycle || a.replays != b.replays || a.instret != b.instret {
		t.Fatalf("empty-trace stepping diverged: shim (cycle=%d replays=%d) fused (cycle=%d replays=%d)",
			a.cycle, a.replays, b.cycle, b.replays)
	}
	if a.cycle != 3000 || a.replays != 3 {
		t.Fatalf("empty-trace semantics drifted: cycle=%d replays=%d, want 3000/3", a.cycle, a.replays)
	}
}

// TestIssueClockClosedForm proves the fused kernel's closed-form issue
// clock equals the shim's refill loop for every reachable (width,
// issueRem, instruction-count) combination.
func TestIssueClockClosedForm(t *testing.T) {
	for width := 1; width <= 8; width++ {
		for rem := 0; rem <= width; rem++ {
			for k := 1; k <= 80; k++ {
				// Reference: the shim's per-cycle refill loop.
				c1, r1, n := int64(1000), rem, k
				for n > 0 {
					if r1 == 0 {
						c1++
						r1 = width
					}
					take := n
					if take > r1 {
						take = r1
					}
					r1 -= take
					n -= take
				}
				// Closed form, as in stepChunk.
				c2, r2, kk := int64(1000), rem, k
				if kk <= r2 {
					r2 -= kk
				} else {
					kk -= r2
					refills := (kk + width - 1) / width
					c2 += int64(refills)
					r2 = refills*width - kk
				}
				if c1 != c2 || r1 != r2 {
					t.Fatalf("width=%d rem=%d k=%d: loop (%d,%d) closed form (%d,%d)",
						width, rem, k, c1, r1, c2, r2)
				}
			}
		}
	}
}

// TestLoadRing exercises the fixed-capacity FIFO through several
// fill/drain cycles so head wrap-around is covered.
func TestLoadRing(t *testing.T) {
	r := newLoadRing(3)
	next := int64(0)
	for round := 0; round < 5; round++ {
		for r.n < 3 {
			r.push(inflightLoad{idx: next, complete: next + 10})
			next++
		}
		want := next - 3
		for r.n > 0 {
			if got := r.front().idx; got != want {
				t.Fatalf("round %d: front idx %d, want %d", round, got, want)
			}
			r.pop()
			want++
		}
	}
}

// TestShimSurfacesReaderError mirrors TestRunSurfacesReaderError on the
// shim path (the default path's version runs the fused kernel).
func TestShimSurfacesReaderError(t *testing.T) {
	hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("decode failed mid-run")
	cfg := smallConfig()
	cfg.RecordShim = true
	sys, err := NewSystem(cfg, hier, []trace.Reader{&failingReader{left: 500, err: boom}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Run(context.Background()); !errors.Is(got, boom) {
		t.Fatalf("Run returned %v, want the reader's error", got)
	}
}

// TestShimHonorsCancellation mirrors TestRunHonorsCancellation on the
// shim path.
func TestShimHonorsCancellation(t *testing.T) {
	cfg := smallConfig()
	cfg.RecordShim = true
	cfg.SimInstructions = 500_000_000
	sys := newSystem(t, cfg, 1, computeTrace(100_000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sys.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("canceled run took %v to return", d)
	}
}
