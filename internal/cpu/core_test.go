package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"pythia/internal/cache"
	"pythia/internal/trace"
)

// computeTrace returns a trace of n records whose accesses always hit a
// single hot line (L1-resident) with large non-memory gaps: effectively
// compute-bound.
func computeTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400, Addr: 1 << 20, NonMem: 40}
	}
	return recs
}

// missTrace returns a trace where every access is a fresh line: maximally
// memory-bound.
func missTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x800, Addr: uint64(i)*4096 + 1<<30, NonMem: 0}
	}
	return recs
}

func newSystem(t *testing.T, cfg SystemConfig, cores int, recs ...[]trace.Record) *System {
	t.Helper()
	hier, err := cache.NewHierarchy(cache.DefaultConfig(cores))
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]trace.Reader, cores)
	for i := 0; i < cores; i++ {
		readers[i] = trace.NewSliceReader(recs[i%len(recs)])
	}
	sys, err := NewSystem(cfg, hier, readers)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// mustRun executes a system to completion, failing the test on any
// simulation error (these tests use in-memory readers, which cannot fail).
func mustRun(t *testing.T, sys *System) {
	t.Helper()
	if err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func smallConfig() SystemConfig {
	return SystemConfig{
		Core:               DefaultCoreConfig(),
		WarmupInstructions: 5_000,
		SimInstructions:    50_000,
	}
}

func TestComputeBoundIPCNearWidth(t *testing.T) {
	sys := newSystem(t, smallConfig(), 1, computeTrace(100_000))
	mustRun(t, sys)
	ipc := sys.Cores[0].IPC()
	if ipc < 3.0 || ipc > 4.01 {
		t.Errorf("compute-bound IPC = %.2f, want near the 4-wide limit", ipc)
	}
}

func TestMemoryBoundIPCLow(t *testing.T) {
	sys := newSystem(t, smallConfig(), 1, missTrace(200_000))
	mustRun(t, sys)
	ipc := sys.Cores[0].IPC()
	if ipc >= 1.0 {
		t.Errorf("all-miss IPC = %.2f, should be far below the issue width", ipc)
	}
	if ipc <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestMeasuredInstructionCount(t *testing.T) {
	cfg := smallConfig()
	sys := newSystem(t, cfg, 1, computeTrace(100_000))
	mustRun(t, sys)
	c := sys.Cores[0]
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
	got := c.MeasuredInstructions()
	if got < cfg.SimInstructions || got > cfg.SimInstructions+100 {
		t.Errorf("measured %d instructions, want ~%d", got, cfg.SimInstructions)
	}
}

func TestTraceReplay(t *testing.T) {
	// A short trace must be replayed until the instruction budget is met.
	cfg := smallConfig()
	sys := newSystem(t, cfg, 1, computeTrace(100)) // ~4100 instructions per pass
	mustRun(t, sys)
	if sys.Cores[0].Replays() == 0 {
		t.Error("short trace was not replayed")
	}
	if !sys.Cores[0].Finished() {
		t.Error("core did not finish despite replay")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	cfg := smallConfig()
	sys := newSystem(t, cfg, 1, missTrace(200_000))
	mustRun(t, sys)
	s := sys.Cores[0].Stats()
	// All-miss trace: roughly one access per record, only measured ones
	// counted. Warmup is 5k instructions = 5k records here.
	total := int64(200_000)
	if s.Accesses >= total {
		t.Errorf("stats include warmup: %d accesses", s.Accesses)
	}
	if s.Accesses == 0 {
		t.Error("no measured accesses")
	}
}

func TestMultiCoreAllFinish(t *testing.T) {
	cfg := smallConfig()
	sys := newSystem(t, cfg, 4, computeTrace(100_000), missTrace(100_000))
	mustRun(t, sys)
	for i, c := range sys.Cores {
		if !c.Finished() {
			t.Errorf("core %d unfinished", i)
		}
		if c.IPC() <= 0 {
			t.Errorf("core %d IPC %v", i, c.IPC())
		}
	}
}

func TestContentionSlowsSharedDRAM(t *testing.T) {
	cfg := smallConfig()
	solo := newSystem(t, cfg, 1, missTrace(300_000))
	mustRun(t, solo)
	soloIPC := solo.Cores[0].IPC()

	// Two memory-bound cores on a single channel must each run slower than
	// alone (DefaultConfig(2) keeps one channel).
	duo := newSystem(t, cfg, 2, missTrace(300_000))
	mustRun(t, duo)
	for i, c := range duo.Cores {
		if c.IPC() >= soloIPC {
			t.Errorf("core %d IPC %.3f not reduced by contention (solo %.3f)", i, c.IPC(), soloIPC)
		}
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// With a tiny ROB, the all-miss trace should run slower (less overlap).
	big := smallConfig()
	small := smallConfig()
	small.Core.ROB = 16
	sysBig := newSystem(t, big, 1, missTrace(200_000))
	mustRun(t, sysBig)
	sysSmall := newSystem(t, small, 1, missTrace(200_000))
	mustRun(t, sysSmall)
	if sysSmall.Cores[0].IPC() >= sysBig.Cores[0].IPC() {
		t.Errorf("ROB16 IPC %.3f should be below ROB256 IPC %.3f",
			sysSmall.Cores[0].IPC(), sysBig.Cores[0].IPC())
	}
}

func TestNewSystemValidation(t *testing.T) {
	hier, _ := cache.NewHierarchy(cache.DefaultConfig(2))
	if _, err := NewSystem(smallConfig(), hier, []trace.Reader{trace.NewSliceReader(nil)}); err == nil {
		t.Error("reader/core mismatch should fail")
	}
	bad := smallConfig()
	bad.Core.Width = 0
	hier1, _ := cache.NewHierarchy(cache.DefaultConfig(1))
	if _, err := NewSystem(bad, hier1, []trace.Reader{trace.NewSliceReader(nil)}); err == nil {
		t.Error("zero width should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		sys := newSystem(t, smallConfig(), 1, missTrace(100_000))
		mustRun(t, sys)
		return sys.Cores[0].IPC()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestAccessorsAndDefaults(t *testing.T) {
	def := DefaultSystemConfig()
	if def.Core.Width != 4 || def.Core.ROB != 256 || def.Core.LQ != 72 {
		t.Errorf("default core config %+v does not match Table 5", def.Core)
	}
	sys := newSystem(t, smallConfig(), 1, computeTrace(50_000))
	mustRun(t, sys)
	c := sys.Cores[0]
	if c.Cycle() <= 0 {
		t.Error("Cycle() not advancing")
	}
	if c.MeasuredCycles() <= 0 {
		t.Error("MeasuredCycles() not positive")
	}
	// IPC consistency: instructions / cycles.
	want := float64(c.MeasuredInstructions()) / float64(c.MeasuredCycles())
	if c.IPC() != want {
		t.Errorf("IPC %v inconsistent with %v", c.IPC(), want)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// A store-only miss stream should run much faster than a load-only one:
	// stores retire without waiting for data.
	mk := func(store bool) []trace.Record {
		recs := make([]trace.Record, 150_000)
		for i := range recs {
			recs[i] = trace.Record{PC: 1, Addr: uint64(i)*4096 + 1<<33, Store: store}
		}
		return recs
	}
	loads := newSystem(t, smallConfig(), 1, mk(false))
	mustRun(t, loads)
	stores := newSystem(t, smallConfig(), 1, mk(true))
	mustRun(t, stores)
	if stores.Cores[0].IPC() <= loads.Cores[0].IPC() {
		t.Errorf("store IPC %.3f should exceed load IPC %.3f",
			stores.Cores[0].IPC(), loads.Cores[0].IPC())
	}
}

func TestLQLimitsInflightLoads(t *testing.T) {
	big := smallConfig()
	small := smallConfig()
	small.Core.LQ = 4
	a := newSystem(t, big, 1, missTrace(150_000))
	mustRun(t, a)
	b := newSystem(t, small, 1, missTrace(150_000))
	mustRun(t, b)
	if b.Cores[0].IPC() >= a.Cores[0].IPC() {
		t.Errorf("LQ4 IPC %.3f should trail LQ72 IPC %.3f", b.Cores[0].IPC(), a.Cores[0].IPC())
	}
}

// failingReader delivers a few records, then stops with a sticky error —
// the shape of a streaming reader whose backing file corrupted mid-run.
type failingReader struct {
	left int
	err  error
}

func (r *failingReader) Next() (trace.Record, bool) {
	if r.left <= 0 {
		return trace.Record{}, false
	}
	r.left--
	return trace.Record{PC: 1, Addr: 64, NonMem: 1}, true
}

func (r *failingReader) Reset() {}

func (r *failingReader) Err() error {
	if r.left <= 0 {
		return r.err
	}
	return nil
}

// TestRunSurfacesReaderError: a reader that fails mid-stream must abort
// the simulation with its error, not silently truncate or replay.
func TestRunSurfacesReaderError(t *testing.T) {
	hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("decode failed mid-run")
	sys, err := NewSystem(smallConfig(), hier, []trace.Reader{&failingReader{left: 500, err: boom}})
	if err != nil {
		t.Fatal(err)
	}
	got := sys.Run(context.Background())
	if !errors.Is(got, boom) {
		t.Fatalf("Run returned %v, want the reader's error", got)
	}
}

// TestRunHonorsCancellation: a canceled context stops the run promptly
// with ctx.Err() instead of simulating to completion.
func TestRunHonorsCancellation(t *testing.T) {
	cfg := smallConfig()
	cfg.SimInstructions = 500_000_000 // far beyond what the test budget allows
	sys := newSystem(t, cfg, 1, computeTrace(100_000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := sys.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("canceled run took %v to return", d)
	}
	if sys.Cores[0].Finished() {
		t.Error("core claims to have finished a canceled run")
	}
}
